"""Overhead guard: fail if the metrics-off hot paths regressed.

Re-runs the ``bench_hotpaths`` sections (metrics disabled — the
production default) and compares total wall time against the
``wall_seconds`` recorded for the same scale in the committed
``BENCH_hotpaths.json``.  A regression beyond the tolerance (default
10%) exits non-zero, so CI catches instrumentation that leaks cost into
disabled runs.

Also reports the metrics-ON wall time of the same sections, so the
enabled-mode overhead stays visible in CI logs, and checks that a
``ParallelSlsEngine`` forced to ``--workers 0`` serves ``sls_many``
within a small envelope of the plain in-process store path — the
degraded engine is pure delegation and must stay free.  A third check
serves the same batch with the fault-injection hooks in their disabled
states and fails if they cost more than 2% over a hook-free serve, and a
fourth does the same for hot-row tiering: a store with tiering attached
but the prewarmer disabled must serve within 2% of a detached store.  A
fifth pins the telemetry layer: with the security-event log enabled
(in-memory ring or JSONL journal) a healthy serve must emit zero events
and stay within 2% of the fully-disabled path.  A sixth pins the kernel
tier dispatch: a host where no compiled backend resolves (no numba, no
C compiler) must serve within 2% of the numpy-pinned path — graceful
degradation cannot tax the portable tier.

All timed sections run pinned to the NumPy kernel tier (with
``kernels.warmup()`` paid before any timer starts) so the committed
``wall_seconds`` baselines stay comparable across hosts regardless of
whether a compiled backend is present.

Usage::

    PYTHONPATH=src python benchmarks/check_overhead.py \
        [--baseline BENCH_hotpaths.json] [--scale smoke] [--tolerance 0.10]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))
sys.path.insert(0, str(_REPO / "benchmarks"))

from repro import kernels, obs  # noqa: E402
from bench_hotpaths import (  # noqa: E402
    _SIZES,
    _bench_matrix_tags,
    _bench_otp,
    _bench_sls,
)


def _run_sections(sizes) -> float:
    # Pinned to the NumPy tier to match how the committed wall_seconds
    # baseline is recorded; tier resolution (and any JIT/compile warmup)
    # is paid before the timer starts so it never counts as regression.
    with kernels.use_tier("numpy"):
        kernels.warmup()
        start = time.perf_counter()
        _bench_matrix_tags(sizes)
        _bench_otp(sizes)
        _bench_sls(sizes)
        return time.perf_counter() - start


def _check_workers0_envelope(sizes, tolerance: float) -> bool:
    """Engine at ``workers=0`` vs direct ``store.sls_many``, in-run.

    Both paths are measured back to back in this process (best of 5), so
    the comparison is machine-independent; the degraded engine adds one
    attribute check per call and must stay within the envelope.
    """
    import numpy as np

    from bench_hotpaths import KEY, _best_of
    from repro.core.params import SecNDPParams
    from repro.core.protocol import SecNDPProcessor, UntrustedNdpDevice
    from repro.parallel import ParallelSlsEngine
    from repro.workloads.secure_sls import SecureEmbeddingStore

    params = SecNDPParams(element_bits=32)
    store = SecureEmbeddingStore(
        SecNDPProcessor(KEY, params), UntrustedNdpDevice(params), quantization="table"
    )
    rng = np.random.default_rng(5)
    n_rows = min(sizes["n_rows"], 2_048)
    store.add_table("emb", rng.normal(size=(n_rows, sizes["dim"])))
    pf = min(sizes["pf"], store.max_pooling_factor("emb"))
    batch_rows = [
        list(rng.integers(0, min(2 * pf, n_rows), size=pf))
        for _ in range(sizes["batch"])
    ]

    with ParallelSlsEngine(store, workers=0) as engine:
        t_store, out_store = _best_of(
            lambda: store.sls_many("emb", batch_rows), repeats=5
        )
        t_engine, out_engine = _best_of(
            lambda: engine.sls_many("emb", batch_rows), repeats=5
        )
    assert np.array_equal(out_store, out_engine), "workers=0 engine diverges"
    ratio = t_engine / t_store if t_store else float("inf")
    # Double the wall-time tolerance: these are millisecond-scale
    # sections, so scheduler jitter is proportionally larger.
    limit = 1.0 + 2 * tolerance
    print(
        f"workers=0 engine: {t_engine*1e3:.1f} ms vs store "
        f"{t_store*1e3:.1f} ms ({(ratio - 1) * 100:+.1f}%; limit +{limit - 1:.0%})"
    )
    if ratio > limit:
        print(
            f"FAIL: workers=0 engine is {ratio:.2f}x the in-process store "
            f"path (limit {limit:.2f}x)"
        )
        return False
    return True


def _check_fault_hook_overhead(sizes, limit_fraction: float = 0.02) -> bool:
    """Fault-injection hooks must be ~free when disabled.

    Serves the same ``sls_many`` batch (best of 9, back to back in this
    process) under three hook states:

    * no injector installed (the production default — one module-global
      load + ``is None`` check per hook site);
    * an injector installed but not armed (what a recovery-enabled
      process looks like outside its offload windows);
    * an injector installed *and armed* with an all-zero-rate plan (every
      site takes the slow guard but no fault ever fires).

    Both non-default states must stay within ``limit_fraction`` (2%) of
    the default — the ceiling on what the hooks can cost any hot path.
    """
    import numpy as np

    from bench_hotpaths import KEY, _best_of
    from repro.core.params import SecNDPParams
    from repro.core.protocol import SecNDPProcessor, UntrustedNdpDevice
    from repro.faults import FaultInjector, FaultPlan, hooks
    from repro.workloads.secure_sls import SecureEmbeddingStore

    params = SecNDPParams(element_bits=32)
    store = SecureEmbeddingStore(
        SecNDPProcessor(KEY, params), UntrustedNdpDevice(params), quantization="table"
    )
    rng = np.random.default_rng(11)
    n_rows = min(sizes["n_rows"], 2_048)
    store.add_table("emb", rng.normal(size=(n_rows, sizes["dim"])))
    pf = min(sizes["pf"], store.max_pooling_factor("emb"))
    batch_rows = [
        list(rng.integers(0, min(2 * pf, n_rows), size=pf))
        for _ in range(sizes["batch"])
    ]
    serve = lambda: store.sls_many("emb", batch_rows)  # noqa: E731
    serve()  # warm the OTP pad cache so no state favours either config

    hooks.clear()
    t_none, out_none = _best_of(serve, repeats=9)

    injector = FaultInjector(FaultPlan(rates={}, name="zero-rate"))
    hooks.install(injector)
    try:
        t_disarmed, out_disarmed = _best_of(serve, repeats=9)
        injector.arm()
        try:
            t_armed, out_armed = _best_of(serve, repeats=9)
        finally:
            injector.disarm()
    finally:
        hooks.clear()

    assert np.array_equal(out_none, out_disarmed), "disarmed hooks changed results"
    assert np.array_equal(out_none, out_armed), "zero-rate armed hooks changed results"

    ok = True
    limit = 1.0 + limit_fraction
    for label, t in (("installed", t_disarmed), ("armed zero-rate", t_armed)):
        ratio = t / t_none if t_none else float("inf")
        print(
            f"fault hooks {label}: {t*1e3:.1f} ms vs none {t_none*1e3:.1f} ms "
            f"({(ratio - 1) * 100:+.1f}%; limit +{limit_fraction:.0%})"
        )
        if ratio > limit:
            print(
                f"FAIL: fault hooks ({label}) cost {ratio:.3f}x the "
                f"hook-free serve (limit {limit:.2f}x)"
            )
            ok = False
    return ok


def _check_tiering_overhead(sizes, limit_fraction: float = 0.02) -> bool:
    """Hot-row tiering must be ~free when not in use.

    Serves the same ``sls_many`` batch (best of 9, back to back in this
    process) under two states:

    * no tiering attached — the production default: the serving path
      pays one ``is None`` check per validated query and the row-pad
      LRU branch is a single integer test;
    * tiering attached but idle — the access tracker observes every
      query (what a prewarmer-disabled deployment that still collects
      stats looks like), with no prewarmer thread and default caches.

    The attached state must stay within ``limit_fraction`` (2%) of the
    detached serve, and both must produce bit-identical results.  The
    batch is 4x the scale's (a ~20 ms serve) and both states are timed
    best-of-11, so single-digit-microsecond hook costs are resolvable
    above scheduler jitter.
    """
    import numpy as np

    from bench_hotpaths import KEY, _best_of
    from repro.core.params import SecNDPParams
    from repro.core.protocol import SecNDPProcessor, UntrustedNdpDevice
    from repro.workloads.secure_sls import SecureEmbeddingStore

    params = SecNDPParams(element_bits=32)
    store = SecureEmbeddingStore(
        SecNDPProcessor(KEY, params), UntrustedNdpDevice(params), quantization="table"
    )
    rng = np.random.default_rng(13)
    n_rows = min(sizes["n_rows"], 2_048)
    store.add_table("emb", rng.normal(size=(n_rows, sizes["dim"])))
    pf = min(sizes["pf"], store.max_pooling_factor("emb"))
    batch_rows = [
        list(rng.integers(0, min(2 * pf, n_rows), size=pf))
        for _ in range(sizes["batch"] * 4)
    ]
    serve = lambda: store.sls_many("emb", batch_rows)  # noqa: E731
    serve()  # warm the OTP pad cache so no state favours either config

    t_off, out_off = _best_of(serve, repeats=11)
    store.attach_tiering()
    try:
        t_on, out_on = _best_of(serve, repeats=11)
    finally:
        store._tiering = None

    assert np.array_equal(out_off, out_on), "idle tiering changed results"
    ratio = t_on / t_off if t_off else float("inf")
    limit = 1.0 + limit_fraction
    print(
        f"tiering attached idle: {t_on*1e3:.1f} ms vs detached "
        f"{t_off*1e3:.1f} ms ({(ratio - 1) * 100:+.1f}%; limit +{limit_fraction:.0%})"
    )
    if ratio > limit:
        print(
            f"FAIL: idle tiering costs {ratio:.3f}x the detached serve "
            f"(limit {limit:.2f}x)"
        )
        return False
    return True


def _check_kernel_dispatch_overhead(sizes, limit_fraction: float = 0.02) -> bool:
    """Kernel tier dispatch must be ~free when no backend is used.

    Serves the same ``sls_many`` batch (best of 9, back to back in this
    process) under two states:

    * tier pinned to ``numpy`` — every dispatch site pays one
      module-global read that returns ``None`` and falls through to the
      NumPy tier (what an explicit ``SECNDP_KERNEL_TIER=numpy`` costs on
      a host that *does* have a compiled backend);
    * the degraded state — the backend module list emptied out so the
      ``auto`` probe fails and resolves to ``numpy`` (what a host with
      no numba and no C compiler serves with, after the single
      ``kernel.native_unavailable`` counter bump).

    The degraded serve must stay within ``limit_fraction`` (2%) of the
    pinned serve and produce bit-identical results: graceful degradation
    is a policy decision made once at resolve time, never a per-call
    cost on the portable tier.  The two states are interleaved per round
    and judged by the median of paired ratios (the estimator
    ``_check_obs_overhead`` uses) so correlated scheduler drift on noisy
    runners does not read as phantom overhead.
    """
    import numpy as np

    from bench_hotpaths import KEY
    from repro.core.params import SecNDPParams
    from repro.core.protocol import SecNDPProcessor, UntrustedNdpDevice
    from repro.workloads.secure_sls import SecureEmbeddingStore

    params = SecNDPParams(element_bits=32)
    store = SecureEmbeddingStore(
        SecNDPProcessor(KEY, params), UntrustedNdpDevice(params), quantization="table"
    )
    rng = np.random.default_rng(19)
    n_rows = min(sizes["n_rows"], 2_048)
    store.add_table("emb", rng.normal(size=(n_rows, sizes["dim"])))
    pf = min(sizes["pf"], store.max_pooling_factor("emb"))
    batch_rows = [
        list(rng.integers(0, min(2 * pf, n_rows), size=pf))
        for _ in range(sizes["batch"] * 2)
    ]
    serve = lambda: store.sls_many("emb", batch_rows)  # noqa: E731
    serve()  # warm the OTP pad cache so no state favours either config

    saved_modules = kernels._BACKEND_MODULES

    def enter_state(state):
        kernels._reset_for_tests()
        kernels._BACKEND_MODULES = (
            saved_modules if state == "numpy" else ("_no_such_backend",)
        )
        # Explicit numpy pin vs failed auto probe: both serve from the
        # NumPy tier; only the resolve-time path differs.
        kernels.set_tier("numpy" if state == "numpy" else "auto")

    outs = {}
    rounds = {"numpy": [], "degraded": []}
    try:
        order = ["numpy", "degraded"]
        for round_no in range(41):
            for state in order[round_no % 2:] + order[: round_no % 2]:
                enter_state(state)
                t0 = time.perf_counter()
                outs[state] = serve()
                rounds[state].append(time.perf_counter() - t0)
    finally:
        kernels._BACKEND_MODULES = saved_modules
        kernels._reset_for_tests()

    assert np.array_equal(outs["numpy"], outs["degraded"]), (
        "degraded tier changed results"
    )
    ratios = sorted(
        t / base for t, base in zip(rounds["degraded"], rounds["numpy"])
    )
    ratio = ratios[len(ratios) // 2]
    limit = 1.0 + limit_fraction
    print(
        f"kernel tier degraded: best {min(rounds['degraded'])*1e3:.1f} ms vs "
        f"numpy-pinned {min(rounds['numpy'])*1e3:.1f} ms (paired median "
        f"{(ratio - 1) * 100:+.1f}%; limit +{limit_fraction:.0%})"
    )
    if ratio > limit:
        print(
            f"FAIL: degraded kernel dispatch costs {ratio:.3f}x the "
            f"numpy-pinned serve (limit {limit:.2f}x)"
        )
        return False
    return True


def _check_obs_overhead(sizes, limit_fraction: float = 0.02) -> bool:
    """Telemetry must be ~free when fully disabled, and silent when healthy.

    Serves the same ``sls_many`` batch (best of 9, back to back in this
    process) under three telemetry states:

    * everything off — no metrics registry, no event log (the production
      default: every hot-path site is one module-global load plus an
      is-None/bool check);
    * audit events enabled with an in-memory ring — the emission sites
      only fire on the recovery ladder, so a healthy serve must emit
      *zero* events and pay nothing beyond the gate;
    * audit events journaling to a JSONL sink — same healthy-path
      expectation with the file handle open.

    Both enabled states must stay within ``limit_fraction`` (2%) of the
    fully-disabled serve, results must stay bit-identical, and the event
    log must come back empty.
    """
    import tempfile

    import numpy as np

    from bench_hotpaths import KEY
    from repro.core.params import SecNDPParams
    from repro.core.protocol import SecNDPProcessor, UntrustedNdpDevice
    from repro.workloads.secure_sls import SecureEmbeddingStore

    params = SecNDPParams(element_bits=32)
    store = SecureEmbeddingStore(
        SecNDPProcessor(KEY, params), UntrustedNdpDevice(params), quantization="table"
    )
    rng = np.random.default_rng(17)
    n_rows = min(sizes["n_rows"], 2_048)
    store.add_table("emb", rng.normal(size=(n_rows, sizes["dim"])))
    pf = min(sizes["pf"], store.max_pooling_factor("emb"))
    batch_rows = [
        list(rng.integers(0, min(2 * pf, n_rows), size=pf))
        for _ in range(sizes["batch"] * 2)
    ]
    serve = lambda: store.sls_many("emb", batch_rows)  # noqa: E731
    serve()  # warm the OTP pad cache so no state favours either config

    obs.disable()
    obs.disable_events()

    # Interleave the three states within each round and rotate their
    # order per round, then judge each enabled state by the *median of
    # its per-round ratios* against that same round's disabled serve.
    # Paired ratios cancel the correlated frequency/thermal drift that a
    # global best-of comparison turns into phantom overhead on noisy
    # runners; the median shrugs off individual descheduled rounds.
    outs = {}
    counts = {"ring": 0, "sink": 0}

    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    def measure_all():
        rounds = {"off": [], "ring": [], "sink": []}
        with tempfile.TemporaryDirectory() as tmp:
            sink_path = Path(tmp) / "audit.jsonl"

            def measure(state):
                log = None
                if state == "ring":
                    log = obs.enable_events()
                elif state == "sink":
                    log = obs.enable_events(sink_path)
                try:
                    t0 = time.perf_counter()
                    outs[state] = serve()
                    rounds[state].append(time.perf_counter() - t0)
                    if log is not None:
                        counts[state] += log.total
                finally:
                    if log is not None:
                        obs.disable_events()

            order = ["off", "ring", "sink"]
            for round_no in range(41):
                for state in order[round_no % 3:] + order[: round_no % 3]:
                    measure(state)
        ratios = {
            state: median(
                [t / base for t, base in zip(rounds[state], rounds["off"])]
            )
            for state in ("ring", "sink")
        }
        return rounds, ratios

    rounds, ratios = measure_all()
    if any(r > 1.0 + limit_fraction for r in ratios.values()):
        # The median-of-paired-ratios estimator still carries ~+-1.5%
        # noise on busy runners; a genuine regression breaches twice in a
        # row, noise essentially never does.  Keep the better estimate.
        rounds2, ratios2 = measure_all()
        for state in ratios:
            if ratios2[state] < ratios[state]:
                ratios[state] = ratios2[state]
                rounds[state] = rounds2[state]
        rounds["off"] = min([rounds["off"], rounds2["off"]], key=min)

    t_off = min(rounds["off"])
    out_off, out_ring, out_sink = outs["off"], outs["ring"], outs["sink"]
    ring_events, sink_events = counts["ring"], counts["sink"]

    assert np.array_equal(out_off, out_ring), "event ring changed results"
    assert np.array_equal(out_off, out_sink), "event journal changed results"

    ok = True
    if ring_events or sink_events:
        print(
            f"FAIL: healthy serve emitted audit events "
            f"(ring={ring_events}, journal={sink_events}); expected none"
        )
        ok = False

    limit = 1.0 + limit_fraction
    for label, state in (("ring enabled", "ring"), ("journal enabled", "sink")):
        ratio = ratios[state]
        print(
            f"obs events {label}: best {min(rounds[state])*1e3:.1f} ms vs "
            f"disabled {t_off*1e3:.1f} ms (paired median "
            f"{(ratio - 1) * 100:+.1f}%; limit +{limit_fraction:.0%})"
        )
        if ratio > limit:
            print(
                f"FAIL: telemetry ({label}) costs {ratio:.3f}x the "
                f"fully-disabled serve (limit {limit:.2f}x)"
            )
            ok = False
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(_REPO / "BENCH_hotpaths.json"),
        help="committed benchmark trajectory file (default: repo root)",
    )
    parser.add_argument("--scale", default="smoke", choices=sorted(_SIZES))
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional regression vs the recorded wall time",
    )
    args = parser.parse_args(argv)

    sizes = _SIZES[args.scale]

    obs.disable()
    measured = _run_sections(sizes)

    obs.get_registry().reset()
    obs.enable()
    try:
        enabled_wall = _run_sections(sizes)
    finally:
        obs.disable()
        obs.get_registry().reset()
    ratio = enabled_wall / measured if measured else float("inf")
    print(
        f"metrics-off wall: {measured:.3f}s; metrics-on wall: "
        f"{enabled_wall:.3f}s ({(ratio - 1) * 100:+.1f}% when enabled)"
    )

    if not _check_workers0_envelope(sizes, args.tolerance):
        return 1

    if not _check_fault_hook_overhead(sizes):
        return 1

    if not _check_tiering_overhead(sizes):
        return 1

    if not _check_kernel_dispatch_overhead(sizes):
        return 1

    if not _check_obs_overhead(sizes):
        return 1

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return 0
    try:
        recorded = json.loads(baseline_path.read_text())
    except ValueError:
        print(f"unreadable baseline {baseline_path}; skipping regression check")
        return 0
    entry = recorded.get(args.scale, {})
    baseline_wall = entry.get("wall_seconds")
    if baseline_wall is None:
        print(
            f"baseline has no wall_seconds for scale {args.scale!r}; "
            "skipping regression check"
        )
        return 0

    limit = baseline_wall * (1.0 + args.tolerance)
    print(
        f"baseline wall ({args.scale}): {baseline_wall:.3f}s; "
        f"limit: {limit:.3f}s"
    )
    if measured > limit:
        print(
            f"FAIL: metrics-off wall time {measured:.3f}s exceeds "
            f"{limit:.3f}s (baseline +{args.tolerance:.0%})"
        )
        return 1
    print("OK: metrics-off wall time within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
