"""Benchmark: regenerate Figure 10 (% decryption-bound incl. verification).

Paper shape at rank=8/reg=8: verified schemes need more AES engines than
Enc-only (tag pads add OTP blocks), with Ver-ECC the hungriest among the
line-neutral schemes; all curves fall monotonically with engine count.
"""

from __future__ import annotations

from repro.harness.experiments import run_figure10


def test_figure10(benchmark, scale):
    result = benchmark.pedantic(run_figure10, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())

    for family, per_scheme in result.fractions.items():
        for series in per_scheme.values():
            assert series == sorted(series, reverse=True), family

    f32 = result.fractions["SLS 32-bit"]
    assert sum(f32["ver_ecc"]) >= sum(f32["enc_only"])
    # quantized family has no Ver-ECC entry
    assert "ver_ecc" not in result.fractions["SLS 8-bit quantized"]
    # everything is covered at the top of the sweep
    for per_scheme in result.fractions.values():
        for series in per_scheme.values():
            assert series[-1] < 0.1
