"""Benchmark: serving throughput through the asyncio batching front-end.

The first component where throughput (QPS), not per-call latency, is the
committed metric (DESIGN.md Sec. 15).  Three sections:

1. **throughput** — the 200-query Zipfian production trace served
   sequentially (one ``store.sls`` per query) vs coalesced through the
   :class:`~repro.serve.scheduler.BatchScheduler` (concurrent in-process
   submissions collapsing into amortized ``sls_many`` batches).  Each
   leg gets its own freshly built store (same key/seed → identical
   ciphertext) so warm caches never flatter the coalesced number, and
   results are asserted bit-identical element-for-element.  Acceptance:
   coalesced >= 2x sequential per-query QPS at the default scale
   (>= 1.5x at smoke).
2. **overload** — a burst past the admission queue cap must shed with
   typed ``overloaded`` responses (> 0) while the served requests' p99
   stays inside the SLO (burn rate <= 1).
3. **tcp** — the same queries over real TCP frames with concurrent
   clients, bit-identity gated (smoke-level: correctness of the wire
   path, not a perf claim).

The committed baseline runs pinned to the NumPy kernel tier
(``kernels.use_tier("numpy")``, matching BENCH_hotpaths.json's
convention) so the numbers stay host-comparable; on hosts with a
compiled backend the native-tier throughput is recorded as a separate
non-gating ``native`` entry.  Results are printed and merged into
``BENCH_serve.json`` at the repo root.  Scale via ``SECNDP_BENCH_SCALE``
(smoke / default / paper).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import kernels
from repro.serve.bench import (
    SIZES,
    run_overload_scenario,
    run_serve_bench,
    run_tcp_smoke,
)

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: Coalescing cap for the committed baseline; matches the CLI default.
MAX_BATCH = 64


def test_serve(scale):
    sizes = SIZES.get(scale.name, SIZES["default"])
    with kernels.use_tier("numpy"):
        kernels.warmup()  # resolve the tier outside any timed region
        wall_start = time.perf_counter()
        report = {
            "scale": scale.name,
            "throughput": run_serve_bench(
                sizes["n_rows"],
                sizes["dim"],
                sizes["n_queries"],
                tuple(sizes["pf_range"]),
                max_batch=MAX_BATCH,
            ),
            "overload": run_overload_scenario(),
        }
        report["wall_seconds"] = time.perf_counter() - wall_start
        report["tcp"] = run_tcp_smoke()

    # Native-tier entry: recorded for the trajectory, never gating — the
    # NumPy tier is the portable contract, the compiled tier a bonus.
    if kernels.native_available():
        with kernels.use_tier("native"):
            kernels.warmup()
            native = run_serve_bench(
                sizes["n_rows"],
                sizes["dim"],
                sizes["n_queries"],
                tuple(sizes["pf_range"]),
                max_batch=MAX_BATCH,
            )
        native["backend"] = kernels.backend_name()
        report["native"] = native
    else:
        report["native"] = {
            "native_available": False,
            "unavailable_reason": kernels.unavailable_reason(),
        }

    tp = report["throughput"]
    print()
    print(
        f"serve throughput ({tp['queries']} queries, table {tp['table_rows']}x"
        f"{tp['dim']}, max_batch={tp['max_batch']}): sequential "
        f"{tp['sequential_qps']:.0f} qps, coalesced {tp['coalesced_qps']:.0f} "
        f"qps -> {tp['qps_speedup']:.2f}x ({tp['batches']} batches, fill "
        f"{tp['mean_batch_fill']:.1f}, dedupe {tp['dedupe_ratio']:.2f}, "
        f"bit-identical)"
    )
    ov = report["overload"]
    print(
        f"overload: burst {ov['burst']} vs queue cap {ov['max_queue']} -> "
        f"{ov['served_ok']} served, {ov['overloaded']} typed overloaded, "
        f"burn {ov['burn_rate']:.2f} ({ov['slo']}), p99 within SLO: "
        f"{ov['p99_within_slo']}"
    )
    tcp = report["tcp"]
    print(
        f"tcp smoke: {tcp['queries']} queries / {tcp['clients']} clients -> "
        f"{tcp['qps']:.0f} qps over the wire ({tcp['batches']} batches, "
        f"bit-identical)"
    )
    nat = report["native"]
    if "qps_speedup" in nat:
        print(
            f"native tier [{nat['backend']}] (non-gating): sequential "
            f"{nat['sequential_qps']:.0f} qps, coalesced "
            f"{nat['coalesced_qps']:.0f} qps -> {nat['qps_speedup']:.2f}x"
        )
    else:
        print(f"native tier: unavailable ({nat.get('unavailable_reason')})")

    # Perf trajectory file: one entry per scale, overwritten in place.
    existing = {}
    if _JSON_PATH.exists():
        try:
            existing = json.loads(_JSON_PATH.read_text())
        except ValueError:
            existing = {}
    existing[scale.name] = report
    _JSON_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    # PR 9 acceptance: coalesced serving >= 2x sequential per-query QPS
    # on the Zipfian trace at the default scale (>= 1.5x at smoke, where
    # the smaller table gives the amortized union less to dedupe),
    # bit-identical results (asserted inside run_serve_bench), and
    # admission control demonstrably shedding within SLO under overload.
    floor = 1.5 if scale.name == "smoke" else 2.0
    assert tp["qps_speedup"] >= floor, (
        f"coalesced speedup {tp['qps_speedup']:.2f}x below the {floor}x floor"
    )
    assert tp["bit_identical"]
    assert ov["overloaded"] > 0
    assert ov["p99_within_slo"]
    assert tcp["bit_identical"]
