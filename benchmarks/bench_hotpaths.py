"""Benchmark: scalar vs vectorized hot paths (tags, OTPs, end-to-end SLS).

The verification layer lives in GF(2^127-1); this bench tracks the three
paths the limb-vectorized field (`repro.crypto.limb_field`) accelerates:

1. **matrix_tags** — per-row Alg. 2 tags for an ``n x m`` matrix,
   scalar Python-int Horner vs the one-sweep limb dot.  Acceptance:
   >= 5x at the default scale's 10k x 64 matrix, bit-identical output.
2. **OTP generation** — scattered pad elements for an SLS query,
   one AES call per element (the old path) vs block-deduped + LRU-cached.
3. **end-to-end SLS** — a batch of verified queries served one at a time
   vs through the amortized ``sls_many`` path.

The legacy sections above run pinned to the NumPy kernel tier
(``kernels.use_tier("numpy")``) so their committed wall-time baselines
and speedup floors stay comparable across hosts with and without a
compiled backend.  The **kernels** section then measures the compiled
tier itself (limb dot sweep, bulk AES, Horner) against the NumPy tier,
with JIT/compile warmup paid explicitly via ``kernels.warmup()`` before
any timed region and bit-identity asserted against both the NumPy tier
and the scalar ``PrimeField`` oracle.

Results are printed and appended to ``BENCH_hotpaths.json`` at the repo
root so later PRs can track the perf trajectory.  Scale via
``SECNDP_BENCH_SCALE`` (smoke / default / paper); at paper scale the
scalar tag path is measured on a row slice and extrapolated linearly.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import kernels, obs
from repro.core.checksum import LinearChecksum
from repro.core.params import SecNDPParams
from repro.core.protocol import SecNDPProcessor, UntrustedNdpDevice
from repro.crypto.aes import BLOCK_BYTES
from repro.crypto.tweaked import DOMAIN_DATA
from repro.parallel import ParallelSlsEngine
from repro.workloads.secure_sls import SecureEmbeddingStore

KEY = bytes(range(16))
_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"

#: Per-scale sizes: (tag-matrix rows, columns, pooling factor, batch,
#: scalar measurement row cap — None means measure the full matrix).
_SIZES = {
    "smoke": dict(n_rows=2_000, dim=64, pf=40, batch=8, scalar_cap=None),
    "default": dict(n_rows=10_000, dim=64, pf=80, batch=16, scalar_cap=None),
    "paper": dict(n_rows=50_000, dim=64, pf=80, batch=64, scalar_cap=5_000),
}


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_matrix_tags(sizes) -> dict:
    """Scalar per-row Horner vs limb-vectorized sweep, same outputs."""
    params = SecNDPParams(element_bits=8)
    checksum = LinearChecksum(params.cipher(KEY), params)
    rng = np.random.default_rng(0)
    n, m = sizes["n_rows"], sizes["dim"]
    matrix = rng.integers(0, 256, size=(n, m), dtype=np.uint64)
    s = checksum.secret_point(0x100000, 1)

    t_vec, tags_vec = _best_of(lambda: checksum.row_tags(matrix, s))

    cap = sizes["scalar_cap"] or n
    cap = min(cap, n)
    t0 = time.perf_counter()
    tags_scalar = [checksum.row_tag(row, s) for row in matrix[:cap]]
    t_scalar = (time.perf_counter() - t0) * (n / cap)

    assert tags_vec[:cap] == tags_scalar, "vectorized tags diverge from scalar"
    return {
        "n_rows": n,
        "dim": m,
        "scalar_seconds": t_scalar,
        "scalar_extrapolated": cap < n,
        "vectorized_seconds": t_vec,
        "speedup": t_scalar / t_vec,
    }


def _bench_otp(sizes) -> dict:
    """Per-element AES (old path) vs block-deduped + cached generation."""
    params = SecNDPParams(element_bits=8)
    processor = SecNDPProcessor(KEY, params)
    otp = processor.encryptor.otp
    ring = processor.ring
    elem_bytes = params.element_bytes
    rng = np.random.default_rng(1)

    # Element addresses of an SLS query: pf rows x dim contiguous elements.
    pf, m = sizes["pf"], sizes["dim"]
    rows = rng.integers(0, sizes["n_rows"], size=pf)
    row_bytes = m * elem_bytes
    addrs = (
        0x100000
        + rows[:, None].astype(np.uint64) * np.uint64(row_bytes)
        + np.arange(m, dtype=np.uint64)[None, :] * np.uint64(elem_bytes)
    ).reshape(-1)

    def nodedupe():
        # The pre-dedupe implementation: one cipher call per element.
        block_addrs = (addrs // BLOCK_BYTES) * BLOCK_BYTES
        idx = ((addrs % BLOCK_BYTES) // elem_bytes).astype(np.intp)
        pads = otp.cipher.encrypt_counters(DOMAIN_DATA, block_addrs, 1)
        elems = pads.reshape(-1).view(ring.dtype).reshape(
            len(addrs), otp.elements_per_block
        )
        return elems[np.arange(len(addrs)), idx]

    t_old, pads_old = _best_of(nodedupe)

    otp.clear_cache()
    t_cold, pads_new = _best_of(lambda: otp.pad_elements_at(addrs, 1), repeats=1)
    t_warm, pads_warm = _best_of(lambda: otp.pad_elements_at(addrs, 1))

    assert np.array_equal(pads_old, pads_new), "deduped pads diverge"
    assert np.array_equal(pads_old, pads_warm), "cached pads diverge"
    unique_blocks = len(np.unique((addrs // BLOCK_BYTES)))
    return {
        "elements": int(len(addrs)),
        "aes_blocks_old": int(len(addrs)),
        "aes_blocks_deduped": unique_blocks,
        "per_element_seconds": t_old,
        "deduped_cold_seconds": t_cold,
        "deduped_warm_seconds": t_warm,
        "speedup_cold": t_old / t_cold,
        "speedup_warm": t_old / t_warm,
    }


def _bench_sls(sizes) -> dict:
    """Per-query verified SLS loop vs the amortized batched entry point.

    8-bit quantized values pooled in a 32-bit ring (the paper's SLS
    configuration: overflow budget `PF * max(a) * max(q) < 2^w_e`).
    """
    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(KEY, params)
    device = UntrustedNdpDevice(params)
    store = SecureEmbeddingStore(processor, device, quantization="table")
    rng = np.random.default_rng(2)
    n_rows = min(sizes["n_rows"], 4_096)
    store.add_table("emb", rng.normal(size=(n_rows, sizes["dim"])))

    pf = min(sizes["pf"], store.max_pooling_factor("emb"))
    batch = sizes["batch"]
    # Production SLS traffic is skewed; draw from a hot subset so the
    # batch's queries overlap rows (what sls_many amortizes).
    hot = max(2 * pf, 64)
    batch_rows = [list(rng.integers(0, min(hot, n_rows), size=pf)) for _ in range(batch)]

    def sequential():
        return [store.sls("emb", rows) for rows in batch_rows]

    def batched():
        return store.sls_many("emb", batch_rows)

    t_seq, out_seq = _best_of(sequential, repeats=2)
    t_bat, out_bat = _best_of(batched, repeats=2)
    assert np.allclose(np.asarray(out_seq), out_bat), "batched SLS diverges"
    return {
        "table_rows": n_rows,
        "dim": sizes["dim"],
        "pooling_factor": int(pf),
        "batch": batch,
        "sequential_seconds": t_seq,
        "batched_seconds": t_bat,
        "speedup": t_seq / t_bat,
    }


def _bench_parallel(sizes) -> dict:
    """Sequential loop vs in-process batch vs the sharded worker pool.

    Serving-engine scenario (DESIGN.md Sec. 10): the same verified SLS
    batch as ``_bench_sls`` but larger (a serving engine aggregates more
    concurrent queries), served three ways - per-query ``sls`` loop,
    in-process ``sls_many``, and ``ParallelSlsEngine`` with 4 workers
    over shared-memory arenas.  Pool startup (spawn + arena export) is
    timed separately: it is a one-time cost amortized over the serving
    lifetime, not part of the steady-state per-batch latency.
    """
    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(KEY, params)
    device = UntrustedNdpDevice(params)
    store = SecureEmbeddingStore(processor, device, quantization="table")
    rng = np.random.default_rng(4)
    n_rows = min(sizes["n_rows"], 4_096)
    store.add_table("emb", rng.normal(size=(n_rows, sizes["dim"])))

    pf = min(sizes["pf"], store.max_pooling_factor("emb"))
    batch = sizes["batch"] * 4
    hot = max(2 * pf, 64)
    batch_rows = [list(rng.integers(0, min(hot, n_rows), size=pf)) for _ in range(batch)]

    t_seq, out_seq = _best_of(
        lambda: np.asarray([store.sls("emb", rows) for rows in batch_rows]), repeats=2
    )
    t_inp, out_inp = _best_of(lambda: store.sls_many("emb", batch_rows), repeats=2)

    requested = 4
    t0 = time.perf_counter()
    engine = ParallelSlsEngine(store, workers=requested)
    startup = time.perf_counter() - t0
    try:
        effective = engine.workers
        # Steady-state serving latency: the first rounds also warm each
        # worker's private OTP pad cache (workers pick tasks off a shared
        # queue, so which worker serves a given round rotates); the
        # warm-up spins are charged to startup, not to the per-batch time.
        t0 = time.perf_counter()
        for _ in range(2):
            engine.sls_many("emb", batch_rows)
        startup += time.perf_counter() - t0
        t_par, out_par = _best_of(lambda: engine.sls_many("emb", batch_rows), repeats=6)
    finally:
        engine.close()

    # Bit-identity is the acceptance bar: the sharded partial sums live in
    # modular rings/fields, so recombination must be *exact*, not close.
    assert np.array_equal(out_inp, out_par), "parallel SLS diverges from in-process"
    assert np.array_equal(out_seq, out_par), "parallel SLS diverges from sequential"
    return {
        "table_rows": n_rows,
        "dim": sizes["dim"],
        "pooling_factor": int(pf),
        "batch": batch,
        "workers_requested": requested,
        "workers_effective": int(effective),
        "cpu_count": os.cpu_count() or 1,
        "pool_startup_seconds": startup,
        "sequential_seconds": t_seq,
        "inprocess_seconds": t_inp,
        "parallel_seconds": t_par,
        "speedup_vs_sequential": t_seq / t_par,
        "speedup_vs_inprocess": t_inp / t_par,
    }


def _bench_tiering(sizes) -> dict:
    """Hot-row tiering: prewarm-on vs prewarm-off over a Zipfian trace.

    The tiering claim (DESIGN.md Sec. 12): on skewed production traffic,
    seeding the access tracker, sizing the pad caches to the hot-set
    footprint, and pre-generating hot-row OTP/tag pads makes the p50
    query latency beat an untiered store whose default-sized block cache
    thrashes.  Four legs, all bit-exactness-gated:

    1. baseline vs tiered per-query serve over the same 200-query
       ``production_trace`` (the p50/p95 speedup numbers);
    2. hot-set-only queries after prewarm must hit the row-level and
       tag-pad LRUs at >= 0.9;
    3. the same trace through a 2-worker ``ParallelSlsEngine`` (hot set
       broadcast at pool spawn) must match bit-for-bit;
    4. a mid-trace ``reencrypt_table`` must purge every pad keyed by the
       retired versions (zero stale entries) and still serve bit-exactly
       after re-warming under the bumped versions.

    Operating points are measured, not aspirational: the table must be
    large enough that its block working set exceeds the default OTP
    cache (8192 rows x 16 blocks/row at default/paper), else the
    baseline never thrashes and tiering has nothing to win.  At smoke
    (2000 rows) the working set barely spills, so the PF range drops to
    (40, 80) and the floor relaxes to 1.1x.
    """
    from repro.faults import RecoveryPolicy
    from repro.tiering import TieringConfig
    from repro.workloads.traces import production_trace

    params = SecNDPParams(element_bits=32)
    smoke = sizes["n_rows"] <= _SIZES["smoke"]["n_rows"]
    n_rows = min(sizes["n_rows"], 2_000 if smoke else 8_192)
    dim = sizes["dim"]
    pf_range = (40, 80) if smoke else (60, 100)
    n_queries = 200
    trace = production_trace(
        n_rows,
        n_queries,
        pf_range=pf_range,
        hot_fraction=0.05,
        hot_probability=0.9,
        seed=11,
    )
    queries = [
        ([int(r) for r in ix], [int(w) for w in ws])
        for ix, ws in zip(trace.indices, trace.weights)
    ]
    config = TieringConfig(hot_fraction=0.1)

    def build(recovery=False):
        processor = SecNDPProcessor(KEY, params)
        device = UntrustedNdpDevice(params)
        policy = (
            RecoveryPolicy(backoff_base_s=1e-4, reencrypt_after=None)
            if recovery
            else None
        )
        store = SecureEmbeddingStore(
            processor, device, quantization="table", recovery=policy
        )
        rng = np.random.default_rng(6)
        store.add_table("emb", rng.normal(size=(n_rows, dim)))
        return store

    def serve(store, qs):
        lat = np.empty(len(qs))
        out = np.empty((len(qs), dim))
        for i, (rows, ws) in enumerate(qs):
            t0 = time.perf_counter()
            out[i] = store.sls("emb", rows, ws)
            lat[i] = time.perf_counter() - t0
        return lat, out

    # Leg 1: baseline (default caches, no tracker) vs prewarmed tiering.
    baseline = build()
    lat_base, out_base = serve(baseline, queries)

    tiered = build()
    tiering = tiered.attach_tiering(config)
    tiering.seed_from_trace("emb", trace)
    cache_blocks, tag_cache_rows = tiering.apply_sizing()
    prewarmed = tiering.prewarm_now()
    coverage = tiering.coverage("emb")
    lat_tier, out_tier = serve(tiered, queries)
    assert np.array_equal(out_base, out_tier), "tiered SLS diverges from baseline"

    # Leg 2: hot-set-only queries must be served from the prewarmed
    # row/tag LRUs.  (The block-level cache no longer sees hot rows at
    # all - the row cache short-circuits it - so it is not the metric.)
    hot = tiering.hot_rows("emb")
    enc = tiered.processor.encryptor
    row0, tag0 = enc.row_cache_info(), tiered.processor.mac.tag_cache_info()
    rng = np.random.default_rng(12)
    for _ in range(20):
        rows = [int(r) for r in rng.choice(hot, size=pf_range[0])]
        tiered.sls("emb", rows)
    row1, tag1 = enc.row_cache_info(), tiered.processor.mac.tag_cache_info()
    hot_hits = (row1.hits - row0.hits) + (tag1.hits - tag0.hits)
    hot_served = hot_hits + (row1.misses - row0.misses) + (tag1.misses - tag0.misses)
    hot_hit_rate = hot_hits / hot_served if hot_served else 0.0

    # Leg 3: the sharded pool replicates the hot set per worker at spawn
    # (tasks land on any worker); partial-sum recombination is modular,
    # so the bar is bit-identity, not closeness.
    engine = ParallelSlsEngine(tiered, workers=2)
    try:
        out_par = engine.sls_many(
            "emb", [rows for rows, _ in queries], [ws for _, ws in queries]
        )
    finally:
        engine.close()
    parallel_ok = bool(np.array_equal(out_par, out_tier))
    assert parallel_ok, "tiered parallel SLS diverges"

    # Leg 4: re-encryption mid-trace.  Pads are keyed (version, addr) so
    # retired entries are unreachable by construction; the invalidation
    # hook must also purge them (capacity hygiene) and reset coverage.
    re_store = build(recovery=True)
    re_tier = re_store.attach_tiering(config)
    re_tier.seed_from_trace("emb", trace)
    re_tier.apply_sizing()
    re_tier.prewarm_now()
    half = n_queries // 2
    _, out_a = serve(re_store, queries[:half])
    old = re_store.device.stored("emb")
    old_data, old_tag = old.version, old.tag_version
    re_store.reencrypt_table("emb")
    stale = (
        sum(1 for k in re_store.processor.encryptor.otp._block_cache if k[0] == old_data)
        + sum(1 for k in re_store.processor.encryptor._row_cache if k[0] == old_data)
        + sum(1 for k in re_store.processor.mac._tag_cache if k[0] == old_tag)
    )
    post_coverage = re_tier.coverage("emb")
    re_tier.prewarm_now()  # re-warm under the bumped versions
    _, out_b = serve(re_store, queries[half:])
    reencrypt_ok = bool(
        np.array_equal(np.concatenate([out_a, out_b]), out_base)
    )
    assert reencrypt_ok, "post-re-encryption serve diverges"
    assert stale == 0, f"{stale} stale pad entries survived invalidation"
    assert post_coverage == 0.0, "coverage did not reset on re-encryption"

    p50 = float(np.percentile(lat_base, 50)) / float(np.percentile(lat_tier, 50))
    p95 = float(np.percentile(lat_base, 95)) / float(np.percentile(lat_tier, 95))
    return {
        "table_rows": n_rows,
        "dim": dim,
        "queries": n_queries,
        "pf_range": list(pf_range),
        "trace_hot_fraction": 0.05,
        "trace_hot_probability": 0.9,
        "hot_rows": int(hot.size),
        "cache_blocks": int(cache_blocks),
        "tag_cache_rows": int(tag_cache_rows),
        "prewarmed_rows": int(prewarmed),
        "prewarm_coverage": float(coverage),
        "baseline_p50_ms": float(np.percentile(lat_base, 50)) * 1e3,
        "prewarm_p50_ms": float(np.percentile(lat_tier, 50)) * 1e3,
        "baseline_p95_ms": float(np.percentile(lat_base, 95)) * 1e3,
        "prewarm_p95_ms": float(np.percentile(lat_tier, 95)) * 1e3,
        "p50_speedup": p50,
        "p95_speedup": p95,
        "mean_speedup": float(lat_base.mean() / lat_tier.mean()),
        "hot_set_hit_rate": float(hot_hit_rate),
        "parallel_bit_identical": parallel_ok,
        "reencrypt_bit_identical": reencrypt_ok,
        "stale_pad_keys_after_purge": int(stale),
    }


def _bench_obs(sizes) -> dict:
    """Telemetry layer: histogram observe/merge and audit-event emit cost.

    Three measurements back the observability tentpole's claims:

    1. **observe** — per-call cost of recording into the log-bucketed
       histogram with metrics enabled, against the disabled module-gate
       no-op (the production default the <2% overhead guard pins);
    2. **merge** — cost of folding 4 worker snapshots (JSON round-trip
       included, the exact engine pathway) into a parent registry, with
       bit-identity to a single registry that saw every observation
       asserted, not assumed;
    3. **emit** — security-event append rate into the in-memory ring,
       against the disabled ``emit_event`` no-op.
    """
    from repro.obs.metrics import MetricsRegistry

    n = 100_000
    reg = MetricsRegistry()
    t0 = time.perf_counter()
    for i in range(n):
        reg.observe_ns("bench.t", i)
    t_observe = time.perf_counter() - t0

    obs.disable()
    t0 = time.perf_counter()
    for i in range(n):
        obs.observe_ns("bench.t", i)
    t_gated = time.perf_counter() - t0

    shards = [MetricsRegistry() for _ in range(4)]
    for i in range(n):
        shards[i % 4].observe_ns("bench.t", i)
    snaps = [json.loads(json.dumps(s.snapshot(include_samples=True))) for s in shards]
    merged = MetricsRegistry()
    t0 = time.perf_counter()
    for snap in snaps:
        merged.merge(snap)
    t_merge = time.perf_counter() - t0
    single = reg.snapshot(include_samples=True)["timers"]["bench.t"]
    combined = merged.snapshot(include_samples=True)["timers"]["bench.t"]
    exact_merge = bool(combined == single)
    assert exact_merge, "merged worker histograms diverge from single-process"

    n_ev = 20_000
    log = obs.enable_events()
    t0 = time.perf_counter()
    for i in range(n_ev):
        log.emit(obs.VERIFY_FAILURE, table="bench", rows=[i])
    t_emit = time.perf_counter() - t0
    emitted = log.total
    obs.disable_events()
    assert emitted == n_ev, "event ring lost emissions"

    t0 = time.perf_counter()
    for i in range(n_ev):
        obs.emit_event(obs.VERIFY_FAILURE, table="bench", rows=[i])
    t_emit_gated = time.perf_counter() - t0

    return {
        "observations": n,
        "observe_ns_per_call": t_observe / n * 1e9,
        "observe_disabled_ns_per_call": t_gated / n * 1e9,
        "histogram_buckets": len(single["buckets"]),
        "merge_4way_seconds": t_merge,
        "merge_bit_identical": exact_merge,
        "events": n_ev,
        "emit_ns_per_event": t_emit / n_ev * 1e9,
        "emit_disabled_ns_per_event": t_emit_gated / n_ev * 1e9,
        "emit_events_per_second": n_ev / t_emit if t_emit else float("inf"),
    }


def _bench_kernels(sizes) -> dict:
    """Compiled kernel tier vs the NumPy limb tier, bit-identity gated.

    Three kernel-level measurements (DESIGN.md Sec. 14), each timed with
    ``kernels.warmup()`` already paid so JIT/compile latency never leaks
    into the steady-state numbers:

    1. **dot** — the matrix-tags workload at kernel level: an ``n x m``
       8-bit coefficient sweep against Horner power weights, the inner
       product every row tag reduces to.  Floor: >= 5x over the NumPy
       tier at default/paper (>= 3x at smoke).
    2. **aes** — bulk OTP pad generation: AES-128 over a contiguous run
       of counter blocks.  Floor: >= 3x.
    3. **horner** — per-row Horner evaluation on full-width words (the
       multi-point checksum hot loop); recorded, no floor.

    Outputs are asserted bit-identical to the NumPy tier on the full
    result and to the scalar ``PrimeField`` oracle on a slice.  On hosts
    where no compiled backend resolves (no numba, no C compiler) the
    section records the degradation reason and the floors are skipped —
    the NumPy tier is the contract there, not a perf claim.
    """
    from repro.crypto import limb_field as lf
    from repro.crypto.aes import AES128, aes128_encrypt_blocks
    from repro.crypto.prime_field import MERSENNE_127, PrimeField

    report: dict = {
        "native_available": kernels.native_available(),
        "backend": kernels.backend_name(),
    }
    if not kernels.native_available():
        report["unavailable_reason"] = kernels.unavailable_reason()
        return report

    field = PrimeField(MERSENNE_127)
    rng = np.random.default_rng(5)
    n, m = sizes["n_rows"], sizes["dim"]
    smoke = n <= _SIZES["smoke"]["n_rows"]

    # 1. Limb dot: the kernel under every row tag.  8-bit coefficients
    # keep the compiled path on its vectorized small-coefficient branch,
    # matching what _bench_matrix_tags feeds it end to end.
    coeffs = rng.integers(0, 256, size=(n, m), dtype=np.uint64)
    s = field.pow(0x5EC9D9, 3)
    weights = lf.power_weights(field, s, m)
    with kernels.use_tier("numpy"):
        kernels.warmup()
        t_dot_np, dot_np = _best_of(lambda: lf.dot(coeffs, weights))
    with kernels.use_tier("native"):
        warmup_ns = kernels.warmup()
        t_dot_nat, dot_nat = _best_of(lambda: lf.dot(coeffs, weights))
    dot_identical = bool(np.array_equal(dot_np, dot_nat))
    assert dot_identical, "native dot diverges from NumPy tier"
    w_ints = lf.from_limbs(weights)
    oracle = [
        sum(int(c) * w for c, w in zip(row, w_ints)) % MERSENNE_127
        for row in coeffs[:8]
    ]
    assert lf.from_limbs(dot_nat[:8]) == oracle, "native dot diverges from oracle"

    # 2. Bulk AES: OTP pads for a contiguous counter run (the shape
    # pad_elements_at hands to aes128_encrypt_blocks after dedupe).
    n_blocks = 16_384 if smoke else 65_536
    blocks = np.zeros((n_blocks, 16), dtype=np.uint8)
    ctr = np.arange(n_blocks, dtype=np.uint64)
    blocks[:, 8:] = ctr.byteswap().view(np.uint8).reshape(n_blocks, 8)
    with kernels.use_tier("numpy"):
        t_aes_np, aes_np = _best_of(lambda: aes128_encrypt_blocks(KEY, blocks))
    with kernels.use_tier("native"):
        t_aes_nat, aes_nat = _best_of(lambda: aes128_encrypt_blocks(KEY, blocks))
    aes_identical = bool(np.array_equal(aes_np, aes_nat))
    assert aes_identical, "native AES diverges from NumPy tier"
    assert aes_nat[7].tobytes() == AES128(KEY).encrypt_block(blocks[7].tobytes())

    # 3. Horner on full-width words (multi-point checksum inner loop).
    n_h = min(n, 10_000)
    h_matrix = rng.integers(0, 2**64, size=(n_h, m), dtype=np.uint64)
    s_limbs = lf.to_limbs(s)
    with kernels.use_tier("numpy"):
        t_h_np, h_np = _best_of(lambda: lf.horner(h_matrix, s_limbs))
    with kernels.use_tier("native"):
        t_h_nat, h_nat = _best_of(lambda: lf.horner(h_matrix, s_limbs))
    horner_identical = bool(np.array_equal(h_np, h_nat))
    assert horner_identical, "native horner diverges from NumPy tier"

    report.update(
        {
            "warmup_ns": warmup_ns,
            "dot": {
                "n_rows": n,
                "dim": m,
                "numpy_seconds": t_dot_np,
                "native_seconds": t_dot_nat,
                "speedup": t_dot_np / t_dot_nat,
                "bit_identical": dot_identical,
            },
            "aes": {
                "blocks": n_blocks,
                "numpy_seconds": t_aes_np,
                "native_seconds": t_aes_nat,
                "speedup": t_aes_np / t_aes_nat,
                "bit_identical": aes_identical,
            },
            "horner": {
                "n_rows": n_h,
                "dim": m,
                "numpy_seconds": t_h_np,
                "native_seconds": t_h_nat,
                "speedup": t_h_np / t_h_nat,
                "bit_identical": horner_identical,
            },
        }
    )
    return report


def _collect_metrics(sizes) -> dict:
    """Run a small instrumented pass and return the counter snapshot.

    The timed benchmark sections above run with metrics *disabled* (the
    production default); this separate pass enables the registry and
    replays a miniature tag-sweep + SLS batch so the recorded trajectory
    carries per-component attribution (cache hit rates, kernel tiers,
    batch amortization) next to the wall-time totals.
    """
    was_enabled = obs.enabled()
    obs.get_registry().reset()
    obs.enable()
    try:
        params = SecNDPParams(element_bits=32)
        processor = SecNDPProcessor(KEY, params)
        device = UntrustedNdpDevice(params)
        store = SecureEmbeddingStore(processor, device, quantization="table")
        rng = np.random.default_rng(3)
        store.add_table("attr", rng.normal(size=(512, sizes["dim"])))
        pf = min(16, sizes["pf"])
        batch_rows = [
            [int(r) for r in rng.integers(0, 2 * pf, size=pf)] for _ in range(4)
        ]
        store.sls_many("attr", batch_rows)
        store.sls("attr", batch_rows[0])  # repeat: exercises the pad cache
        snapshot = obs.snapshot()
    finally:
        if not was_enabled:
            obs.disable()
        obs.get_registry().reset()
    return snapshot["counters"]


def test_hotpaths(scale):
    sizes = _SIZES.get(scale.name, _SIZES["default"])
    # The legacy sections run pinned to the NumPy tier: their committed
    # baselines (wall_seconds ±10% in check_overhead, the speedup floors
    # below) predate the compiled tier and must stay comparable on hosts
    # both with and without a native backend.  Workers spawned inside the
    # pinned block inherit the numpy tier via the pool-spec broadcast.
    with kernels.use_tier("numpy"):
        kernels.warmup()  # resolve the tier outside any timed region
        wall_start = time.perf_counter()
        report = {
            "scale": scale.name,
            "matrix_tags": _bench_matrix_tags(sizes),
            "otp_generation": _bench_otp(sizes),
            "sls_end_to_end": _bench_sls(sizes),
        }
        # Wall time of the metrics-off benchmark sections: the
        # overhead-guard CI step (benchmarks/check_overhead.py) compares
        # fresh runs to this.  The parallel section is timed after the
        # cut so pool spawn jitter never moves the single-core envelope.
        report["wall_seconds"] = time.perf_counter() - wall_start
        report["parallel"] = _bench_parallel(sizes)
        report["tiering"] = _bench_tiering(sizes)
    report["obs"] = _bench_obs(sizes)
    report["kernels"] = _bench_kernels(sizes)
    report["metrics"] = _collect_metrics(sizes)

    print()
    mt = report["matrix_tags"]
    print(
        f"matrix_tags {mt['n_rows']}x{mt['dim']}: scalar {mt['scalar_seconds']*1e3:.1f} ms"
        f"{' (extrapolated)' if mt['scalar_extrapolated'] else ''}, "
        f"vectorized {mt['vectorized_seconds']*1e3:.1f} ms -> {mt['speedup']:.1f}x"
    )
    ot = report["otp_generation"]
    print(
        f"otp pads ({ot['elements']} elems, {ot['aes_blocks_deduped']} blocks): "
        f"per-element {ot['per_element_seconds']*1e3:.2f} ms, deduped cold "
        f"{ot['deduped_cold_seconds']*1e3:.2f} ms ({ot['speedup_cold']:.1f}x), "
        f"warm {ot['deduped_warm_seconds']*1e3:.2f} ms ({ot['speedup_warm']:.1f}x)"
    )
    sl = report["sls_end_to_end"]
    print(
        f"sls batch={sl['batch']} pf={sl['pooling_factor']}: sequential "
        f"{sl['sequential_seconds']*1e3:.1f} ms, batched {sl['batched_seconds']*1e3:.1f} ms "
        f"-> {sl['speedup']:.2f}x"
    )
    pl = report["parallel"]
    print(
        f"parallel batch={pl['batch']} workers={pl['workers_effective']}/"
        f"{pl['workers_requested']} (cpus={pl['cpu_count']}): sequential "
        f"{pl['sequential_seconds']*1e3:.1f} ms, in-process "
        f"{pl['inprocess_seconds']*1e3:.1f} ms, pool {pl['parallel_seconds']*1e3:.1f} ms "
        f"-> {pl['speedup_vs_sequential']:.2f}x vs sequential "
        f"(startup {pl['pool_startup_seconds']*1e3:.0f} ms, bit-identical)"
    )
    ti = report["tiering"]
    print(
        f"tiering {ti['table_rows']} rows pf={ti['pf_range']}: baseline p50 "
        f"{ti['baseline_p50_ms']:.2f} ms, prewarmed p50 {ti['prewarm_p50_ms']:.2f} ms "
        f"-> {ti['p50_speedup']:.2f}x p50 ({ti['p95_speedup']:.2f}x p95); "
        f"hot set {ti['hot_rows']} rows, coverage {ti['prewarm_coverage']:.2f}, "
        f"hot-set hit rate {ti['hot_set_hit_rate']:.3f}, "
        f"{ti['stale_pad_keys_after_purge']} stale pads after re-encrypt "
        f"(bit-identical incl. workers=2 + mid-trace re-encryption)"
    )
    ob = report["obs"]
    print(
        f"obs: observe {ob['observe_ns_per_call']:.0f} ns/call enabled, "
        f"{ob['observe_disabled_ns_per_call']:.0f} ns gated off; 4-way merge "
        f"{ob['merge_4way_seconds']*1e3:.2f} ms (bit-identical); event emit "
        f"{ob['emit_ns_per_event']:.0f} ns ({ob['emit_events_per_second']:.0f}/s), "
        f"{ob['emit_disabled_ns_per_event']:.0f} ns gated off"
    )
    kz = report["kernels"]
    if kz["native_available"]:
        print(
            f"kernels [{kz['backend']}]: dot {kz['dot']['n_rows']}x{kz['dot']['dim']} "
            f"numpy {kz['dot']['numpy_seconds']*1e3:.2f} ms, native "
            f"{kz['dot']['native_seconds']*1e3:.2f} ms -> {kz['dot']['speedup']:.1f}x; "
            f"aes {kz['aes']['blocks']} blocks {kz['aes']['numpy_seconds']*1e3:.1f} ms "
            f"-> {kz['aes']['native_seconds']*1e3:.1f} ms ({kz['aes']['speedup']:.1f}x); "
            f"horner {kz['horner']['speedup']:.1f}x "
            f"(warmup {kz['warmup_ns']/1e6:.2f} ms, bit-identical)"
        )
    else:
        print(f"kernels: no native backend ({kz.get('unavailable_reason')})")

    # Perf trajectory file: one entry per scale, overwritten in place.
    existing = {}
    if _JSON_PATH.exists():
        try:
            existing = json.loads(_JSON_PATH.read_text())
        except ValueError:
            existing = {}
    existing[scale.name] = report
    _JSON_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    # Acceptance floors (generous margins below measured values so CI
    # noise does not flake): the tentpole claim is the tag sweep.
    if scale.name == "smoke":
        assert mt["speedup"] >= 3.0
    else:
        assert mt["speedup"] >= 5.0
    assert ot["aes_blocks_deduped"] < ot["aes_blocks_old"]
    assert ot["speedup_cold"] > 1.0
    # PR 3 acceptance: the sharded pool serves sls_many >= 2x faster than
    # the per-query sequential path at the default scale (bit-identity is
    # asserted inside _bench_parallel).  Skipped when the engine degraded
    # to in-process (no shared memory / nested pool) - the fallback is
    # correctness-preserving, not a perf claim.
    if scale.name in ("default", "paper") and pl["workers_effective"] > 0:
        assert pl["speedup_vs_sequential"] >= 2.0
    # PR 6 acceptance (hot-row tiering): prewarm-on beats prewarm-off by
    # >= 1.5x p50 on the skewed trace at default/paper, where the table's
    # block working set genuinely exceeds the default OTP cache.  At
    # smoke the working set barely spills, so the floor relaxes.  Hit
    # rate and bit-identity hold at every scale (the exactness asserts
    # live inside _bench_tiering).
    assert ti["p50_speedup"] >= (1.1 if scale.name == "smoke" else 1.5)
    assert ti["hot_set_hit_rate"] >= 0.9
    assert ti["parallel_bit_identical"] and ti["reencrypt_bit_identical"]
    assert ti["stale_pad_keys_after_purge"] == 0
    # PR 7 acceptance (observability): the fleet merge is exact (asserted
    # bit-identical inside _bench_obs) and the disabled module gates stay
    # well below the enabled per-call cost.
    assert ob["merge_bit_identical"]
    assert ob["observe_disabled_ns_per_call"] < ob["observe_ns_per_call"]
    assert ob["emit_disabled_ns_per_event"] < ob["emit_ns_per_event"]
    # PR 8 acceptance (compiled kernel tier): on hosts where a backend
    # resolved, the limb dot sweep beats the NumPy tier >= 5x at the
    # default scale's 10k x 64 matrix (>= 3x at smoke) and bulk AES OTP
    # generation >= 3x, all bit-identical (asserted inside
    # _bench_kernels against the NumPy tier and the scalar oracle).  On
    # hosts with no backend the floors are vacuous by design - the NumPy
    # tier is the portable contract.
    if kz["native_available"]:
        assert kz["dot"]["speedup"] >= (3.0 if scale.name == "smoke" else 5.0)
        assert kz["aes"]["speedup"] >= 3.0
        assert kz["dot"]["bit_identical"] and kz["aes"]["bit_identical"]
        assert kz["horner"]["bit_identical"]
