"""Benchmark configuration.

Each benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md Sec. 4) and prints the rows/series the paper
reports.  ``pytest-benchmark`` wraps the experiment drivers so repeated
runs also give timing statistics for the harness itself.

Scale: benchmarks default to ``DEFAULT_SCALE`` (seconds per experiment);
set ``SECNDP_BENCH_SCALE=smoke`` for CI-fast runs or ``paper`` to attempt
the full-scale configuration.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import DEFAULT_SCALE, PAPER_SCALE, SMOKE_SCALE

_SCALES = {
    "smoke": SMOKE_SCALE,
    "default": DEFAULT_SCALE,
    "paper": PAPER_SCALE,
}


@pytest.fixture(scope="session")
def scale():
    return _SCALES[os.environ.get("SECNDP_BENCH_SCALE", "default")]
