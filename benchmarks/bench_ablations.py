"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper figures - these isolate individual modelling/design decisions:

* ``test_register_sweep``      - NDP_reg pressure (Sec. V: more registers
  let more queries overlap; the paper sweeps this inside Fig. 7)
* ``test_refresh_tax``         - DRAM refresh on/off (validates the
  simulator's ~4.5% duty-factor overhead)
* ``test_packet_overhead``     - sensitivity to per-packet control cost
* ``test_trace_skew``          - uniform vs production-skewed traces
  (row-buffer locality effect on NDP latency)
* ``test_arith_enc_amortisation`` - one-time ArithEnc cost vs per-query
  savings: how many queries until SecNDP breaks even end-to-end
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import run_non_ndp
from repro.harness.experiments.common import build_sls_workload, scaled_config
from repro.memsim import DDR4Timing, DramGeometry, MemoryController
from repro.memsim.address import DecodedAddress
from repro.ndp import AesEngineModel, NdpConfig, NdpSimulator
from repro.ndp.arith_enc import simulate_arith_enc


def _sweep_registers(scale):
    config = scaled_config("RMC1-small", scale)
    workload = build_sls_workload(config, scale)
    times = {}
    for regs in (1, 2, 4, 8, 16):
        run = NdpSimulator(NdpConfig(8, regs)).run(workload)
        times[regs] = run.ndp_only_ns
    return times


def test_register_sweep(benchmark, scale):
    times = benchmark.pedantic(
        _sweep_registers, args=(scale,), rounds=1, iterations=1
    )
    print()
    for regs, ns in times.items():
        print(f"  NDP_reg={regs:2d}: {ns / 1e3:9.1f} us")
    # More registers never hurt, and going 1 -> 8 helps measurably.
    assert times[8] <= times[1]
    assert times[16] <= times[1]


def _refresh_tax():
    decoded = [
        DecodedAddress(0, 0, (i // 128) % 4, 0, i // 512, i % 128)
        for i in range(30_000)
    ]
    timing, geo = DDR4Timing(), DramGeometry()
    on = MemoryController(timing, geo, enable_refresh=True).stream(
        decoded, use_channel_bus=False
    )
    off = MemoryController(timing, geo, enable_refresh=False).stream(
        decoded, use_channel_bus=False
    )
    return on, off


def test_refresh_tax(benchmark):
    on, off = benchmark.pedantic(_refresh_tax, rounds=1, iterations=1)
    tax = (on - off) / off
    print(f"\n  refresh tax on a busy stream: {tax:.1%} "
          f"(duty factor tRFC/tREFI = {420 / 9360:.1%})")
    assert 0.0 < tax < 0.12


def _packet_overhead_sweep(scale):
    config = scaled_config("RMC1-small", scale)
    workload = build_sls_workload(config, scale)
    out = {}
    for overhead in (0, 32, 256, 1024):
        cfg = NdpConfig(8, 8, packet_overhead_cycles=overhead)
        out[overhead] = NdpSimulator(cfg).run(workload).ndp_only_ns
    return out


def test_packet_overhead(benchmark, scale):
    times = benchmark.pedantic(
        _packet_overhead_sweep, args=(scale,), rounds=1, iterations=1
    )
    print()
    for oh, ns in times.items():
        print(f"  overhead={oh:4d} cyc: {ns / 1e3:9.1f} us")
    assert times[0] < times[1024]
    # Default 32-cycle overhead is a small fraction of packet time.
    assert (times[32] - times[0]) / times[0] < 0.10


def _trace_skew(scale):
    config = scaled_config("RMC1-small", scale)
    uniform = build_sls_workload(config, scale, trace_kind="random")
    skewed = build_sls_workload(config, scale, trace_kind="production")
    run_u = NdpSimulator(NdpConfig(8, 8)).run(uniform)
    run_s = NdpSimulator(NdpConfig(8, 8)).run(skewed)
    # Normalise per line read (the traces have different PF totals).
    return (
        run_u.ndp_only_ns / run_u.total_lines,
        run_s.ndp_only_ns / run_s.total_lines,
    )


def test_trace_skew(benchmark, scale):
    per_line_uniform, per_line_skewed = benchmark.pedantic(
        _trace_skew, args=(scale,), rounds=1, iterations=1
    )
    print(f"\n  ns/line uniform: {per_line_uniform:.2f}, "
          f"production-skewed: {per_line_skewed:.2f}")
    # Hot-set reuse buys row-buffer hits: skewed must not be slower.
    assert per_line_skewed <= per_line_uniform * 1.05


def _break_even(scale):
    config = scaled_config("RMC1-small", scale)
    workload = build_sls_workload(config, scale)
    base = run_non_ndp(workload).total_ns
    sec = NdpSimulator(NdpConfig(8, 8)).run(workload)
    sec_ns = sec.secndp_ns(AesEngineModel(12))
    saved_per_batch = base - sec_ns
    init = simulate_arith_enc(
        config.rows_per_table * config.n_tables, 128, with_tags=True
    ).total_ns
    return init, saved_per_batch


def test_arith_enc_amortisation(benchmark, scale):
    init_ns, saved_ns = benchmark.pedantic(
        _break_even, args=(scale,), rounds=1, iterations=1
    )
    batches = init_ns / max(saved_ns, 1)
    print(f"\n  one-time ArithEnc: {init_ns / 1e6:.2f} ms; per-batch saving "
          f"{saved_ns / 1e3:.1f} us -> break-even after ~{batches:.0f} batches")
    assert saved_ns > 0
    # Encryption is a bounded one-time cost, amortised in a realistic
    # number of inference batches (well under a serving day).
    assert batches < 1e6


def _channel_sweep():
    from repro.memsim import DramGeometry, DramSystem

    times = {}
    addrs = [i * 64 for i in range(8192)]
    for channels in (1, 2, 4):
        system = DramSystem(
            geometry=DramGeometry(channels=channels), identity_pages=True
        )
        times[channels] = system.stream_logical(addrs)
    return times


def test_channel_scaling(benchmark):
    """Channel-count ablation: the paper evaluates one channel (Table II);
    CPU streaming bandwidth scales near-linearly with channels, which is
    why NDP's rank-level parallelism is the cheaper lever (no extra pins)."""
    times = benchmark.pedantic(_channel_sweep, rounds=1, iterations=1)
    print()
    for ch, cycles in times.items():
        print(f"  {ch} channel(s): {cycles} cycles")
    assert times[2] < times[1]
    assert times[4] < times[2]
    assert times[1] / times[4] > 2.5  # near-linear scaling
