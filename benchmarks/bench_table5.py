"""Benchmark: regenerate Table V (memory energy, pJ/bit).

Paper reference (normalised, PF=80)::

    unprotected non-NDP  100%
    unprotected NDP      79.2%
    non-NDP Enc          101.5%
    SecNDP Enc           81.83%
    SecNDP Enc+ver       92.09%
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import run_table5


def test_table5(benchmark, scale):
    result = benchmark.pedantic(run_table5, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())

    norm = result.normalized
    assert norm["unprotected non-NDP"] == pytest.approx(100.0)
    # NDP saves ~20% of memory energy; encryption costs ~2-3 points on
    # either side; verification gives back ~10 but stays a net saving.
    assert norm["unprotected NDP"] < 85.0
    assert 100.0 < norm["non-NDP Enc"] < 105.0
    assert norm["unprotected NDP"] < norm["SecNDP Enc"] < 90.0
    assert norm["SecNDP Enc"] < norm["SecNDP Enc+ver"] < 100.0

    # Cross-check against the paper's exact PF=80 column when applicable.
    if result.pf == 80:
        assert norm["unprotected NDP"] == pytest.approx(79.2, abs=0.5)
        assert norm["SecNDP Enc"] == pytest.approx(81.83, abs=0.5)
        assert norm["SecNDP Enc+ver"] == pytest.approx(92.09, abs=0.8)

    # The measured bus-traffic asymmetry is the physical basis of the IO
    # column losing its PF factor.
    assert result.measured_io_ratio and result.measured_io_ratio > 1.5
