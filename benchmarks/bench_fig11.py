"""Benchmark: regenerate Figure 11 (breakdown + batch-size scaling).

Paper shape: end-to-end SecNDP speedup grows with batch size (2.3x-4.3x
at batch 256) while SGX stays flat; the NDP portion shrinks relative to
the CPU-TEE portion under SecNDP because the SLS time collapses.
"""

from __future__ import annotations

from repro.harness.experiments import run_figure11


def test_figure11(benchmark, scale):
    result = benchmark.pedantic(run_figure11, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())

    for model, series in result.speedup_vs_batch.items():
        # speedup grows with batch and ends above 1.5x
        assert series[0] < series[-1]
        assert series[-1] > 1.5, model
        sgx = result.sgx_icl_vs_batch[model]
        assert max(sgx) - min(sgx) < 0.15        # SGX does not scale
        assert all(a > b for a, b in zip(series, sgx))

    for model, b in result.breakdown.items():
        total_base = b["base_cpu_ns"] + b["base_mem_ns"]
        total_sec = b["sec_cpu_ns"] + b["sec_ndp_ns"]
        assert total_base > total_sec            # SecNDP wins end-to-end
        # memory dominates the baseline; SecNDP compresses that portion
        assert b["base_mem_ns"] / total_base > 0.5
        assert b["sec_ndp_ns"] / total_sec < b["base_mem_ns"] / total_base
