"""Benchmark: regenerate Figure 7 (speedup vs #AES engines per NDP setting).

Paper shape: SecNDP-Enc climbs with AES engines until it matches
unprotected NDP in every (NDP_rank, NDP_reg) setting; at rank=8/reg=8 the
unquantized SLS speedup reaches ~5.6x and quantized ~6.9x; quantization
needs roughly a third of the engines; analytics peaks highest (7.46x).
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import run_figure7


def test_figure7(benchmark, scale):
    result = benchmark.pedantic(run_figure7, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())

    for family, settings in result.speedups.items():
        for setting, entry in settings.items():
            series = [v for k, v in entry.items() if k.startswith("SecNDP-Enc")]
            # monotone in engines, saturating at the NDP bar
            assert series == sorted(series), (family, setting)
            assert series[-1] == pytest.approx(entry["NDP"], rel=0.05)

    sls32 = result.speedups["SLS 32-bit"]
    assert sls32[(8, 8)]["NDP"] > sls32[(1, 1)]["NDP"]
    # quantization helps the NDP side
    assert (
        result.speedups["SLS 8-bit quantized"][(8, 8)]["NDP"]
        > sls32[(8, 8)]["NDP"]
    )
    # analytics is the best case
    assert result.speedups["Data analytics"][(8, 8)]["NDP"] > sls32[(8, 8)]["NDP"]
