"""Benchmark: regenerate Figure 8 (% packets decryption-bound, Enc-only).

Paper shape: the bottlenecked fraction falls as AES engines are added and
rises with NDP_rank (at rank=8, ~70% of SLS packets are covered by eight
engines); the quantized workload needs about a third of the engines.
"""

from __future__ import annotations

from repro.harness.experiments import run_figure8


def test_figure8(benchmark, scale):
    result = benchmark.pedantic(run_figure8, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())

    for family, per_rank in result.fractions.items():
        for series in per_rank.values():
            assert series == sorted(series, reverse=True), family
        # more ranks -> more engines needed (compare area under the curves)
        assert sum(per_rank["rank=8"]) >= sum(per_rank["rank=1"])

    f32 = result.fractions["SLS 32-bit"]["rank=8"]
    f8 = result.fractions["SLS 8-bit quantized"]["rank=8"]
    assert sum(f8) <= sum(f32)  # quantization shifts the curve left
    # With one engine an 8-rank system must be overwhelmingly bound...
    assert f32[0] > 0.9
    # ...and with the largest engine count it must be fully covered.
    assert f32[-1] < 0.05
