"""Benchmark: regenerate Table III (end-to-end speedups vs baselines).

Paper reference rows (8 NDP ranks, batch 256)::

                         RMC1-small RMC1-large RMC2-small RMC2-large Analytics
    unprotected NDP         2.46x      3.11x      4.05x      4.44x     7.46x
    SGX-CFL                 0.0038x    0.0037x    N/A        N/A       0.1738x
    SGX-ICL                 0.59x      0.60x      N/A        N/A       0.57x
    SecNDP                  2.36x      3.02x      3.95x      4.33x     7.46x
"""

from __future__ import annotations

from repro.harness.experiments import run_table3


def test_table3(benchmark, scale):
    result = benchmark.pedantic(run_table3, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())

    ndp = result.speedups["unprotected NDP"]
    sec = result.speedups["SecNDP"]
    # Shape assertions (see DESIGN.md): NDP wins big and grows with model
    # size; SecNDP tracks it closely; SGX rows collapse.
    assert all(v > 1.2 for v in ndp.values())
    assert ndp["RMC1-small"] < ndp["RMC2-large"] < ndp["Data Analytics"]
    for col in result.columns:
        assert sec[col] > 0.7 * ndp[col]
    assert result.speedups["SGX-CFL"]["RMC1-small"] < 0.05
    assert 0.3 < result.speedups["SGX-ICL (no int. tree)"]["RMC1-small"] < 1.0
    assert result.speedups["SGX-CFL"]["RMC2-large"] is None
