"""Benchmark: regenerate Table IV (LogLoss under quantization schemes).

Paper reference::

    32-bit floating point             0.64013     0
    32-bit fixed point                0.64013    -3.6e-10
    table-wise quantization (8-bit)   0.64059     0.07%
    column-wise quantization (8-bit)  0.64027     0.02%

Ours trains a small synthetic-data DLRM (substitution documented in
DESIGN.md); the claims checked are the paper's: fixed-32 is numerically
indistinguishable from fp32 and the 8-bit schemes cost well under 0.1%.
"""

from __future__ import annotations

from repro.analysis.accuracy import quantization_accuracy
from repro.harness.experiments.table4 import Table4Result


def test_table4(benchmark):
    report = benchmark.pedantic(quantization_accuracy, rounds=1, iterations=1)
    print()
    print(Table4Result(report).render())

    base = report.logloss["32-bit floating point"]
    assert 0.4 < base < 0.75  # realistic CTR LogLoss band

    # fixed point: bit-near fp32 (paper: -3.6e-10)
    assert abs(report.degradation("32-bit fixed point")) < 1e-5

    # 8-bit schemes: under 0.1% degradation (paper: 0.07% / 0.02%)
    for scheme in (
        "table-wise quantization (8-bit)",
        "column-wise quantization (8-bit)",
    ):
        assert abs(report.degradation_pct(scheme)) < 0.1, scheme
