"""Benchmark: regenerate Figure 9 (verification-scheme speedups).

Paper shape at rank=8/reg=8 with twelve AES engines and 128-bit tags:
Ver-ECC matches Enc-only; Ver-coloc sits below Enc-only (cache-line
misalignment); Ver-sep loses ~40%; with quantization Ver-ECC is
infeasible; the analytics workload sees only small verification overhead
because its rows are long (m=1024).
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import run_figure9


def test_figure9(benchmark, scale):
    result = benchmark.pedantic(run_figure9, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())

    s32 = result.speedups["SLS 32-bit"]
    assert s32["ver_ecc"] == pytest.approx(s32["enc_only"], rel=0.05)
    assert s32["enc_only"] >= s32["ver_coloc"] > s32["ver_sep"]
    # Ver-sep degradation in the paper's ballpark (~40%, generous band)
    assert 0.45 < s32["ver_sep"] / s32["enc_only"] < 0.85

    s8 = result.speedups["SLS 8-bit quantized"]
    assert s8["ver_ecc"] is None
    assert s8["ver_coloc"] > s8["ver_sep"]

    ana = result.speedups["Data analytics"]
    assert ana["ver_coloc"] > 0.9 * ana["enc_only"]
    assert ana["ver_sep"] > 0.9 * ana["enc_only"]
