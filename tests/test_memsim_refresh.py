"""DRAM refresh modeling (tREFI / tRFC)."""

from __future__ import annotations

import pytest

from repro.memsim import DDR4Timing, DramGeometry, MemoryController
from repro.memsim.address import DecodedAddress


T = DDR4Timing()


def addr(rank=0, row=0, col=0):
    return DecodedAddress(
        channel=0, rank=rank, bank_group=0, bank=0, row=row, column=col
    )


class TestRefreshParameters:
    def test_ddr4_defaults(self):
        assert T.tREFI == 9360  # 7.8 us at 1200 MHz
        assert T.tRFC == 420    # 350 ns

    def test_refresh_overhead_fraction(self):
        # The rank is dark tRFC out of every tREFI: ~4.5%.
        assert 0.03 < T.tRFC / T.tREFI < 0.06


class TestRefreshBehaviour:
    def test_no_refresh_before_first_trefi(self):
        ctrl = MemoryController(T, DramGeometry(), enable_refresh=True)
        res = ctrl.access(addr(), at=0, use_channel_bus=False)
        assert res.issue_cycle == T.tRCD  # unperturbed cold access

    def test_access_inside_window_is_deferred(self):
        ctrl = MemoryController(T, DramGeometry(), enable_refresh=True)
        rank = ctrl.ranks[0]
        rank.refresh_offset = 0
        res = ctrl.access(addr(), at=T.tREFI + 10, use_channel_bus=False)
        # Command stream must start after the refresh window ends.
        assert res.issue_cycle >= T.tREFI + T.tRFC

    def test_refresh_closes_open_rows(self):
        ctrl = MemoryController(T, DramGeometry(), enable_refresh=True)
        ctrl.ranks[0].refresh_offset = 0
        first = ctrl.access(addr(row=7), at=0, use_channel_bus=False)
        assert not first.row_hit
        # Next access to the same row *after* a refresh: row was precharged.
        res = ctrl.access(addr(row=7, col=1), at=T.tREFI + T.tRFC + 5,
                          use_channel_bus=False)
        assert not res.row_hit

    def test_row_stays_open_without_refresh(self):
        ctrl = MemoryController(T, DramGeometry(), enable_refresh=False)
        ctrl.access(addr(row=7), at=0, use_channel_bus=False)
        res = ctrl.access(addr(row=7, col=1), at=T.tREFI + T.tRFC + 5,
                          use_channel_bus=False)
        assert res.row_hit

    def test_staggered_offsets(self):
        ctrl = MemoryController(T, DramGeometry(ranks=8))
        offsets = [r.refresh_offset for r in ctrl.ranks]
        assert len(set(offsets)) == 8
        assert all(0 <= off < T.tREFI for off in offsets)

    def test_long_stream_pays_refresh_tax(self):
        """A long busy stream with refresh on is slower than with it off,
        by roughly the tRFC/tREFI duty factor."""
        geo = DramGeometry()
        on = MemoryController(T, geo, enable_refresh=True)
        off = MemoryController(T, geo, enable_refresh=False)
        # 20k sequential same-rank lines: spans several refresh windows.
        decoded = [
            DecodedAddress(0, 0, (i // 128) % 4, 0, i // 512, i % 128)
            for i in range(20_000)
        ]
        t_on = on.stream(decoded, use_channel_bus=False)
        t_off = off.stream(decoded, use_channel_bus=False)
        assert t_on > t_off
        assert (t_on - t_off) / t_off < 0.12  # bounded tax
