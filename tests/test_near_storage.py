"""Near-storage NDP: SecNDP generalises beyond DRAM (paper Secs. I/III-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ndp import AesEngineModel, NdpWorkload, SimQuery, TableGeometry
from repro.ndp.storage import NearStorageSimulator, SsdGeometry


def make_workload(n_queries=16, pf=400, n_rows=200_000, row_bytes=128, seed=0):
    """Storage-resident pooling: bigger PF, bigger tables than DRAM runs."""
    rng = np.random.default_rng(seed)
    tables = {0: TableGeometry(n_rows, row_bytes, 128)}
    queries = tuple(
        SimQuery(0, tuple(int(x) for x in rng.integers(0, n_rows, size=pf)))
        for _ in range(n_queries)
    )
    return NdpWorkload(tables=tables, queries=queries)


@pytest.fixture(scope="module")
def result():
    return NearStorageSimulator().run(make_workload())


class TestGeometry:
    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            SsdGeometry(channels=0)

    def test_page_transfer_time(self):
        geo = SsdGeometry()
        assert geo.page_transfer_us() == pytest.approx(16384 / 1.2 / 1000)


class TestSpeedups:
    def test_near_storage_beats_host(self, result):
        """Pooling in the drive avoids shipping raw pages: speedup > 1."""
        assert result.ndp_speedup > 1.5

    def test_link_is_the_host_bottleneck(self, result):
        # The host baseline must be link-bound for this access pattern.
        geo = SsdGeometry()
        link_us = result.pages_read * geo.page_bytes / geo.host_link_gbps / 1000
        assert result.host_us == pytest.approx(link_us, rel=0.01)

    def test_secndp_matches_ndp_with_one_engine(self, result):
        """Storage bandwidth is low enough that a single AES engine
        saturates - the claim that SecNDP needs no extra provisioning for
        near-storage deployments."""
        one = AesEngineModel(1)
        assert result.secndp_us(one) == pytest.approx(result.ndp_us)
        assert result.secndp_speedup(one) == pytest.approx(result.ndp_speedup)

    def test_deliberately_slow_engine_becomes_bottleneck(self, result):
        glacial = AesEngineModel(1, block_ns=5000.0)
        assert result.secndp_us(glacial) > result.ndp_us


class TestAccounting:
    def test_otp_blocks_match_bytes(self, result):
        workload = make_workload()
        total_rows = sum(len(q.rows) for q in workload.queries)
        assert result.otp_blocks == total_rows * 8  # 128-byte rows

    def test_page_dedup(self):
        """Repeated rows on one page are read once (page granularity)."""
        wl_dup = NdpWorkload(
            tables={0: TableGeometry(1000, 128, 128)},
            queries=(SimQuery(0, tuple([5] * 50)),),
        )
        res = NearStorageSimulator().run(wl_dup)
        assert res.pages_read == 1

    def test_more_channels_faster(self):
        wl = make_workload()
        slow = NearStorageSimulator(SsdGeometry(channels=2)).run(wl)
        fast = NearStorageSimulator(SsdGeometry(channels=16)).run(wl)
        assert fast.ndp_us < slow.ndp_us
