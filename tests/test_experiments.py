"""Experiment drivers at smoke scale: every table/figure shape claim.

These are the integration tests for DESIGN.md's experiment index - each
test asserts the *relationships* the paper reports (who wins, by roughly
what factor, where crossovers fall), not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.harness import SMOKE_SCALE
from repro.harness.experiments import (
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_table3,
    run_table5,
)


@pytest.fixture(scope="module")
def table3():
    return run_table3(SMOKE_SCALE)


@pytest.fixture(scope="module")
def figure7():
    return run_figure7(SMOKE_SCALE, settings=[(2, 2), (8, 8)], aes_sweep=[1, 4, 12])


@pytest.fixture(scope="module")
def figure8():
    return run_figure8(SMOKE_SCALE, ranks=[2, 8], aes_sweep=[1, 4, 12])


@pytest.fixture(scope="module")
def figure9():
    return run_figure9(SMOKE_SCALE)


@pytest.fixture(scope="module")
def figure10():
    return run_figure10(SMOKE_SCALE, aes_sweep=[2, 8, 16])


@pytest.fixture(scope="module")
def figure11():
    return run_figure11(SMOKE_SCALE, models=["RMC1-small"])


class TestTable3:
    def test_ndp_beats_baseline_everywhere(self, table3):
        for col, v in table3.speedups["unprotected NDP"].items():
            assert v > 1.2, col

    def test_secndp_close_to_unprotected_ndp(self, table3):
        # At smoke scale the fixed enclave/offload overhead is poorly
        # amortised (4-sample batches), so the band is generous; the
        # default-scale benchmark asserts the tight 0.7x band.
        for col in table3.columns:
            ndp = table3.speedups["unprotected NDP"][col]
            sec = table3.speedups["SecNDP"][col]
            assert sec > 0.45 * ndp, col

    def test_speedup_grows_with_model_size(self, table3):
        ndp = table3.speedups["unprotected NDP"]
        assert ndp["RMC1-small"] < ndp["RMC2-large"]

    def test_analytics_highest_speedup(self, table3):
        ndp = table3.speedups["unprotected NDP"]
        assert ndp["Data Analytics"] == max(v for v in ndp.values())

    def test_sgx_cfl_orders_of_magnitude_slower(self, table3):
        assert table3.speedups["SGX-CFL"]["RMC1-small"] < 0.05
        assert table3.speedups["SGX-CFL"]["Data Analytics"] < 0.5

    def test_sgx_icl_below_one(self, table3):
        for col in ("RMC1-small", "RMC1-large", "Data Analytics"):
            assert 0.3 < table3.speedups["SGX-ICL (no int. tree)"][col] < 1.0

    def test_rmc2_sgx_not_available(self, table3):
        assert table3.speedups["SGX-CFL"]["RMC2-small"] is None
        assert table3.speedups["SGX-ICL (no int. tree)"]["RMC2-large"] is None

    def test_render(self, table3):
        out = table3.render()
        assert "SecNDP" in out and "N/A" in out


class TestFigure7:
    def test_secndp_monotone_in_engines(self, figure7):
        for family in figure7.speedups.values():
            for entry in family.values():
                series = [entry[f"SecNDP-Enc({n} AES)"] for n in (1, 4, 12)]
                assert series == sorted(series)

    def test_secndp_saturates_at_ndp(self, figure7):
        for family in figure7.speedups.values():
            for entry in family.values():
                assert entry["SecNDP-Enc(12 AES)"] == pytest.approx(
                    entry["NDP"], rel=0.05
                )

    def test_more_ranks_higher_ndp_speedup(self, figure7):
        for family in figure7.speedups.values():
            assert family[(8, 8)]["NDP"] > family[(2, 2)]["NDP"]

    def test_quantization_speeds_up_ndp(self, figure7):
        q = figure7.speedups["SLS 8-bit quantized"][(8, 8)]["NDP"]
        base = figure7.speedups["SLS 32-bit"][(8, 8)]["NDP"]
        assert q > base

    def test_rowwise_bars_only_in_quantized_family(self, figure7):
        assert "NDP(row_quan)" in figure7.speedups["SLS 8-bit quantized"][(8, 8)]
        assert "NDP(row_quan)" not in figure7.speedups["SLS 32-bit"][(8, 8)]

    def test_render(self, figure7):
        assert "SLS 32-bit" in figure7.render()


class TestFigure8:
    def test_fraction_decreases_with_engines(self, figure8):
        for family in figure8.fractions.values():
            for series in family.values():
                assert series == sorted(series, reverse=True)

    def test_more_ranks_need_more_engines(self, figure8):
        f = figure8.fractions["SLS 32-bit"]
        # at the middle point (4 engines) rank-8 is at least as bound as rank-2
        assert f["rank=8"][1] >= f["rank=2"][1]

    def test_quantized_needs_fewer_engines(self, figure8):
        f32 = figure8.fractions["SLS 32-bit"]["rank=8"]
        f8 = figure8.fractions["SLS 8-bit quantized"]["rank=8"]
        assert sum(f8) <= sum(f32)

    def test_render(self, figure8):
        assert "%" in figure8.render()


class TestFigure9:
    def test_scheme_ordering_32bit(self, figure9):
        s = figure9.speedups["SLS 32-bit"]
        assert s["ver_ecc"] == pytest.approx(s["enc_only"], rel=0.05)
        assert s["enc_only"] >= s["ver_coloc"] > s["ver_sep"]

    def test_ver_ecc_na_for_quantized(self, figure9):
        assert figure9.speedups["SLS 8-bit quantized"]["ver_ecc"] is None

    def test_analytics_verification_overhead_small(self, figure9):
        s = figure9.speedups["Data analytics"]
        assert s["ver_coloc"] > 0.9 * s["enc_only"]
        assert s["ver_sep"] > 0.9 * s["enc_only"]

    def test_render_contains_na(self, figure9):
        assert "N/A" in figure9.render()


class TestFigure10:
    def test_ver_ecc_more_decryption_bound_than_enc_only(self, figure10):
        f = figure10.fractions["SLS 32-bit"]
        assert sum(f["ver_ecc"]) >= sum(f["enc_only"])

    def test_fractions_monotone(self, figure10):
        for family in figure10.fractions.values():
            for series in family.values():
                assert series == sorted(series, reverse=True)


class TestFigure11:
    def test_speedup_grows_with_batch(self, figure11):
        series = figure11.speedup_vs_batch["RMC1-small"]
        assert series[0] < series[-1]

    def test_sgx_flat_across_batches(self, figure11):
        series = figure11.sgx_icl_vs_batch["RMC1-small"]
        assert max(series) - min(series) < 0.15

    def test_secndp_beats_sgx_at_every_batch(self, figure11):
        sec = figure11.speedup_vs_batch["RMC1-small"]
        sgx = figure11.sgx_icl_vs_batch["RMC1-small"]
        assert all(a > b for a, b in zip(sec, sgx))

    def test_breakdown_sums_consistent(self, figure11):
        b = figure11.breakdown["RMC1-small"]
        assert all(v > 0 for v in b.values())


class TestTable5:
    def test_runs_and_renders(self):
        res = run_table5(SMOKE_SCALE)
        out = res.render()
        assert "SecNDP Enc+ver" in out
        assert res.measured_io_ratio is not None
        # Non-NDP moves strictly more bus traffic than NDP result lines.
        assert res.measured_io_ratio > 1.5
