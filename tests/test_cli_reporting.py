"""CLI and text-rendering helpers."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main
from repro.harness.reporting import render_series, render_table


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table(
            ["name", "value"], [["a", 1.2345], ["longer", 2]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.23" in out  # float formatting

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_first_column_left_aligned(self):
        out = render_table(["k", "v"], [["x", 1], ["yy", 2]])
        data_lines = out.splitlines()[2:]
        assert data_lines[0].startswith("x ")


class TestRenderSeries:
    def test_series_layout(self):
        out = render_series(
            "x", [1, 2, 3], {"s1": [0.1, 0.2, 0.3], "s2": [1, 2, 3]}
        )
        assert "s1" in out and "s2" in out
        assert "0.10" in out

    def test_custom_format(self):
        out = render_series("x", [1], {"s": [0.5]}, fmt="{:.0%}")
        assert "50%" in out


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table5", "--scale", "galactic"])

    def test_runs_table5_smoke(self, capsys):
        assert main(["table5", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "finished in" in out

    def test_runs_fig9_smoke(self, capsys):
        assert main(["fig9", "--scale", "smoke"]) == 0
        assert "ver_sep" in capsys.readouterr().out

    def test_every_experiment_registered(self):
        assert set(EXPERIMENTS) == {
            "table3",
            "table4",
            "table5",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
        }
