"""CLI and text-rendering helpers."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import EXPERIMENTS, main
from repro.harness.reporting import render_series, render_table


@pytest.fixture(autouse=True)
def _clean_obs():
    """Keep the global metrics/trace state from leaking across tests."""
    obs.disable()
    obs.disable_tracing()
    obs.reset()
    obs.clear_trace()
    yield
    obs.disable()
    obs.disable_tracing()
    obs.reset()
    obs.clear_trace()


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table(
            ["name", "value"], [["a", 1.2345], ["longer", 2]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.23" in out  # float formatting

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_first_column_left_aligned(self):
        out = render_table(["k", "v"], [["x", 1], ["yy", 2]])
        data_lines = out.splitlines()[2:]
        assert data_lines[0].startswith("x ")


class TestRenderSeries:
    def test_series_layout(self):
        out = render_series(
            "x", [1, 2, 3], {"s1": [0.1, 0.2, 0.3], "s2": [1, 2, 3]}
        )
        assert "s1" in out and "s2" in out
        assert "0.10" in out

    def test_custom_format(self):
        out = render_series("x", [1], {"s": [0.5]}, fmt="{:.0%}")
        assert "50%" in out


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["nonsense"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line error, no traceback
        assert "unknown experiment" in err and "nonsense" in err

    def test_bad_scale_exits_nonzero(self, capsys):
        assert main(["table5", "--scale", "galactic"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "invalid scale" in err and "galactic" in err

    def test_runs_table5_smoke(self, capsys):
        assert main(["table5", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "finished in" in out

    def test_runs_fig9_smoke(self, capsys):
        assert main(["fig9", "--scale", "smoke"]) == 0
        assert "ver_sep" in capsys.readouterr().out

    def test_every_experiment_registered(self):
        assert set(EXPERIMENTS) == {
            "table3",
            "table4",
            "table5",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
        }


#: Counter names the --stats snapshot of a table3 run must contain — one
#: per instrumented layer (the stable public naming scheme of DESIGN.md
#: Sec. 9; treat renames as breaking changes).
REQUIRED_COUNTERS = [
    "otp.cache.hit",
    "otp.cache.miss",
    # The limb dot kernel counts under the serving tier that ran it:
    # the NumPy tiers ("limb.dot.tier1") or a compiled backend
    # ("limb.dot.native") when repro.kernels resolved one.
    ("limb.dot.tier1", "limb.dot.native"),
    "protocol.queries",
    "ndp.packets",
    "memsim.activates",
]


class TestCliStats:
    def test_stats_and_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["table3", "--scale", "smoke", "--stats", "--trace", str(trace_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        for name in REQUIRED_COUNTERS:
            alts = name if isinstance(name, tuple) else (name,)
            assert any(a in out for a in alts), f"snapshot missing {alts}"
        # Phase timers from the protocol spans.
        assert "protocol.verify.ns" in out

        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        assert events, "trace has no events"
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            assert event["name"]
        names = {e["name"] for e in events}
        assert "experiment.table3" in names
        assert "ndp.run" in names

    def test_stats_without_trace(self, capsys):
        assert main(["table5", "--scale", "smoke", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "memsim.activates" in out
        # main() restores the disabled default before returning.
        assert not obs.enabled()
        assert not obs.tracing_enabled()

    def test_disabled_run_records_nothing(self, capsys):
        assert main(["table5", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" not in out
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["timers"] == {}
        assert obs.trace_events() == []
