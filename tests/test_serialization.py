"""Binary container round-trips for encrypted matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SecNDPParams,
    SecNDPProcessor,
    UntrustedNdpDevice,
    deserialize_matrix,
    serialize_matrix,
)
from repro.core.serialization import FORMAT_VERSION, MAGIC
from repro.errors import ConfigurationError

KEY = bytes(range(16))


@pytest.fixture
def tagged(processor, small_matrix):
    return processor.encrypt_matrix(small_matrix, 0x20000, "ser", with_tags=True)


@pytest.fixture
def untagged(processor, small_matrix):
    return processor.encrypt_matrix(small_matrix, 0x30000, "ser2", with_tags=False)


class TestRoundtrip:
    def test_tagged_roundtrip(self, tagged, params32):
        blob = serialize_matrix(tagged)
        loaded = deserialize_matrix(blob, params32)
        assert np.array_equal(loaded.ciphertext, tagged.ciphertext)
        assert loaded.tags == tagged.tags
        assert loaded.base_addr == tagged.base_addr
        assert loaded.version == tagged.version
        assert loaded.checksum_version == tagged.checksum_version
        assert loaded.tag_version == tagged.tag_version

    def test_untagged_roundtrip(self, untagged):
        loaded = deserialize_matrix(serialize_matrix(untagged))
        assert np.array_equal(loaded.ciphertext, untagged.ciphertext)
        assert loaded.tags is None

    def test_default_params_inferred(self, tagged):
        loaded = deserialize_matrix(serialize_matrix(tagged))
        assert loaded.params.element_bits == 32

    def test_8bit_roundtrip(self):
        params = SecNDPParams(element_bits=8)
        proc = SecNDPProcessor(KEY, params)
        pt = np.arange(256, dtype=np.uint8).reshape(16, 16)
        enc = proc.encrypt_matrix(pt, 0x1000, "q", with_tags=True)
        loaded = deserialize_matrix(serialize_matrix(enc), params)
        assert np.array_equal(loaded.ciphertext, enc.ciphertext)

    def test_protocol_works_after_reload(self, processor, tagged, small_matrix):
        """Serialized ciphertext shipped to a fresh device still serves
        verified queries - the persistence use case."""
        device = UntrustedNdpDevice(processor.params)
        device.store("re", deserialize_matrix(serialize_matrix(tagged)))
        res = processor.weighted_row_sum(device, "re", [1, 2], [1, 1])
        expected = (small_matrix[1].astype(np.int64) + small_matrix[2]) % (1 << 32)
        assert np.array_equal(res.values.astype(np.int64), expected)


class TestValidation:
    def test_magic(self, untagged):
        blob = bytearray(serialize_matrix(untagged))
        blob[:4] = b"XXXX"
        with pytest.raises(ConfigurationError):
            deserialize_matrix(bytes(blob))

    def test_version_field(self, untagged):
        blob = bytearray(serialize_matrix(untagged))
        blob[4] = FORMAT_VERSION + 1
        with pytest.raises(ConfigurationError):
            deserialize_matrix(bytes(blob))

    def test_truncated_header(self):
        with pytest.raises(ConfigurationError):
            deserialize_matrix(MAGIC)

    def test_truncated_ciphertext(self, untagged):
        blob = serialize_matrix(untagged)
        with pytest.raises(ConfigurationError):
            deserialize_matrix(blob[: len(blob) - 8])

    def test_truncated_tags(self, tagged):
        blob = serialize_matrix(tagged)
        with pytest.raises(ConfigurationError):
            deserialize_matrix(blob[: len(blob) - 4])

    def test_param_width_mismatch(self, untagged):
        blob = serialize_matrix(untagged)
        with pytest.raises(ConfigurationError):
            deserialize_matrix(blob, SecNDPParams(element_bits=8))

    def test_tag_width_mismatch(self, tagged):
        blob = serialize_matrix(tagged)
        with pytest.raises(ConfigurationError):
            deserialize_matrix(
                blob, SecNDPParams(element_bits=32, tag_modulus=(1 << 61) - 1)
            )
