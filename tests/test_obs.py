"""Observability layer: registry semantics, spans, trace export."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.disable_tracing()
    obs.reset()
    obs.clear_trace()
    yield
    obs.disable()
    obs.disable_tracing()
    obs.reset()
    obs.clear_trace()


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a.b", 4)
        assert reg.counter("a.b") == 5
        assert reg.counter("missing") == 0

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.5)
        reg.gauge("g", 2.5)
        assert reg.snapshot()["gauges"]["g"] == 2.5

    def test_timer_stats(self):
        reg = MetricsRegistry()
        for ns in [100, 200, 300, 400, 1000]:
            reg.observe_ns("t", ns)
        stats = reg.snapshot()["timers"]["t"]
        assert stats["count"] == 5
        assert stats["total_ns"] == 2000
        assert stats["max_ns"] == 1000
        assert stats["p50_ns"] in (200, 300)
        assert stats["p95_ns"] == 1000

    def test_timer_histogram_stays_sparse(self):
        # Long runs must not grow memory per observation: the histogram
        # footprint is bounded by the number of distinct log buckets, not
        # the observation count (the property that replaced the old
        # 4096-sample ring).
        reg = MetricsRegistry()
        n = 50_000
        for i in range(n):
            reg.observe_ns("t", i)
        stats = reg.snapshot(include_samples=True)["timers"]["t"]
        assert stats["count"] == n
        assert len(stats["buckets"]) < 600  # ~32 buckets per power of two
        # Percentiles reflect the whole run, not a trailing window.
        assert stats["p50_ns"] == pytest.approx(n / 2, rel=obs.RELATIVE_ERROR)
        assert stats["p99_ns"] == pytest.approx(0.99 * n, rel=obs.RELATIVE_ERROR)

    def test_snapshot_sorted_and_jsonable(self):
        reg = MetricsRegistry()
        reg.inc("z.last")
        reg.inc("a.first")
        reg.observe_ns("t", 5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        json.dumps(snap)  # must be JSON-serialisable as-is

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.gauge("g", 1)
        reg.observe_ns("t", 1)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "timers": {}}

    def test_thread_safety(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(1000):
                reg.inc("shared")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared") == 4000


class TestModuleGate:
    def test_disabled_helpers_are_noops(self):
        obs.inc("c", 10)
        obs.gauge("g", 1.0)
        obs.observe_ns("t", 100)
        snap = obs.snapshot()
        assert snap["counters"] == {} and snap["timers"] == {}

    def test_enable_disable(self):
        obs.enable()
        obs.inc("c", 2)
        obs.disable()
        obs.inc("c", 100)
        assert obs.snapshot()["counters"] == {"c": 2}

    def test_format_snapshot_empty(self):
        assert "no metrics" in obs.format_snapshot(obs.snapshot())

    def test_format_snapshot_sections(self):
        obs.enable()
        obs.inc("c.x", 3)
        obs.gauge("g.y", 0.5)
        obs.observe_ns("t.z", 1500)
        text = obs.format_snapshot(obs.snapshot())
        assert "counters:" in text and "c.x" in text
        assert "gauges:" in text and "g.y" in text
        assert "timers" in text and "t.z" in text


class TestSpans:
    def test_span_records_timer(self):
        obs.enable()
        with obs.span("phase.alpha"):
            pass
        stats = obs.snapshot()["timers"]["phase.alpha.ns"]
        assert stats["count"] == 1
        assert stats["max_ns"] >= 0

    def test_span_noop_when_disabled(self):
        cm = obs.span("phase.alpha")
        with cm:
            pass
        assert obs.snapshot()["timers"] == {}
        # The disabled path hands back one shared object.
        assert obs.span("another") is cm

    def test_traced_decorator(self):
        calls = []

        @obs.traced("phase.decorated")
        def fn(x):
            calls.append(x)
            return x + 1

        assert fn(1) == 2  # disabled: passthrough
        obs.enable()
        assert fn(2) == 3
        assert calls == [1, 2]
        assert obs.snapshot()["timers"]["phase.decorated.ns"]["count"] == 1

    def test_nested_spans_depth(self):
        obs.enable_tracing()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        events = {e["name"]: e for e in obs.trace_events()}
        assert events["outer"]["args"]["depth"] == 0
        assert events["inner"]["args"]["depth"] == 1
        # inner is contained within outer on the timeline
        outer, inner = events["outer"], events["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_trace_events_without_metrics(self):
        obs.enable_tracing()
        with obs.span("only.trace"):
            pass
        assert len(obs.trace_events()) == 1
        # metrics stayed off, so no timer was recorded
        assert obs.snapshot()["timers"] == {}

    def test_drop_counting_in_tracing_only_mode(self, monkeypatch):
        # Regression: with tracing on but metrics OFF, buffer-overflow
        # drops used to vanish (the gated metrics.inc was a no-op).  The
        # drop tally must survive both in trace_dropped() and in the
        # registry counter.
        from repro.obs import tracing

        monkeypatch.setattr(tracing, "MAX_TRACE_EVENTS", 3)
        obs.enable_tracing()
        assert not obs.enabled()
        for _ in range(5):
            with obs.span("overflow"):
                pass
        assert len(obs.trace_events()) == 3
        assert obs.trace_dropped() == 2
        assert obs.get_registry().counter("obs.trace.dropped") == 2
        # Ingested worker events respect the same accounting.
        obs.ingest_events([{"name": "w"}] * 4)
        assert obs.trace_dropped() == 6
        obs.clear_trace()
        assert obs.trace_dropped() == 0

    def test_write_trace(self, tmp_path):
        obs.enable_tracing()
        with obs.span("a", cat="x"):
            pass
        path = obs.write_trace(tmp_path / "t.json")
        payload = json.loads(path.read_text())
        (event,) = payload["traceEvents"]
        assert event["ph"] == "X"
        assert event["cat"] == "x"
        assert {"ts", "dur", "pid", "tid"} <= set(event)


class TestInstrumentedProtocol:
    """End-to-end: a verified query populates every crypto-layer metric."""

    def test_counters_from_verified_query(self):
        obs.enable()
        params = SecNDPParams(element_bits=32)
        processor = SecNDPProcessor(bytes(range(16)), params)
        device = UntrustedNdpDevice(params)
        rng = np.random.default_rng(0)
        table = rng.integers(0, 256, size=(32, 16)).astype(np.uint32)
        enc = processor.encrypt_matrix(table, base_addr=0x1000, region="t")
        device.store("t", enc)
        processor.weighted_row_sum(device, "t", [1, 2, 3], [1, 1, 1])

        snap = obs.snapshot()
        counters, timers = snap["counters"], snap["timers"]
        assert counters["protocol.queries"] == 1
        assert counters["protocol.matrices_encrypted"] == 1
        assert counters["mac.rows_tagged"] == 32
        assert counters["otp.cache.miss"] > 0
        # The limb dot kernel counts under whichever tier served it
        # (NumPy tiers, or a compiled backend when one resolved).
        assert any(
            k.startswith("limb.dot.tier") or k == "limb.dot.native"
            for k in counters
        )
        for phase in ("offload", "otp", "combine", "verify"):
            assert timers[f"protocol.{phase}.ns"]["count"] == 1

    def test_disabled_protocol_records_nothing(self):
        params = SecNDPParams(element_bits=32)
        processor = SecNDPProcessor(bytes(range(16)), params)
        device = UntrustedNdpDevice(params)
        table = np.arange(32 * 16, dtype=np.uint32).reshape(32, 16) % 100
        enc = processor.encrypt_matrix(table, base_addr=0x1000, region="t")
        device.store("t", enc)
        processor.weighted_row_sum(device, "t", [0, 1], [1, 2])
        snap = obs.snapshot()
        assert snap["counters"] == {} and snap["timers"] == {}
