"""Functional NDP DIMM / PU execution vs. plain NumPy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto import RING32, F127
from repro.errors import ConfigurationError
from repro.ndp import NdpDimm, NdpInst, NdpLd, NdpOp, NdpPu


@pytest.fixture
def dimm():
    d = NdpDimm(RING32, F127, n_ranks=2, n_registers=4)
    rng = np.random.default_rng(0)
    for rank in range(2):
        d.load_shard(rank, rng.integers(0, 1000, size=256, dtype=np.uint64).astype(np.uint32))
    return d


class TestNdpPu:
    def test_mac_accumulates(self):
        pu = NdpPu(RING32, F127, n_registers=2)
        pu.mac(0, 2, np.array([1, 2, 3], dtype=np.uint32))
        pu.mac(0, 1, np.array([10, 20, 30], dtype=np.uint32))
        assert list(pu.load(0)) == [12, 24, 36]
        assert pu.macs_executed == 2

    def test_tag_mac(self):
        pu = NdpPu(RING32, F127)
        pu.mac_tag(0, 3, 7)
        pu.mac_tag(0, 1, 100)
        assert pu.load_tag(0) == 121

    def test_register_validation(self):
        pu = NdpPu(RING32, F127, n_registers=1)
        with pytest.raises(ConfigurationError):
            pu.mac(1, 1, np.zeros(1, dtype=np.uint32))
        with pytest.raises(ConfigurationError):
            pu.load(0)
        with pytest.raises(ConfigurationError):
            NdpPu(RING32, F127, n_registers=0)

    def test_clear(self):
        pu = NdpPu(RING32, F127)
        pu.mac(0, 1, np.array([5], dtype=np.uint32))
        pu.clear(0)
        with pytest.raises(ConfigurationError):
            pu.load(0)


class TestNdpDimm:
    def test_mac_command_matches_numpy(self, dimm):
        shard = dimm._shards[0]
        inst1 = NdpInst(paddr=0, op=NdpOp.MAC, vsize=8, dsize=32, imm=3, reg_id=0)
        inst2 = NdpInst(paddr=8, op=NdpOp.MAC, vsize=8, dsize=32, imm=2, reg_id=0)
        dimm.execute(0, inst1)
        dimm.execute(0, inst2)
        result = dimm.load(0, NdpLd(reg_id=0, vsize=8, dsize=32))
        expected = (3 * shard[:8].astype(np.int64) + 2 * shard[8:16]) % (1 << 32)
        assert np.array_equal(result.astype(np.int64), expected)

    def test_copy_overwrites(self, dimm):
        dimm.execute(0, NdpInst(0, NdpOp.MAC, 4, 32, 5, 1))
        dimm.execute(0, NdpInst(4, NdpOp.COPY, 4, 32, 0, 1))
        shard = dimm._shards[0]
        assert np.array_equal(dimm.load(0, NdpLd(1, 4, 32)), shard[4:8])

    def test_add_is_weight_one(self, dimm):
        shard = dimm._shards[1]
        dimm.execute(1, NdpInst(0, NdpOp.ADD, 4, 32, 99, 2))
        assert np.array_equal(dimm.load(1, NdpLd(2, 4, 32)), shard[:4])

    def test_ranks_isolated(self, dimm):
        dimm.execute(0, NdpInst(0, NdpOp.MAC, 4, 32, 1, 0))
        with pytest.raises(ConfigurationError):
            dimm.load(1, NdpLd(0, 4, 32))  # rank 1's register untouched

    def test_out_of_bounds_read_rejected(self, dimm):
        with pytest.raises(ConfigurationError):
            dimm.execute(0, NdpInst(250, NdpOp.MAC, 16, 32, 1, 0))

    def test_invalid_rank_rejected(self, dimm):
        with pytest.raises(ConfigurationError):
            dimm.execute(5, NdpInst(0, NdpOp.MAC, 4, 32, 1, 0))


class TestCommandFormats:
    def test_ndpinst_vector_bytes(self):
        inst = NdpInst(0, NdpOp.MAC, vsize=32, dsize=32, imm=1, reg_id=0)
        assert inst.vector_bytes == 128

    def test_secndpinst_strips_to_plain_command(self):
        from repro.ndp import SecNdpInst

        inner = NdpInst(0x100, NdpOp.MAC, 32, 32, 7, 3)
        sec = SecNdpInst(inner=inner, version=42, verify=True)
        assert sec.to_ndp_command() == inner  # NDP sees no SecNDP fields
