"""Tweaked encryption systems E_00/E_01/E_10 and counter-block layout."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.tweaked import (
    DOMAIN_CHECKSUM,
    DOMAIN_DATA,
    DOMAIN_TAG,
    CounterBlockLayout,
    TweakedCipher,
)

KEY = bytes(range(16))


class TestLayout:
    def test_default_fits_block(self):
        layout = CounterBlockLayout()
        assert 2 + layout.addr_bits + layout.version_bits + layout.pad_bits == 128

    def test_pack_places_domain_in_top_bits(self):
        layout = CounterBlockLayout()
        block = layout.pack(DOMAIN_TAG, 0, 0)
        assert block[0] >> 6 == DOMAIN_TAG
        assert block[1:] == bytes(15)

    def test_pack_rejects_oversized_fields(self):
        layout = CounterBlockLayout(addr_bits=38, version_bits=64)
        with pytest.raises(ValueError):
            layout.pack(DOMAIN_DATA, 1 << 38, 0)
        with pytest.raises(ValueError):
            layout.pack(DOMAIN_DATA, 0, 1 << 64)
        with pytest.raises(ValueError):
            layout.pack(0b11, 0, 0)  # '11' domain is undefined

    def test_overflowing_layout_rejected(self):
        with pytest.raises(ValueError):
            CounterBlockLayout(addr_bits=64, version_bits=64)

    def test_distinct_fields_distinct_blocks(self):
        layout = CounterBlockLayout()
        blocks = {
            layout.pack(DOMAIN_DATA, 0x10, 1),
            layout.pack(DOMAIN_DATA, 0x10, 2),
            layout.pack(DOMAIN_DATA, 0x20, 1),
            layout.pack(DOMAIN_CHECKSUM, 0x10, 1),
            layout.pack(DOMAIN_TAG, 0x10, 1),
        }
        assert len(blocks) == 5

    @given(
        st.sampled_from([DOMAIN_DATA, DOMAIN_CHECKSUM, DOMAIN_TAG]),
        st.lists(st.integers(0, (1 << 38) - 1), min_size=1, max_size=16),
        st.integers(0, (1 << 64) - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_pack_many_matches_pack(self, domain, addrs, version):
        layout = CounterBlockLayout()
        many = layout.pack_many(domain, np.array(addrs, dtype=np.uint64), version)
        for i, a in enumerate(addrs):
            assert bytes(many[i]) == layout.pack(domain, a, version)

    def test_small_version_field_layout(self):
        layout = CounterBlockLayout(addr_bits=20, version_bits=8)
        a = layout.pack(DOMAIN_DATA, 0xABCDE, 0x5A)
        b = layout.pack_many(DOMAIN_DATA, np.array([0xABCDE], dtype=np.uint64), 0x5A)
        assert a == bytes(b[0])


class TestTweakedCipher:
    def test_domain_separation(self):
        tc = TweakedCipher(KEY)
        pads = {
            tc.encrypt_counter(d, 0x1000, 3)
            for d in (DOMAIN_DATA, DOMAIN_CHECKSUM, DOMAIN_TAG)
        }
        assert len(pads) == 3

    def test_version_changes_pad(self):
        tc = TweakedCipher(KEY)
        assert tc.encrypt_counter(DOMAIN_DATA, 0x40, 0) != tc.encrypt_counter(
            DOMAIN_DATA, 0x40, 1
        )

    def test_address_changes_pad(self):
        tc = TweakedCipher(KEY)
        assert tc.encrypt_counter(DOMAIN_DATA, 0x40, 0) != tc.encrypt_counter(
            DOMAIN_DATA, 0x50, 0
        )

    def test_key_changes_pad(self):
        a = TweakedCipher(KEY).encrypt_counter(DOMAIN_DATA, 0x40, 0)
        b = TweakedCipher(bytes(16)).encrypt_counter(DOMAIN_DATA, 0x40, 0)
        assert a != b

    def test_int_form_matches_bytes(self):
        tc = TweakedCipher(KEY)
        assert tc.encrypt_counter_int(DOMAIN_TAG, 0x80, 9) == int.from_bytes(
            tc.encrypt_counter(DOMAIN_TAG, 0x80, 9), "big"
        )

    def test_batch_matches_single(self):
        tc = TweakedCipher(KEY)
        addrs = np.array([0, 16, 32, 1 << 30], dtype=np.uint64)
        batch = tc.encrypt_counters(DOMAIN_CHECKSUM, addrs, 5)
        for i, a in enumerate(addrs):
            assert bytes(batch[i]) == tc.encrypt_counter(DOMAIN_CHECKSUM, int(a), 5)
