"""DramSystem facade: logical/physical consistency and NDP-local access."""

from __future__ import annotations

import pytest

from repro.memsim import DDR4_2400, DramGeometry, DramSystem


class TestFacade:
    def test_logical_equals_physical_under_identity_pages(self):
        a = DramSystem(identity_pages=True)
        b = DramSystem(identity_pages=True)
        r1 = a.access_logical(0x12340, at=0)
        r2 = b.access_physical(0x12340, at=0)
        assert r1 == r2

    def test_page_mapping_changes_decode_but_not_offset(self):
        system = DramSystem(page_seed=3)
        phys = system.pages.translate(0x1234)
        assert phys % 4096 == 0x234  # page offset preserved
        assert phys != 0x1234        # but the frame moved

    def test_rank_local_decode_rank_pins(self):
        system = DramSystem(identity_pages=True)
        res = system.access_rank_local(5, 0, at=0)
        assert system.controller.counters.reads == 1
        # rank 5's bank got the ACT, others untouched
        assert system.controller.ranks[5].last_act_cycle >= 0
        assert system.controller.ranks[0].last_act_cycle < 0

    def test_write_accounting(self):
        system = DramSystem(identity_pages=True)
        system.access_physical(0, is_write=True)
        system.access_physical(64, is_write=False)
        assert system.counters.writes == 1
        assert system.counters.reads == 1

    def test_energy_keys(self):
        system = DramSystem(identity_pages=True)
        system.access_physical(0)
        energy = system.energy_nj()
        assert set(energy) == {
            "dram_core_nj",
            "io_nj",
            "ndp_internal_nj",
            "background_nj",
            "total_nj",
        }
        assert energy["total_nj"] > 0

    def test_elapsed_ns_tracks_last_completion(self):
        system = DramSystem(identity_pages=True)
        res = system.access_physical(0)
        assert system.elapsed_ns() == pytest.approx(
            DDR4_2400.cycles_to_ns(res.completion_cycle)
        )

    def test_disable_refresh_passthrough(self):
        system = DramSystem(identity_pages=True, enable_refresh=False)
        assert all(not c.enable_refresh for c in system.controllers)
