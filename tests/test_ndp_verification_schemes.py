"""Tag-placement geometry (Sec. V-D) and the AES-engine model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ndp import AES_BLOCK_NS, AesEngineModel, TagPlacement, TagScheme


class TestTagPlacement:
    def test_enc_only_no_overheads(self):
        p = TagPlacement(TagScheme.ENC_ONLY, row_bytes=128)
        assert p.stride_bytes == 128
        assert p.lines_for_row(0) == 2
        assert p.lines_for_row(1) == 2
        assert not p.extra_tag_line()
        assert p.tag_otp_blocks_per_row() == 0

    def test_ver_coloc_stride_includes_tag(self):
        p = TagPlacement(TagScheme.VER_COLOC, row_bytes=128)
        assert p.stride_bytes == 144
        # Units of 144 B cross an extra line boundary for some indices.
        lines = [p.lines_for_row(i) for i in range(8)]
        assert min(lines) >= 3 - 1
        assert max(lines) == 3

    def test_ver_coloc_subline_rows(self):
        p = TagPlacement(TagScheme.VER_COLOC, row_bytes=32)
        lines = [p.lines_for_row(i) for i in range(16)]
        # 48 B units: half stay in one line, half straddle two.
        assert set(lines) == {1, 2}

    def test_ver_sep_extra_line(self):
        p = TagPlacement(TagScheme.VER_SEP, row_bytes=128)
        assert p.extra_tag_line()
        assert p.stride_bytes == 128

    def test_ver_ecc_feasibility(self):
        ok = TagPlacement(TagScheme.VER_ECC, row_bytes=128)
        assert ok.ecc_feasible
        with pytest.raises(ConfigurationError):
            TagPlacement(TagScheme.VER_ECC, row_bytes=32)

    def test_tag_otp_blocks(self):
        assert TagPlacement(TagScheme.VER_ECC, 128).tag_otp_blocks_per_row() == 1
        assert TagPlacement(TagScheme.VER_SEP, 128).tag_otp_blocks_per_row() == 1

    def test_verified_property(self):
        assert not TagScheme.ENC_ONLY.verified
        assert TagScheme.VER_COLOC.verified
        assert TagScheme.VER_SEP.verified
        assert TagScheme.VER_ECC.verified

    def test_invalid_row_bytes(self):
        with pytest.raises(ConfigurationError):
            TagPlacement(TagScheme.ENC_ONLY, row_bytes=0)


class TestAesEngineModel:
    def test_paper_throughput(self):
        # [22]: 111.3 Gbps = one block per 1.15 ns.
        one = AesEngineModel(n_engines=1)
        assert abs(one.throughput_gbps - 111.3) < 0.1
        assert one.otp_time_ns(1000) == pytest.approx(1000 * AES_BLOCK_NS)

    def test_scaling_with_engines(self):
        assert AesEngineModel(4).otp_time_ns(1000) == pytest.approx(
            AesEngineModel(1).otp_time_ns(1000) / 4
        )

    def test_zero_blocks_zero_time(self):
        assert AesEngineModel(8).otp_time_ns(0) == 0.0

    def test_pipeline_fill(self):
        m = AesEngineModel(1)
        assert m.otp_time_ns(1, include_fill=True) > m.otp_time_ns(1)

    def test_blocks_for_bytes(self):
        m = AesEngineModel(1)
        assert m.blocks_for_bytes(16) == 1
        assert m.blocks_for_bytes(17) == 2
        assert m.blocks_for_bytes(128) == 8

    def test_invalid_engine_count(self):
        with pytest.raises(ConfigurationError):
            AesEngineModel(0)
