"""Alg. 8 (multi-point checksum) wired into the full protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MultiPointChecksum,
    SecNDPParams,
    SecNDPProcessor,
    UntrustedNdpDevice,
)
from repro.errors import VerificationError

KEY = bytes(range(16))

#: A small Mersenne-prime tag field so cnt_s = 128/61 = 2 points.
SMALL_Q = (1 << 61) - 1


@pytest.fixture(params=["default-q", "small-q"])
def parties(request):
    if request.param == "default-q":
        params = SecNDPParams(element_bits=32)
    else:
        params = SecNDPParams(element_bits=32, tag_modulus=SMALL_Q)
    proc = SecNDPProcessor(KEY, params, multipoint_checksum=True)
    dev = UntrustedNdpDevice(params)
    return proc, dev


@pytest.fixture
def stored_mp(parties, small_matrix):
    proc, dev = parties
    enc = proc.encrypt_matrix(small_matrix, 0x10000, "mp", with_tags=True)
    dev.store("mp", enc)
    return proc, dev, small_matrix


class TestMultiPointProtocol:
    def test_uses_multipoint_checksum(self, parties):
        proc, _ = parties
        assert isinstance(proc.checksum, MultiPointChecksum)

    def test_honest_query_verifies(self, stored_mp):
        proc, dev, matrix = stored_mp
        rows = [1, 4, 9]
        weights = [2, 1, 3]
        res = proc.weighted_row_sum(dev, "mp", rows, weights, verify=True)
        expected = (
            np.array(weights)[:, None] * matrix[rows].astype(np.int64)
        ).sum(axis=0) % (1 << 32)
        assert np.array_equal(res.values.astype(np.int64), expected)

    def test_tampering_detected(self, stored_mp):
        proc, dev, _ = stored_mp
        dev.tamper_results(1)
        with pytest.raises(VerificationError):
            proc.weighted_row_sum(dev, "mp", [0, 1], [1, 1])

    def test_overflow_detected(self, parties):
        proc, dev = parties
        big = np.full((4, 8), (1 << 31) + 3, dtype=np.uint32)
        enc = proc.encrypt_matrix(big, 0x50000, "big", with_tags=True)
        dev.store("big", enc)
        with pytest.raises(VerificationError):
            proc.weighted_row_sum(dev, "big", [0, 1], [1, 1])


class TestCrossSchemeIsolation:
    def test_single_and_multi_point_tags_differ(self, small_matrix):
        params = SecNDPParams(element_bits=32, tag_modulus=SMALL_Q)
        single = SecNDPProcessor(KEY, params, multipoint_checksum=False)
        multi = SecNDPProcessor(KEY, params, multipoint_checksum=True)
        e1 = single.encrypt_matrix(small_matrix, 0x1000, "a", with_tags=True)
        e2 = multi.encrypt_matrix(small_matrix, 0x1000, "a", with_tags=True)
        # Same key, same versions, same data - but different hash family.
        assert e1.tags != e2.tags

    def test_verifier_scheme_must_match_signer(self, small_matrix):
        params = SecNDPParams(element_bits=32, tag_modulus=SMALL_Q)
        signer = SecNDPProcessor(KEY, params, multipoint_checksum=True)
        verifier = SecNDPProcessor(KEY, params, multipoint_checksum=False)
        dev = UntrustedNdpDevice(params)
        enc = signer.encrypt_matrix(small_matrix, 0x1000, "x", with_tags=True)
        dev.store("x", enc)
        # The verifier regenerates the same versions through its own
        # manager, but hashes with the wrong family -> mismatch.
        verifier.versions.fresh("x/data")
        verifier.versions.fresh("x/checksum")
        verifier.versions.fresh("x/tag")
        with pytest.raises(VerificationError):
            verifier.weighted_row_sum(dev, "x", [0, 1], [1, 1])
