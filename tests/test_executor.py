"""Instruction-level executor: ISA-faithful execution vs protocol layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import ConfigurationError, VerificationError
from repro.ndp.executor import SecNdpExecutor

KEY = bytes(range(16))


@pytest.fixture
def executor():
    processor = SecNDPProcessor(KEY, SecNDPParams(element_bits=32))
    return SecNdpExecutor(processor, n_ranks=4, n_registers=4)


@pytest.fixture
def matrix():
    rng = np.random.default_rng(8)
    return rng.integers(0, 500, size=(64, 8), dtype=np.uint64).astype(np.uint32)


class TestArithEnc:
    def test_shards_cover_all_rows(self, executor, matrix):
        region = executor.arith_enc("t", matrix, 0x1000)
        for rank in range(4):
            shard = executor.dimm._shards[rank]
            rows = list(range(rank, 64, 4))
            expected = region.encrypted.ciphertext[rows].reshape(-1)
            assert np.array_equal(shard, expected)

    def test_duplicate_region_rejected(self, executor, matrix):
        executor.arith_enc("t", matrix, 0x1000)
        with pytest.raises(ConfigurationError):
            executor.arith_enc("t", matrix, 0x2000)


class TestWeightedSum:
    def test_matches_plaintext(self, executor, matrix):
        executor.arith_enc("t", matrix, 0x1000)
        rows = [0, 5, 13, 22, 63]
        weights = [1, 2, 1, 3, 1]
        out = executor.weighted_sum("t", rows, weights)
        expected = (
            np.array(weights)[:, None] * matrix[rows].astype(np.int64)
        ).sum(axis=0) % (1 << 32)
        assert np.array_equal(out.astype(np.int64), expected)

    def test_matches_protocol_layer(self, executor, matrix):
        """The ISA path and the direct protocol path agree bit-for-bit."""
        executor.arith_enc("t", matrix, 0x1000)
        rows = [3, 17, 42]
        weights = [2, 2, 1]
        isa_out = executor.weighted_sum("t", rows, weights)

        proc = executor.processor
        device = UntrustedNdpDevice(proc.params)
        device.store("t", executor._regions["t"].encrypted)
        proto_out = device_sum = proc.weighted_row_sum(
            device, "t", rows, weights, verify=True
        ).values
        assert np.array_equal(isa_out, proto_out)

    def test_instruction_count(self, executor, matrix):
        executor.arith_enc("t", matrix, 0x1000)
        executor.weighted_sum("t", [0, 1, 2], [1, 1, 1])
        assert executor.instructions_executed == 3

    def test_rows_on_every_rank(self, executor, matrix):
        executor.arith_enc("t", matrix, 0x1000)
        # rows 0..3 land on ranks 0..3
        out = executor.weighted_sum("t", [0, 1, 2, 3], [1, 1, 1, 1])
        expected = matrix[:4].astype(np.int64).sum(axis=0) % (1 << 32)
        assert np.array_equal(out.astype(np.int64), expected)

    def test_tampered_shard_detected(self, executor, matrix):
        executor.arith_enc("t", matrix, 0x1000)
        executor.dimm._shards[1][0] += 1  # flip ciphertext in rank 1's shard
        with pytest.raises(VerificationError):
            executor.weighted_sum("t", [1, 5], [1, 1])  # rows on rank 1

    def test_unverified_mode(self, executor, matrix):
        executor.arith_enc("u", matrix, 0x8000, with_tags=False)
        out = executor.weighted_sum("u", [2, 6], [1, 1], verify=False)
        expected = (matrix[2].astype(np.int64) + matrix[6]) % (1 << 32)
        assert np.array_equal(out.astype(np.int64), expected)

    def test_verify_without_tags_rejected(self, executor, matrix):
        executor.arith_enc("u", matrix, 0x8000, with_tags=False)
        with pytest.raises(VerificationError):
            executor.weighted_sum("u", [0], [1], verify=True)

    def test_sequential_queries_reuse_registers(self, executor, matrix):
        executor.arith_enc("t", matrix, 0x1000)
        a = executor.weighted_sum("t", [0, 4], [1, 1], reg=0)
        b = executor.weighted_sum("t", [0, 4], [1, 1], reg=0)
        assert np.array_equal(a, b)
