"""Property tests: limb-vectorized GF(2^127-1) vs the scalar oracle.

The limb field (`repro.crypto.limb_field`) must be *bit-identical* to the
scalar `PrimeField` for every operation the protocol uses — add, sub,
mul, Horner checksum, dot — and its shift-add fold must agree with
`mersenne_reduce`.  Operands mix hypothesis-generated random 127-bit
values with the classic reduction edge cases (0, 1, q-1, q, 2q-2, 2^127).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import limb_field as lf
from repro.crypto.prime_field import F127, MERSENNE_127, PrimeField, mersenne_reduce

Q = MERSENNE_127

#: Reduction edge cases: zero, one, the extremes of the canonical range,
#: the fold fixed point q, values just past one fold, and powers of two
#: straddling the modulus width.
EDGE_VALUES = [0, 1, Q - 1, Q, Q + 1, 2 * Q - 2, 2 * Q - 1, 2 * Q, 1 << 126, 1 << 127, (1 << 128) - 1]

field_elem = st.integers(min_value=0, max_value=2 * Q)


class TestConversion:
    def test_roundtrip_edges(self):
        limbs = lf.to_limbs(EDGE_VALUES)
        assert lf.from_limbs(limbs) == [v % Q for v in EDGE_VALUES]

    def test_scalar_roundtrip(self):
        assert lf.from_limbs(lf.to_limbs(12345)) == 12345

    def test_numpy_scalar_accepted(self):
        assert lf.from_limbs(lf.to_limbs(np.uint64(7))) == 7

    @given(st.integers(min_value=0, max_value=(1 << 140) - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_reduces(self, v):
        assert lf.from_limbs(lf.to_limbs(v)) == v % Q

    def test_supports_field(self):
        assert lf.supports_field(F127)
        assert not lf.supports_field(PrimeField((1 << 61) - 1))


class TestFold:
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 62) - 1), min_size=4, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_fold_matches_mersenne_reduce(self, cols):
        value = sum(c << (32 * k) for k, c in enumerate(cols))
        folded = lf.fold(np.asarray(cols, dtype=np.uint64))
        assert lf.from_limbs(folded) == mersenne_reduce(value)

    def test_fold_edge_values(self):
        for v in EDGE_VALUES:
            cols = np.asarray(
                [(v >> (32 * k)) & 0xFFFFFFFF for k in range(5)], dtype=np.uint64
            )
            assert lf.from_limbs(lf.fold(cols)) == mersenne_reduce(v)


class TestFieldOps:
    @given(field_elem, field_elem)
    @settings(max_examples=200, deadline=None)
    def test_add_mul_sub_match_oracle(self, a, b):
        la, lb = lf.to_limbs(a), lf.to_limbs(b)
        assert lf.from_limbs(lf.add(la, lb)) == F127.add(a, b)
        assert lf.from_limbs(lf.mul(la, lb)) == F127.mul(a, b)
        assert lf.from_limbs(lf.sub(la, lb)) == F127.sub(a, b)

    def test_edge_value_cross_product(self):
        la = lf.to_limbs(EDGE_VALUES)
        for b in EDGE_VALUES:
            lb = lf.to_limbs([b] * len(EDGE_VALUES))
            assert lf.from_limbs(lf.add(la, lb)) == [F127.add(a, b) for a in EDGE_VALUES]
            assert lf.from_limbs(lf.mul(la, lb)) == [F127.mul(a, b) for a in EDGE_VALUES]
            assert lf.from_limbs(lf.sub(la, lb)) == [F127.sub(a, b) for a in EDGE_VALUES]

    def test_broadcast_shapes(self):
        a = lf.to_limbs([3, 5, 7])
        b = lf.to_limbs(11)
        assert lf.from_limbs(lf.mul(a, b)) == [33, 55, 77]


class TestChecksumAndDot:
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=24),
        field_elem,
    )
    @settings(max_examples=150, deadline=None)
    def test_horner_checksum_matches_oracle(self, row, s):
        matrix = np.asarray([row], dtype=np.uint64)
        tags = lf.from_limbs(lf.horner_checksum(matrix, s))
        assert tags == [F127.checksum(row, s)]

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=24),
        field_elem,
    )
    @settings(max_examples=150, deadline=None)
    def test_power_weight_dot_matches_oracle(self, row, s):
        matrix = np.asarray([row], dtype=np.uint64)
        weights = lf.power_weights(F127, s % Q, len(row))
        assert lf.weighted_row_tags(matrix, weights) == [F127.checksum(row, s % Q)]

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=24),
        st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_dot_ints_matches_oracle(self, weights, data):
        values = [
            data.draw(st.integers(min_value=0, max_value=Q - 1))
            for _ in weights
        ]
        assert lf.dot_ints(weights, values) == F127.dot(weights, values)

    def test_dot_edge_values(self):
        values = [v % Q for v in EDGE_VALUES]
        weights = [1] * len(values)
        assert lf.dot_ints(weights, values) == F127.dot(weights, values)
        weights = [(1 << 64) - 1] * len(values)
        assert lf.dot_ints(weights, values) == F127.dot(weights, values)

    def test_empty_dot(self):
        assert lf.dot_ints([], []) == 0 == F127.dot([], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            lf.dot_ints([1, 2], [3])

    def test_horner_equals_power_dot_on_matrix(self):
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 1 << 64, size=(37, 19), dtype=np.uint64)
        s = int(rng.integers(0, 1 << 62))
        via_horner = lf.from_limbs(lf.horner_checksum(matrix, s))
        via_dot = lf.weighted_row_tags(matrix, lf.power_weights(F127, s, 19))
        assert via_horner == via_dot

    def test_tiered_dot_paths_agree(self):
        """Small / 32-bit / 64-bit residue tiers must produce identical tags."""
        rng = np.random.default_rng(11)
        s = int(rng.integers(1, 1 << 60))
        weights = lf.power_weights(F127, s, 8)
        small = rng.integers(0, 256, size=(5, 8), dtype=np.uint64)
        tags_small = lf.weighted_row_tags(small, weights)
        assert tags_small == [
            F127.checksum([int(x) for x in row], s) for row in small
        ]
        wide = small + np.uint64(1 << 40)  # forces the 64-bit-capable tier
        tags_wide = lf.weighted_row_tags(wide, weights)
        assert tags_wide == [
            F127.checksum([int(x) for x in row], s) for row in wide
        ]


class TestFieldDotDispatch:
    def test_falls_back_for_small_primes(self):
        field = PrimeField(101)
        assert lf.field_dot(field, [3, 4], [5, 6]) == field.dot([3, 4], [5, 6])

    def test_falls_back_for_oversized_weights(self):
        w = [1 << 80, 2]
        v = [3, 4]
        assert lf.field_dot(F127, w, v) == F127.dot(w, v)

    def test_mersenne_path_matches_oracle(self):
        w = [7, (1 << 64) - 1, 0]
        v = [Q - 1, 123456789, Q // 2]
        assert lf.field_dot(F127, w, v) == F127.dot(w, v)
