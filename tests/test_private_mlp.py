"""Private MLP inference over encrypted weights."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import ConfigurationError, VerificationError
from repro.workloads import PrivateMlp

KEY = bytes(range(16))


@pytest.fixture
def parties():
    params = SecNDPParams(element_bits=32)
    return SecNDPProcessor(KEY, params), UntrustedNdpDevice(params)


@pytest.fixture
def mlp(parties):
    processor, device = parties
    rng = np.random.default_rng(0)
    mlp = PrivateMlp(processor, device)
    mlp.add_layer(rng.normal(0, 0.5, size=(16, 32)), rng.normal(0, 0.1, 32))
    mlp.add_layer(rng.normal(0, 0.5, size=(32, 8)), rng.normal(0, 0.1, 8))
    mlp.add_layer(rng.normal(0, 0.5, size=(8, 2)))
    return mlp


class TestConstruction:
    def test_shape_chaining_enforced(self, parties):
        processor, device = parties
        mlp = PrivateMlp(processor, device)
        mlp.add_layer(np.zeros((4, 8)))
        with pytest.raises(ConfigurationError):
            mlp.add_layer(np.zeros((9, 2)))

    def test_bias_shape_enforced(self, parties):
        processor, device = parties
        mlp = PrivateMlp(processor, device)
        with pytest.raises(ConfigurationError):
            mlp.add_layer(np.zeros((4, 8)), bias=np.zeros(3))

    def test_1d_weights_rejected(self, parties):
        processor, device = parties
        with pytest.raises(ConfigurationError):
            PrivateMlp(processor, device).add_layer(np.zeros(8))

    def test_forward_without_layers_rejected(self, parties):
        processor, device = parties
        with pytest.raises(ConfigurationError):
            PrivateMlp(processor, device).forward(np.zeros(4))


class TestInference:
    def test_matches_quantized_plaintext_closely(self, mlp):
        rng = np.random.default_rng(1)
        for _ in range(3):
            x = rng.normal(0, 1, size=16)
            secure = mlp.forward(x)
            plain = mlp.forward_plaintext(x)
            # only activation quantization separates the two paths
            assert np.max(np.abs(secure - plain)) < 0.25

    def test_matches_float_reference_within_quant_error(self, parties):
        processor, device = parties
        rng = np.random.default_rng(2)
        w1 = rng.normal(0, 0.5, size=(12, 6))
        w2 = rng.normal(0, 0.5, size=(6, 3))
        mlp = PrivateMlp(processor, device)
        mlp.add_layer(w1)
        mlp.add_layer(w2)
        x = rng.normal(0, 1, size=12)
        secure = mlp.forward(x)
        ref = np.maximum(x @ w1, 0) @ w2
        assert np.max(np.abs(secure - ref)) < 0.35

    def test_input_dim_checked(self, mlp):
        with pytest.raises(ConfigurationError):
            mlp.forward(np.zeros(15))

    def test_deterministic(self, mlp):
        x = np.linspace(-1, 1, 16)
        assert np.array_equal(mlp.forward(x), mlp.forward(x))

    def test_negative_activations_handled(self, mlp):
        """The shift-to-non-negative trick must be exact for all-negative
        inputs."""
        x = -np.abs(np.random.default_rng(3).normal(1, 0.3, size=16))
        secure = mlp.forward(x)
        plain = mlp.forward_plaintext(x)
        assert np.max(np.abs(secure - plain)) < 0.25


class TestIntegrity:
    def test_weight_tampering_detected(self, parties):
        processor, device = parties
        mlp = PrivateMlp(processor, device)
        mlp.add_layer(np.random.default_rng(4).normal(size=(8, 4)))
        device.corrupt_stored_ciphertext("layer0", 2, 1, delta=5)
        with pytest.raises(VerificationError):
            # varied activations: constant inputs quantize to all-zero
            # weights and would never touch the corrupted row
            mlp.forward(np.arange(8, dtype=float))

    def test_malicious_partial_products_detected(self, parties):
        processor, device = parties
        mlp = PrivateMlp(processor, device)
        mlp.add_layer(np.random.default_rng(5).normal(size=(8, 4)))
        device.tamper_results(3)
        with pytest.raises(VerificationError):
            mlp.forward(np.arange(8, dtype=float))
