"""JSON export of experiment results."""

from __future__ import annotations

import json

import pytest

from repro.harness import SMOKE_SCALE
from repro.harness.experiments import run_figure9, run_table5
from repro.harness.export import export_results, to_jsonable
from repro.ndp import TagScheme


class TestToJsonable:
    def test_primitives_pass_through(self):
        assert to_jsonable(1) == 1
        assert to_jsonable(1.5) == 1.5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_tuple_keys_flattened(self):
        assert to_jsonable({(8, 8): 1.0}) == {"8/8": 1.0}

    def test_enums_to_values(self):
        assert to_jsonable(TagScheme.VER_ECC) == "ver_ecc"

    def test_numpy_scalars(self):
        import numpy as np

        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.int32(7)) == 7

    def test_nested_structures(self):
        data = {"a": [(1, 2), {"b": None}]}
        assert to_jsonable(data) == {"a": [[1, 2], {"b": None}]}


class TestExportBundle:
    def test_experiment_results_serialise(self, tmp_path):
        results = {
            "table5": run_table5(SMOKE_SCALE, measure_traffic=False),
            "figure9": run_figure9(SMOKE_SCALE),
        }
        path = export_results(results, tmp_path / "out.json")
        payload = json.loads(path.read_text())
        assert payload["meta"]["version"]
        assert "table5" in payload["results"]
        norm = payload["results"]["table5"]["normalized"]
        assert norm["unprotected non-NDP"] == pytest.approx(100.0)
        fig9 = payload["results"]["figure9"]["speedups"]
        assert fig9["SLS 8-bit quantized"]["ver_ecc"] is None

    def test_file_is_stable_json(self, tmp_path):
        res = {"table5": run_table5(SMOKE_SCALE, measure_traffic=False)}
        a = export_results(res, tmp_path / "a.json").read_text()
        b = export_results(res, tmp_path / "b.json").read_text()
        assert a == b
