"""NDP packet generation: sharding, register grouping, tag-scheme costs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ndp import (
    NdpWorkload,
    PacketGenerator,
    SimQuery,
    TableGeometry,
    TagScheme,
)


def workload(n_rows=1000, row_bytes=128, queries=None):
    tables = {0: TableGeometry(n_rows=n_rows, row_bytes=row_bytes, result_bytes=128)}
    queries = queries or [SimQuery(0, tuple(range(16)))]
    return NdpWorkload(tables=tables, queries=tuple(queries))


class TestValidation:
    def test_unknown_table_rejected(self):
        wl = NdpWorkload(
            tables={0: TableGeometry(10, 128, 128)},
            queries=(SimQuery(1, (0,)),),
        )
        with pytest.raises(ConfigurationError):
            wl.validate()

    def test_row_out_of_range_rejected(self):
        wl = NdpWorkload(
            tables={0: TableGeometry(10, 128, 128)},
            queries=(SimQuery(0, (10,)),),
        )
        with pytest.raises(ConfigurationError):
            wl.validate()

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            TableGeometry(0, 128, 128)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketGenerator(workload(), ndp_ranks=0, ndp_regs=1)


class TestSharding:
    def test_round_robin_rank_assignment(self):
        gen = PacketGenerator(workload(), ndp_ranks=4, ndp_regs=1)
        assert [gen.rank_of_row(0, r) for r in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert gen.local_index(7) == 1

    def test_row_lines_within_shard(self):
        gen = PacketGenerator(workload(row_bytes=128), ndp_ranks=4, ndp_regs=1)
        rank, lines = gen.row_line_addrs(0, 5)
        assert rank == 1
        assert len(lines) == 2  # 128B = 2 lines
        assert all(a % 64 == 0 for a in lines)

    def test_all_ranks_used(self):
        queries = [SimQuery(0, tuple(range(64)))]
        gen = PacketGenerator(workload(queries=queries), ndp_ranks=8, ndp_regs=1)
        packet = next(gen.packets())
        assert set(packet.rank_lines) == set(range(8))


class TestRegisterGrouping:
    def test_packet_count(self):
        queries = [SimQuery(0, (i,)) for i in range(10)]
        gen = PacketGenerator(workload(queries=queries), ndp_ranks=2, ndp_regs=4)
        packets = list(gen.packets())
        assert [len(p.queries) for p in packets] == [4, 4, 2]

    def test_single_register_one_query_per_packet(self):
        queries = [SimQuery(0, (i,)) for i in range(3)]
        gen = PacketGenerator(workload(queries=queries), ndp_ranks=2, ndp_regs=1)
        assert all(len(p.queries) == 1 for p in gen.packets())


class TestOtpAccounting:
    def test_data_blocks(self):
        # one query, 16 rows of 128 B -> 8 OTP blocks each.
        gen = PacketGenerator(workload(), ndp_ranks=2, ndp_regs=1)
        packet = next(gen.packets())
        assert packet.data_otp_blocks == 16 * 8
        assert packet.tag_otp_blocks == 0

    def test_tag_blocks_when_verified(self):
        gen = PacketGenerator(
            workload(), ndp_ranks=2, ndp_regs=1, tag_scheme=TagScheme.VER_ECC
        )
        packet = next(gen.packets())
        assert packet.tag_otp_blocks == 16  # one 128-bit tag pad per row

    def test_result_lines_scale_with_ranks_touched(self):
        queries = [SimQuery(0, tuple(range(16)))]
        gen2 = PacketGenerator(workload(queries=queries), ndp_ranks=2, ndp_regs=1)
        gen8 = PacketGenerator(workload(queries=queries), ndp_ranks=8, ndp_regs=1)
        p2 = next(gen2.packets())
        p8 = next(gen8.packets())
        assert p8.result_lines > p2.result_lines


class TestTagSchemes:
    def test_ver_sep_adds_tag_line(self):
        base = PacketGenerator(workload(), ndp_ranks=2, ndp_regs=1)
        sep = PacketGenerator(
            workload(), ndp_ranks=2, ndp_regs=1, tag_scheme=TagScheme.VER_SEP
        )
        p_base = next(base.packets())
        p_sep = next(sep.packets())
        assert p_sep.total_lines == p_base.total_lines + 16  # 1 extra line/row

    def test_ver_coloc_inflates_some_rows(self):
        base = PacketGenerator(workload(), ndp_ranks=1, ndp_regs=1)
        coloc = PacketGenerator(
            workload(), ndp_ranks=1, ndp_regs=1, tag_scheme=TagScheme.VER_COLOC
        )
        p_base = next(base.packets())
        p_coloc = next(coloc.packets())
        # 128+16 B units at 144 B stride: some rows need 3 lines.
        assert p_base.total_lines < p_coloc.total_lines <= p_base.total_lines + 16

    def test_ver_ecc_adds_no_lines(self):
        base = PacketGenerator(workload(), ndp_ranks=2, ndp_regs=1)
        ecc = PacketGenerator(
            workload(), ndp_ranks=2, ndp_regs=1, tag_scheme=TagScheme.VER_ECC
        )
        assert next(ecc.packets()).total_lines == next(base.packets()).total_lines

    def test_ver_ecc_infeasible_for_subline_rows(self):
        # The tag does not fit the ECC capacity of a sub-line row; the
        # generator rejects the configuration up front (at layout time).
        with pytest.raises(ConfigurationError):
            PacketGenerator(
                workload(row_bytes=32),
                ndp_ranks=2,
                ndp_regs=1,
                tag_scheme=TagScheme.VER_ECC,
            )
