"""Tests for the asyncio batching front-end (``repro.serve``).

Covers the frame protocol, the coalescing scheduler (including every
edge case from DESIGN.md Sec. 15: empty batch tick, single-request
batch, pre-admission validation, mid-batch re-encryption, per-request
verification outcomes), SLO-aware admission control, graceful shutdown,
the TCP server/client pair and the serving-specific telemetry surface.

No pytest-asyncio dependency: each async scenario runs under its own
``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import struct
import time

import numpy as np
import pytest

from repro import obs
from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import (
    ConfigurationError,
    OverloadedError,
    SecNDPError,
    ServerClosedError,
    VerificationError,
)
from repro.obs.export import to_prometheus, validate_prometheus_text
from repro.obs.slo import SloSpec
from repro.parallel import ParallelSlsEngine
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    AsyncSlsClient,
    BatchScheduler,
    FrameError,
    SlsRequest,
    SlsResponse,
    SlsServer,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_SHUTTING_DOWN,
)
from repro.serve.protocol import (
    CODEC_JSON,
    MAX_FRAME_BYTES,
    available_codecs,
    decode_payload,
    encode_frame,
    error_response,
    read_frame,
    resolve_codec,
)
from repro.workloads.secure_sls import SecureEmbeddingStore

KEY = bytes(range(16))


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    obs.disable_events()
    yield
    obs.disable()
    obs.reset()
    obs.disable_events()


def make_store(n_rows: int = 64, dim: int = 16, seed: int = 0) -> SecureEmbeddingStore:
    params = SecNDPParams(element_bits=32)
    store = SecureEmbeddingStore(
        SecNDPProcessor(KEY, params), UntrustedNdpDevice(params), quantization="table"
    )
    rng = np.random.default_rng(seed)
    store.add_table("emb", rng.normal(size=(n_rows, dim)))
    return store


def make_queries(n_rows: int, n_queries: int, pf: int = 6, seed: int = 7):
    rng = np.random.default_rng(seed)
    return [
        [int(r) for r in rng.integers(0, n_rows, size=pf)] for _ in range(n_queries)
    ]


# -- frame protocol ------------------------------------------------------------


class TestFrameProtocol:
    def test_json_request_round_trip(self):
        req = SlsRequest(id=3, op="sls", table="emb", rows=(1, 2, 2), weights=(1, 4, 2))
        frame = encode_frame(req.to_wire(), CODEC_JSON)
        codec, length = struct.unpack(">BI", frame[:5])
        assert codec == CODEC_JSON and length == len(frame) - 5
        back = SlsRequest.from_wire(decode_payload(codec, frame[5:]))
        assert back == req

    def test_json_response_floats_bit_exact(self):
        # Shortest-repr JSON floats round-trip bit-exactly; this is what
        # lets the TCP path keep the repo's bit-identity guarantee.
        values = tuple(float(v) for v in np.random.default_rng(0).normal(size=32))
        resp = SlsResponse(id=9, status=STATUS_OK, values=values)
        frame = encode_frame(resp.to_wire(), CODEC_JSON)
        back = SlsResponse.from_wire(decode_payload(CODEC_JSON, frame[5:]))
        assert np.array_equal(np.asarray(back.values), np.asarray(values))

    def test_read_frame_clean_eof(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await read_frame(reader)

        assert asyncio.run(run()) is None

    def test_read_frame_truncated_header(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x01\x00")
            reader.feed_eof()
            with pytest.raises(FrameError, match="mid-header"):
                await read_frame(reader)

        asyncio.run(run())

    def test_read_frame_truncated_payload(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">BI", CODEC_JSON, 10) + b"{_tru")
            reader.feed_eof()
            with pytest.raises(FrameError, match="mid-frame"):
                await read_frame(reader)

        asyncio.run(run())

    def test_read_frame_oversized_length_prefix(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">BI", CODEC_JSON, MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameError, match="MAX_FRAME_BYTES"):
                await read_frame(reader)

        asyncio.run(run())

    def test_unknown_codec_id_rejected(self):
        with pytest.raises(FrameError, match="unknown codec"):
            decode_payload(99, b"{}")
        with pytest.raises(FrameError, match="unknown codec"):
            encode_frame({}, 99)

    def test_msgpack_gated_when_absent(self):
        if "msgpack" in available_codecs():
            assert resolve_codec("msgpack") != CODEC_JSON
        else:
            with pytest.raises(ConfigurationError, match="msgpack"):
                resolve_codec("msgpack")
        with pytest.raises(ConfigurationError, match="unknown frame codec"):
            resolve_codec("protobuf")

    def test_bad_status_rejected(self):
        with pytest.raises(FrameError, match="status"):
            SlsResponse(id=1, status="maybe")

    def test_error_response_carries_kind(self):
        resp = error_response(7, VerificationError("tag mismatch"))
        assert resp.status == "error"
        assert resp.kind == "VerificationError"
        assert "tag mismatch" in resp.error


# -- sls_scatter (per-query outcomes) ------------------------------------------


class TestSlsScatter:
    def test_happy_path_matches_sls(self):
        store = make_store()
        queries = make_queries(64, 8)
        expected = np.asarray([store.sls("emb", q) for q in queries])
        values, outcomes = store.sls_scatter("emb", queries)
        assert np.array_equal(values, expected)
        assert all(o.ok and not o.degraded for o in outcomes)

    def test_corrupted_row_fails_only_touching_queries(self):
        store = make_store()
        bad_row = 5
        queries = [[1, 2, 3], [4, bad_row, 6], [7, 8, 9], [bad_row, 10, 11]]
        expected = np.asarray([store.sls("emb", q) for q in queries])
        store.device.corrupt_stored_ciphertext("emb", bad_row, 0, 1)
        values, outcomes = store.sls_scatter("emb", queries)
        for i, q in enumerate(queries):
            if bad_row in q:
                assert not outcomes[i].ok
                assert outcomes[i].kind == "VerificationError"
                assert np.all(values[i] == 0.0)
            else:
                assert outcomes[i].ok and outcomes[i].degraded
                assert np.array_equal(values[i], expected[i])


# -- engine submit/offload (satellite 1 + 2) -----------------------------------


class TestEngineOffload:
    def test_submit_returns_future_matching_sls_many(self):
        store = make_store()
        engine = ParallelSlsEngine(store, workers=0)
        try:
            queries = make_queries(64, 6)
            future = engine.submit("emb", queries)
            expected = np.asarray([store.sls("emb", q) for q in queries])
            assert np.array_equal(future.result(timeout=30), expected)
        finally:
            engine.close()

    def test_offload_after_close_raises(self):
        store = make_store()
        engine = ParallelSlsEngine(store, workers=0)
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            engine.offload(store.sls, "emb", [0])

    def test_close_releases_offload_thread(self):
        store = make_store()
        engine = ParallelSlsEngine(store, workers=0)
        engine.submit("emb", [[0, 1]]).result(timeout=30)
        assert engine._offload is not None
        engine.close()
        assert engine._offload is None


# -- the coalescing scheduler --------------------------------------------------


class TestBatchScheduler:
    def test_config_validation(self):
        store = make_store()
        with pytest.raises(ConfigurationError, match="max_batch"):
            BatchScheduler(store, max_batch=0)
        other = make_store()
        engine = ParallelSlsEngine(other, workers=0)
        try:
            with pytest.raises(ConfigurationError, match="wrap"):
                BatchScheduler(store, engine=engine)
        finally:
            engine.close()

    def test_coalesces_and_stays_bit_identical(self):
        store = make_store(n_rows=128, dim=16)
        queries = make_queries(128, 40)
        expected = np.asarray([store.sls("emb", q) for q in queries])

        async def run():
            scheduler = BatchScheduler(store, max_batch=16)
            client = AsyncSlsClient.in_process(scheduler)
            results = await asyncio.gather(*[client.sls("emb", q) for q in queries])
            stats = scheduler.stats()
            await scheduler.close()
            return np.asarray(results), stats

        results, stats = asyncio.run(run())
        assert np.array_equal(results, expected)
        assert stats["batches"] < len(queries)  # actually coalesced
        assert stats["batch_queries"] == len(queries)
        assert stats["mean_batch_fill"] > 1.0
        assert stats["dedupe_ratio"] <= 1.0
        assert stats["responses_ok"] == len(queries)

    def test_single_request_batch(self):
        store = make_store()
        expected = store.sls("emb", [3, 1, 4], [2, 1, 2])

        async def run():
            scheduler = BatchScheduler(store)
            client = AsyncSlsClient.in_process(scheduler)
            result = await client.sls("emb", [3, 1, 4], [2, 1, 2])
            stats = scheduler.stats()
            await scheduler.close()
            return result, stats

        result, stats = asyncio.run(run())
        assert np.array_equal(result, expected)
        assert stats["batches"] == 1
        assert stats["mean_batch_fill"] == 1.0  # no dedupe win, still exact

    def test_empty_batch_tick_when_all_cancelled(self):
        store = make_store()

        async def run():
            scheduler = BatchScheduler(
                store,
                admission=AdmissionConfig(min_wait_us=100.0, max_wait_us=500.0),
            )
            task = asyncio.ensure_future(
                scheduler.submit(SlsRequest(id=1, table="emb", rows=(0, 1)))
            )
            await asyncio.sleep(0)  # enqueue + spawn the batcher
            task.cancel()
            await asyncio.sleep(0.05)  # let the batch window elapse
            stats = scheduler.stats()
            await scheduler.close()
            return stats

        stats = asyncio.run(run())
        assert stats["empty_ticks"] == 1
        assert stats["batches"] == 0
        assert stats["pending"] == 0

    def test_oversized_query_rejected_before_admission(self):
        store = make_store()

        async def run():
            scheduler = BatchScheduler(store)
            client = AsyncSlsClient.in_process(scheduler)
            # A 2^31 weight blows the Thm. A.2 overflow budget for any
            # pooling factor; the store's _validate_query must reject it
            # before the admission gate ever sees the request.
            resp = await client.sls_response("emb", [0, 1], [2**31, 1])
            neg = await client.sls_response("emb", [0], [-1])
            unknown = await client.sls_response("nope", [0])
            stats = scheduler.stats()
            await scheduler.close()
            return resp, neg, unknown, stats

        resp, neg, unknown, stats = asyncio.run(run())
        assert resp.status == "error" and resp.kind == "ConfigurationError"
        assert "overflow" in resp.error
        assert neg.status == "error" and neg.kind == "ConfigurationError"
        assert unknown.status == "error" and "unknown table" in unknown.error
        assert stats["rejected_invalid"] == 3
        # Rejected-before-admission: the gate saw nothing.
        assert stats["admission.admitted"] == 0
        assert stats["admission.shed"] == 0

    def test_corrupted_row_fails_exactly_touching_requests(self):
        store = make_store()
        bad_row = 9
        queries = [[1, 2], [bad_row, 3], [4, 5], [6, bad_row], [7, 8]]
        expected = [store.sls("emb", q) for q in queries]
        store.device.corrupt_stored_ciphertext("emb", bad_row, 0, 1)

        async def run():
            scheduler = BatchScheduler(store, max_batch=len(queries))
            client = AsyncSlsClient.in_process(scheduler)
            responses = await asyncio.gather(
                *[client.sls_response("emb", q) for q in queries]
            )
            stats = scheduler.stats()
            await scheduler.close()
            return responses, stats

        responses, stats = asyncio.run(run())
        for resp, q, exp in zip(responses, queries, expected):
            if bad_row in q:
                assert resp.status == "error"
                assert resp.kind == "VerificationError"
                assert resp.via == "scatter"
            else:
                assert resp.status == STATUS_OK
                assert np.array_equal(np.asarray(resp.values), exp)
        assert stats["responses_error"] == 2
        assert stats["responses_ok"] == 3

    def test_mid_batch_reencryption_stays_exact(self):
        # The stale-arena path: an engine-backed scheduler keeps serving
        # bit-identical results across a table re-encryption (version
        # bump) happening between batches.
        from repro.faults.recovery import RecoveryPolicy

        params = SecNDPParams(element_bits=32)
        store = SecureEmbeddingStore(
            SecNDPProcessor(KEY, params),
            UntrustedNdpDevice(params),
            quantization="table",
            recovery=RecoveryPolicy(retain_plaintext=True),
        )
        store.add_table("emb", np.random.default_rng(0).normal(size=(64, 8)))
        engine = ParallelSlsEngine(store, workers=0)
        queries = make_queries(64, 6)

        async def run():
            scheduler = BatchScheduler(store, engine=engine, max_batch=4)
            client = AsyncSlsClient.in_process(scheduler)
            first = await asyncio.gather(*[client.sls("emb", q) for q in queries])
            store.reencrypt_table("emb")
            second = await asyncio.gather(*[client.sls("emb", q) for q in queries])
            await scheduler.close()
            return np.asarray(first), np.asarray(second)

        try:
            first, second = asyncio.run(run())
        finally:
            engine.close()
        expected = np.asarray([store.sls("emb", q) for q in queries])
        assert np.array_equal(first, expected)
        assert np.array_equal(second, expected)

    def test_event_loop_stays_responsive_during_slow_batch(self):
        # Satellite regression test: crypto runs on the offload thread,
        # so a heartbeat task must keep ticking while a batch executes.
        store = make_store()
        real_sls_many = store.sls_many

        def slow_sls_many(*args, **kwargs):
            time.sleep(0.25)  # blocks the offload thread, not the loop
            return real_sls_many(*args, **kwargs)

        store.sls_many = slow_sls_many

        async def run():
            scheduler = BatchScheduler(store)
            client = AsyncSlsClient.in_process(scheduler)
            ticks = 0

            async def heartbeat():
                nonlocal ticks
                while True:
                    await asyncio.sleep(0.01)
                    ticks += 1

            beat = asyncio.ensure_future(heartbeat())
            result = await client.sls("emb", [0, 1, 2])
            beat.cancel()
            await scheduler.close()
            return result, ticks

        result, ticks = asyncio.run(run())
        assert np.array_equal(result, store.sls("emb", [0, 1, 2]))
        # 0.25s blocked thread at a 10ms heartbeat: well over 5 ticks
        # unless the loop itself was blocked.
        assert ticks >= 5


# -- graceful shutdown (satellite 2) -------------------------------------------


class TestShutdown:
    def test_drain_completes_inflight_then_rejects(self):
        store = make_store()
        queries = make_queries(64, 8)
        expected = np.asarray([store.sls("emb", q) for q in queries])

        async def run():
            scheduler = BatchScheduler(store, max_batch=8)
            client = AsyncSlsClient.in_process(scheduler)
            inflight = [
                asyncio.ensure_future(client.sls("emb", q)) for q in queries
            ]
            await asyncio.sleep(0)  # enqueue everything
            await scheduler.close()
            results = await asyncio.gather(*inflight)
            late = await client.sls_response("emb", queries[0])
            stats = scheduler.stats()
            return np.asarray(results), late, stats

        results, late, stats = asyncio.run(run())
        assert np.array_equal(results, expected)  # in-flight work completed
        assert late.status == STATUS_SHUTTING_DOWN
        assert late.kind == "ServerClosedError"
        assert stats["rejected_shutdown"] == 1
        assert stats["pending"] == 0

    def test_close_is_idempotent_and_releases_executor(self):
        store = make_store()

        async def run():
            scheduler = BatchScheduler(store)
            client = AsyncSlsClient.in_process(scheduler)
            await client.sls("emb", [0, 1])
            assert scheduler._executor is not None
            await scheduler.close()
            await scheduler.close()
            assert scheduler._executor is None

        asyncio.run(run())

    def test_client_raises_server_closed(self):
        store = make_store()

        async def run():
            scheduler = BatchScheduler(store)
            client = AsyncSlsClient.in_process(scheduler)
            await scheduler.close()
            with pytest.raises(ServerClosedError):
                await client.sls("emb", [0])

        asyncio.run(run())

    def test_teardown_error_accounting(self):
        store = make_store()
        engine = ParallelSlsEngine(store, workers=0)
        engine.submit("emb", [[0]]).result(timeout=30)
        obs.enable()

        class Exploding:
            def shutdown(self, *args, **kwargs):
                raise RuntimeError("boom")

        engine._offload = Exploding()
        engine.close()
        assert obs.snapshot()["counters"]["parallel.teardown_errors"] == 1


# -- admission control ---------------------------------------------------------


class TestAdmissionController:
    SLO = "serve.latency.p99 < 1ms @ 5%"

    def controller(self, **kwargs) -> AdmissionController:
        cfg = AdmissionConfig(slo=self.SLO, eval_every=10_000, **kwargs)
        return AdmissionController(cfg)

    def test_rejects_non_latency_slo(self):
        with pytest.raises(ConfigurationError, match="latency"):
            AdmissionController(AdmissionConfig(slo="serve.errors/serve.requests < 0.1"))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(min_wait_us=500.0, max_wait_us=100.0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(initial_wait_us=10.0)  # below min_wait_us

    def test_critical_burn_sheds_and_halves_window(self):
        ctl = self.controller()
        start = ctl.wait_us
        for _ in range(100):
            ctl.record(10_000_000)  # 10ms >> the 1ms objective
        assert ctl.evaluate() == 2
        assert ctl.shedding
        assert ctl.wait_us == pytest.approx(start / 2)
        assert not ctl.admit(0)
        assert ctl.counters["shed_slo"] == 1

    def test_hysteresis_then_recovery_widens_window(self):
        ctl = self.controller(window_obs=100)
        for _ in range(100):
            ctl.record(10_000_000)
        ctl.evaluate()
        assert ctl.shedding
        # Burn falls to 2x (10 bad / 100 at a 5% budget): above the
        # resume threshold, so shedding must hold (no flapping)...
        for _ in range(90):
            ctl.record(100_000)
        assert ctl.evaluate() == 1
        assert ctl.shedding
        # ...until the window is fully healthy again.
        low = ctl.wait_us
        for _ in range(100):
            ctl.record(100_000)
        assert ctl.evaluate() == 0
        assert not ctl.shedding
        assert ctl.wait_us > low  # multiplicative recovery

    def test_queue_depth_cap_is_deterministic(self):
        ctl = self.controller(max_queue=4)
        assert ctl.admit(3)
        assert not ctl.admit(4)
        assert ctl.counters["shed_queue_full"] == 1
        assert ctl.counters["admitted"] == 1

    def test_shedding_transition_emits_audit_event(self):
        log = obs.enable_events()
        ctl = self.controller()
        for _ in range(100):
            ctl.record(10_000_000)
        ctl.evaluate()
        kinds = [event.kind for event in log.events()]
        assert obs.SERVE_OVERLOAD in kinds

    def test_scheduler_sheds_typed_overloaded(self):
        store = make_store()

        async def run():
            scheduler = BatchScheduler(
                store,
                max_batch=4,
                admission=AdmissionConfig(max_queue=4, eval_every=4),
            )
            client = AsyncSlsClient.in_process(scheduler)
            responses = await asyncio.gather(
                *[client.sls_response("emb", [i % 8]) for i in range(50)]
            )
            stats = scheduler.stats()
            await scheduler.close()
            return responses, stats

        responses, stats = asyncio.run(run())
        ok = [r for r in responses if r.status == STATUS_OK]
        shed = [r for r in responses if r.status == STATUS_OVERLOADED]
        # The synchronous pre-queue ladder makes the gather burst
        # deterministic: exactly max_queue admitted, the rest typed.
        assert len(ok) == 4
        assert len(shed) == 46
        assert all(r.kind == "OverloadedError" for r in shed)
        assert stats["admission.shed_queue_full"] == 46

    def test_client_raises_typed_overloaded(self):
        store = make_store()

        async def run():
            scheduler = BatchScheduler(
                store, admission=AdmissionConfig(max_queue=1)
            )
            client = AsyncSlsClient.in_process(scheduler)
            tasks = [
                asyncio.ensure_future(client.sls("emb", [i])) for i in range(20)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
            await scheduler.close()
            return results

        results = asyncio.run(run())
        overloaded = [r for r in results if isinstance(r, OverloadedError)]
        served = [r for r in results if isinstance(r, np.ndarray)]
        assert overloaded and served
        assert len(overloaded) + len(served) == 20


# -- TCP server / client -------------------------------------------------------


class TestTcpServer:
    def test_end_to_end_bit_identical(self):
        store = make_store(n_rows=128, dim=8)
        queries = make_queries(128, 24)
        expected = np.asarray([store.sls("emb", q) for q in queries])

        async def run():
            async with SlsServer(store, port=0) as server:
                clients = [
                    await AsyncSlsClient.connect("127.0.0.1", server.port)
                    for _ in range(2)
                ]
                try:
                    assert all(await asyncio.gather(*[c.ping() for c in clients]))
                    results = await asyncio.gather(
                        *[
                            clients[i % 2].sls("emb", q)
                            for i, q in enumerate(queries)
                        ]
                    )
                finally:
                    for c in clients:
                        await c.close()
                stats = server.stats()
            return np.asarray(results), stats

        results, stats = asyncio.run(run())
        assert np.array_equal(results, expected)
        assert stats["batches"] <= len(queries)
        assert stats["responses_ok"] == len(queries)

    def test_typed_error_crosses_the_wire(self):
        store = make_store()

        async def run():
            async with SlsServer(store, port=0) as server:
                async with await AsyncSlsClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    with pytest.raises(ConfigurationError, match="unknown table"):
                        await client.sls("nope", [0])
                    with pytest.raises(SecNDPError):
                        await client.sls("emb", [0], [-1])
                    # The connection survives typed errors.
                    result = await client.sls("emb", [0, 1])
            return result

        result = asyncio.run(run())
        assert np.array_equal(result, store.sls("emb", [0, 1]))

    def test_malformed_frame_drops_connection_cleanly(self):
        store = make_store()

        async def run():
            async with SlsServer(store, port=0) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(struct.pack(">BI", CODEC_JSON, MAX_FRAME_BYTES + 1))
                await writer.drain()
                resp = SlsResponse.from_wire(await read_frame(reader))
                assert resp.status == "error"
                assert resp.kind == "FrameError"
                assert await reader.read() == b""  # server hung up
                writer.close()
                await writer.wait_closed()

        asyncio.run(run())

    def test_pending_requests_fail_typed_on_server_close(self):
        store = make_store()

        async def run():
            server = await SlsServer(store, port=0).start()
            client = await AsyncSlsClient.connect("127.0.0.1", server.port)
            await client.ping()
            await server.close()
            with pytest.raises((ServerClosedError, SecNDPError)):
                await client.sls("emb", [0, 1])
            await client.close()

        asyncio.run(run())


# -- serving telemetry surface -------------------------------------------------


class TestServeTelemetry:
    def test_slo_ratio_aliases_parse(self):
        shed = SloSpec.parse("serve.shed_rate < 0.1")
        assert shed.kind == "ratio"
        assert shed.numerator == ("serve.shed",)
        assert shed.denominator == ("serve.requests",)
        err = SloSpec.parse("serve.error_rate < 0.01")
        assert err.numerator == ("serve.errors",)

    def test_prometheus_labeled_response_family(self):
        snap = {
            "counters": {
                "serve.requests": 9,
                "serve.response.ok": 5,
                "serve.response.overloaded": 3,
                "serve.response.shutting_down": 1,
            },
            "gauges": {"serve.batch_window_us": 5000.0},
            "timers": {},
        }
        text = to_prometheus(snap)
        assert 'secndp_serve_responses_total{status="ok"} 5' in text
        assert 'secndp_serve_responses_total{status="overloaded"} 3' in text
        # Collapsed into the labeled family, not emitted per-status.
        assert "secndp_serve_response_ok_total" not in text
        assert "secndp_serve_requests_total 9" in text
        assert validate_prometheus_text(text) > 0

    def test_serve_metrics_flow_into_registry(self):
        obs.enable()
        store = make_store()
        queries = make_queries(64, 12)

        async def run():
            scheduler = BatchScheduler(store, max_batch=4)
            client = AsyncSlsClient.in_process(scheduler)
            await asyncio.gather(*[client.sls("emb", q) for q in queries])
            await scheduler.close()

        asyncio.run(run())
        snap = obs.snapshot()
        assert snap["counters"]["serve.requests"] == len(queries)
        assert snap["counters"]["serve.response.ok"] == len(queries)
        assert snap["counters"]["serve.batch.queries"] == len(queries)
        assert snap["timers"]["serve.latency.ns"]["count"] == len(queries)
        assert snap["timers"]["serve.batch.ns"]["count"] >= 1
        text = to_prometheus(snap)
        assert validate_prometheus_text(text) > 0
