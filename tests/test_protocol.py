"""The weighted-summation protocol (Alg. 4/5): correctness and detection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import VerificationError

KEY = bytes(range(16))


class TestCorrectness:
    """Theorem A.1: res = sum a_k * P mod 2^w_e."""

    def test_row_sum_matches_plaintext(self, processor, device, stored, small_matrix):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 64, size=40)
        weights = rng.integers(1, 4, size=40)
        res = processor.weighted_row_sum(device, stored, rows, weights)
        expected = (
            weights[:, None].astype(np.int64) * small_matrix[rows].astype(np.int64)
        ).sum(axis=0) % (1 << 32)
        assert np.array_equal(res.values.astype(np.int64), expected)
        assert res.verified

    def test_repeated_rows_allowed(self, processor, device, stored, small_matrix):
        res = processor.weighted_row_sum(device, stored, [5, 5, 5], [1, 1, 1])
        expected = 3 * small_matrix[5].astype(np.int64) % (1 << 32)
        assert np.array_equal(res.values.astype(np.int64), expected)

    def test_single_row(self, processor, device, stored, small_matrix):
        res = processor.weighted_row_sum(device, stored, [7], [1])
        assert np.array_equal(res.values, small_matrix[7])

    def test_element_sum(self, processor, device, stored, small_matrix):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 64, size=20)
        cols = rng.integers(0, 32, size=20)
        weights = rng.integers(1, 4, size=20)
        res = processor.weighted_element_sum(device, stored, rows, cols, weights)
        expected = int(
            (weights * small_matrix[rows, cols].astype(np.int64)).sum() % (1 << 32)
        )
        assert res == expected

    def test_unverified_sum_works_without_tags(self, processor, device, small_matrix):
        enc = processor.encrypt_matrix(
            small_matrix, 0x40000, "plain", with_tags=False
        )
        device.store("plain", enc)
        res = processor.weighted_row_sum(
            device, "plain", [0, 1], [1, 1], verify=False
        )
        expected = (
            small_matrix[0].astype(np.int64) + small_matrix[1]
        ) % (1 << 32)
        assert np.array_equal(res.values.astype(np.int64), expected)
        assert not res.verified

    def test_verify_without_tags_raises(self, processor, device, small_matrix):
        enc = processor.encrypt_matrix(small_matrix, 0x40000, "pl2", with_tags=False)
        device.store("pl2", enc)
        with pytest.raises(VerificationError):
            processor.weighted_row_sum(device, "pl2", [0], [1], verify=True)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_unweighted_pooling_property(self, rows):
        params = SecNDPParams()
        processor = SecNDPProcessor(KEY, params)
        device = UntrustedNdpDevice(params)
        rng = np.random.default_rng(42)
        matrix = rng.integers(0, 1 << 20, size=(64, 8), dtype=np.uint64).astype(
            np.uint32
        )
        enc = processor.encrypt_matrix(matrix, 0x10000, "prop", with_tags=True)
        device.store("prop", enc)
        res = processor.weighted_row_sum(device, "prop", rows, [1] * len(rows))
        expected = matrix[rows].astype(np.int64).sum(axis=0) % (1 << 32)
        assert np.array_equal(res.values.astype(np.int64), expected)


class TestDetection:
    """Theorem A.2 + Sec. IV-G: wrong results, tampering, replay, overflow."""

    ROWS = [1, 2, 3, 5, 8]
    WEIGHTS = [1, 2, 1, 3, 1]

    def _query(self, processor, device, stored):
        return processor.weighted_row_sum(
            device, stored, self.ROWS, self.WEIGHTS, verify=True
        )

    def test_result_tampering_detected(self, processor, device, stored):
        device.tamper_results(1)
        with pytest.raises(VerificationError):
            self._query(processor, device, stored)

    def test_large_result_tampering_detected(self, processor, device, stored):
        device.tamper_results(123456)
        with pytest.raises(VerificationError):
            self._query(processor, device, stored)

    def test_tag_tampering_detected(self, processor, device, stored):
        device.tamper_tags(1)
        with pytest.raises(VerificationError):
            self._query(processor, device, stored)

    def test_stored_ciphertext_corruption_detected(self, processor, device, stored):
        device.corrupt_stored_ciphertext(stored, 2, 7, delta=1)
        with pytest.raises(VerificationError):
            self._query(processor, device, stored)

    def test_corruption_outside_query_is_invisible(
        self, processor, device, stored, small_matrix
    ):
        device.corrupt_stored_ciphertext(stored, 60, 0, delta=99)  # row not queried
        res = self._query(processor, device, stored)
        expected = (
            np.array(self.WEIGHTS)[:, None] * small_matrix[self.ROWS].astype(np.int64)
        ).sum(axis=0) % (1 << 32)
        assert np.array_equal(res.values.astype(np.int64), expected)

    def test_tag_replay_detected(self, processor, device, stored, small_matrix):
        enc = device.stored(stored)
        stale = enc.tags[1]
        device.corrupt_stored_ciphertext(stored, 1, 0, delta=5)
        device.replay_stored_tag(stored, 1, stale)  # tag matches old data
        with pytest.raises(VerificationError):
            self._query(processor, device, stored)

    def test_honest_device_passes_after_reset(self, processor, device, stored):
        device.tamper_results(1)
        with pytest.raises(VerificationError):
            self._query(processor, device, stored)
        device.behave_honestly()
        assert self._query(processor, device, stored).verified

    def test_overflow_detected(self, processor, device):
        big = np.full((4, 8), (1 << 31) + 7, dtype=np.uint32)
        enc = processor.encrypt_matrix(big, 0x80000, "big", with_tags=True)
        device.store("big", enc)
        with pytest.raises(VerificationError):
            processor.weighted_row_sum(device, "big", [0, 1, 2], [1, 1, 1])

    def test_no_overflow_passes(self, processor, device):
        ok = np.full((4, 8), (1 << 29), dtype=np.uint32)
        enc = processor.encrypt_matrix(ok, 0x90000, "ok", with_tags=True)
        device.store("ok", enc)
        res = processor.weighted_row_sum(device, "ok", [0, 1, 2], [1, 1, 1])
        assert np.all(res.values == 3 * (1 << 29))

    def test_unverified_overflow_wraps_silently(self, processor, device):
        big = np.full((4, 8), (1 << 31) + 7, dtype=np.uint32)
        enc = processor.encrypt_matrix(big, 0xA0000, "big2", with_tags=True)
        device.store("big2", enc)
        res = processor.weighted_row_sum(
            device, "big2", [0, 1], [1, 1], verify=False
        )
        assert int(res.values[0]) == (2 * ((1 << 31) + 7)) % (1 << 32)


class TestQuantizedRing:
    def test_8bit_protocol(self):
        params = SecNDPParams(element_bits=8)
        processor = SecNDPProcessor(KEY, params)
        device = UntrustedNdpDevice(params)
        rng = np.random.default_rng(9)
        matrix = rng.integers(0, 16, size=(32, 16)).astype(np.uint8)
        enc = processor.encrypt_matrix(matrix, 0x1000, "q", with_tags=True)
        device.store("q", enc)
        rows = [0, 3, 9]
        res = processor.weighted_row_sum(device, "q", rows, [1, 2, 1])
        expected = (
            np.array([1, 2, 1])[:, None] * matrix[rows].astype(np.int64)
        ).sum(axis=0) % 256
        assert np.array_equal(res.values.astype(np.int64), expected)

    def test_8bit_tamper_detected(self):
        params = SecNDPParams(element_bits=8)
        processor = SecNDPProcessor(KEY, params)
        device = UntrustedNdpDevice(params)
        matrix = np.ones((16, 16), dtype=np.uint8)
        enc = processor.encrypt_matrix(matrix, 0x1000, "q2", with_tags=True)
        device.store("q2", enc)
        device.tamper_results(1)
        with pytest.raises(VerificationError):
            processor.weighted_row_sum(device, "q2", [0, 1], [1, 1])


class TestKeyIsolation:
    def test_wrong_key_cannot_decrypt(self, small_matrix):
        params = SecNDPParams()
        alice = SecNDPProcessor(KEY, params)
        eve = SecNDPProcessor(bytes(16), params)
        enc = alice.encrypt_matrix(small_matrix, 0x1000, "t", with_tags=False)
        assert not np.array_equal(eve.decrypt_matrix(enc), small_matrix)

    def test_ciphertext_alone_reveals_nothing_obvious(self, small_matrix):
        """Ciphertext of a constant matrix should look nothing like it."""
        params = SecNDPParams()
        proc = SecNDPProcessor(KEY, params)
        pt = np.zeros((16, 8), dtype=np.uint32)
        enc = proc.encryptor.encrypt(pt, 0x1000, 0)
        # All-zero plaintext -> ciphertext = -pads; should have ~unique values.
        assert len(np.unique(enc.ciphertext)) > 100


class TestSignedWeightSemantics:
    """Sharp edge the paper leaves implicit: ring arithmetic handles
    signed weights via two's complement, but the verification identity is
    defined over residues - a negative weight IS a huge residue, so its
    integer products overflow and tag verification (correctly) rejects.
    Signed workloads must either run unverified or recentre their data
    (as the quantizers and PrivateMlp do)."""

    def test_signed_weights_correct_unverified(self, processor, device, small_matrix):
        enc = processor.encrypt_matrix(small_matrix, 0xB0000, "sw", with_tags=False)
        device.store("sw", enc)
        res = processor.weighted_row_sum(
            device, "sw", [0, 1], [2, -1], verify=False
        )
        expected = (
            2 * small_matrix[0].astype(np.int64) - small_matrix[1]
        ) % (1 << 32)
        assert np.array_equal(res.values.astype(np.int64), expected)

    def test_signed_weights_fail_verification(self, processor, device, small_matrix):
        enc = processor.encrypt_matrix(small_matrix, 0xC0000, "sw2", with_tags=True)
        device.store("sw2", enc)
        with pytest.raises(VerificationError):
            processor.weighted_row_sum(device, "sw2", [0, 1], [2, -1], verify=True)
