"""Counter integrity tree: functional security + cost model."""

from __future__ import annotations

import pytest

from repro.baselines.integrity_tree import CounterIntegrityTree
from repro.errors import ConfigurationError, VerificationError

KEY = bytes(range(16))


@pytest.fixture
def tree():
    t = CounterIntegrityTree(KEY, n_counters=64, arity=4)
    for i in range(64):
        t.update(i, i * 10)
    return t


class TestStructure:
    def test_depth(self, tree):
        assert tree.depth == 3  # 64 leaves at arity 4

    def test_depth_for_matches(self):
        assert CounterIntegrityTree.depth_for(64, 4) == 3
        assert CounterIntegrityTree.depth_for(1, 4) == 0
        assert CounterIntegrityTree.depth_for(1 << 24, 8) == 8

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            CounterIntegrityTree(KEY, 0)
        with pytest.raises(ConfigurationError):
            CounterIntegrityTree(KEY, 8, arity=1)

    def test_index_bounds(self, tree):
        with pytest.raises(ConfigurationError):
            tree.update(64, 0)
        with pytest.raises(ConfigurationError):
            tree.read_verified(-1)


class TestHonestOperation:
    def test_read_after_update(self, tree):
        assert tree.read_verified(17) == 170
        tree.update(17, 999)
        assert tree.read_verified(17) == 999

    def test_all_counters_verify(self, tree):
        for i in range(64):
            assert tree.read_verified(i) == i * 10

    def test_updates_do_not_disturb_neighbours(self, tree):
        tree.update(0, 12345)
        assert tree.read_verified(1) == 10
        assert tree.read_verified(63) == 630

    def test_root_changes_on_update(self, tree):
        before = tree.root
        tree.update(5, 5555)
        assert tree.root != before


class TestAttacks:
    def test_leaf_tamper_detected(self, tree):
        tree.tamper_leaf(9, 90 + 1)
        with pytest.raises(VerificationError):
            tree.read_verified(9)

    def test_internal_node_tamper_detected(self, tree):
        tree.tamper_node(1, 0, 0xDEADBEEF)
        with pytest.raises(VerificationError):
            tree.read_verified(0)

    def test_root_untouchable(self, tree):
        with pytest.raises(ConfigurationError):
            tree.tamper_node(tree.depth, 0, 1)

    def test_subtree_replay_detected(self, tree):
        """Capture a full authentication path, advance the counter, then
        replay the stale path - the on-chip root catches it."""
        stale = tree.snapshot_path(30)
        tree.update(30, 301)  # legitimate bump (root moves on-chip)
        tree.replay_subtree(30, stale)
        with pytest.raises(VerificationError):
            tree.read_verified(30)

    def test_unrelated_counters_still_verify_after_attack(self, tree):
        tree.tamper_leaf(9, 1)
        assert tree.read_verified(40) == 400


class TestCostModel:
    def test_extra_accesses(self, tree):
        # depth 3, root free: full walk = 3 levels... top level IS the
        # root, so the walk below cached levels plus the leaf.
        assert tree.extra_accesses_per_counter_miss(cached_levels=0) == 4
        assert tree.extra_accesses_per_counter_miss(cached_levels=2) == 2
        assert tree.extra_accesses_per_counter_miss(cached_levels=10) == 1

    def test_secndp_vs_tree_motivation(self):
        """Paper-scale contrast: protecting per-line counters of an 8 GB
        table needs a deep tree; SecNDP's software versions need zero
        extra accesses (one version per region, held in the enclave)."""
        counters = (8 << 30) // 64  # one per cache line
        depth = CounterIntegrityTree.depth_for(counters, arity=8)
        assert depth >= 9  # many extra touches per miss
        # SecNDP: 64 regions, each one version - trivially on-chip.

    def test_invalid_cache_levels(self, tree):
        with pytest.raises(ConfigurationError):
            tree.extra_accesses_per_counter_miss(cached_levels=-1)
