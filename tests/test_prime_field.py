"""GF(2^127 - 1) arithmetic, Mersenne reduction and checksum helpers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prime_field import F127, MERSENNE_127, PrimeField, mersenne_reduce


class TestMersenneReduce:
    @given(st.integers(0, 2**260))
    @settings(max_examples=200, deadline=None)
    def test_matches_modulo(self, value):
        assert mersenne_reduce(value) == value % MERSENNE_127

    def test_exact_modulus_reduces_to_zero(self):
        assert mersenne_reduce(MERSENNE_127) == 0
        assert mersenne_reduce(2 * MERSENNE_127) == 0

    def test_negative(self):
        assert mersenne_reduce(-1) == MERSENNE_127 - 1
        assert mersenne_reduce(-MERSENNE_127) == 0

    def test_small_bits(self):
        assert mersenne_reduce(200, bits=7) == 200 % 127


class TestFieldOps:
    def test_add_sub_mul(self):
        f = PrimeField(97)
        assert f.add(90, 10) == 3
        assert f.sub(3, 10) == 90
        assert f.mul(13, 15) == (13 * 15) % 97

    def test_inverse(self):
        f = PrimeField(97)
        for a in range(1, 97):
            assert f.mul(a, f.inv(a)) == 1

    def test_inverse_of_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            F127.inv(0)

    def test_pow(self):
        f = PrimeField(101)
        assert f.pow(2, 10) == 1024 % 101

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_non_mersenne_modulus_works(self):
        f = PrimeField(1_000_003)
        assert f.reduce(2_000_007) == 1

    def test_rand_in_range(self):
        rng = random.Random(0)
        for _ in range(100):
            assert 0 <= F127.rand(rng) < MERSENNE_127


class TestChecksum:
    def test_definition(self):
        # T = sum_j row[j] * s^(m-j), m = len(row)
        f = PrimeField(10007)
        row = [3, 1, 4]
        s = 15
        expected = (3 * s**3 + 1 * s**2 + 4 * s) % 10007
        assert f.checksum(row, s) == expected

    def test_empty_row_hashes_to_zero(self):
        assert F127.checksum([], 12345) == 0

    @given(
        st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=8),
        st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=8),
        st.integers(1, MERSENNE_127 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_linearity(self, row_a, row_b, s):
        # h(x + y) = h(x) + h(y) for equal-length rows - the property the
        # whole verification scheme rests on.
        m = min(len(row_a), len(row_b))
        a, b = row_a[:m], row_b[:m]
        merged = [x + y for x, y in zip(a, b)]
        assert F127.checksum(merged, s) == F127.add(
            F127.checksum(a, s), F127.checksum(b, s)
        )

    @given(
        st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=8),
        st.integers(0, 2**20),
        st.integers(1, MERSENNE_127 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_scale_linearity(self, row, scale, s):
        scaled = [scale * x for x in row]
        assert F127.checksum(scaled, s) == F127.mul(scale, F127.checksum(row, s))

    def test_dot(self):
        f = PrimeField(97)
        assert f.dot([1, 2], [3, 4]) == 11
        with pytest.raises(ValueError):
            f.dot([1], [1, 2])

    def test_checksum_poly_convention(self):
        f = PrimeField(10007)
        row = [3, 1, 4]
        s = 15
        assert f.checksum_poly(row, s) == (3 * s**2 + 1 * s + 4) % 10007

    def test_collision_resistance_statistical(self):
        # For random s, two fixed distinct rows rarely collide (prob m/q).
        f = PrimeField((1 << 61) - 1)
        rng = random.Random(7)
        row_a = [1, 2, 3, 4]
        row_b = [4, 3, 2, 1]
        collisions = sum(
            1
            for _ in range(200)
            if f.checksum(row_a, f.rand(rng)) == f.checksum(row_b, f.rand(rng))
        )
        assert collisions == 0
