"""DRAM energy counters and coefficients."""

from __future__ import annotations

import pytest

from repro.memsim import DDR4_ENERGY, DramSystem, EnergyCounters, EnergyParams


class TestEnergyCounters:
    def test_zero_counters_only_background(self):
        c = EnergyCounters(cycles=1000, ranks=2)
        e = c.energy_nj(DDR4_ENERGY)
        assert e["dram_core_nj"] == 0
        assert e["io_nj"] == 0
        assert e["total_nj"] == e["background_nj"] > 0

    def test_core_energy_scales_with_events(self):
        a = EnergyCounters(activates=10, reads=100)
        b = EnergyCounters(activates=20, reads=200)
        assert (
            b.energy_nj(DDR4_ENERGY)["dram_core_nj"]
            == 2 * a.energy_nj(DDR4_ENERGY)["dram_core_nj"]
        )

    def test_io_energy_only_for_bus_bursts(self):
        ndp = EnergyCounters(reads=100, bus_bursts=0)
        cpu = EnergyCounters(reads=100, bus_bursts=100)
        assert ndp.energy_nj(DDR4_ENERGY)["io_nj"] == 0
        assert cpu.energy_nj(DDR4_ENERGY)["io_nj"] > 0

    def test_io_coefficient(self):
        c = EnergyCounters(reads=1, bus_bursts=1)
        e = c.energy_nj(DDR4_ENERGY)
        # one 64-byte burst = 512 bits at 7.3 pJ/bit = 3.74 nJ
        assert abs(e["io_nj"] - 512 * 7.3 / 1000) < 1e-9

    def test_merge(self):
        a = EnergyCounters(activates=1, reads=2, writes=3, bus_bursts=4, cycles=100)
        b = EnergyCounters(activates=10, reads=20, writes=30, bus_bursts=40, cycles=50)
        a.merge(b)
        assert (a.activates, a.reads, a.writes, a.bus_bursts) == (11, 22, 33, 44)
        assert a.cycles == 100  # max, not sum


class TestDramSystemEnergy:
    def test_cpu_reads_cost_more_than_ndp_reads(self):
        cpu = DramSystem(identity_pages=True)
        ndp = DramSystem(identity_pages=True)
        for i in range(256):
            cpu.access_physical(i * 64, use_channel_bus=True)
            ndp.access_rank_local(i % 8, (i // 8) * 64, use_channel_bus=False)
        e_cpu = cpu.energy_nj()
        e_ndp = ndp.energy_nj()
        assert e_cpu["io_nj"] > 0
        assert e_ndp["io_nj"] == 0
        assert e_cpu["io_nj"] + e_cpu["dram_core_nj"] > e_ndp["ndp_internal_nj"] + e_ndp["dram_core_nj"]

    def test_elapsed_ns_positive(self):
        d = DramSystem(identity_pages=True)
        d.access_physical(0)
        assert d.elapsed_ns() > 0
