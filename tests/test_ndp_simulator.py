"""NDP timing simulator: scaling laws and SecNDP composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ndp import (
    AesEngineModel,
    NdpConfig,
    NdpSimulator,
    NdpWorkload,
    SimQuery,
    TableGeometry,
    TagScheme,
)


def make_workload(n_queries=16, pf=40, n_rows=50_000, row_bytes=128, seed=0):
    rng = np.random.default_rng(seed)
    tables = {0: TableGeometry(n_rows=n_rows, row_bytes=row_bytes, result_bytes=128)}
    queries = tuple(
        SimQuery(0, tuple(int(x) for x in rng.integers(0, n_rows, size=pf)))
        for _ in range(n_queries)
    )
    return NdpWorkload(tables=tables, queries=queries)


@pytest.fixture(scope="module")
def workload():
    return make_workload()


@pytest.fixture(scope="module")
def run8(workload):
    return NdpSimulator(NdpConfig(ndp_ranks=8, ndp_regs=8)).run(workload)


class TestScaling:
    def test_more_ranks_faster(self, workload):
        t1 = NdpSimulator(NdpConfig(1, 1)).run(workload).ndp_only_ns
        t4 = NdpSimulator(NdpConfig(4, 4)).run(workload).ndp_only_ns
        t8 = NdpSimulator(NdpConfig(8, 8)).run(workload).ndp_only_ns
        assert t1 > t4 > t8

    def test_rank_scaling_superlinear_bound(self, workload):
        """8 ranks should give somewhere between 2x and 8x over 1 rank."""
        t1 = NdpSimulator(NdpConfig(1, 1)).run(workload).ndp_only_ns
        t8 = NdpSimulator(NdpConfig(8, 8)).run(workload).ndp_only_ns
        assert 2.0 < t1 / t8 <= 8.5

    def test_more_registers_not_slower(self, workload):
        t1 = NdpSimulator(NdpConfig(8, 1)).run(workload).ndp_only_ns
        t8 = NdpSimulator(NdpConfig(8, 8)).run(workload).ndp_only_ns
        assert t8 <= t1 * 1.02

    def test_rank_exceeding_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            NdpSimulator(NdpConfig(ndp_ranks=16, ndp_regs=1))


class TestSecNdpComposition:
    def test_secndp_never_faster_than_ndp(self, run8):
        for n in (1, 2, 4, 8, 16):
            assert run8.secndp_ns(AesEngineModel(n)) >= run8.ndp_only_ns * 0.999

    def test_secndp_converges_to_ndp(self, run8):
        fast = run8.secndp_ns(AesEngineModel(64))
        assert fast == pytest.approx(run8.ndp_only_ns)

    def test_secndp_monotone_in_engines(self, run8):
        times = [run8.secndp_ns(AesEngineModel(n)) for n in (1, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_bottleneck_fraction_monotone(self, run8):
        fracs = [run8.decryption_bound_fraction(AesEngineModel(n)) for n in (1, 4, 16)]
        assert all(a >= b for a, b in zip(fracs, fracs[1:]))
        assert fracs[0] == 1.0  # one engine cannot keep up with 8 ranks
        assert fracs[-1] == 0.0

    def test_otp_blocks_counted(self, run8, workload):
        total_rows = sum(len(q.rows) for q in workload.queries)
        assert run8.total_otp_blocks == total_rows * 8  # 128 B rows = 8 blocks


class TestVerificationTiming:
    def test_ver_sep_slowest(self, workload):
        def time_for(scheme):
            run = NdpSimulator(NdpConfig(8, 8, tag_scheme=scheme)).run(workload)
            return run.secndp_ns(AesEngineModel(12))

        enc = time_for(TagScheme.ENC_ONLY)
        coloc = time_for(TagScheme.VER_COLOC)
        sep = time_for(TagScheme.VER_SEP)
        ecc = time_for(TagScheme.VER_ECC)
        assert ecc == pytest.approx(enc, rel=0.02)
        assert enc < coloc < sep

    def test_ver_sep_roughly_40pct_worse(self, workload):
        """Paper: Ver-sep ~40% degradation over Enc-only."""
        enc = NdpSimulator(NdpConfig(8, 8)).run(workload)
        sep = NdpSimulator(
            NdpConfig(8, 8, tag_scheme=TagScheme.VER_SEP)
        ).run(workload)
        aes = AesEngineModel(12)
        ratio = sep.secndp_ns(aes) / enc.secndp_ns(aes)
        assert 1.2 < ratio < 1.9


class TestAccounting:
    def test_records_per_packet(self, run8, workload):
        assert len(run8.records) == -(-len(workload.queries) // 8)

    def test_total_lines_match_packets(self, run8):
        assert run8.total_lines == sum(r.lines for r in run8.records)

    def test_energy_counters_populated(self, run8):
        counters = run8.dram.counters
        assert counters.reads == run8.total_lines
        assert counters.activates > 0
        assert counters.bus_bursts == run8.total_result_lines

    def test_deterministic(self, workload):
        a = NdpSimulator(NdpConfig(4, 4)).run(workload).ndp_only_ns
        b = NdpSimulator(NdpConfig(4, 4)).run(workload).ndp_only_ns
        assert a == b
