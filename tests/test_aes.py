"""AES-128 correctness: FIPS-197 vectors, structure, vectorised parity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import (
    AES128,
    BLOCK_BYTES,
    KEY_BYTES,
    SBOX,
    aes128_encrypt_blocks,
)


class TestSbox:
    def test_known_entries(self):
        # FIPS-197 Figure 7 spot checks.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_no_fixed_points(self):
        # The AES S-box has no fixed points and no anti-fixed points.
        assert all(SBOX[i] != i for i in range(256))
        assert all(SBOX[i] != (i ^ 0xFF) for i in range(256))


class TestKnownVectors:
    def test_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        ct = AES128(key).encrypt_block(pt)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        ct = AES128(key).encrypt_block(pt)
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_nist_ecb_kat(self):
        # NIST SP 800-38A F.1.1 ECB-AES128.Encrypt, first block.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        ct = AES128(key).encrypt_block(pt)
        assert ct.hex() == "3ad77bb40d7a3660a89ecaf32466ef97"


class TestValidation:
    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_rejects_bad_block_length(self):
        with pytest.raises(ValueError):
            AES128(bytes(KEY_BYTES)).encrypt_block(b"short")

    def test_vectorised_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            aes128_encrypt_blocks(bytes(16), np.zeros((4, 8), dtype=np.uint8))


class TestDeterminismAndSensitivity:
    def test_deterministic(self):
        c = AES128(bytes(16))
        assert c.encrypt_block(bytes(16)) == c.encrypt_block(bytes(16))

    def test_key_sensitivity(self):
        pt = bytes(16)
        a = AES128(bytes(16)).encrypt_block(pt)
        b = AES128(bytes([1]) + bytes(15)).encrypt_block(pt)
        assert a != b

    def test_plaintext_sensitivity_avalanche(self):
        c = AES128(bytes(16))
        a = c.encrypt_block(bytes(16))
        b = c.encrypt_block(bytes([1]) + bytes(15))
        # Single-bit input change flips ~half the output bits.
        diff = bin(int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).count("1")
        assert 32 <= diff <= 96

    def test_encrypt_int_matches_bytes(self):
        c = AES128(bytes(range(16)))
        value = int.from_bytes(bytes(range(16)), "big")
        assert c.encrypt_int(value) == int.from_bytes(
            c.encrypt_block(bytes(range(16))), "big"
        )


class TestVectorisedParity:
    @given(st.binary(min_size=16, max_size=16), st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_matches_scalar(self, key, n_blocks):
        rng = np.random.default_rng(n_blocks)
        blocks = rng.integers(0, 256, size=(n_blocks, BLOCK_BYTES), dtype=np.uint8)
        vec = aes128_encrypt_blocks(key, blocks)
        scalar = AES128(key)
        for i in range(n_blocks):
            assert bytes(vec[i]) == scalar.encrypt_block(bytes(blocks[i]))

    def test_empty_batch(self):
        out = aes128_encrypt_blocks(bytes(16), np.zeros((0, 16), dtype=np.uint8))
        assert out.shape == (0, 16)

    def test_large_batch_consistent(self):
        blocks = np.tile(np.arange(16, dtype=np.uint8), (1000, 1))
        out = aes128_encrypt_blocks(bytes(16), blocks)
        # identical inputs -> identical outputs
        assert np.all(out == out[0])
