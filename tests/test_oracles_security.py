"""Security games (Defs. A.3/A.4) and statistical sanity of the schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SecNDPParams, WeightedSummationOracles
from repro.core.oracles import SignedTranscript

KEY = bytes(range(16))


@pytest.fixture
def oracles():
    return WeightedSummationOracles(
        KEY, rows=[0, 1, 2, 3], weights=[1, 2, 3, 1], params=SecNDPParams()
    )


def random_matrix(seed=0, n=8, m=8):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 16, size=(n, m), dtype=np.uint64).astype(np.uint32)


class TestMacGame:
    def test_honest_transcript_verifies(self, oracles):
        t = oracles.sign(random_matrix(), 0x1000)
        assert oracles.verify(t)

    def test_modified_result_rejected(self, oracles):
        t = oracles.sign(random_matrix(1), 0x1000)
        forged = t.with_c_res(0, (t.c_res[0] + 1) % (1 << 32))
        assert not oracles.verify(forged)

    def test_each_column_protected(self, oracles):
        t = oracles.sign(random_matrix(2), 0x1000)
        for j in range(len(t.c_res)):
            forged = t.with_c_res(j, (t.c_res[j] + 17) % (1 << 32))
            assert not oracles.verify(forged)

    def test_modified_tag_rejected(self, oracles):
        t = oracles.sign(random_matrix(3), 0x1000)
        q = (1 << 127) - 1
        forged = t.with_tag((t.c_t_res + 1) % q)
        assert not oracles.verify(forged)

    def test_wrong_address_rejected(self, oracles):
        t = oracles.sign(random_matrix(4), 0x1000)
        moved = SignedTranscript(t.c_res, t.c_t_res, 0x2000)
        assert not oracles.verify(moved)

    def test_consistent_joint_forgery_rejected(self, oracles):
        """Adding delta to a column AND trying to fix the tag naively
        (without knowing s) still fails."""
        t = oracles.sign(random_matrix(5), 0x1000)
        q = (1 << 127) - 1
        forged = t.with_c_res(0, (t.c_res[0] + 5) % (1 << 32)).with_tag(
            (t.c_t_res + 5) % q
        )
        assert not oracles.verify(forged)

    def test_forgery_rate_bounded_by_m_over_q(self):
        """With a tiny prime field the m/q forgery bound becomes visible:
        random tag guesses succeed at roughly m/q, not more."""
        q = 251  # tiny prime so collisions are observable
        oracles = WeightedSummationOracles(
            KEY,
            rows=[0, 1],
            weights=[1, 1],
            params=SecNDPParams(element_bits=32, tag_modulus=q),
        )
        t = oracles.sign(random_matrix(6, n=4, m=4), 0x1000)
        delta = 3
        forged_base = t.with_c_res(0, (t.c_res[0] + delta) % (1 << 32))
        successes = sum(
            1 for guess in range(q) if oracles.verify(forged_base.with_tag(guess))
        )
        # Exactly one tag value verifies any fixed (possibly forged) result
        # vector; the adversary just cannot compute it without s.
        assert successes == 1

    def test_multiple_signs_independent(self, oracles):
        t1 = oracles.sign(random_matrix(7), 0x1000)
        t2 = oracles.sign(random_matrix(8), 0x1000)
        assert t1.c_res != t2.c_res
        assert oracles.verify(t2)


class TestCiphertextStatistics:
    """Empirical stand-ins for Theorem 1: ciphertext looks uniform."""

    def _ciphertext_of_constant(self, value, n_blocks=512):
        from repro.core import ArithmeticEncryptor
        from repro.crypto import TweakedCipher

        params = SecNDPParams(element_bits=32)
        enc = ArithmeticEncryptor(TweakedCipher(KEY), params)
        pt = np.full((n_blocks, 4), value, dtype=np.uint32)
        return enc.encrypt(pt, 0x0, version=1).ciphertext.reshape(-1)

    def test_byte_histogram_roughly_uniform(self):
        ct = self._ciphertext_of_constant(0).view(np.uint8)
        counts = np.bincount(ct, minlength=256)
        expected = len(ct) / 256
        # Chi-square-ish sanity bound: no bucket wildly off.
        assert counts.max() < expected * 2
        assert counts.min() > expected * 0.3

    def test_mean_near_center(self):
        ct = self._ciphertext_of_constant(12345).astype(np.float64)
        center = (1 << 31)
        assert abs(ct.mean() - center) < center * 0.1

    def test_different_constants_uncorrelated(self):
        a = self._ciphertext_of_constant(0).astype(np.int64)
        b = self._ciphertext_of_constant(1).astype(np.int64)
        # Same version+address -> b - a == 1 everywhere (the known leak);
        # different versions must break the correlation.
        from repro.core import ArithmeticEncryptor
        from repro.crypto import TweakedCipher

        params = SecNDPParams(element_bits=32)
        enc = ArithmeticEncryptor(TweakedCipher(KEY), params)
        pt = np.full((512, 4), 1, dtype=np.uint32)
        b_v2 = enc.encrypt(pt, 0x0, version=2).ciphertext.reshape(-1).astype(np.int64)
        assert np.all((b - a) % (1 << 32) == 1)
        assert not np.all((b_v2 - a) % (1 << 32) == 1)


class TestVersionDiscipline:
    """(address, version) non-reuse as a security property (Sec. V-A).

    Pad reuse is the classic counter-mode break - two ciphertexts under
    the same (address, version) differ exactly by their plaintexts, so
    the :class:`VersionManager` refusing reuse *is* the confidentiality
    argument.  These tests pin the refusal and the freshness it buys.
    """

    def test_burned_version_rejected_for_reuse(self):
        from repro.core import SecNDPProcessor
        from repro.errors import VersionReuseError

        proc = SecNDPProcessor(KEY, SecNDPParams())
        plain = proc.ring.encode(np.arange(16, dtype=np.int64).reshape(4, 4))
        enc = proc.encrypt_matrix(plain, 0x1000, "region")
        with pytest.raises(VersionReuseError):
            proc.versions.assert_unused("region/data", enc.version)

    def test_reencryption_is_fresh_and_decrypts_identically(self):
        # The recovery ladder's rung 4 re-encrypts a damaged region; the
        # bumped version must change every ciphertext byte pattern while
        # preserving the plaintext exactly.
        from repro.core import SecNDPProcessor

        proc = SecNDPProcessor(KEY, SecNDPParams())
        plain = proc.ring.encode(np.arange(64, dtype=np.int64).reshape(8, 8))
        enc1 = proc.encrypt_matrix(plain, 0x1000, "region")
        enc2 = proc.encrypt_matrix(plain, 0x1000, "region")
        assert enc2.version == enc1.version + 1
        assert not np.array_equal(enc1.ciphertext, enc2.ciphertext)
        assert np.array_equal(proc.decrypt_matrix(enc1), plain)
        assert np.array_equal(proc.decrypt_matrix(enc2), plain)

    def test_budget_limits_simultaneous_regions(self):
        from repro.core import SecNDPProcessor, VersionManager
        from repro.errors import VersionBudgetError

        proc = SecNDPProcessor(KEY, SecNDPParams(), versions=VersionManager(budget=3))
        plain = proc.ring.encode(np.arange(16, dtype=np.int64).reshape(4, 4))
        proc.encrypt_matrix(plain, 0x1000, "t0")  # data + checksum + tag
        with pytest.raises(VersionBudgetError):
            proc.encrypt_matrix(plain, 0x2000, "t1")
        # Retiring the exhausted region's slots frees the budget again.
        for domain in ("data", "checksum", "tag"):
            proc.versions.retire(f"t0/{domain}")
        proc.encrypt_matrix(plain, 0x2000, "t1")
