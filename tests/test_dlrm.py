"""DLRM configs (Table I) and the functional model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import RMC_CONFIGS, DlrmConfig, DlrmModel, click_dataset


class TestTableI:
    def test_all_four_configs_present(self):
        assert set(RMC_CONFIGS) == {
            "RMC1-small",
            "RMC1-large",
            "RMC2-small",
            "RMC2-large",
        }

    def test_table_counts(self):
        assert RMC_CONFIGS["RMC1-small"].n_tables == 8
        assert RMC_CONFIGS["RMC1-large"].n_tables == 12
        assert RMC_CONFIGS["RMC2-small"].n_tables == 24
        assert RMC_CONFIGS["RMC2-large"].n_tables == 64

    def test_mlp_chains(self):
        assert RMC_CONFIGS["RMC1-small"].bottom_mlp == (256, 128, 32)
        assert RMC_CONFIGS["RMC1-small"].top_mlp == (256, 64, 1)
        assert RMC_CONFIGS["RMC2-large"].top_mlp == (256, 128, 1)

    def test_total_sizes_match_paper(self):
        assert RMC_CONFIGS["RMC1-small"].total_embedding_bytes == 1 << 30
        assert RMC_CONFIGS["RMC1-large"].total_embedding_bytes == pytest.approx(
            1.5 * (1 << 30), rel=1e-6
        )
        assert RMC_CONFIGS["RMC2-small"].total_embedding_bytes == 3 << 30
        assert RMC_CONFIGS["RMC2-large"].total_embedding_bytes == 8 << 30

    def test_embedding_dim_is_32(self):
        assert all(c.embedding_dim == 32 for c in RMC_CONFIGS.values())

    def test_scaled_preserves_architecture(self):
        small = RMC_CONFIGS["RMC2-large"].scaled(1000)
        assert small.rows_per_table == 1000
        assert small.n_tables == 64
        assert small.top_mlp == (256, 128, 1)

    def test_flops_grow_with_tables(self):
        flops = [RMC_CONFIGS[n].mlp_flops_per_sample() for n in RMC_CONFIGS]
        assert flops == sorted(flops)


class TestConfigValidation:
    def test_top_must_end_in_one(self):
        with pytest.raises(ConfigurationError):
            DlrmConfig("x", (16, 8), (16, 2), 1, 10, embedding_dim=8)

    def test_bottom_output_must_match_embedding(self):
        with pytest.raises(ConfigurationError):
            DlrmConfig("x", (16, 9), (16, 1), 1, 10, embedding_dim=8)

    def test_chains_need_two_entries(self):
        with pytest.raises(ConfigurationError):
            DlrmConfig("x", (8,), (16, 1), 1, 10, embedding_dim=8)


@pytest.fixture(scope="module")
def tiny_model():
    config = DlrmConfig(
        "tiny", (8, 16, 4), (16, 8, 1), n_tables=2, rows_per_table=32,
        embedding_dim=4,
    )
    return DlrmModel(config, seed=0)


@pytest.fixture(scope="module")
def tiny_data():
    return click_dataset(64, n_tables=2, rows_per_table=32, dense_dim=8, seed=0)


class TestModel:
    def test_forward_shape_and_range(self, tiny_model, tiny_data):
        pred = tiny_model.forward(tiny_data.dense, tiny_data.sparse_rows)
        assert pred.shape == (64,)
        assert np.all((pred > 0) & (pred < 1))

    def test_pooled_override_changes_output(self, tiny_model, tiny_data):
        base = tiny_model.forward(tiny_data.dense, tiny_data.sparse_rows)
        pooled = tiny_model.pooled_embeddings(tiny_data.sparse_rows)
        shifted = tiny_model.forward(
            tiny_data.dense, tiny_data.sparse_rows, pooled_override=pooled + 1.0
        )
        assert not np.allclose(base, shifted)

    def test_pooled_override_identity(self, tiny_model, tiny_data):
        pooled = tiny_model.pooled_embeddings(tiny_data.sparse_rows)
        a = tiny_model.forward(tiny_data.dense, tiny_data.sparse_rows)
        b = tiny_model.forward(
            tiny_data.dense, tiny_data.sparse_rows, pooled_override=pooled
        )
        assert np.allclose(a, b)

    def test_weighted_pooling(self, tiny_model, tiny_data):
        weights = [
            [[2.0] * len(rows) for rows in per] for per in tiny_data.sparse_rows
        ]
        unweighted = tiny_model.pooled_embeddings(tiny_data.sparse_rows)
        weighted = tiny_model.pooled_embeddings(tiny_data.sparse_rows, weights)
        assert np.allclose(weighted, 2.0 * unweighted)

    def test_training_reduces_loss(self):
        config = DlrmConfig(
            "train-test", (8, 16, 4), (16, 8, 1), 2, 32, embedding_dim=4
        )
        model = DlrmModel(config, seed=1)
        data = click_dataset(512, 2, 32, dense_dim=8, seed=1)
        before = model.logloss(data.dense, data.sparse_rows, data.labels)
        model.train(data.dense, data.sparse_rows, data.labels, epochs=5, lr=0.1)
        after = model.logloss(data.dense, data.sparse_rows, data.labels)
        assert after < before

    def test_logloss_of_perfect_prediction_is_small(self, tiny_model, tiny_data):
        pred = tiny_model.forward(tiny_data.dense, tiny_data.sparse_rows)
        labels = (pred > 0.5).astype(np.float64)
        ll = tiny_model.logloss(tiny_data.dense, tiny_data.sparse_rows, labels)
        anti = tiny_model.logloss(tiny_data.dense, tiny_data.sparse_rows, 1 - labels)
        assert ll < anti
