"""Trace generators and synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    analytics_trace,
    click_dataset,
    gene_expression,
    production_trace,
    random_trace,
)


class TestRandomTrace:
    def test_shape(self):
        tr = random_trace(1000, n_queries=8, pooling_factor=40, seed=1)
        assert tr.n_queries == 8
        assert all(len(ix) == 40 for ix in tr.indices)
        assert all(len(w) == 40 for w in tr.weights)
        assert tr.mean_pooling_factor == 40.0

    def test_indices_in_range(self):
        tr = random_trace(50, 20, 10, seed=2)
        assert all(0 <= i < 50 for ix in tr.indices for i in ix)

    def test_seed_determinism(self):
        assert random_trace(100, 4, 8, seed=3).indices == random_trace(
            100, 4, 8, seed=3
        ).indices

    def test_unweighted_option(self):
        tr = random_trace(100, 2, 8, weighted=False)
        assert all(w == 1.0 for ws in tr.weights for w in ws)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            random_trace(100, 0, 8)


class TestProductionTrace:
    def test_pf_in_range(self):
        tr = production_trace(10_000, 32, pf_range=(50, 100), seed=4)
        assert all(50 <= len(ix) <= 100 for ix in tr.indices)

    def test_skew_concentrates_references(self):
        tr = production_trace(
            100_000, 64, hot_fraction=0.01, hot_probability=0.8, seed=5
        )
        all_ix = [i for ix in tr.indices for i in ix]
        hot_hits = sum(1 for i in all_ix if i < 1000)
        # ~80% of references should land in the 1% hot set.
        assert hot_hits / len(all_ix) > 0.6

    def test_invalid_hot_params(self):
        with pytest.raises(ConfigurationError):
            production_trace(100, 1, hot_fraction=0.0)


class TestAnalyticsTrace:
    def test_contiguous_runs(self):
        tr = analytics_trace(10_000, 4, 500, seed=6)
        for ix in tr.indices:
            assert list(ix) == list(range(ix[0], ix[0] + 500))

    def test_weights_are_one(self):
        tr = analytics_trace(1000, 2, 100)
        assert all(w == 1.0 for ws in tr.weights for w in ws)

    def test_pf_exceeding_patients_rejected(self):
        with pytest.raises(ConfigurationError):
            analytics_trace(10, 1, 100)


class TestClickDataset:
    def test_shapes(self):
        ds = click_dataset(100, n_tables=3, rows_per_table=50, dense_dim=8)
        assert ds.dense.shape == (100, 8)
        assert len(ds.sparse_rows) == 100
        assert all(len(per) == 3 for per in ds.sparse_rows)
        assert set(np.unique(ds.labels)) <= {0.0, 1.0}
        assert ds.n_samples == 100

    def test_labels_have_signal(self):
        """Labels correlate with the planted dense score (not pure noise)."""
        ds = click_dataset(4000, 2, 100, dense_dim=8, seed=11)
        rate = ds.labels.mean()
        assert 0.2 < rate < 0.8

    def test_row_indices_valid(self):
        ds = click_dataset(50, 2, 30)
        for per in ds.sparse_rows:
            for rows in per:
                assert all(0 <= r < 30 for r in rows)

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            click_dataset(0, 1, 1)


class TestGeneExpression:
    def test_shapes_and_nonnegative(self):
        d = gene_expression(200, 64, n_disease_genes=8, seed=1)
        assert d.expression.shape == (200, 64)
        assert np.all(d.expression >= 0)
        assert d.n_patients == 200
        assert d.n_genes == 64
        assert len(d.disease_genes) == 8

    def test_planted_signal(self):
        d = gene_expression(2000, 64, n_disease_genes=8, effect_size=2.0, seed=2)
        cases = d.expression[d.is_case]
        controls = d.expression[~d.is_case]
        gene = d.disease_genes[0]
        other = next(g for g in range(64) if g not in set(d.disease_genes))
        assert cases[:, gene].mean() > controls[:, gene].mean() + 0.5
        assert abs(cases[:, other].mean() - controls[:, other].mean()) < 0.5

    def test_too_many_disease_genes_rejected(self):
        with pytest.raises(ConfigurationError):
            gene_expression(10, 4, n_disease_genes=8)
