"""DDR4 timing parameters and geometry (Table II)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memsim import DDR4_2400, DDR4_GEOMETRY, DDR4Timing, DramGeometry


class TestTableII:
    def test_paper_parameters(self):
        t = DDR4_2400
        assert t.tRC == 55
        assert t.tRCD == 16
        assert t.tCL == 16
        assert t.tRP == 16
        assert t.tBL == 4
        assert t.tCCD_S == 4
        assert t.tCCD_L == 6
        assert t.tRRD_S == 4
        assert t.tRRD_L == 6
        assert t.tFAW == 26

    def test_clock(self):
        # DDR4-2400: 1200 MHz controller clock.
        assert DDR4_2400.clock_mhz == 1200.0
        assert abs(DDR4_2400.ns_per_cycle - 0.8333) < 1e-3
        assert abs(DDR4_2400.cycles_to_ns(1200) - 1000.0) < 1e-6

    def test_derived_latencies(self):
        assert DDR4_2400.row_hit_latency == 20     # tCL + tBL
        assert DDR4_2400.row_miss_latency == 52    # tRP + tRCD + tCL + tBL

    def test_invalid_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            DDR4Timing(tRC=10, tRAS=39)
        with pytest.raises(ConfigurationError):
            DDR4Timing(tCL=0)


class TestGeometry:
    def test_rank_size_is_8gb(self):
        # Table II: rank_size = 8 GB.
        assert DDR4_GEOMETRY.rank_bytes == 8 << 30

    def test_banks_per_rank(self):
        assert DDR4_GEOMETRY.banks_per_rank == 16  # 4 groups x 4 banks

    def test_row_bytes(self):
        assert DDR4_GEOMETRY.row_bytes == 8192  # 8 KB row buffer

    def test_total_capacity(self):
        assert DDR4_GEOMETRY.total_bytes == 64 << 30  # 8 ranks x 8 GB

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            DramGeometry(ranks=0)
