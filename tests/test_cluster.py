"""Multi-node sharded serving: per-shard blame, quarantine, failover.

Covers the cluster tier end to end (DESIGN.md Sec. 16): the per-shard
restricted-checksum check in the core protocol, the wire codec, the
shard map, coordinator recovery ladder rungs (retry, replica failover,
trusted local recompute), blame/quarantine/re-shard audit events,
journal replay across restarts, the reconnecting serve client, the
heartbeat deadline, and the chaos acceptance gates (blame precision and
recall 1.0, bit-identical answers).

No pytest-asyncio dependency: each async scenario runs under its own
``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json
import os

import numpy as np
import pytest

from repro import obs
from repro.cluster import (
    ClusterCoordinator,
    ClusterHealth,
    NodeClient,
    NodeServer,
    ScriptedDirectives,
    ShardMap,
    blame_ranking,
    merge_event_streams,
    run_cluster_chaos,
    smoke_script,
)
from repro.cluster import codec
from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import (
    ConfigurationError,
    PeerTimeoutError,
    ServerClosedError,
    ShardVerificationError,
    VerificationError,
)
from repro.faults.recovery import RecoveryPolicy
from repro.serve import AsyncSlsClient, SlsServer
from repro.serve.protocol import (
    DEFAULT_HEARTBEAT_TIMEOUT_S,
    ENV_HEARTBEAT_TIMEOUT,
    NodeRequest,
    NodeResponse,
    resolve_heartbeat_timeout,
)
from repro.workloads.secure_sls import SecureEmbeddingStore

KEY = bytes(range(16))


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    obs.disable_events()
    yield
    obs.disable()
    obs.reset()
    obs.disable_events()


def _make_store(n_rows=64, dim=8, seed=3, name="emb"):
    params = SecNDPParams()
    processor = SecNDPProcessor(KEY, params)
    device = UntrustedNdpDevice(params)
    store = SecureEmbeddingStore(processor, device)
    rng = np.random.default_rng(seed)
    store.add_table(name, rng.normal(size=(n_rows, dim)))
    return store


def _split_queries(batch_rows, batch_weights, edges):
    """Partition queries into per-shard masks on row-range ``edges``."""
    shards = []
    for lo, hi in edges:
        rows_part, weights_part = [], []
        for rows, weights in zip(batch_rows, batch_weights):
            rows_part.append([r for r in rows if lo <= r < hi])
            weights_part.append(
                [w for r, w in zip(rows, weights) if lo <= r < hi]
            )
        shards.append((rows_part, weights_part))
    return shards


class TestPerShardVerification:
    """The crypto core: each shard's tag share is checked on its own."""

    def test_honest_shards_pass_and_recombine_bit_identical(self):
        store = _make_store()
        proc, dev = store.processor, store.device
        enc = dev.stored("emb")
        batch_rows = [[1, 5, 40, 63], [0, 32], [10, 20, 30]]
        batch_weights = [[1, 2, 1, 3], [1, 1], [2, 2, 2]]
        oracle = proc.weighted_row_sum_batch(dev, "emb", batch_rows, batch_weights)
        shards = _split_queries(batch_rows, batch_weights, [(0, 32), (32, 64)])
        parts = [
            proc.partial_row_sum_batch(dev, "emb", r, w, with_tag_shares=True)
            for r, w in shards
        ]
        for part in parts:
            assert proc.failed_share_queries(enc, "emb", part) == []
            proc.verify_partial_share(enc, "emb", part)  # no raise
        combined = proc.finalize_row_sum_batch(
            enc, "emb", parts, verify=True, per_shard=True,
            shard_labels=["a", "b"],
        )
        for got, want in zip(combined, oracle):
            assert np.array_equal(got.values, want.values)

    def test_forged_share_blames_exactly_that_shard(self):
        store = _make_store()
        proc, dev = store.processor, store.device
        enc = dev.stored("emb")
        batch_rows = [[1, 40], [5, 50]]
        shards = _split_queries(
            batch_rows, [[1, 1], [1, 1]], [(0, 32), (32, 64)]
        )
        parts = [
            proc.partial_row_sum_batch(dev, "emb", r, w, with_tag_shares=True)
            for r, w in shards
        ]
        parts[1].tag_shares[0] = proc.field.add(parts[1].tag_shares[0], 1)
        # The honest shard still passes; the forged one names query 0.
        assert proc.failed_share_queries(enc, "emb", parts[0]) == []
        assert proc.failed_share_queries(enc, "emb", parts[1]) == [0]
        with pytest.raises(ShardVerificationError) as exc_info:
            proc.finalize_row_sum_batch(
                enc, "emb", parts, verify=True, per_shard=True,
                shard_labels=["good", "evil"],
            )
        assert exc_info.value.shard == "evil"
        assert list(exc_info.value.queries) == [0]

    def test_forged_values_fail_the_shard_check_too(self):
        store = _make_store()
        proc, dev = store.processor, store.device
        enc = dev.stored("emb")
        part = proc.partial_row_sum_batch(
            dev, "emb", [[1, 2, 3]], [[1, 1, 1]], with_tag_shares=True
        )
        part.values[0, 0] = proc.ring.add(part.values[0, 0], np.uint64(1))
        assert proc.failed_share_queries(enc, "emb", part) == [0]

    def test_offsetting_shard_forgeries_caught_by_combined_check(self):
        """Per-shard checks pass individually only if shares are honest;
        a pair of forgeries that cancels in the field sum still trips the
        per-shard identities — and value tampering that cancels across
        shards trips the combined check, which is why finalize keeps
        running it after per-shard passes."""
        store = _make_store()
        proc, dev = store.processor, store.device
        enc = dev.stored("emb")
        shards = _split_queries([[1, 40]], [[1, 1]], [(0, 32), (32, 64)])
        parts = [
            proc.partial_row_sum_batch(dev, "emb", r, w, with_tag_shares=True)
            for r, w in shards
        ]
        # Offsetting *value* tampering: +1 on one shard, -1 on the other.
        # Values cancel in the ring sum but each shard's own restricted
        # checksum identity breaks, so per-shard verification catches it.
        parts[0].values[0, 0] = proc.ring.add(parts[0].values[0, 0], np.uint64(1))
        parts[1].values[0, 0] = proc.ring.sub(parts[1].values[0, 0], np.uint64(1))
        assert proc.failed_share_queries(enc, "emb", parts[0]) == [0]
        assert proc.failed_share_queries(enc, "emb", parts[1]) == [0]
        with pytest.raises((ShardVerificationError, VerificationError)):
            proc.finalize_row_sum_batch(
                enc, "emb", parts, verify=True, per_shard=True
            )

    def test_share_without_tags_is_rejected(self):
        store = _make_store()
        proc, dev = store.processor, store.device
        enc = dev.stored("emb")
        part = proc.partial_row_sum_batch(
            dev, "emb", [[1]], [[1]], with_tag_shares=False
        )
        with pytest.raises(VerificationError):
            proc.failed_share_queries(enc, "emb", part)


class TestUntrustedSplit:
    """The cluster trust split: nodes see ciphertext, the key stays home.

    A node runs :meth:`UntrustedNdpDevice.partial_sum_batch` (no key
    material in scope); the coordinator reconstructs the shard's
    :class:`PartialSumShare` by adding its key-side pad half — and the
    result must be bit-identical to the single-party
    :meth:`partial_row_sum_batch` so the whole cluster stays
    bit-identical to the single-host oracle.
    """

    def test_pad_plus_device_sums_equal_single_party_share(self):
        store = _make_store()
        proc, dev = store.processor, store.device
        enc = dev.stored("emb")
        batch_rows = [[1, 5, 40, 63], [], [10, 20, 30]]
        batch_weights = [[1, 2, 1, 3], [], [2, 2, 2]]
        want = proc.partial_row_sum_batch(
            dev, "emb", batch_rows, batch_weights, with_tag_shares=True
        )
        # Untrusted half: computed by a bare device, as a node would.
        values, tag_sums = dev.partial_sum_batch(
            "emb", batch_rows, batch_weights
        )
        # Trusted half: pads regenerated key-side, no device interaction.
        pad = proc.pad_share_batch(enc, "emb", batch_rows, batch_weights)
        got = proc.combine_device_sums(pad, values, tag_sums)
        assert np.array_equal(got.values, want.values)
        assert got.tag_shares == want.tag_shares
        proc.verify_partial_share(enc, "emb", got)  # no raise

    def test_device_half_needs_no_key(self):
        # Rebuild the memory party from serialized ciphertext alone —
        # everything a real node receives — and compute the sums.
        store = _make_store(n_rows=16, dim=4)
        params = store.processor.params
        blob = codec.encode_table(store.device.stored("emb"))
        node_side = UntrustedNdpDevice(params)
        node_side.store("emb", codec.decode_table(blob, params))
        values, tag_sums = node_side.partial_sum_batch("emb", [[1, 2]], [[1, 1]])
        ref_values, ref_tags = store.device.partial_sum_batch(
            "emb", [[1, 2]], [[1, 1]]
        )
        assert np.array_equal(values, ref_values)
        assert tag_sums == ref_tags

    def test_forged_device_sums_fail_the_reconstructed_check(self):
        store = _make_store()
        proc, dev = store.processor, store.device
        enc = dev.stored("emb")
        values, tag_sums = dev.partial_sum_batch("emb", [[1, 2]], [[1, 1]])
        pad = proc.pad_share_batch(enc, "emb", [[1, 2]], [[1, 1]])
        forged = proc.combine_device_sums(
            pad, values, [proc.field.add(tag_sums[0], 1)]
        )
        assert proc.failed_share_queries(enc, "emb", forged) == [0]

    def test_combine_rejects_mismatched_device_payload(self):
        store = _make_store()
        proc, dev = store.processor, store.device
        enc = dev.stored("emb")
        pad = proc.pad_share_batch(enc, "emb", [[1]], [[1]])
        with pytest.raises(ConfigurationError):
            proc.combine_device_sums(pad, np.zeros((2, 8)), [0, 0])
        with pytest.raises(ConfigurationError):
            proc.combine_device_sums(pad, np.zeros((1, 8)), None)
        with pytest.raises(ConfigurationError):
            proc.combine_device_sums(pad, np.zeros((1, 8)), [0, 0])

    def test_device_rejects_unknown_table_typed(self):
        dev = UntrustedNdpDevice(SecNDPParams())
        with pytest.raises(ConfigurationError):
            dev.partial_sum_batch("ghost", [[0]], [[1]])


class TestShardMap:
    def test_bounds_partition_the_row_space(self):
        smap = ShardMap.build(["a", "b", "c"], {"emb": 100})
        bounds = smap.bounds["emb"]
        assert bounds[0][0] == 0 and bounds[-1][1] == 100
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_owner_mask_partitions_each_query(self):
        smap = ShardMap.build(["a", "b"], {"emb": 10})
        rows, weights = [0, 3, 5, 9], [1, 2, 3, 4]
        got_rows, got_weights = [], []
        for node in smap.nodes:
            r, w = smap.owner_mask("emb", node, rows, weights)
            got_rows += r
            got_weights += w
        assert sorted(got_rows) == rows
        assert sorted(got_weights) == weights

    def test_ranges_for_names_every_table(self):
        smap = ShardMap.build(["a", "b"], {"x": 4, "y": 8})
        assert set(smap.ranges_for("a")) == {"x", "y"}


class TestClusterCodec:
    def test_table_and_device_sums_round_trip(self):
        store = _make_store(n_rows=16, dim=4)
        params = store.processor.params
        enc = store.device.stored("emb")
        back = codec.decode_table(codec.encode_table(enc), params)
        assert np.array_equal(back.ciphertext, enc.ciphertext)
        assert back.tags == enc.tags
        values, tag_sums = store.device.partial_sum_batch(
            "emb", [[1, 2], []], [[1, 1], []]
        )
        payload = codec.encode_device_sums(values, tag_sums)
        values2, tag_sums2 = codec.decode_device_sums(payload, params)
        assert np.array_equal(values2, values)
        assert tag_sums2 == tag_sums

    def test_params_queries_round_trip(self):
        params = SecNDPParams()
        assert codec.decode_params(codec.encode_params(params)) == params
        payload = codec.encode_queries([[1, 2], [3]], [[1, 1], [5]])
        rows, weights = codec.decode_queries(payload)
        assert rows == [[1, 2], [3]] and weights == [[1, 1], [5]]

    def test_no_key_codec_exists(self):
        # The wire carries no key material in either direction: the
        # codec module must not even offer a key encoder.
        assert not any("key" in name for name in codec.__all__)

    def test_malformed_payloads_raise_configuration_error(self):
        params = SecNDPParams()
        with pytest.raises(ConfigurationError):
            codec.decode_params({"element_bits": "nope"})
        with pytest.raises(ConfigurationError):
            codec.decode_queries({"batch_rows": [[1]], "batch_weights": []})
        # Hostile bigints overflow the uint64 cast: blameable, not a crash.
        with pytest.raises(ConfigurationError):
            codec.decode_device_sums(
                {"values": [[2 ** 80]], "tag_sums": [0]}, params
            )
        with pytest.raises(ConfigurationError):
            codec.decode_device_sums(
                {"values": [[-1]], "tag_sums": [0]}, params
            )
        with pytest.raises(ConfigurationError):
            codec.decode_device_sums({"tag_sums": [0]}, params)

    def test_decode_device_sums_reduces_tags_into_field(self):
        params = SecNDPParams()
        q = params.tag_modulus
        _, tag_sums = codec.decode_device_sums(
            {"values": [[1]], "tag_sums": [q + 5]}, params
        )
        assert tag_sums == [5]


def _batches(n_rows, n_batches=4, batch=3, seed=5):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_batches):
        rows = [
            sorted(
                int(r)
                for r in rng.choice(n_rows, size=rng.integers(2, 6), replace=False)
            )
            for _ in range(batch)
        ]
        weights = [[int(rng.integers(1, 4)) for _ in q] for q in rows]
        out.append((rows, weights))
    return out


class TestClusterEndToEnd:
    """Coordinator + in-process node servers on one event loop."""

    def _run(self, coro):
        return asyncio.run(coro)

    def test_honest_cluster_is_bit_identical(self):
        store = _make_store(n_rows=48)
        batches = _batches(48)
        expected = [store.sls_many("emb", r, w) for r, w in batches]

        async def scenario():
            async with NodeServer("n0") as s0, NodeServer("n1") as s1:
                coordinator = ClusterCoordinator(
                    store,
                    [(s.name, s.host, s.port) for s in (s0, s1)],
                    task_timeout_s=5.0,
                )
                async with coordinator:
                    for (rows, ws), want in zip(batches, expected):
                        got = await coordinator.sls_many("emb", rows, ws)
                        assert np.array_equal(got, want)
                    assert coordinator.stats()["live"] == ["n0", "n1"]

        self._run(scenario())

    def test_byzantine_node_is_blamed_quarantined_resharded(self):
        store = _make_store(n_rows=48)
        batches = _batches(48)
        expected = [store.sls_many("emb", r, w) for r, w in batches]
        own_log = obs.event_log() is None
        if own_log:
            obs.enable_events()
        log = obs.event_log()
        start = len(log)

        async def scenario():
            async with NodeServer("n0") as s0, NodeServer("n1") as s1:
                coordinator = ClusterCoordinator(
                    store,
                    [(s.name, s.host, s.port) for s in (s0, s1)],
                    task_timeout_s=5.0,
                    fault_injector=ScriptedDirectives(
                        {"n1": [(0, ("byzantine",))]}
                    ),
                )
                async with coordinator:
                    for (rows, ws), want in zip(batches, expected):
                        got = await coordinator.sls_many("emb", rows, ws)
                        assert np.array_equal(got, want)
                    stats = coordinator.stats()
                    assert stats["quarantined"] == ["n1"]
                    assert stats["live"] == ["n0"]

        try:
            self._run(scenario())
            events = log.events()[start:]
        finally:
            if own_log:
                obs.disable_events()
        kinds = [e.kind for e in events]
        assert obs.NODE_BLAME in kinds
        assert obs.NODE_QUARANTINE in kinds
        assert obs.NODE_RESHARD in kinds
        blame = next(e for e in events if e.kind == obs.NODE_BLAME)
        assert blame.worker == "n1"

    def test_dead_node_fails_over_to_replica(self):
        store = _make_store(n_rows=48)
        batches = _batches(48)
        expected = [store.sls_many("emb", r, w) for r, w in batches]

        async def scenario():
            async with NodeServer("n0") as s0, NodeServer("n1") as s1:
                coordinator = ClusterCoordinator(
                    store,
                    [(s.name, s.host, s.port) for s in (s0, s1)],
                    task_timeout_s=5.0,
                    policy=RecoveryPolicy(backoff_base_s=1e-4, max_retries=1),
                    fault_injector=ScriptedDirectives({"n1": [(0, ("dead",))]}),
                )
                async with coordinator:
                    for (rows, ws), want in zip(batches, expected):
                        got = await coordinator.sls_many("emb", rows, ws)
                        assert np.array_equal(got, want)
                    assert coordinator.stats()["quarantined"] == ["n1"]

        self._run(scenario())

    def test_all_nodes_quarantined_serves_locally(self):
        store = _make_store(n_rows=48)
        batches = _batches(48)
        expected = [store.sls_many("emb", r, w) for r, w in batches]

        async def scenario():
            async with NodeServer("n0") as s0:
                coordinator = ClusterCoordinator(
                    store,
                    [(s0.name, s0.host, s0.port)],
                    task_timeout_s=5.0,
                    policy=RecoveryPolicy(backoff_base_s=1e-4, max_retries=0),
                    fault_injector=ScriptedDirectives({"n0": [(0, ("dead",))]}),
                )
                async with coordinator:
                    for (rows, ws), want in zip(batches, expected):
                        got = await coordinator.sls_many("emb", rows, ws)
                        assert np.array_equal(got, want)
                    stats = coordinator.stats()
                    assert stats["live"] == []
                    assert coordinator.shard_map is None

        self._run(scenario())

    def test_partitioned_node_times_out_and_is_blamed(self):
        store = _make_store(n_rows=48)
        rows, ws = [[1, 40]], [[1, 1]]
        want = store.sls_many("emb", rows, ws)

        async def scenario():
            async with NodeServer("n0") as s0, NodeServer("n1") as s1:
                coordinator = ClusterCoordinator(
                    store,
                    [(s.name, s.host, s.port) for s in (s0, s1)],
                    task_timeout_s=0.2,
                    policy=RecoveryPolicy(backoff_base_s=1e-4, max_retries=0),
                    fault_injector=ScriptedDirectives(
                        {"n1": [(0, ("partition",))]}
                    ),
                )
                async with coordinator:
                    got = await coordinator.sls_many("emb", rows, ws)
                    assert np.array_equal(got, want)
                    assert "n1" in coordinator.stats()["quarantined"]

        self._run(scenario())

    def test_no_key_material_ever_crosses_the_wire(self):
        """The tentpole trust property: nodes are genuinely untrusted.

        Record every frame the coordinator sends; none may carry key
        material (nor anything derived from it — nodes hold a bare
        :class:`UntrustedNdpDevice`, never a processor).
        """
        store = _make_store(n_rows=48)
        batches = _batches(48)
        expected = [store.sls_many("emb", r, w) for r, w in batches]
        sent = []

        class RecordingClient(NodeClient):
            async def request(self, op, table=None, payload=None, timeout=None):
                sent.append((op, payload or {}))
                return await super().request(op, table, payload, timeout)

        async def scenario():
            async with NodeServer("n0") as s0, NodeServer("n1") as s1:
                coordinator = ClusterCoordinator(
                    store,
                    [RecordingClient(s.name, s.host, s.port) for s in (s0, s1)],
                    task_timeout_s=5.0,
                )
                async with coordinator:
                    for (rows, ws), want in zip(batches, expected):
                        got = await coordinator.sls_many("emb", rows, ws)
                        assert np.array_equal(got, want)
                # Node-side state is ciphertext-only: a device, no
                # processor and no key attribute anywhere.
                for server in (s0, s1):
                    assert isinstance(server._device, UntrustedNdpDevice)
                    assert not hasattr(server, "_processor")
                    assert not any(
                        "key" in attr for attr in vars(server)
                    )

        self._run(scenario())
        assert sent, "recording client saw no traffic"
        key_b64 = __import__("base64").b64encode(KEY).decode("ascii")
        for op, payload in sent:
            assert "key" not in payload, f"{op} frame carried a key field"
            assert key_b64 not in json.dumps(payload), (
                f"{op} frame leaked key bytes"
            )

    def test_error_frame_is_blamed_and_failed_over(self):
        """A node answering with an error-status frame (instead of a
        share) must be blamed and its sub-batch re-served by a healthy
        replica — not fail the whole query (REVIEW: the ladder must
        catch ConfigurationError)."""
        store = _make_store(n_rows=48)
        batches = _batches(48)
        expected = [store.sls_many("emb", r, w) for r, w in batches]

        async def scenario():
            async with NodeServer("n0") as s0, NodeServer("n1") as s1:
                coordinator = ClusterCoordinator(
                    store,
                    [(s.name, s.host, s.port) for s in (s0, s1)],
                    task_timeout_s=5.0,
                    policy=RecoveryPolicy(backoff_base_s=1e-4, max_retries=0),
                )
                async with coordinator:
                    # Wipe n1's replica: its next partial_sum raises
                    # ConfigurationError, returned as an error frame.
                    s1._device = None
                    for (rows, ws), want in zip(batches, expected):
                        got = await coordinator.sls_many("emb", rows, ws)
                        assert np.array_equal(got, want)
                    stats = coordinator.stats()
                    assert "n1" in stats["quarantined"]
                    assert stats["live"] == ["n0"]

        self._run(scenario())

    def test_blame_strikes_are_weighted_by_evidence(self):
        """Live quarantine uses BLAME_WEIGHTS, matching the journal
        ranking: at threshold 3, one forged share (weight 3) quarantines
        immediately while one deadline miss (weight 1) does not."""
        store = _make_store(n_rows=48)
        rows, ws = [[1, 40]], [[1, 1]]
        want = store.sls_many("emb", rows, ws)

        async def scenario(directive, expect_quarantine):
            async with NodeServer("n0") as s0, NodeServer("n1") as s1:
                coordinator = ClusterCoordinator(
                    store,
                    [(s.name, s.host, s.port) for s in (s0, s1)],
                    task_timeout_s=0.2,
                    policy=RecoveryPolicy(backoff_base_s=1e-4, max_retries=0),
                    blame_threshold=3,
                    fault_injector=ScriptedDirectives({"n1": [(0, directive)]}),
                )
                async with coordinator:
                    got = await coordinator.sls_many("emb", rows, ws)
                    assert np.array_equal(got, want)
                    stats = coordinator.stats()
                    if expect_quarantine:
                        assert stats["quarantined"] == ["n1"]
                        assert stats["blame_counts"]["n1"] >= 3.0
                    else:
                        assert stats["quarantined"] == []
                        assert stats["blame_counts"]["n1"] == 1.0

        self._run(scenario(("byzantine",), True))
        self._run(scenario(("partition",), False))

    def test_backoff_salt_is_stable_across_processes(self):
        # hash() is PYTHONHASHSEED-randomized; the ladder's jitter salt
        # must not be (all chaos randomness stays in seeded or stable
        # streams).  Pin the exact salt so any drift back to hash()
        # or a different digest shows up as a failure.
        import zlib

        assert zlib.crc32("node0".encode("utf-8")) & 0x7FFFFFFF == 0x72E815D6

    def test_node_requires_assignment_before_partial_sum(self):
        async def scenario():
            async with NodeServer("n0") as server:
                client = NodeClient("n0", server.host, server.port)
                payload = codec.encode_queries([[0]], [[1]])
                with pytest.raises(ConfigurationError):
                    await client.request(
                        "partial_sum", table="emb", payload=payload, timeout=5.0
                    )
                await client.close()

        asyncio.run(scenario())

    def test_coordinator_requires_verifying_store(self):
        store = _make_store()
        store.verify = False
        with pytest.raises(ConfigurationError):
            ClusterCoordinator(store, [("n0", "127.0.0.1", 1)])


class TestNodeProtocol:
    def test_node_request_round_trip_and_validation(self):
        req = NodeRequest(
            id=3, op="shard_assign", table="emb", payload={"x": 1}
        )
        assert NodeRequest.from_wire(req.to_wire()) == req
        with pytest.raises(ConfigurationError):
            NodeRequest(id=1, op="launch_missiles")
        resp = NodeResponse(id=3, status="ok", payload={"node": "n0"})
        assert NodeResponse.from_wire(resp.to_wire()) == resp

    def test_heartbeat_reports_assigned_tables(self):
        store = _make_store(n_rows=16, dim=4)

        async def scenario():
            async with NodeServer("n0") as server:
                client = NodeClient("n0", server.host, server.port)
                assert await client.heartbeat(timeout=5.0)
                coordinator = ClusterCoordinator(
                    store, [client], task_timeout_s=5.0
                )
                await coordinator.setup()
                response = await client.request("heartbeat", timeout=5.0)
                assert response.payload["tables"] == ["emb"]
                await coordinator.close()

        asyncio.run(scenario())


class TestReconnect:
    """Satellite: AsyncSlsClient survives a server restart."""

    def _store_server(self):
        store = _make_store(n_rows=32, dim=4)
        return store, SlsServer(store, host="127.0.0.1", port=0)

    def test_client_reconnects_after_server_restart(self):
        store, server = self._store_server()
        rows = [1, 2, 3]
        want = store.sls("emb", rows)

        async def scenario():
            await server.start()
            port = server.port
            client = await AsyncSlsClient.connect(
                "127.0.0.1", port, backoff_base_s=0.01, backoff_cap_s=0.05
            )
            got = await client.sls("emb", rows)
            assert np.allclose(got, want)
            # Restart the server on the same port, then sever the old
            # connection abruptly (RST, as a crashed peer would): the
            # client must dial again on its own and the next request
            # must succeed without a new connect().
            await server.close()
            store2, server2 = self._store_server()
            server2.port = port
            await server2.start()
            client._writer.transport.abort()
            try:
                got = await client.sls("emb", rows)
                assert np.allclose(got, store2.sls("emb", rows))
            finally:
                await client.close()
                await server2.close()

        obs.enable()
        asyncio.run(scenario())
        assert obs.get_registry().counter("serve.client.reconnects") >= 1

    def test_reconnect_disabled_raises_server_closed(self):
        store, server = self._store_server()

        async def scenario():
            await server.start()
            client = await AsyncSlsClient.connect(
                "127.0.0.1", server.port, reconnect=False
            )
            await server.close()
            client._writer.transport.abort()
            with pytest.raises(ServerClosedError):
                # The write may land in a dead socket buffer; the read
                # loop surfaces the close either way.
                for _ in range(10):
                    await client.sls("emb", [1])
            await client.close()

        asyncio.run(scenario())

    def test_reconnect_gives_up_when_server_stays_down(self):
        store, server = self._store_server()

        async def scenario():
            await server.start()
            client = await AsyncSlsClient.connect(
                "127.0.0.1",
                server.port,
                max_reconnects=2,
                backoff_base_s=0.005,
                backoff_cap_s=0.01,
            )
            await server.close()  # nothing ever listens again
            client._writer.transport.abort()
            with pytest.raises(ServerClosedError):
                for _ in range(10):
                    await client.sls("emb", [1])
            await client.close()

        asyncio.run(scenario())


class TestHeartbeatDeadline:
    """Satellite: liveness probes bound the wait on silent peers."""

    def test_resolve_heartbeat_timeout_env_and_default(self, monkeypatch):
        monkeypatch.delenv(ENV_HEARTBEAT_TIMEOUT, raising=False)
        assert resolve_heartbeat_timeout(None) == DEFAULT_HEARTBEAT_TIMEOUT_S
        assert resolve_heartbeat_timeout(1.5) == 1.5
        monkeypatch.setenv(ENV_HEARTBEAT_TIMEOUT, "0.25")
        assert resolve_heartbeat_timeout(None) == 0.25
        monkeypatch.setenv(ENV_HEARTBEAT_TIMEOUT, "not-a-number")
        with pytest.raises(ConfigurationError):
            resolve_heartbeat_timeout(None)

    def test_heartbeat_times_out_on_silent_peer(self):
        async def scenario():
            async def swallow(reader, writer):
                await reader.read(-1)  # never answers

            silent = await asyncio.start_server(swallow, "127.0.0.1", 0)
            port = silent.sockets[0].getsockname()[1]
            client = await AsyncSlsClient.connect(
                "127.0.0.1", port, reconnect=False
            )
            assert not await client.heartbeat(timeout=0.1)
            await client.close()
            silent.close()
            await silent.wait_closed()

        asyncio.run(scenario())

    def test_heartbeat_ok_against_live_server(self):
        store = _make_store(n_rows=16, dim=4)

        async def scenario():
            server = SlsServer(store, host="127.0.0.1", port=0)
            await server.start()
            client = await AsyncSlsClient.connect("127.0.0.1", server.port)
            assert await client.ping()
            assert await client.heartbeat()
            await client.close()
            await server.close()

        asyncio.run(scenario())

    def test_node_client_timeout_raises_peer_timeout(self):
        async def scenario():
            async def swallow(reader, writer):
                await reader.read(-1)

            silent = await asyncio.start_server(swallow, "127.0.0.1", 0)
            port = silent.sockets[0].getsockname()[1]
            client = NodeClient("mute", "127.0.0.1", port)
            with pytest.raises(PeerTimeoutError):
                await client.request("heartbeat", timeout=0.1)
            await client.close()
            silent.close()
            await silent.wait_closed()

        asyncio.run(scenario())


class TestJournalReplay:
    """Satellite: quarantine journal survives restarts; streams merge."""

    def _run_cluster_with_journal(self, path, node_scripts, seed=5):
        store = _make_store(n_rows=48, seed=seed)
        batches = _batches(48, seed=seed)
        obs.enable_events(str(path))
        try:

            async def scenario():
                async with NodeServer("n0") as s0, NodeServer("n1") as s1:
                    coordinator = ClusterCoordinator(
                        store,
                        [(s.name, s.host, s.port) for s in (s0, s1)],
                        task_timeout_s=5.0,
                        policy=RecoveryPolicy(backoff_base_s=1e-4, max_retries=0),
                        fault_injector=ScriptedDirectives(node_scripts),
                    )
                    async with coordinator:
                        for rows, ws in batches:
                            await coordinator.sls_many("emb", rows, ws)

            asyncio.run(scenario())
        finally:
            obs.disable_events()

    def test_blame_state_replays_across_process_restart(self, tmp_path):
        journal = tmp_path / "audit.jsonl"
        # "Process 1" blames and quarantines n1, then exits.
        self._run_cluster_with_journal(
            journal, {"n1": [(0, ("byzantine",))]}
        )
        # "Process 2" (fresh interpreter state) replays the journal.
        health = ClusterHealth.from_journals([journal])
        assert health.quarantined == ["n1"]
        assert health.reshards >= 1
        assert health.ranking and health.ranking[0][0] == "n1"
        # Appending a second run to the same journal accumulates state.
        self._run_cluster_with_journal(
            journal, {"n0": [(0, ("byzantine",))]}, seed=6
        )
        health2 = ClusterHealth.from_journals([journal])
        assert set(health2.quarantined) == {"n0", "n1"}
        assert health2.reshards >= 2

    def test_multi_stream_merge_is_blame_ranked(self, tmp_path):
        a, b = tmp_path / "host_a.jsonl", tmp_path / "host_b.jsonl"
        # Host A sees n1 forge twice; host B sees n0 time out once.
        self._run_cluster_with_journal(a, {"n1": [(0, ("byzantine",))]})
        self._run_cluster_with_journal(
            b, {"n0": [(1, ("partition",))]}, seed=7
        )
        merged = merge_event_streams([a, b])
        assert [
            (e.ts, e.pid, e.seq) for e in merged
        ] == sorted((e.ts, e.pid, e.seq) for e in merged)
        ranking = dict(blame_ranking(merged))
        # Cryptographic evidence (forged share, weight 3) outranks a
        # liveness timeout (weight 1).
        assert ranking["n1"] > ranking["n0"] > 0
        health = ClusterHealth.from_events(merged)
        assert health.ranking[0][0] == "n1"
        assert "blame ranking" in health.render()

    def test_merge_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        self._run_cluster_with_journal(path, {"n1": [(0, ("byzantine",))]})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "node_blame", "worker": "n0"')  # torn line
        merged = merge_event_streams([path])
        assert all(e.kind for e in merged)
        assert "n0" not in dict(blame_ranking(merged))


class TestClusterChaos:
    """The acceptance gates, via the harness the CI smoke job runs."""

    def test_scripted_smoke_passes_every_gate(self):
        result = run_cluster_chaos(
            n_nodes=3,
            script=smoke_script(),
            n_batches=6,
            batch=4,
            rows_per_table=96,
            dim=8,
        )
        assert result.bit_identical
        assert result.blame_precision == 1.0
        assert result.blame_recall == 1.0
        assert result.passed
        assert set(result.quarantined_nodes) == {"node1", "node2"}
        assert result.reshards >= 2
        assert result.events.get("node_blame", 0) >= 1
        assert result.events.get("node_dead", 0) >= 1
        text = result.render()
        assert "PASS" in text and "precision 1.000" in text

    def test_seeded_chaos_cluster_preset_passes(self):
        result = run_cluster_chaos(
            n_nodes=3, n_batches=8, batch=6, rows_per_table=96, dim=8,
            task_timeout_s=1.0,
        )
        assert result.passed

    def test_fault_free_run_has_no_blame(self):
        result = run_cluster_chaos(
            n_nodes=2,
            script={},
            n_batches=3,
            batch=4,
            rows_per_table=64,
            dim=8,
        )
        assert result.passed
        assert result.blamed_nodes == []
        assert result.faulted_nodes == []
        assert result.quarantined_nodes == []


class TestProcessCluster:
    """Real OS processes (spawn): the CI smoke job's third leg."""

    def test_process_smoke_sigkill_and_byzantine(self):
        from repro.cluster import run_process_cluster_smoke

        result = run_process_cluster_smoke(n_nodes=3, n_batches=6)
        assert result.passed
        assert set(result.faulted_nodes) == {"node1", "node2"}
        assert result.reshards >= 2
