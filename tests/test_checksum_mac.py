"""Linear checksums (Alg. 2 / Alg. 8) and the encrypted MAC (Alg. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ArithmeticEncryptor,
    EncryptedLinearMac,
    LinearChecksum,
    MultiPointChecksum,
    SecNDPParams,
)
from repro.crypto import TweakedCipher

KEY = bytes(range(16))


@pytest.fixture
def setup():
    params = SecNDPParams(element_bits=32)
    cipher = TweakedCipher(KEY)
    return cipher, params


class TestLinearChecksum:
    def test_secret_point_depends_on_addr_and_version(self, setup):
        cipher, params = setup
        cs = LinearChecksum(cipher, params)
        s1 = cs.secret_point(0x1000, 0)
        assert s1 != cs.secret_point(0x2000, 0)
        assert s1 != cs.secret_point(0x1000, 1)
        assert s1 == cs.secret_point(0x1000, 0)

    def test_secret_point_in_field(self, setup):
        cipher, params = setup
        cs = LinearChecksum(cipher, params)
        assert 0 <= cs.secret_point(0x1000, 0) < params.tag_modulus

    def test_row_tag_matches_definition(self, setup):
        cipher, params = setup
        cs = LinearChecksum(cipher, params)
        q = params.tag_modulus
        s = 12345
        row = [7, 11, 13]
        expected = (7 * pow(s, 3, q) + 11 * pow(s, 2, q) + 13 * s) % q
        assert cs.row_tag(row, s) == expected

    def test_matrix_tags_linearity(self, setup):
        """a x h(P) == h(a x P): the identity that makes verification work."""
        cipher, params = setup
        cs = LinearChecksum(cipher, params)
        field = params.field()
        rng = np.random.default_rng(2)
        matrix = rng.integers(0, 1000, size=(5, 8))
        weights = [2, 3, 1, 5, 4]
        s = cs.secret_point(0x4000, 1)
        tags = cs.matrix_tags(matrix, 0x4000, 1)
        combined_tag = field.dot(weights, tags)
        combined_row = (np.array(weights)[:, None] * matrix).sum(axis=0)
        assert cs.result_tag([int(x) for x in combined_row], s) == combined_tag

    def test_tag_detects_any_single_element_change(self, setup):
        cipher, params = setup
        cs = LinearChecksum(cipher, params)
        s = cs.secret_point(0x4000, 0)
        row = [1, 2, 3, 4]
        base = cs.row_tag(row, s)
        for j in range(4):
            tampered = list(row)
            tampered[j] += 1
            assert cs.row_tag(tampered, s) != base


class TestMultiPointChecksum:
    def test_small_field_uses_multiple_points(self, setup):
        cipher, _ = setup
        params = SecNDPParams(element_bits=32, tag_modulus=(1 << 31) - 1)
        mp = MultiPointChecksum(cipher, params)
        assert mp.cnt_s == 4
        points = mp.secret_points(0x1000, 0)
        assert len(points) == 4
        assert len(set(points)) > 1  # distinct substrings

    def test_default_field_single_point(self, setup):
        cipher, params = setup
        mp = MultiPointChecksum(cipher, params)
        assert mp.cnt_s == 1

    def test_linearity(self, setup):
        cipher, _ = setup
        params = SecNDPParams(element_bits=32, tag_modulus=(1 << 31) - 1)
        mp = MultiPointChecksum(cipher, params)
        field = params.field()
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 1000, size=(4, 6))
        weights = [1, 2, 3, 4]
        points = mp.secret_points(0x2000, 5)
        tags = mp.matrix_tags(matrix, 0x2000, 5)
        combined_tag = field.dot(weights, tags)
        combined_row = (np.array(weights)[:, None] * matrix).sum(axis=0)
        assert mp.result_tag([int(x) for x in combined_row], points) == combined_tag

    def test_detects_tampering(self, setup):
        cipher, _ = setup
        params = SecNDPParams(element_bits=32, tag_modulus=(1 << 31) - 1)
        mp = MultiPointChecksum(cipher, params)
        points = mp.secret_points(0x2000, 0)
        assert mp.row_tag([1, 2, 3], points) != mp.row_tag([1, 2, 4], points)


class TestEncryptedMac:
    def test_tag_roundtrip(self, setup):
        cipher, params = setup
        mac = EncryptedLinearMac(cipher, params)
        tag = 123456789
        c = mac.encrypt_tag(tag, 0x3000, 2)
        assert mac.decrypt_tag(c, 0x3000, 2) == tag

    def test_tag_pad_depends_on_row_addr(self, setup):
        cipher, params = setup
        mac = EncryptedLinearMac(cipher, params)
        assert mac.tag_pad(0x3000, 0) != mac.tag_pad(0x3080, 0)

    def test_attach_tags(self, setup):
        cipher, params = setup
        enc = ArithmeticEncryptor(cipher, params)
        mac = EncryptedLinearMac(cipher, params)
        rng = np.random.default_rng(4)
        pt = rng.integers(0, 1000, size=(6, 8), dtype=np.uint64).astype(np.uint32)
        e = enc.encrypt(pt, 0x5000, version=0)
        mac.attach_tags(e, pt, checksum_version=1, tag_version=2)
        assert len(e.tags) == 6
        # Decrypting each tag must give the row checksum.
        s = mac.checksum.secret_point(0x5000, 1)
        for i in range(6):
            tag = mac.decrypt_tag(e.tags[i], e.row_addr(i), 2)
            assert tag == mac.checksum.row_tag(pt[i], s)

    def test_attach_tags_shape_mismatch(self, setup):
        cipher, params = setup
        enc = ArithmeticEncryptor(cipher, params)
        mac = EncryptedLinearMac(cipher, params)
        e = enc.encrypt(np.zeros((4, 8), dtype=np.uint32), 0x5000, 0)
        with pytest.raises(ValueError):
            mac.attach_tags(e, np.zeros((3, 8), dtype=np.uint32), 0, 0)

    def test_tag_pads_require_tags(self, setup):
        cipher, params = setup
        enc = ArithmeticEncryptor(cipher, params)
        mac = EncryptedLinearMac(cipher, params)
        e = enc.encrypt(np.zeros((4, 8), dtype=np.uint32), 0x5000, 0)
        with pytest.raises(ValueError):
            mac.tag_pads_for_rows(e, [0])

    def test_encrypted_tags_hide_checksums(self, setup):
        """Identical rows at different addresses get different C_T."""
        cipher, params = setup
        enc = ArithmeticEncryptor(cipher, params)
        mac = EncryptedLinearMac(cipher, params)
        pt = np.tile(np.arange(8, dtype=np.uint32), (4, 1))  # identical rows
        e = enc.encrypt(pt, 0x5000, version=0)
        mac.attach_tags(e, pt, checksum_version=0, tag_version=0)
        assert len(set(e.tags)) == 4  # same T_i, different pads
