"""SecNDPParams validation and software version management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DEFAULT_VERSION_BUDGET,
    SecNDPParams,
    SecNDPProcessor,
    VersionManager,
)
from repro.errors import (
    ConfigurationError,
    SecNDPError,
    VersionBudgetError,
    VersionReuseError,
)


class TestParams:
    def test_defaults_match_paper(self):
        p = SecNDPParams()
        assert p.block_bits == 128          # AES
        assert p.tag_modulus == (1 << 127) - 1
        assert p.tag_bits == 127            # w_t
        assert p.element_bits == 32

    def test_elements_per_block(self):
        assert SecNDPParams(element_bits=32).elements_per_block == 4
        assert SecNDPParams(element_bits=8).elements_per_block == 16

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            SecNDPParams(element_bits=24)

    def test_oversized_element_rejected(self):
        with pytest.raises(ConfigurationError):
            SecNDPParams(element_bits=256)

    def test_ring_and_field_consistent(self):
        p = SecNDPParams(element_bits=16, tag_modulus=97)
        assert p.ring().width == 16
        assert p.field().modulus == 97
        assert p.tag_bytes == 1

    def test_cipher_bound_to_layout(self, key):
        p = SecNDPParams()
        c = p.cipher(key)
        assert c.layout is p.layout


class TestVersionManager:
    def test_fresh_versions_increase(self):
        vm = VersionManager()
        assert vm.fresh("t") == 0
        assert vm.fresh("t") == 1
        assert vm.current("t") == 1

    def test_independent_regions(self):
        vm = VersionManager()
        vm.fresh("a")
        vm.fresh("a")
        assert vm.fresh("b") == 0

    def test_budget_enforced(self):
        vm = VersionManager(budget=2)
        vm.fresh("a")
        vm.fresh("b")
        with pytest.raises(VersionBudgetError):
            vm.fresh("c")

    def test_default_budget_is_64(self):
        assert DEFAULT_VERSION_BUDGET == 64
        vm = VersionManager()
        for i in range(64):
            vm.fresh(f"t{i}")
        with pytest.raises(VersionBudgetError):
            vm.fresh("t64")

    def test_retire_frees_slot_but_burns_versions(self):
        vm = VersionManager(budget=1)
        vm.fresh("a")
        vm.fresh("a")
        vm.retire("a")
        assert vm.fresh("b") == 0         # slot reusable
        vm.retire("b")
        # Re-registering "a" must NOT restart at 0 (old pads may be known).
        assert vm.fresh("a") == 2

    def test_retire_unknown_is_noop(self):
        VersionManager().retire("ghost")

    def test_current_of_unknown_region_raises(self):
        with pytest.raises(VersionReuseError):
            VersionManager().current("nope")

    def test_assert_unused(self):
        vm = VersionManager()
        vm.fresh("a")  # version 0 burned
        with pytest.raises(VersionReuseError):
            vm.assert_unused("a", 0)
        vm.assert_unused("a", 1)  # fine
        vm.assert_unused("other", 0)  # unknown region: fine

    def test_version_width_exhaustion(self):
        vm = VersionManager(version_bits=1)
        vm.fresh("a")
        vm.fresh("a")
        with pytest.raises(VersionReuseError):
            vm.fresh("a")

    def test_live_regions(self):
        vm = VersionManager()
        vm.fresh("a")
        vm.fresh("b")
        assert vm.live_regions == 2
        vm.retire("a")
        assert vm.live_regions == 1


class TestVersionErrors:
    """Direct coverage of the two version failure modes (Sec. V-A)."""

    def test_version_errors_are_secndp_errors(self):
        assert issubclass(VersionReuseError, SecNDPError)
        assert issubclass(VersionBudgetError, SecNDPError)
        assert not issubclass(VersionReuseError, VersionBudgetError)

    def test_reuse_error_names_the_region(self):
        vm = VersionManager()
        vm.fresh("emb/t0")
        with pytest.raises(VersionReuseError, match="emb/t0"):
            vm.assert_unused("emb/t0", 0)

    def test_budget_error_names_the_budget(self):
        vm = VersionManager(budget=1)
        vm.fresh("a")
        with pytest.raises(VersionBudgetError, match="budget of 1"):
            vm.fresh("b")

    def test_reuse_survives_retire(self):
        # A retired region's burned versions must stay rejected forever.
        vm = VersionManager()
        vm.fresh("a")
        vm.retire("a")
        vm.fresh("a")  # continues at 1
        with pytest.raises(VersionReuseError):
            vm.assert_unused("a", 1)

    def test_counter_exhaustion_through_reencryption(self, key):
        # Protocol-level: each encrypt_matrix of the same region bumps the
        # data-domain counter; a 1-bit version field allows exactly two
        # encryptions before the manager demands a re-key.
        proc = SecNDPProcessor(
            key, SecNDPParams(), versions=VersionManager(version_bits=1)
        )
        plain = proc.ring.encode(np.arange(16, dtype=np.int64).reshape(4, 4))
        proc.encrypt_matrix(plain, 0x1000, "r", with_tags=False)
        proc.encrypt_matrix(plain, 0x1000, "r", with_tags=False)
        with pytest.raises(VersionReuseError, match="re-key"):
            proc.encrypt_matrix(plain, 0x1000, "r", with_tags=False)

    def test_budget_exhaustion_through_encrypt_matrix(self, key):
        # A tagged region consumes three version slots (data / checksum /
        # tag); a 3-region budget therefore fits exactly one table.
        proc = SecNDPProcessor(
            key, SecNDPParams(), versions=VersionManager(budget=3)
        )
        plain = proc.ring.encode(np.arange(16, dtype=np.int64).reshape(4, 4))
        proc.encrypt_matrix(plain, 0x1000, "t0")
        with pytest.raises(VersionBudgetError):
            proc.encrypt_matrix(plain, 0x2000, "t1")
