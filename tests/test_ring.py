"""Ring Z(2^w_e) arithmetic and byte packing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ring import RING8, RING16, RING32, RING64, Ring


class TestConstruction:
    def test_invalid_width_rejected(self):
        for width in (0, 7, 12, 128):
            with pytest.raises(ValueError):
                Ring(width)

    def test_modulus(self):
        assert RING8.modulus == 256
        assert RING32.modulus == 1 << 32


class TestEncodeDecode:
    def test_signed_roundtrip(self):
        values = np.array([-128, -1, 0, 1, 127])
        encoded = RING8.encode(values)
        assert np.array_equal(RING8.decode_signed(encoded), values)

    def test_negative_encoding_is_twos_complement(self):
        assert int(RING8.encode(np.array([-1]))[0]) == 255
        assert int(RING32.encode(np.array([-1]))[0]) == (1 << 32) - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(OverflowError):
            RING8.encode(np.array([256]))
        with pytest.raises(OverflowError):
            RING8.encode(np.array([-129]))

    def test_floats_rejected(self):
        with pytest.raises(TypeError):
            RING8.encode(np.array([1.5]))

    def test_unsigned_passthrough(self):
        assert int(RING8.encode(np.array([255]))[0]) == 255


class TestArithmetic:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_add_sub_inverse(self, a, b):
        s = RING32.add(np.uint32(a), np.uint32(b))
        assert int(RING32.sub(s, np.uint32(b))) == a

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    @settings(max_examples=100, deadline=None)
    def test_mul_matches_python(self, a, b):
        assert int(RING16.mul(np.uint16(a), np.uint16(b))) == (a * b) % (1 << 16)

    def test_neg(self):
        assert int(RING8.neg(np.uint8(1))) == 255
        assert int(RING8.neg(np.uint8(0))) == 0

    def test_wraparound(self):
        assert int(RING8.add(np.uint8(200), np.uint8(100))) == 44


class TestDot:
    def test_matches_integer_dot(self):
        rng = np.random.default_rng(0)
        w = rng.integers(0, 100, size=10).astype(np.uint32)
        m = rng.integers(0, 1000, size=(10, 7)).astype(np.uint32)
        expected = (w.astype(np.int64)[:, None] * m.astype(np.int64)).sum(axis=0) % (
            1 << 32
        )
        assert np.array_equal(RING32.dot(w, m).astype(np.int64), expected)

    def test_wrapping_dot(self):
        w = np.array([2], dtype=np.uint8)
        m = np.array([[200]], dtype=np.uint8)
        assert int(RING8.dot(w, m)[0]) == 144  # 400 mod 256

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RING32.dot(np.zeros(3, dtype=np.uint32), np.zeros((2, 4), dtype=np.uint32))

    def test_single_row_vector(self):
        out = RING32.dot(np.array([3], dtype=np.uint32), np.array([1, 2], dtype=np.uint32))
        assert list(out) == [3, 6]


class TestBytePacking:
    @pytest.mark.parametrize("ring", [RING8, RING16, RING32, RING64])
    def test_roundtrip(self, ring):
        rng = np.random.default_rng(int(ring.width))
        values = rng.integers(0, ring.modulus, size=16, dtype=np.uint64).astype(
            ring.dtype
        )
        assert np.array_equal(ring.from_bytes(ring.to_bytes(values)), values)

    def test_from_bytes_rejects_ragged(self):
        with pytest.raises(ValueError):
            RING32.from_bytes(np.zeros(6, dtype=np.uint8))

    def test_elements_per_16_bytes(self):
        data = np.arange(16, dtype=np.uint8)
        assert len(RING8.from_bytes(data)) == 16
        assert len(RING32.from_bytes(data)) == 4
        assert len(RING64.from_bytes(data)) == 2
