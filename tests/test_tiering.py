"""Hot-row tiering: tracker, sizing policy, prewarmer, invalidation.

DESIGN.md Sec. 12.  Pads are pure functions of ``(K, version, address)``,
so prewarming can never change results - every test here that serves
queries asserts bit-identity against an untiered reference, and the
re-encryption tests assert that pads keyed by retired versions are
purged (capacity hygiene) while correctness holds with or without the
purge (version-keyed caches make stale entries unreachable).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import ConfigurationError
from repro.faults import RecoveryPolicy
from repro.tiering import AccessTracker, TieringConfig, plan_for
from repro.workloads import SecureEmbeddingStore
from repro.workloads.traces import production_trace

KEY = bytes(range(16))


def _make_store(n_rows=64, dim=16, recovery=False, seed=0):
    params = SecNDPParams(element_bits=32)
    policy = (
        RecoveryPolicy(backoff_base_s=1e-5, reencrypt_after=None)
        if recovery
        else None
    )
    store = SecureEmbeddingStore(
        SecNDPProcessor(KEY, params),
        UntrustedNdpDevice(params),
        quantization="table",
        recovery=policy,
    )
    rng = np.random.default_rng(seed)
    store.add_table("emb", rng.normal(size=(n_rows, dim)))
    return store


class TestAccessTracker:
    def test_observe_counts_and_hot_order(self):
        tr = AccessTracker()
        tr.observe("t", [3, 3, 3, 7, 7, 1])
        assert tr.observed("t") == 6
        assert tr.tracked_rows("t") == 3
        assert list(tr.hot_rows("t", coverage=1.0)) == [3, 7, 1]

    def test_ties_broken_by_row_id(self):
        tr = AccessTracker()
        tr.observe("t", [9, 2, 5])
        assert list(tr.hot_rows("t", coverage=1.0)) == [2, 5, 9]

    def test_coverage_prefix(self):
        tr = AccessTracker()
        tr.observe("t", [0] * 90 + [1] * 9 + [2])
        assert list(tr.hot_rows("t", coverage=0.9)) == [0]
        assert list(tr.hot_rows("t", coverage=0.95)) == [0, 1]

    def test_max_rows_cap(self):
        tr = AccessTracker()
        tr.observe("t", [0, 0, 1, 1, 2, 2, 3])
        assert len(tr.hot_rows("t", coverage=1.0, max_rows=2)) == 2

    def test_empty_table(self):
        tr = AccessTracker()
        assert tr.hot_rows("t").size == 0
        assert tr.hot_mass("t", [1, 2]) == 0.0

    def test_window_decay_forgets_cold_phase(self):
        # Window of 8 with full forgetting: after a phase change the old
        # hot row's count decays away and the new phase dominates.
        tr = AccessTracker(window=8, decay=0.0)
        tr.observe("t", [1] * 8)  # fills the window -> rolled + cleared
        tr.observe("t", [2] * 4)
        assert list(tr.hot_rows("t", coverage=1.0)) == [2]

    def test_decay_halves_counts(self):
        tr = AccessTracker(window=4, decay=0.5)
        tr.observe("t", [5, 5, 5, 5])
        assert tr.frequencies("t")[5] == pytest.approx(2.0)

    def test_drop_threshold_bounds_memory(self):
        # A single reference survives one roll (1.0 decays to exactly the
        # 0.5 threshold) but is forgotten at the next, while the row that
        # keeps getting referenced keeps its mass.
        tr = AccessTracker(window=4, decay=0.5)
        tr.observe("t", [1, 2, 2, 3])  # first roll
        tr.observe("t", [2, 2, 2, 2])  # second roll
        assert set(tr.frequencies("t")) == {2}

    def test_reset(self):
        tr = AccessTracker()
        tr.observe("a", [1])
        tr.observe("b", [2])
        tr.reset("a")
        assert tr.tables() == ["b"]
        tr.reset()
        assert tr.tables() == []

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            AccessTracker(window=0)
        with pytest.raises(ConfigurationError):
            AccessTracker(decay=1.5)


class TestTraceSkewProperties:
    """Satellite: the Zipf stand-in trace has the skew tiering relies on."""

    def test_seed_determinism(self):
        a = production_trace(4096, 32, seed=9)
        b = production_trace(4096, 32, seed=9)
        assert a.indices == b.indices and a.weights == b.weights
        c = production_trace(4096, 32, seed=10)
        assert c.indices != a.indices

    def test_top_k_mass_matches_hot_probability(self):
        tr = production_trace(
            8192, 64, hot_fraction=0.05, hot_probability=0.9, seed=3
        )
        refs = [i for ix in tr.indices for i in ix]
        n_hot = int(8192 * 0.05)
        hot_refs = sum(1 for i in refs if i < n_hot)
        # Hot rows get hot_probability of the draws plus the uniform
        # spill-over that also lands below n_hot.
        assert hot_refs / len(refs) > 0.85

    def test_tracker_recovers_hot_set(self):
        """Seeding the sketch from the trace finds the planted hot rows."""
        tr = production_trace(
            8192, 64, hot_fraction=0.05, hot_probability=0.9, seed=3
        )
        tracker = AccessTracker()
        tracker.observe_trace("emb", tr)
        hot = tracker.hot_rows("emb", coverage=0.9)
        n_hot = int(8192 * 0.05)
        in_planted = np.sum(hot < n_hot) / hot.size
        assert in_planted > 0.95
        mass = tracker.hot_mass("emb", hot)
        assert mass >= 0.9
        # Same observations -> identical hot set (determinism).
        tracker2 = AccessTracker()
        tracker2.observe_trace("emb", tr)
        assert np.array_equal(hot, tracker2.hot_rows("emb", coverage=0.9))


class TestSizingPolicy:
    def test_empty_plan_without_observations(self):
        plan = plan_for(AccessTracker(), "t", n_rows=100, row_bytes=64)
        assert plan.hot_set_size == 0
        assert plan.cache_blocks == 0 and plan.tag_cache_rows == 0

    def test_footprint_math(self):
        tracker = AccessTracker()
        for r in range(1000):
            tracker.observe("t", [r])
        cfg = TieringConfig(
            coverage=1.0, headroom=1.25, min_cache_blocks=1, min_tag_cache_rows=1
        )
        plan = plan_for(tracker, "t", n_rows=2000, row_bytes=64, config=cfg)
        assert plan.hot_set_size == 1000
        assert plan.blocks_per_row == 4  # ceil(64 / 16)
        assert plan.cache_blocks == int(1000 * 4 * 1.25)
        assert plan.tag_cache_rows == int(1000 * 1.25)

    def test_clamps_apply(self):
        tracker = AccessTracker()
        tracker.observe("t", [0])
        cfg = TieringConfig(min_cache_blocks=512, min_tag_cache_rows=128)
        plan = plan_for(tracker, "t", n_rows=10, row_bytes=16, config=cfg)
        assert plan.cache_blocks == 512
        assert plan.tag_cache_rows == 128

    def test_hot_fraction_caps_hot_set(self):
        tracker = AccessTracker()
        for r in range(100):
            tracker.observe("t", [r])
        cfg = TieringConfig(coverage=1.0, hot_fraction=0.1)
        plan = plan_for(tracker, "t", n_rows=100, row_bytes=16, config=cfg)
        assert plan.hot_set_size == 10

    def test_config_validation(self):
        for bad in (
            dict(coverage=0.0),
            dict(hot_fraction=1.5),
            dict(headroom=0.5),
            dict(decay=-0.1),
            dict(window=0),
            dict(chunk_rows=0),
        ):
            with pytest.raises(ConfigurationError):
                TieringConfig(**bad)


class TestRowPadCache:
    """The row-level pad LRU in ArithmeticEncryptor (off by default)."""

    def test_disabled_by_default(self):
        store = _make_store()
        enc = store.processor.encryptor
        assert enc.row_cache_rows == 0
        store.sls("emb", [1, 2, 3])
        assert enc.row_cache_info().hits == 0
        assert enc.row_cache_info().misses == 0

    def test_cached_pads_bit_identical(self):
        store = _make_store()
        reference = store.sls("emb", [1, 2, 3, 2])
        store.processor.encryptor.resize_row_cache(16)
        cold = store.sls("emb", [1, 2, 3, 2])
        warm = store.sls("emb", [1, 2, 3, 2])
        assert np.array_equal(reference, cold)
        assert np.array_equal(reference, warm)
        info = store.processor.encryptor.row_cache_info()
        assert info.hits >= 3 and info.currsize == 3

    def test_eviction_accounting(self):
        store = _make_store()
        enc = store.processor.encryptor
        enc.resize_row_cache(2)
        store.sls("emb", [0, 1, 2, 3])
        info = enc.row_cache_info()
        assert info.currsize == 2
        assert info.evictions == 2

    def test_purge_row_version(self):
        store = _make_store()
        enc = store.processor.encryptor
        enc.resize_row_cache(16)
        store.sls("emb", [0, 1])
        version = store.device.stored("emb").version
        assert enc.purge_row_version(version) == 2
        assert enc.row_cache_info().currsize == 0

    def test_resize_rejects_negative(self):
        store = _make_store()
        with pytest.raises(ValueError):
            store.processor.encryptor.resize_row_cache(-1)


class TestHotRowTiering:
    def test_serving_feeds_tracker(self):
        store = _make_store()
        tiering = store.attach_tiering()
        store.sls("emb", [4, 4, 9])
        store.sls_many("emb", [[4, 2], [4, 7]])
        assert tiering.tracker.observed("emb") == 7
        assert 4 in tiering.tracker.frequencies("emb")
        assert store.tiering is tiering

    def test_apply_sizing_resizes_all_caches(self):
        store = _make_store(n_rows=256)
        cfg = TieringConfig(
            coverage=1.0, min_cache_blocks=1, min_tag_cache_rows=1
        )
        tiering = store.attach_tiering(cfg)
        for _ in range(4):
            store.sls("emb", list(range(32)))
        cache_blocks, tag_rows = tiering.apply_sizing()
        enc = store.processor.encryptor
        assert enc.otp.cache_blocks == cache_blocks
        assert enc.row_cache_rows == tag_rows
        assert store.processor.mac.tag_cache_rows == tag_rows
        assert tag_rows == int(32 * cfg.headroom)

    def test_prewarm_reaches_full_coverage_and_serves_hits(self):
        store = _make_store(n_rows=128)
        tiering = store.attach_tiering(TieringConfig(coverage=1.0))
        hot = list(range(16))
        for _ in range(3):
            store.sls("emb", hot)
        tiering.apply_sizing()
        assert tiering.coverage("emb") == 0.0
        warmed = tiering.prewarm_now()
        assert warmed == 16
        assert tiering.coverage("emb") == 1.0
        enc = store.processor.encryptor
        h0 = enc.row_cache_info().hits
        t0 = store.processor.mac.tag_cache_info().hits
        out = store.sls("emb", hot)
        assert enc.row_cache_info().hits - h0 == 16
        assert store.processor.mac.tag_cache_info().hits - t0 == 16
        # Prewarming is invisible in the results.
        assert np.array_equal(out, _make_store(n_rows=128).sls("emb", hot))

    def test_prewarm_is_idempotent(self):
        store = _make_store()
        tiering = store.attach_tiering()
        store.sls("emb", [1, 2, 3])
        tiering.apply_sizing()
        assert tiering.prewarm_now() == 3
        assert tiering.prewarm_now() == 0  # nothing pending

    def test_seed_from_trace(self):
        store = _make_store(n_rows=256)
        tiering = store.attach_tiering(TieringConfig(hot_fraction=0.1))
        trace = production_trace(
            256, 32, pf_range=(8, 16), hot_fraction=0.1, hot_probability=0.9, seed=1
        )
        tiering.seed_from_trace("emb", trace)
        hot = tiering.hot_rows("emb")
        assert 0 < hot.size <= 26
        assert np.sum(hot < 25) / hot.size > 0.9

    def test_snapshot_shape(self):
        store = _make_store()
        tiering = store.attach_tiering()
        store.sls("emb", [1, 2])
        tiering.apply_sizing()
        snap = tiering.snapshot()
        assert snap["invalidations"] == 0
        assert snap["emb"]["hot_rows"] == 2


class TestPrewarmVsRecovery:
    """Satellite: re-encryption must invalidate prewarmed pads cleanly."""

    def _warmed_store(self, n_rows=64):
        store = _make_store(n_rows=n_rows, recovery=True)
        tiering = store.attach_tiering(TieringConfig(coverage=1.0))
        for _ in range(3):
            store.sls("emb", list(range(16)))
        tiering.apply_sizing()
        tiering.prewarm_now()
        return store, tiering

    def test_reencryption_purges_stale_pads(self):
        store, tiering = self._warmed_store()
        old = store.device.stored("emb")
        old_data, old_tag = old.version, old.tag_version
        store.reencrypt_table("emb")
        new = store.device.stored("emb")
        assert (new.version, new.tag_version) != (old_data, old_tag)
        enc = store.processor.encryptor
        assert not any(k[0] == old_data for k in enc.otp._block_cache)
        assert not any(k[0] == old_data for k in enc._row_cache)
        assert not any(
            k[0] == old_tag for k in store.processor.mac._tag_cache
        )
        assert tiering.invalidations == 1
        assert tiering.coverage("emb") == 0.0

    def test_bit_exact_across_reencryption(self):
        store, tiering = self._warmed_store()
        reference = _make_store(n_rows=64).sls("emb", list(range(16)))
        before = store.sls("emb", list(range(16)))
        store.reencrypt_table("emb")
        after_cold = store.sls("emb", list(range(16)))
        tiering.prewarm_now()  # re-warm under the bumped versions
        assert tiering.coverage("emb") == 1.0
        after_warm = store.sls("emb", list(range(16)))
        for got in (before, after_cold, after_warm):
            assert np.array_equal(got, reference)

    def test_racing_prewarm_never_counts_stale_coverage(self):
        """A warm finishing after a version bump must not claim coverage."""
        store, tiering = self._warmed_store()
        # Simulate the race: invalidate as reencrypt_table would, with the
        # warm set already populated under the old versions.
        old = store.device.stored("emb")
        tiering.invalidate(
            "emb", data_version=old.version, tag_version=old.tag_version
        )
        assert tiering.coverage("emb") == 0.0
        assert tiering.prewarm_now() == 16  # re-warms from scratch

    def test_zero_stale_serves_under_chaos(self):
        """Prewarmed chaos replay: every fault detected, zero mismatches."""
        from repro.harness.chaos import run_chaos
        from repro.harness.configs import SMOKE_SCALE

        result = run_chaos(
            SMOKE_SCALE,
            workers=0,
            rows_per_table=256,
            prewarm=True,
            hot_fraction=0.1,
        )
        assert result.detection_rate == 1.0
        assert result.recovery_rate == 1.0
        assert result.mismatched == 0


class TestEngineBroadcast:
    """Pool workers replicate the hot set at spawn (tasks land anywhere)."""

    def test_workers_prewarmed_and_bit_identical(self):
        from repro.parallel import ParallelSlsEngine

        store = _make_store(n_rows=256)
        tiering = store.attach_tiering(TieringConfig(hot_fraction=0.1))
        trace = production_trace(
            256, 16, pf_range=(8, 16), hot_fraction=0.1, hot_probability=0.9, seed=2
        )
        tiering.seed_from_trace("emb", trace)
        batch = [[int(r) for r in ix] for ix in trace.indices]
        expected = store.sls_many("emb", batch)
        with ParallelSlsEngine(store, workers=2) as engine:
            got = engine.sls_many("emb", batch)
            if engine.workers:
                # Spawn-time broadcast landed tag pads in every worker
                # before the first task arrived.
                fleet_tags = engine.tag_cache_info()
                assert fleet_tags.currsize > 0
        assert np.array_equal(got, expected)


class TestBackgroundPrewarmer:
    def test_thread_warms_to_full_coverage(self):
        store = _make_store(n_rows=128)
        cfg = TieringConfig(coverage=1.0, interval_s=0.002, chunk_rows=4)
        tiering = store.attach_tiering(cfg)
        for _ in range(3):
            store.sls("emb", list(range(16)))
        thread = tiering.start()
        assert tiering.start() is thread  # idempotent
        try:
            deadline = time.monotonic() + 10.0
            while tiering.coverage("emb") < 1.0:
                assert time.monotonic() < deadline, "prewarmer never converged"
                time.sleep(0.005)
        finally:
            tiering.stop()
        assert not thread.is_alive()
        assert tiering.coverage("emb") == 1.0

    def test_invalidation_wakes_rewarm(self):
        store = _make_store(n_rows=64, recovery=True)
        cfg = TieringConfig(coverage=1.0, interval_s=0.002)
        tiering = store.attach_tiering(cfg)
        for _ in range(3):
            store.sls("emb", list(range(8)))
        tiering.start()
        try:
            deadline = time.monotonic() + 10.0
            while tiering.coverage("emb") < 1.0:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            store.reencrypt_table("emb")  # invalidates + wakes the thread
            deadline = time.monotonic() + 10.0
            while tiering.coverage("emb") < 1.0:
                assert time.monotonic() < deadline, "no re-warm after invalidation"
                time.sleep(0.005)
        finally:
            tiering.stop()
        reference = _make_store(n_rows=64).sls("emb", list(range(8)))
        assert np.array_equal(store.sls("emb", list(range(8))), reference)
