"""Vectorized hot paths vs scalar reference paths: bit-identical results.

Each consumer that was rewired onto the limb-vectorized field keeps its
scalar method as the oracle:

* ``LinearChecksum.matrix_tags`` (vectorized sweep) vs per-row
  ``row_tag`` (scalar Horner) — single-point Alg. 2;
* ``MultiPointChecksum.matrix_tags`` vs per-row ``row_tag`` — Alg. 8,
  both for the default modulus (``cnt_s == 1``) and a small Mersenne
  modulus with ``cnt_s > 1`` where the scalar fallback runs;
* ``EncryptedLinearMac.tag_pads`` (batched AES) vs scalar ``tag_pad``;
* batched ``weighted_row_sum_batch`` / ``SecureEmbeddingStore.sls_many``
  vs their one-query-at-a-time equivalents.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checksum import LinearChecksum, MultiPointChecksum
from repro.core.mac import EncryptedLinearMac
from repro.core.params import SecNDPParams
from repro.core.protocol import SecNDPProcessor, UntrustedNdpDevice
from repro.errors import VerificationError
from repro.workloads.secure_sls import SecureEmbeddingStore

KEY = bytes(range(16))


def _params(tag_modulus=None, element_bits=32):
    if tag_modulus is None:
        return SecNDPParams(element_bits=element_bits)
    return SecNDPParams(element_bits=element_bits, tag_modulus=tag_modulus)


class TestSinglePointEquivalence:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint32, np.uint64, np.int64])
    def test_matrix_tags_match_per_row_scalar(self, dtype):
        params = _params()
        checksum = LinearChecksum(params.cipher(KEY), params)
        rng = np.random.default_rng(3)
        hi = 200 if dtype == np.uint8 else 2**31
        matrix = rng.integers(0, hi, size=(23, 9)).astype(dtype)
        s = checksum.secret_point(0x4000, 5)
        vectorized = checksum.matrix_tags(matrix, 0x4000, 5)
        scalar = [checksum.row_tag(row, s) for row in matrix]
        assert vectorized == scalar

    def test_small_prime_fallback_matches(self):
        params = _params(tag_modulus=(1 << 31) - 1)
        checksum = LinearChecksum(params.cipher(KEY), params)
        matrix = np.arange(40, dtype=np.uint32).reshape(8, 5)
        s = checksum.secret_point(0x100, 0)
        assert checksum.matrix_tags(matrix, 0x100, 0) == [
            checksum.row_tag(row, s) for row in matrix
        ]

    def test_result_tag_accepts_arrays(self):
        params = _params()
        checksum = LinearChecksum(params.cipher(KEY), params)
        s = checksum.secret_point(0x80, 1)
        res = np.asarray([5, 0, 2**32 - 1, 17], dtype=np.uint64)
        assert checksum.result_tag(res, s) == checksum.row_tag(
            [int(x) for x in res], s
        )

    def test_negative_values_fall_back_and_agree(self):
        params = _params()
        checksum = LinearChecksum(params.cipher(KEY), params)
        s = checksum.secret_point(0x80, 1)
        matrix = np.asarray([[-3, 4, -5], [6, -7, 8]], dtype=np.int64)
        assert checksum.row_tags(matrix, s) == [
            checksum.row_tag(row, s) for row in matrix
        ]


class TestMultiPointEquivalence:
    def test_default_modulus_cnt1(self):
        params = _params()
        checksum = MultiPointChecksum(params.cipher(KEY), params)
        assert checksum.cnt_s == 1
        rng = np.random.default_rng(5)
        matrix = rng.integers(0, 2**16, size=(17, 6), dtype=np.uint64)
        points = checksum.secret_points(0x2000, 3)
        assert checksum.matrix_tags(matrix, 0x2000, 3) == [
            checksum.row_tag(row, points) for row in matrix
        ]

    def test_multi_point_cnt_gt_1(self):
        # w_t = 61 -> cnt_s = 2: the Alg. 8 case with multiple secret
        # points per cipher block (small Mersenne prime, scalar field).
        params = _params(tag_modulus=(1 << 61) - 1)
        checksum = MultiPointChecksum(params.cipher(KEY), params)
        assert checksum.cnt_s > 1
        rng = np.random.default_rng(6)
        matrix = rng.integers(0, 2**20, size=(11, 7), dtype=np.uint64)
        points = checksum.secret_points(0x3000, 9)
        assert checksum.matrix_tags(matrix, 0x3000, 9) == [
            checksum.row_tag(row, points) for row in matrix
        ]

    def test_result_tag_matches_row_tag(self):
        params = _params()
        checksum = MultiPointChecksum(params.cipher(KEY), params)
        points = checksum.secret_points(0x40, 2)
        res = np.asarray([9, 8, 7, 6, 5], dtype=np.uint32)
        assert checksum.result_tag(res, points) == checksum.row_tag(
            [int(x) for x in res], points
        )

    def test_weight_vector_is_cached(self):
        params = _params(tag_modulus=(1 << 61) - 1)
        checksum = MultiPointChecksum(params.cipher(KEY), params)
        points = checksum.secret_points(0x40, 2)
        w1 = checksum.weight_vector(12, points)
        w2 = checksum.weight_vector(12, points)
        assert w1 is w2


class TestBatchedTagPads:
    def test_tag_pads_match_scalar_tag_pad(self):
        params = _params()
        mac = EncryptedLinearMac(params.cipher(KEY), params)
        addrs = [0x1000, 0x1080, 0x2000, 0x1000]
        assert mac.tag_pads(addrs, 7) == [mac.tag_pad(a, 7) for a in addrs]

    def test_tag_pads_small_prime(self):
        params = _params(tag_modulus=(1 << 31) - 1)
        mac = EncryptedLinearMac(params.cipher(KEY), params)
        addrs = [0x500, 0x600]
        assert mac.tag_pads(addrs, 1) == [mac.tag_pad(a, 1) for a in addrs]

    def test_empty(self):
        params = _params()
        mac = EncryptedLinearMac(params.cipher(KEY), params)
        assert mac.tag_pads([], 0) == []


class TestBatchedProtocol:
    def _setup(self, multipoint=False):
        params = _params(element_bits=8)
        processor = SecNDPProcessor(KEY, params, multipoint_checksum=multipoint)
        device = UntrustedNdpDevice(params)
        rng = np.random.default_rng(11)
        plaintext = rng.integers(0, 8, size=(64, 16), dtype=np.uint8)
        enc = processor.encrypt_matrix(plaintext, 0x10000, "t")
        device.store("t", enc)
        return processor, device, rng

    @pytest.mark.parametrize("multipoint", [False, True])
    def test_batch_matches_sequential(self, multipoint):
        processor, device, rng = self._setup(multipoint)
        batch_rows = [list(rng.integers(0, 64, size=5)) for _ in range(6)]
        batch_weights = [list(rng.integers(0, 4, size=5)) for _ in range(6)]
        batched = processor.weighted_row_sum_batch(
            device, "t", batch_rows, batch_weights
        )
        for result, rows, weights in zip(batched, batch_rows, batch_weights):
            single = processor.weighted_row_sum(device, "t", rows, weights)
            assert np.array_equal(result.values, single.values)
            assert result.verified

    def test_batch_detects_tampering(self):
        processor, device, rng = self._setup()
        device.tamper_results(1)
        with pytest.raises(VerificationError):
            processor.weighted_row_sum_batch(device, "t", [[0, 1, 2]], [[1, 1, 1]])

    def test_empty_batch(self):
        processor, device, _ = self._setup()
        assert processor.weighted_row_sum_batch(device, "t", []) == []

    def test_batch_without_tags_raises_when_verifying(self):
        params = _params(element_bits=8)
        processor = SecNDPProcessor(KEY, params)
        device = UntrustedNdpDevice(params)
        plaintext = np.zeros((4, 16), dtype=np.uint8)
        enc = processor.encrypt_matrix(plaintext, 0x0, "t", with_tags=False)
        device.store("t", enc)
        with pytest.raises(VerificationError):
            processor.weighted_row_sum_batch(device, "t", [[0]], [[1]])
        # verify=False is still served.
        res = processor.weighted_row_sum_batch(
            device, "t", [[0]], [[1]], verify=False
        )
        assert not res[0].verified


class TestStoreBatchEquivalence:
    def _store(self):
        params = _params(element_bits=32)
        processor = SecNDPProcessor(KEY, params)
        device = UntrustedNdpDevice(params)
        store = SecureEmbeddingStore(processor, device, quantization="column")
        rng = np.random.default_rng(21)
        store.add_table("emb", rng.normal(size=(50, 12)))
        return store, rng

    def test_sls_many_matches_per_query_sls(self):
        store, rng = self._store()
        batch_rows = [list(rng.integers(0, 50, size=4)) for _ in range(5)]
        batch_weights = [list(rng.integers(1, 3, size=4)) for _ in range(5)]
        batched = store.sls_many("emb", batch_rows, batch_weights)
        for i, (rows, weights) in enumerate(zip(batch_rows, batch_weights)):
            assert np.allclose(batched[i], store.sls("emb", rows, weights))

    def test_sls_batch_delegates(self):
        store, rng = self._store()
        batch_rows = [[0, 1], [2, 3]]
        assert np.allclose(
            store.sls_batch("emb", batch_rows), store.sls_many("emb", batch_rows)
        )

    def test_sls_many_rejects_overflow(self):
        store, _ = self._store()
        from repro.errors import ConfigurationError

        budget = store.max_pooling_factor("emb")
        too_many = [0] * (budget + 1)
        with pytest.raises(ConfigurationError):
            store.sls_many("emb", [too_many])
