"""Functional SecNDP engine and OTP PU (Sec. V-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SecNDPEngine, SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.core.engine import OtpPu
from repro.errors import ConfigurationError, VerificationError

KEY = bytes(range(16))


@pytest.fixture
def engine(processor):
    return SecNDPEngine(processor.encryptor, processor.mac, n_registers=4)


class TestOtpPu:
    def test_register_bounds(self, params32):
        pu = OtpPu(params32, n_registers=2)
        with pytest.raises(ConfigurationError):
            pu.clear(2)
        with pytest.raises(ConfigurationError):
            pu.read(-1)

    def test_needs_at_least_one_register(self, params32):
        with pytest.raises(ConfigurationError):
            OtpPu(params32, n_registers=0)

    def test_read_before_accumulate_raises(self, params32):
        pu = OtpPu(params32)
        with pytest.raises(ConfigurationError):
            pu.read(0)

    def test_accumulate(self, params32):
        pu = OtpPu(params32)
        pads = np.array([1, 2, 3], dtype=np.uint32)
        pu.accumulate(0, 2, pads)
        pu.accumulate(0, 3, pads)
        assert list(pu.read(0)) == [5, 10, 15]

    def test_registers_independent(self, params32):
        pu = OtpPu(params32, n_registers=2)
        pu.accumulate(0, 1, np.array([1], dtype=np.uint32))
        pu.accumulate(1, 1, np.array([9], dtype=np.uint32))
        assert int(pu.read(0)[0]) == 1
        assert int(pu.read(1)[0]) == 9

    def test_tag_accumulate(self, params32):
        pu = OtpPu(params32)
        pu.accumulate_tag(0, 2, 10)
        pu.accumulate_tag(0, 3, 100)
        assert pu.read_tag(0) == 320

    def test_clear(self, params32):
        pu = OtpPu(params32)
        pu.accumulate(0, 1, np.array([1], dtype=np.uint32))
        pu.accumulate_tag(0, 1, 5)
        pu.clear(0)
        assert pu.read_tag(0) == 0
        with pytest.raises(ConfigurationError):
            pu.read(0)


class TestEngineFlow:
    def test_matches_protocol_result(
        self, processor, device, stored, small_matrix, engine
    ):
        rows = [3, 9, 21]
        weights = [2, 1, 3]
        enc = device.stored(stored)
        engine.begin_query(1)
        for r, w in zip(rows, weights):
            engine.issue(1, enc, r, w)
        w_ring = processor.ring.encode(np.asarray(weights))
        ndp_res = device.weighted_row_sum(stored, rows, w_ring)
        ndp_tag = device.weighted_tag_sum(stored, rows, [int(w) for w in w_ring])
        out = engine.load_and_verify(1, enc, ndp_res, ndp_tag)
        expected = (
            np.asarray(weights)[:, None] * small_matrix[rows].astype(np.int64)
        ).sum(axis=0) % (1 << 32)
        assert np.array_equal(out.astype(np.int64), expected)

    def test_load_without_tag_skips_verification(
        self, processor, device, stored, engine
    ):
        enc = device.stored(stored)
        engine.begin_query(0)
        engine.issue(0, enc, 0, 1)
        ndp_res = device.weighted_row_sum(stored, [0], np.array([1], dtype=np.uint32))
        out = engine.load_and_verify(0, enc, ndp_res, ndp_tag=None)
        assert out.shape == (32,)

    def test_bad_ndp_tag_raises(self, processor, device, stored, engine):
        enc = device.stored(stored)
        engine.begin_query(0)
        engine.issue(0, enc, 0, 1)
        ndp_res = device.weighted_row_sum(stored, [0], np.array([1], dtype=np.uint32))
        good_tag = device.weighted_tag_sum(stored, [0], [1])
        with pytest.raises(VerificationError):
            engine.load_and_verify(0, enc, ndp_res, (good_tag + 1) % ((1 << 127) - 1))

    def test_bad_ndp_result_raises(self, processor, device, stored, engine):
        enc = device.stored(stored)
        engine.begin_query(0)
        engine.issue(0, enc, 0, 1)
        ndp_res = device.weighted_row_sum(
            stored, [0], np.array([1], dtype=np.uint32)
        ).copy()
        ndp_res[3] += 1
        tag = device.weighted_tag_sum(stored, [0], [1])
        with pytest.raises(VerificationError):
            engine.load_and_verify(0, enc, ndp_res, tag)

    def test_interleaved_queries_on_different_registers(
        self, processor, device, stored, small_matrix, engine
    ):
        enc = device.stored(stored)
        engine.begin_query(0)
        engine.begin_query(1)
        engine.issue(0, enc, 2, 1)
        engine.issue(1, enc, 4, 1)
        engine.issue(0, enc, 6, 1)
        r0 = device.weighted_row_sum(stored, [2, 6], np.array([1, 1], dtype=np.uint32))
        r1 = device.weighted_row_sum(stored, [4], np.array([1], dtype=np.uint32))
        out0 = engine.load_and_verify(0, enc, r0)
        out1 = engine.load_and_verify(1, enc, r1)
        exp0 = (small_matrix[2].astype(np.int64) + small_matrix[6]) % (1 << 32)
        assert np.array_equal(out0.astype(np.int64), exp0)
        assert np.array_equal(out1, small_matrix[4])
