"""Initial-encryption (ArithEnc) timing model."""

from __future__ import annotations

import pytest

from repro.ndp import AesEngineModel
from repro.ndp.arith_enc import simulate_arith_enc


class TestArithEnc:
    def test_total_is_max_of_phases(self):
        res = simulate_arith_enc(256, 128, with_tags=True)
        assert res.total_ns == max(res.write_ns, res.otp_ns)

    def test_tags_add_lines_and_blocks(self):
        plain = simulate_arith_enc(256, 128, with_tags=False)
        tagged = simulate_arith_enc(256, 128, with_tags=True)
        assert tagged.total_lines > plain.total_lines
        assert tagged.otp_ns > plain.otp_ns
        assert plain.checksum_elems == 0
        assert tagged.checksum_elems == 256 * 32

    def test_write_bound_with_many_engines(self):
        res = simulate_arith_enc(512, 128, aes=AesEngineModel(16))
        assert not res.aes_bound

    def test_aes_bound_with_single_slow_engine(self):
        res = simulate_arith_enc(512, 128, aes=AesEngineModel(1, block_ns=5.0))
        assert res.aes_bound

    def test_scales_roughly_linearly(self):
        small = simulate_arith_enc(128, 128).total_ns
        large = simulate_arith_enc(1024, 128).total_ns
        assert 5 < large / small < 12

    def test_throughput_in_channel_ballpark(self):
        """Sequential writeback should run near channel bandwidth."""
        res = simulate_arith_enc(4096, 128, with_tags=False,
                                 aes=AesEngineModel(16))
        gbps = 4096 * 128 / res.write_ns
        assert 5.0 < gbps < 19.2
