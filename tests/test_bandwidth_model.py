"""Analytic AES-provisioning model vs paper claims and the simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bandwidth import BandwidthModel
from repro.ndp import (
    AesEngineModel,
    NdpConfig,
    NdpSimulator,
    NdpWorkload,
    SimQuery,
    TableGeometry,
)


@pytest.fixture(scope="module")
def model():
    return BandwidthModel()


class TestRates:
    def test_channel_peak_is_ddr4_2400(self, model):
        # 64 B per 4 cycles at 1200 MHz = 19.2 GB/s.
        assert model.channel_peak_gbps == pytest.approx(19.2, rel=0.01)

    def test_rank_burst_rates(self, model):
        assert model.rank_burst_gbps(False) == pytest.approx(19.2, rel=0.01)
        assert model.rank_burst_gbps(True) == pytest.approx(12.8, rel=0.01)

    def test_engine_rate_matches_reference(self, model):
        # 111.3 Gbps = 13.9 GB/s.
        assert model.engine_gbps == pytest.approx(13.9, abs=0.05)


class TestProvisioning:
    def test_burst_mode_matches_paper_ten(self, model):
        """Sec. VII-A: ~10 engines for NDP_rank=8 in burst mode."""
        assert 9 <= model.engines_for_burst_mode(8) <= 12

    def test_scaling_with_ranks(self, model):
        counts = [model.engines_for_burst_mode(r) for r in (1, 2, 4, 8)]
        assert counts == sorted(counts)
        assert counts[0] >= 1

    def test_tee_needs_roughly_two(self, model):
        """A conventional TEE needs far fewer engines than SecNDP."""
        assert 1 <= model.engines_for_tee() <= 2
        assert model.engines_for_tee() < model.engines_for_burst_mode(8)

    def test_sustained_below_burst(self, model):
        assert model.engines_for_sustained(8, 0.6) <= model.engines_for_burst_mode(8)

    def test_invalid_fraction(self, model):
        with pytest.raises(ValueError):
            model.engines_for_sustained(8, 0.0)

    def test_quantization_ratio_about_one_third(self, model):
        """128 B rows + tag vs 32 B rows + tag: the paper's ~1/3 claim."""
        full = model.quantization_engine_ratio(128 + 16, 32 + 16)
        assert 0.30 <= full <= 0.40


class TestCrossCheckWithSimulator:
    def test_analytic_count_clears_the_simulated_bottleneck(self):
        """Provisioning at the analytic burst-mode count must leave (almost)
        no packet decryption-bound in the simulator."""
        model = BandwidthModel()
        rng = np.random.default_rng(0)
        tables = {0: TableGeometry(50_000, 128, 128)}
        queries = tuple(
            SimQuery(0, tuple(int(x) for x in rng.integers(0, 50_000, size=80)))
            for _ in range(32)
        )
        run = NdpSimulator(NdpConfig(8, 8)).run(
            NdpWorkload(tables=tables, queries=queries)
        )
        n_burst = model.engines_for_burst_mode(8)
        assert run.decryption_bound_fraction(AesEngineModel(n_burst)) < 0.05
        # The simulated requirement brackets between a pessimistic
        # sustained estimate and the burst-mode peak.
        n_needed = next(
            n
            for n in range(1, 33)
            if run.decryption_bound_fraction(AesEngineModel(n)) < 0.05
        )
        n_floor = model.engines_for_sustained(8, achieved_fraction=0.25)
        assert n_floor <= n_needed <= n_burst
