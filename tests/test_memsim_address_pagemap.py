"""Address decoding and OS page mapping."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memsim import (
    PAGE_BYTES,
    AddressMapper,
    DramGeometry,
    PageMapper,
    RankAddressMapper,
)


class TestAddressMapper:
    def setup_method(self):
        self.geo = DramGeometry()
        self.mapper = AddressMapper(self.geo)

    def test_consecutive_lines_walk_channel_then_column(self):
        a = self.mapper.decode(0)
        b = self.mapper.decode(64)
        assert (a.channel, a.column) == (0, 0)
        # Single channel: next line is the next column.
        assert b.column == 1
        assert b.rank == a.rank

    def test_line_offset_ignored(self):
        assert self.mapper.decode(0) == self.mapper.decode(63)

    def test_rank_interleaving_after_row_span(self):
        # After columns_per_row lines, the rank advances.
        line_span = self.geo.columns_per_row * self.geo.line_bytes
        assert self.mapper.decode(line_span).rank == 1

    def test_fields_in_range(self):
        for addr in (0, 12345 * 64, (1 << 35) + 64):
            d = self.mapper.decode(addr)
            assert 0 <= d.rank < self.geo.ranks
            assert 0 <= d.bank_group < self.geo.bank_groups
            assert 0 <= d.bank < self.geo.banks_per_group
            assert 0 <= d.row < self.geo.rows_per_bank
            assert 0 <= d.column < self.geo.columns_per_row

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            self.mapper.decode(-1)

    def test_distinct_addresses_distinct_coordinates(self):
        seen = {self.mapper.decode(i * 64) for i in range(4096)}
        assert len(seen) == 4096

    def test_flat_bank(self):
        d = self.mapper.decode(0)
        assert d.flat_bank(self.geo.banks_per_group) == d.bank_group * 4 + d.bank


class TestRankAddressMapper:
    def setup_method(self):
        self.geo = DramGeometry()
        self.mapper = RankAddressMapper(self.geo)

    def test_rank_is_explicit(self):
        d = self.mapper.decode(3, 0)
        assert d.rank == 3

    def test_bank_group_interleaves_before_bank(self):
        # Lines within a row share coordinates; crossing a row boundary
        # moves to the next bank group first.
        row_span = self.geo.columns_per_row * self.geo.line_bytes
        a = self.mapper.decode(0, 0)
        b = self.mapper.decode(0, row_span)
        assert b.bank_group == (a.bank_group + 1) % self.geo.bank_groups

    def test_invalid_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            self.mapper.decode(8, 0)


class TestPageMapper:
    def test_stable_translation(self):
        pm = PageMapper(1 << 30, seed=1)
        assert pm.translate(0x1234) == pm.translate(0x1234)

    def test_offset_preserved(self):
        pm = PageMapper(1 << 30, seed=1)
        base = pm.translate(0)
        assert pm.translate(17) == base + 17

    def test_different_pages_different_frames(self):
        pm = PageMapper(1 << 30, seed=1)
        frames = {pm.translate(i * PAGE_BYTES) // PAGE_BYTES for i in range(1000)}
        assert len(frames) == 1000

    def test_randomised_not_identity(self):
        pm = PageMapper(1 << 30, seed=1)
        translated = [pm.translate(i * PAGE_BYTES) for i in range(32)]
        assert translated != [i * PAGE_BYTES for i in range(32)]

    def test_identity_mode(self):
        pm = PageMapper(1 << 30, identity=True)
        assert pm.translate(0x123456) == 0x123456

    def test_seed_determinism(self):
        a = PageMapper(1 << 30, seed=7)
        b = PageMapper(1 << 30, seed=7)
        assert [a.translate(i * PAGE_BYTES) for i in range(64)] == [
            b.translate(i * PAGE_BYTES) for i in range(64)
        ]

    def test_exhaustion(self):
        pm = PageMapper(4 * PAGE_BYTES, seed=0)
        for i in range(4):
            pm.translate(i * PAGE_BYTES)
        with pytest.raises(ConfigurationError):
            pm.translate(99 * PAGE_BYTES)

    def test_dense_pool_allocates_all_pages(self):
        pm = PageMapper(64 * PAGE_BYTES, seed=0)
        frames = {pm.translate(i * PAGE_BYTES) // PAGE_BYTES for i in range(64)}
        assert frames == set(range(64))

    def test_too_small_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            PageMapper(PAGE_BYTES - 1)

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            PageMapper(1 << 30).translate(-5)
