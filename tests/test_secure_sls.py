"""SecureEmbeddingStore: the high-level quantized secure-SLS API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import ConfigurationError, VerificationError
from repro.workloads import SecureEmbeddingStore

KEY = bytes(range(16))


@pytest.fixture
def parties():
    params = SecNDPParams(element_bits=32)
    return SecNDPProcessor(KEY, params), UntrustedNdpDevice(params)


@pytest.fixture
def store(parties):
    processor, device = parties
    store = SecureEmbeddingStore(processor, device, quantization="table")
    rng = np.random.default_rng(0)
    store.add_table("emb", rng.normal(0, 1, size=(64, 16)))
    return store


class TestLoading:
    def test_tables_listed(self, store):
        assert store.tables() == ["emb"]

    def test_duplicate_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.add_table("emb", np.zeros((4, 4)))

    def test_1d_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.add_table("bad", np.zeros(8))

    def test_invalid_quantization_mode(self, parties):
        processor, device = parties
        with pytest.raises(ConfigurationError):
            SecureEmbeddingStore(processor, device, quantization="row")

    def test_multiple_tables_nonoverlapping(self, parties):
        processor, device = parties
        s = SecureEmbeddingStore(processor, device)
        s.add_table("a", np.random.default_rng(1).normal(size=(16, 8)))
        s.add_table("b", np.random.default_rng(2).normal(size=(16, 8)))
        ea, eb = device.stored("a"), device.stored("b")
        assert ea.base_addr + ea.ciphertext.size * 4 <= eb.base_addr


class TestQueries:
    @pytest.mark.parametrize("quantization", ["table", "column"])
    def test_sls_matches_dequantized_plaintext(self, parties, quantization):
        processor, device = parties
        store = SecureEmbeddingStore(processor, device, quantization=quantization)
        rng = np.random.default_rng(3)
        table = rng.normal(0, 1, size=(64, 16))
        store.add_table("t", table)
        rows = [3, 9, 40]
        weights = [1, 2, 1]
        secure = store.sls("t", rows, weights)
        dq = store.dequantized_table("t")
        direct = (np.array(weights)[:, None] * dq[rows]).sum(axis=0)
        assert np.allclose(secure, direct)
        # And within quantization error of the float truth.
        truth = (np.array(weights)[:, None] * table[rows]).sum(axis=0)
        span = table.max() - table.min()
        assert np.max(np.abs(secure - truth)) < 4 * span / 255 * 1.01

    def test_unweighted_default(self, store):
        rows = [0, 1, 2]
        assert np.allclose(store.sls("emb", rows), store.sls("emb", rows, [1, 1, 1]))

    def test_batch(self, store):
        batch = [[0, 1], [5], [9, 10, 11]]
        out = store.sls_batch("emb", batch)
        assert out.shape == (3, 16)
        assert np.allclose(out[1], store.sls("emb", [5]))

    def test_negative_weights_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.sls("emb", [0], [-1])

    def test_length_mismatch_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.sls("emb", [0, 1], [1])


class TestOverflowBudget:
    def test_budget_positive_and_finite(self, store):
        pf = store.max_pooling_factor("emb")
        assert pf > 1000  # 8-bit values in a 32-bit ring leave lots of room

    def test_budget_shrinks_with_weight(self, store):
        assert store.max_pooling_factor("emb", max_weight=100) < (
            store.max_pooling_factor("emb", max_weight=1)
        )

    def test_oversized_query_rejected_up_front(self, parties):
        processor, device = parties
        params8 = SecNDPParams(element_bits=8)
        proc8 = SecNDPProcessor(KEY, params8)
        dev8 = UntrustedNdpDevice(params8)
        store = SecureEmbeddingStore(proc8, dev8, quantization="table", bits=8)
        store.add_table("tiny", np.random.default_rng(4).normal(size=(32, 16)))
        pf_max = store.max_pooling_factor("tiny")
        with pytest.raises(ConfigurationError):
            store.sls("tiny", list(range(pf_max + 1)) * 1)


class TestIntegrity:
    def test_tampering_detected(self, parties):
        processor, device = parties
        store = SecureEmbeddingStore(processor, device)
        store.add_table("t", np.random.default_rng(5).normal(size=(32, 8)))
        device.tamper_results(1)
        with pytest.raises(VerificationError):
            store.sls("t", [0, 1])

    def test_unverified_store_skips_tags(self, parties):
        processor, device = parties
        store = SecureEmbeddingStore(processor, device, verify=False)
        store.add_table("t", np.random.default_rng(6).normal(size=(32, 8)))
        assert device.stored("t").tags is None
        store.sls("t", [0, 1])  # works without verification


class TestAutoSplit:
    def test_split_matches_unsplit(self, store):
        rows = list(range(40))
        split = store.sls_split("emb", rows)
        direct = store.sls("emb", rows)
        assert np.allclose(split, direct)

    def test_oversized_query_served_by_splitting(self, parties):
        processor, device = parties
        from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice

        params8 = SecNDPParams(element_bits=8)
        proc8 = SecNDPProcessor(bytes(range(16)), params8)
        dev8 = UntrustedNdpDevice(params8)
        store = SecureEmbeddingStore(proc8, dev8, quantization="table", bits=8)
        rng = np.random.default_rng(9)
        table = rng.normal(0, 1, size=(64, 8))
        store.add_table("t", table)
        budget = store.max_pooling_factor("t")
        rows = [int(r) for r in rng.integers(0, 64, size=budget * 3 + 1)]
        # sls() refuses; sls_split() serves it.
        with pytest.raises(ConfigurationError):
            store.sls("t", rows)
        out = store.sls_split("t", rows)
        dq = store.dequantized_table("t")
        assert np.allclose(out, dq[rows].sum(axis=0), atol=1e-9)

    def test_empty_query_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.sls_split("emb", [])

    def test_length_mismatch_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.sls_split("emb", [1, 2], [1])
