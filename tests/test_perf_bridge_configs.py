"""Workload->simulator bridges and the harness scale/CPU models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.harness.configs import (
    CpuModel,
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
)
from repro.workloads import (
    RMC_CONFIGS,
    analytics_trace,
    analytics_workload,
    random_trace,
    sls_workload,
)


class TestSlsWorkloadBridge:
    def setup_method(self):
        self.config = RMC_CONFIGS["RMC1-small"].scaled(1000)
        self.traces = [random_trace(1000, 4, 10, seed=t) for t in range(8)]

    def test_query_layout_sample_major(self):
        wl = sls_workload(self.config, self.traces, batch=4)
        assert len(wl.queries) == 4 * 8
        # first 8 queries are sample 0 across the 8 tables
        assert [q.table for q in wl.queries[:8]] == list(range(8))
        assert wl.queries[0].rows == self.traces[0].indices[0]

    def test_row_bytes_by_precision(self):
        wl32 = sls_workload(self.config, self.traces, element_bytes=4)
        wl8 = sls_workload(self.config, self.traces, element_bytes=1)
        assert wl32.tables[0].row_bytes == 128
        assert wl8.tables[0].row_bytes == 32

    def test_rowwise_quant_adds_scale_bias(self):
        wl = sls_workload(
            self.config, self.traces, element_bytes=1, rowwise_quant=True
        )
        assert wl.tables[0].row_bytes == 40  # 32 + 8 bytes scale/bias

    def test_rowwise_flag_ignored_for_fp32(self):
        wl = sls_workload(
            self.config, self.traces, element_bytes=4, rowwise_quant=True
        )
        assert wl.tables[0].row_bytes == 128

    def test_trace_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            sls_workload(self.config, self.traces[:3])

    def test_workload_validates(self):
        sls_workload(self.config, self.traces).validate()


class TestAnalyticsBridge:
    def test_geometry(self):
        trace = analytics_trace(1000, 2, 100)
        wl = analytics_workload(1000, 256, trace, element_bytes=4)
        assert wl.tables[0].row_bytes == 1024
        assert wl.tables[0].n_rows == 1000
        assert len(wl.queries) == 2
        wl.validate()


class TestScales:
    def test_three_scales_ordered(self):
        assert (
            SMOKE_SCALE.rows_per_table
            < DEFAULT_SCALE.rows_per_table
            < PAPER_SCALE.rows_per_table
        )
        assert SMOKE_SCALE.batch < DEFAULT_SCALE.batch <= PAPER_SCALE.batch

    def test_paper_scale_matches_evaluation_parameters(self):
        assert PAPER_SCALE.batch == 256             # Sec. VII-A
        assert PAPER_SCALE.pooling_factor == 80     # Fig. 11 setting
        assert PAPER_SCALE.analytics_genes == 1024  # Sec. VI-A
        assert PAPER_SCALE.analytics_pf == 10_000


class TestCpuModel:
    def test_flops_scaling(self):
        cpu = CpuModel()
        c = RMC_CONFIGS["RMC1-small"]
        assert cpu.mlp_ns(c, 32, in_tee=False) == pytest.approx(
            2 * cpu.mlp_ns(c, 16, in_tee=False)
        )

    def test_tee_tax(self):
        cpu = CpuModel()
        c = RMC_CONFIGS["RMC1-small"]
        plain = cpu.mlp_ns(c, 16, in_tee=False)
        tee = cpu.mlp_ns(c, 16, in_tee=True)
        assert tee == pytest.approx(plain * cpu.tee_slowdown)

    def test_bigger_model_more_cpu_time(self):
        cpu = CpuModel()
        assert cpu.mlp_ns(RMC_CONFIGS["RMC2-large"], 16, False) > cpu.mlp_ns(
            RMC_CONFIGS["RMC1-small"], 16, False
        )
