"""OTP generation: block chunking, element slicing, scatter/gather parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto import OtpGenerator, RING8, RING32, TweakedCipher

KEY = bytes(range(16))


@pytest.fixture
def gen32():
    return OtpGenerator(TweakedCipher(KEY), RING32)


@pytest.fixture
def gen8():
    return OtpGenerator(TweakedCipher(KEY), RING8)


class TestPadElements:
    def test_elements_per_block(self, gen32, gen8):
        assert gen32.elements_per_block == 4
        assert gen8.elements_per_block == 16

    def test_unaligned_base_rejected(self, gen32):
        with pytest.raises(ValueError):
            gen32.pad_elements(0x1001, 4, 0)

    def test_negative_count_rejected(self, gen32):
        with pytest.raises(ValueError):
            gen32.pad_elements(0x1000, -1, 0)

    def test_zero_count(self, gen32):
        assert len(gen32.pad_elements(0x1000, 0, 0)) == 0

    def test_partial_block(self, gen32):
        # 6 elements span 1.5 blocks; the pad is a prefix of the 8-element pad.
        pads6 = gen32.pad_elements(0x2000, 6, 1)
        pads8 = gen32.pad_elements(0x2000, 8, 1)
        assert np.array_equal(pads6, pads8[:6])

    def test_deterministic(self, gen32):
        assert np.array_equal(
            gen32.pad_elements(0x1000, 8, 5), gen32.pad_elements(0x1000, 8, 5)
        )

    def test_version_sensitivity(self, gen32):
        a = gen32.pad_elements(0x1000, 8, 0)
        b = gen32.pad_elements(0x1000, 8, 1)
        assert not np.array_equal(a, b)

    def test_adjacent_blocks_differ(self, gen32):
        pads = gen32.pad_elements(0x1000, 8, 0)
        assert not np.array_equal(pads[:4], pads[4:])


class TestScatteredPads:
    def test_single_matches_bulk(self, gen32):
        bulk = gen32.pad_elements(0x3000, 12, 2)
        for j in range(12):
            assert gen32.pad_element_at(0x3000 + 4 * j, 2) == int(bulk[j])

    def test_vectorised_matches_single(self, gen8):
        addrs = np.array([0x100, 0x105, 0x11F, 0x200], dtype=np.uint64)
        batch = gen8.pad_elements_at(addrs, 3)
        for i, a in enumerate(addrs):
            assert int(batch[i]) == gen8.pad_element_at(int(a), 3)

    def test_unaligned_element_rejected(self, gen32):
        with pytest.raises(ValueError):
            gen32.pad_element_at(0x1002, 0)
        with pytest.raises(ValueError):
            gen32.pad_elements_at(np.array([0x1002], dtype=np.uint64), 0)

    def test_8bit_any_byte_address_ok(self, gen8):
        # 1-byte elements are always aligned.
        assert isinstance(gen8.pad_element_at(0x1003, 0), int)

    def test_empty_scatter(self, gen32):
        assert gen32.pad_elements_at(np.array([], dtype=np.uint64), 0).size == 0


class TestBlockDedupeAndCache:
    """pad_elements_at dedupes shared cipher blocks and caches pad blocks."""

    def test_duplicate_blocks_encrypt_once(self):
        gen = OtpGenerator(TweakedCipher(KEY), RING32)
        # 8 elements spanning exactly 2 distinct blocks (4 elements each).
        addrs = np.arange(8, dtype=np.uint64) * 4 + 0x1000
        gen.pad_elements_at(addrs, 0)
        assert gen.cache_misses == 2
        assert gen.cache_hits == 0

    def test_repeat_query_hits_cache(self):
        gen = OtpGenerator(TweakedCipher(KEY), RING32)
        addrs = np.arange(8, dtype=np.uint64) * 4 + 0x1000
        gen.pad_elements_at(addrs, 0)
        before = gen.cache_misses
        out = gen.pad_elements_at(addrs, 0)
        assert gen.cache_misses == before  # fully served from cache
        assert gen.cache_hits >= 2
        # Cached results are still bit-identical to direct generation.
        fresh = OtpGenerator(TweakedCipher(KEY), RING32, cache_blocks=0)
        assert np.array_equal(out, fresh.pad_elements_at(addrs, 0))

    def test_version_keys_cache_entries(self):
        gen = OtpGenerator(TweakedCipher(KEY), RING32)
        addrs = np.array([0x1000], dtype=np.uint64)
        a = gen.pad_elements_at(addrs, 0)
        b = gen.pad_elements_at(addrs, 1)
        assert gen.cache_misses == 2  # same address, distinct versions
        assert not np.array_equal(a, b)

    def test_cache_disabled(self):
        gen = OtpGenerator(TweakedCipher(KEY), RING32, cache_blocks=0)
        addrs = np.array([0x1000, 0x1004], dtype=np.uint64)
        ref = OtpGenerator(TweakedCipher(KEY), RING32)
        assert np.array_equal(
            gen.pad_elements_at(addrs, 0), ref.pad_elements_at(addrs, 0)
        )
        assert gen.cache_hits == 0 and gen.cache_misses == 0

    def test_lru_eviction_bounds_cache(self):
        gen = OtpGenerator(TweakedCipher(KEY), RING32, cache_blocks=2)
        for block in range(5):
            gen.pad_elements_at(
                np.array([0x1000 + 16 * block], dtype=np.uint64), 0
            )
        assert len(gen._block_cache) == 2

    def test_clear_cache(self):
        gen = OtpGenerator(TweakedCipher(KEY), RING32)
        gen.pad_elements_at(np.array([0x1000], dtype=np.uint64), 0)
        gen.clear_cache()
        assert len(gen._block_cache) == 0
        assert gen.cache_hits == 0 and gen.cache_misses == 0

    def test_scatter_still_matches_bulk_with_cache(self):
        gen = OtpGenerator(TweakedCipher(KEY), RING8)
        bulk = gen.pad_elements(0x2000, 48, 4)
        addrs = 0x2000 + np.arange(48, dtype=np.uint64)
        # Prime the cache, then query again out of order with duplicates.
        gen.pad_elements_at(addrs, 4)
        shuffled = np.concatenate([addrs[::-1], addrs[:7]])
        out = gen.pad_elements_at(shuffled, 4)
        expected = np.concatenate([bulk[::-1], bulk[:7]])
        assert np.array_equal(out, expected)


class TestCacheInfo:
    """cache_info() exposes the LRU statistics; eviction bounds memory."""

    def test_fresh_generator(self, gen32):
        info = gen32.cache_info()
        assert info == (0, 0, 0, 0, gen32.cache_blocks)
        assert info.maxsize == gen32.cache_blocks

    def test_hits_misses_reported(self, gen32):
        addrs = np.arange(8, dtype=np.uint64) * 4 + 0x1000
        gen32.pad_elements_at(addrs, 0)  # 2 distinct blocks -> 2 misses
        gen32.pad_elements_at(addrs, 0)  # same blocks -> 2 hits
        info = gen32.cache_info()
        assert info.misses == 2
        assert info.hits == 2
        assert info.currsize == 2
        assert info.evictions == 0

    def test_clear_cache_resets_info(self, gen32):
        gen32.pad_elements_at(np.array([0x1000], dtype=np.uint64), 0)
        gen32.clear_cache()
        assert gen32.cache_info() == (0, 0, 0, 0, gen32.cache_blocks)

    def test_eviction_counts_and_bounds_memory(self):
        capacity = 64
        gen = OtpGenerator(TweakedCipher(KEY), RING32, cache_blocks=capacity)
        rng = np.random.default_rng(7)
        # Long scattered workload over a row space far larger than the
        # cache: 200 queries of 32 random block-aligned addresses each.
        for _ in range(200):
            rows = rng.integers(0, 10_000, size=32).astype(np.uint64)
            gen.pad_elements_at(rows * 16, 1)
            info = gen.cache_info()
            assert info.currsize <= capacity  # memory stays bounded
        info = gen.cache_info()
        assert info.evictions > 0
        assert info.misses >= info.evictions + info.currsize
        # Conservation: every miss either got evicted or is still cached.
        assert info.misses == info.evictions + info.currsize

    def test_disabled_cache_info(self):
        gen = OtpGenerator(TweakedCipher(KEY), RING32, cache_blocks=0)
        gen.pad_elements_at(np.array([0x1000], dtype=np.uint64), 0)
        info = gen.cache_info()
        assert info.maxsize == 0
        assert info.currsize == 0
        assert info.hits == 0 and info.misses == 0
