"""Shared fixtures for the SecNDP test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
KEY2 = bytes.fromhex("ffeeddccbbaa99887766554433221100")


@pytest.fixture
def key() -> bytes:
    return KEY


@pytest.fixture
def params32() -> SecNDPParams:
    return SecNDPParams(element_bits=32)


@pytest.fixture
def params8() -> SecNDPParams:
    return SecNDPParams(element_bits=8)


@pytest.fixture
def processor(params32) -> SecNDPProcessor:
    return SecNDPProcessor(KEY, params32)


@pytest.fixture
def device(params32) -> UntrustedNdpDevice:
    return UntrustedNdpDevice(params32)


@pytest.fixture
def small_matrix() -> np.ndarray:
    """64x32 matrix of small positive values (overflow-safe pooling)."""
    rng = np.random.default_rng(1234)
    return rng.integers(0, 256, size=(64, 32)).astype(np.uint32)


@pytest.fixture
def stored(processor, device, small_matrix):
    """Encrypt-with-tags and store the small matrix; returns its name."""
    enc = processor.encrypt_matrix(
        small_matrix, base_addr=0x10000, region="emb", with_tags=True
    )
    device.store("emb", enc)
    return "emb"
