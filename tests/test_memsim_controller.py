"""Memory-controller scheduling: constraint-by-constraint timing checks."""

from __future__ import annotations

import pytest

from repro.memsim import (
    AddressMapper,
    DDR4Timing,
    DramGeometry,
    MemoryController,
)
from repro.memsim.address import DecodedAddress

T = DDR4Timing()


def addr(rank=0, bg=0, bank=0, row=0, col=0):
    return DecodedAddress(
        channel=0, rank=rank, bank_group=bg, bank=bank, row=row, column=col
    )


@pytest.fixture
def ctrl():
    return MemoryController(T, DramGeometry())


class TestSingleAccess:
    def test_cold_miss_latency(self, ctrl):
        res = ctrl.access(addr(row=5), at=0, use_channel_bus=False)
        # Cold bank: ACT at 0, RD at tRCD, data from tRCD+tCL to +tBL.
        assert not res.row_hit
        assert res.issue_cycle == T.tRCD
        assert res.completion_cycle == T.tRCD + T.tCL + T.tBL

    def test_row_hit_latency(self, ctrl):
        ctrl.access(addr(row=5), at=0, use_channel_bus=False)
        res = ctrl.access(addr(row=5, col=1), at=0, use_channel_bus=False)
        assert res.row_hit
        # Second RD paced by tCCD_L (same bank group).
        assert res.issue_cycle == T.tRCD + T.tCCD_L

    def test_row_conflict_pays_tras_trp(self, ctrl):
        first = ctrl.access(addr(row=5), at=0, use_channel_bus=False)
        res = ctrl.access(addr(row=9), at=0, use_channel_bus=False)
        assert not res.row_hit
        # PRE cannot issue before tRAS after ACT (ACT was at cycle 0);
        # ACT after PRE waits tRP; RD waits tRCD.
        expected_act = max(T.tRAS, first.issue_cycle + T.tCL + T.tBL) + T.tRP
        assert res.issue_cycle >= expected_act + T.tRCD


class TestRankConstraints:
    def test_trrd_between_activates(self, ctrl):
        ctrl.access(addr(bg=0, bank=0, row=1), at=0, use_channel_bus=False)
        res = ctrl.access(addr(bg=1, bank=0, row=1), at=0, use_channel_bus=False)
        # Second ACT >= tRRD_S after the first (different group);
        # RD = ACT + tRCD.
        assert res.issue_cycle >= T.tRRD_S + T.tRCD

    def test_trrd_l_same_group(self, ctrl):
        ctrl.access(addr(bg=0, bank=0, row=1), at=0, use_channel_bus=False)
        res = ctrl.access(addr(bg=0, bank=1, row=1), at=0, use_channel_bus=False)
        assert res.issue_cycle >= T.tRRD_L + T.tRCD

    def test_tfaw_limits_activation_burst(self, ctrl):
        # Five ACTs to five different banks: the fifth waits for the tFAW window.
        issues = []
        for bank_index in range(5):
            bg, bank = bank_index % 4, bank_index // 4
            res = ctrl.access(
                addr(bg=bg, bank=bank, row=2), at=0, use_channel_bus=False
            )
            issues.append(res.issue_cycle - T.tRCD)  # ACT cycle
        assert issues[4] >= issues[0] + T.tFAW

    def test_ccd_paces_column_commands(self, ctrl):
        # Open one row, then stream reads: spacing = tCCD_L in-group.
        ctrl.access(addr(row=0, col=0), at=0, use_channel_bus=False)
        prev = ctrl.access(addr(row=0, col=1), at=0, use_channel_bus=False)
        nxt = ctrl.access(addr(row=0, col=2), at=0, use_channel_bus=False)
        assert nxt.issue_cycle - prev.issue_cycle == T.tCCD_L


class TestChannelBus:
    def test_bus_serialises_cross_rank_bursts(self, ctrl):
        a = ctrl.access(addr(rank=0, row=0), at=0, use_channel_bus=True)
        b = ctrl.access(addr(rank=1, row=0), at=0, use_channel_bus=True)
        # Different ranks have independent banks, but data bursts share the
        # bus: no overlap, plus the rank-to-rank bubble.
        assert b.data_start >= a.data_start + T.tBL

    def test_ndp_mode_ranks_fully_parallel(self, ctrl):
        a = ctrl.access(addr(rank=0, row=0), at=0, use_channel_bus=False)
        b = ctrl.access(addr(rank=1, row=0), at=0, use_channel_bus=False)
        assert a.completion_cycle == b.completion_cycle  # identical timing

    def test_bus_busy_cycles_counted(self, ctrl):
        ctrl.access(addr(), at=0, use_channel_bus=True)
        ctrl.access(addr(col=1), at=0, use_channel_bus=True)
        assert ctrl.bus.busy_cycles == 2 * T.tBL


class TestCounters:
    def test_activate_and_read_counts(self, ctrl):
        ctrl.access(addr(row=0), at=0)                 # miss: ACT+RD
        ctrl.access(addr(row=0, col=1), at=0)          # hit: RD
        ctrl.access(addr(row=1), at=0)                 # conflict: PRE+ACT+RD
        assert ctrl.counters.activates == 2
        assert ctrl.counters.reads == 3
        assert ctrl.counters.writes == 0

    def test_write_counts_and_recovery(self, ctrl):
        ctrl.access(addr(row=0), at=0, is_write=True)
        assert ctrl.counters.writes == 1
        # A row conflict after a write must respect tWR before PRE.
        res = ctrl.access(addr(row=1), at=0)
        bank = ctrl.ranks[0].bank(0, 0)
        assert res.issue_cycle >= T.tRCD  # sanity: scheduled after re-ACT

    def test_bus_bursts_only_in_cpu_mode(self, ctrl):
        ctrl.access(addr(row=0), at=0, use_channel_bus=False)
        assert ctrl.counters.bus_bursts == 0
        ctrl.access(addr(row=0, col=1), at=0, use_channel_bus=True)
        assert ctrl.counters.bus_bursts == 1


class TestStream:
    def test_stream_completion_monotone(self, ctrl):
        mapper = AddressMapper(DramGeometry())
        decoded = [mapper.decode(i * 64) for i in range(64)]
        end = ctrl.stream(decoded, start=0, use_channel_bus=True)
        assert end == ctrl.last_completion
        assert end > 0

    def test_sequential_stream_is_bandwidth_bound(self):
        """64 sequential lines should take ~tCCD_L per line, not tRC."""
        ctrl = MemoryController(T, DramGeometry())
        mapper = AddressMapper(DramGeometry())
        decoded = [mapper.decode(i * 64) for i in range(64)]
        end = ctrl.stream(decoded, start=0, use_channel_bus=True)
        per_line = end / 64
        assert per_line < 10  # far below the 52-cycle miss latency
