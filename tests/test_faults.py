"""Fault injection, verification-triggered recovery, chaos acceptance.

Covers the three layers of the robustness stack:

* :mod:`repro.faults.plan` / :mod:`repro.faults.hooks` - plan parsing,
  seeded determinism, arming discipline (faults only fire inside armed
  windows, hooks are inert otherwise);
* the recovery ladder in :class:`SecureEmbeddingStore` and the hardened
  :class:`ParallelSlsEngine` - every injected fault class must end in a
  bit-exact answer;
* the chaos harness acceptance criterion: at the 1e-3 memory-fault rate,
  tag-covered faults are detected at rate 1.0 and recovered at rate 1.0.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.params import SecNDPParams
from repro.core.protocol import SecNDPProcessor, UntrustedNdpDevice
from repro.errors import (
    ConfigurationError,
    RecoveryExhaustedError,
    VerificationError,
)
from repro.faults import (
    MEMORY_FAULTS,
    NODE_FAULTS,
    PRESET_PLANS,
    TRANSIENT_FAULTS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RecoveryPolicy,
    hooks,
)
from repro.harness.chaos import default_chaos_plan, run_chaos
from repro.harness.configs import SMOKE_SCALE
from repro.parallel.engine import ParallelSlsEngine
from repro.workloads.secure_sls import SecureEmbeddingStore

KEY = bytes(range(16))
PARAMS = SecNDPParams()

_TABLE_RNG = np.random.default_rng(1234)
TABLE = _TABLE_RNG.normal(size=(64, 16))
QUERIES = [list(_TABLE_RNG.integers(0, 64, size=6)) for _ in range(24)]
WEIGHTS = [list(_TABLE_RNG.integers(1, 4, size=6)) for _ in range(24)]

#: No-sleep policy so retry tests do not wait out real backoff.
FAST_POLICY = RecoveryPolicy(sleep=lambda s: None)


def build_store(recovery=None, injector=None, verify=True):
    processor = SecNDPProcessor(KEY, PARAMS)
    device = UntrustedNdpDevice(PARAMS)
    store = SecureEmbeddingStore(
        processor, device, verify=verify, recovery=recovery, fault_injector=injector
    )
    store.add_table("t", TABLE)
    return store


@pytest.fixture(scope="module")
def golden():
    return build_store().sls_many("t", QUERIES, WEIGHTS)


@pytest.fixture(autouse=True)
def _clean_hooks():
    previous = hooks.get()
    hooks.clear()
    yield
    hooks.clear()
    if previous is not None:
        hooks.install(previous)


# -- plans ---------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_preset(self):
        assert FaultPlan.parse("ci-default") is PRESET_PLANS["ci-default"]
        assert FaultPlan.parse(" memory-storm ") is PRESET_PLANS["memory-storm"]

    def test_parse_spec_with_seed(self):
        plan = FaultPlan.parse("ciphertext_bit=1e-3,tag_tamper=0.01,seed=42")
        assert plan.rate(FaultKind.CIPHERTEXT_BIT) == 1e-3
        assert plan.rate(FaultKind.TAG_TAMPER) == 0.01
        assert plan.seed == 42

    def test_parse_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultPlan.parse("rowhammer=1")

    def test_parse_malformed_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="kind=rate"):
            FaultPlan.parse("ciphertext_bit")

    def test_rates_validated_and_zero_rates_dropped(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(rates={FaultKind.TAG_TAMPER: 1.5})
        plan = FaultPlan(rates={FaultKind.TAG_TAMPER: 0.0})
        assert plan.empty

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(max_faults=-1)

    def test_taxonomy_partitions_kinds(self):
        grouped = set(MEMORY_FAULTS) | set(TRANSIENT_FAULTS)
        packet = {FaultKind.PACKET_DROP, FaultKind.PACKET_DUP, FaultKind.PACKET_DELAY}
        worker = {FaultKind.WORKER_CRASH, FaultKind.WORKER_RAISE, FaultKind.WORKER_HANG}
        assert grouped | packet | worker | set(NODE_FAULTS) == set(FaultKind)


# -- injector ------------------------------------------------------------------


class TestFaultInjector:
    def test_decisions_are_seeded_and_replayable(self):
        plan = FaultPlan(rates={FaultKind.RESULT_SKEW: 0.5}, seed=99)
        a = [FaultInjector(plan).decide(FaultKind.RESULT_SKEW, "s") for _ in range(1)]
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        da = [first.decide(FaultKind.RESULT_SKEW, "s") for _ in range(50)]
        db = [second.decide(FaultKind.RESULT_SKEW, "s") for _ in range(50)]
        assert da == db
        assert any(da) and not all(da)
        assert a  # replay of a fresh injector starts from the same stream

    def test_max_faults_budget_caps_injection(self):
        plan = FaultPlan(rates={FaultKind.RESULT_SKEW: 1.0}, max_faults=3)
        inj = FaultInjector(plan)
        fired = sum(inj.decide(FaultKind.RESULT_SKEW, "s") for _ in range(10))
        assert fired == 3
        assert inj.injected == 3

    def test_events_carry_site_and_context(self):
        inj = FaultInjector(FaultPlan(rates={FaultKind.TAG_TAMPER: 1.0}))
        inj.set_context("t:q3:a0")
        assert inj.decide(FaultKind.TAG_TAMPER, "device.tag_sum", "detail")
        (event,) = inj.events
        assert event.site == "device.tag_sum"
        assert event.context == "t:q3:a0"
        assert event.kind is FaultKind.TAG_TAMPER

    def test_perturb_result_skews_exactly_one_lane(self):
        ring = PARAMS.ring()
        inj = FaultInjector(FaultPlan(rates={FaultKind.RESULT_SKEW: 1.0}))
        values = np.zeros(8, dtype=ring.dtype)
        skewed = inj.perturb_result(ring, values, "site")
        assert skewed is not values  # input never mutated
        assert np.count_nonzero(skewed) == 1
        clean = FaultInjector(FaultPlan(rates={}))
        assert clean.perturb_result(ring, values, "site") is values

    def test_corrupt_device_mutates_and_reports_rows(self):
        store = build_store()
        plan = FaultPlan(rates={FaultKind.CIPHERTEXT_BIT: 5e-3}, seed=3)
        inj = FaultInjector(plan)
        before = store.device.stored("t").ciphertext.copy()
        corrupted = inj.corrupt_device(store.device)
        after = store.device.stored("t").ciphertext
        assert corrupted and "t" in corrupted
        changed_rows = {int(r) for r in np.nonzero((before != after).any(axis=1))[0]}
        assert changed_rows == corrupted["t"]

    def test_packet_and_worker_draw_shapes(self):
        plan = FaultPlan(
            rates={
                FaultKind.PACKET_DROP: 1.0,
                FaultKind.PACKET_DELAY: 1.0,
                FaultKind.WORKER_HANG: 1.0,
            },
            delay_s=0.25,
        )
        inj = FaultInjector(plan)
        drops, dups, delay = inj.packet_faults(4, "storage.run")
        assert drops == 4 and dups == 0 and delay == pytest.approx(1.0)
        assert inj.worker_directive("engine.task") == ("hang", 0.25)


# -- hooks / arming ------------------------------------------------------------


class TestHooks:
    def test_disabled_by_default(self):
        assert hooks.armed_injector() is None

    def test_injected_installs_arms_and_restores(self):
        plan = FaultPlan(rates={FaultKind.RESULT_SKEW: 1.0})
        with hooks.injected(plan) as inj:
            assert hooks.armed_injector() is inj
        assert hooks.armed_injector() is None
        assert hooks.get() is None

    def test_installed_but_disarmed_stays_inert(self):
        inj = hooks.install(FaultInjector(FaultPlan(rates={FaultKind.RESULT_SKEW: 1.0})))
        assert hooks.armed_injector() is None
        store = build_store()
        store.sls_many("t", QUERIES[:4], WEIGHTS[:4])  # must not raise
        assert inj.injected == 0

    def test_armed_context_overrides_and_restores(self):
        outer = hooks.install(FaultInjector(FaultPlan(rates={})))
        inner = FaultInjector(FaultPlan(rates={FaultKind.TAG_TAMPER: 1.0}))
        with hooks.armed(inner):
            assert hooks.armed_injector() is inner
        assert hooks.get() is outer
        assert hooks.armed_injector() is None

    def test_armed_none_is_noop(self):
        with hooks.armed(None) as inj:
            assert inj is None
            assert hooks.armed_injector() is None

    def test_ambient_injector_from_env(self, monkeypatch):
        monkeypatch.setattr(hooks, "_AMBIENT", False)
        monkeypatch.setenv(hooks.ENV_FAULT_PLAN, "tag_tamper=0.5,seed=8")
        inj = hooks.ambient_injector()
        assert inj is not None
        assert inj.plan.rate(FaultKind.TAG_TAMPER) == 0.5
        assert hooks.ambient_injector() is inj  # cached

    def test_ambient_injector_swallows_bad_plans(self, monkeypatch):
        monkeypatch.setattr(hooks, "_AMBIENT", False)
        monkeypatch.setenv(hooks.ENV_FAULT_PLAN, "not-a-plan")
        assert hooks.ambient_injector() is None

    def test_recovery_store_picks_up_installed_injector(self):
        inj = hooks.install(FaultInjector(FaultPlan(rates={})))
        store = build_store(recovery=FAST_POLICY)
        assert store.fault_injector is inj


# -- detection without recovery ------------------------------------------------


class TestDetectionWithoutRecovery:
    """Armed faults against a plain store must hit the Sec. V-E3 interrupt."""

    @pytest.mark.parametrize(
        "kind", [FaultKind.RESULT_SKEW, FaultKind.TAG_TAMPER, FaultKind.VERSION_FLIP]
    )
    def test_transient_fault_detected(self, kind):
        store = build_store()
        with hooks.injected(FaultPlan(rates={kind: 1.0})):
            with pytest.raises(VerificationError):
                store.sls("t", QUERIES[0], WEIGHTS[0])

    def test_persistent_corruption_detected(self):
        store = build_store()
        inj = FaultInjector(FaultPlan(rates={FaultKind.CIPHERTEXT_BIT: 5e-3}, seed=3))
        corrupted = inj.corrupt_device(store.device)
        row = next(iter(corrupted["t"]))
        with pytest.raises(VerificationError):
            store.sls("t", [row], [1])

    def test_unarmed_store_is_untouched_by_plan(self, golden):
        # Installing (not arming) a hostile plan must not change results.
        hooks.install(FaultInjector(FaultPlan(rates={FaultKind.RESULT_SKEW: 1.0})))
        assert np.array_equal(build_store().sls_many("t", QUERIES, WEIGHTS), golden)


# -- recovery ladder -----------------------------------------------------------


class TestRecovery:
    def test_transient_faults_recovered_bit_exact(self, golden):
        plan = FaultPlan(
            rates={
                FaultKind.RESULT_SKEW: 0.3,
                FaultKind.TAG_TAMPER: 0.2,
                FaultKind.VERSION_FLIP: 0.1,
            },
            seed=5,
        )
        inj = FaultInjector(plan)
        store = build_store(recovery=FAST_POLICY, injector=inj)
        got = store.sls_many("t", QUERIES, WEIGHTS)
        assert np.array_equal(got, golden)
        assert inj.injected > 0
        counts = store.recovery_log.counts_by_resolution()
        assert counts.get("retry", 0) > 0
        assert store.recovery_log.detected_count() > 0

    def test_persistent_faults_repaired_and_quarantined(self, golden):
        plan = FaultPlan(rates={FaultKind.CIPHERTEXT_BIT: 3e-3}, seed=9)
        inj = FaultInjector(plan)
        policy = RecoveryPolicy(sleep=lambda s: None, reencrypt_after=None)
        store = build_store(recovery=policy, injector=inj)
        corrupted = inj.corrupt_device(store.device)
        assert corrupted
        got = store.sls_many("t", QUERIES, WEIGHTS)
        assert np.array_equal(got, golden)
        touched = {r for rows in QUERIES for r in rows}
        expected_quarantine = corrupted["t"] & touched
        assert store.quarantined_rows("t") == expected_quarantine

    def test_reencryption_clears_quarantine_and_heals_table(self, golden):
        plan = FaultPlan(rates={FaultKind.CIPHERTEXT_BIT: 3e-3}, seed=9)
        inj = FaultInjector(plan)
        policy = RecoveryPolicy(sleep=lambda s: None, reencrypt_after=1)
        store = build_store(recovery=policy, injector=inj)
        inj.corrupt_device(store.device)
        old_version = store.device.stored("t").version
        got = store.sls_many("t", QUERIES, WEIGHTS)
        assert np.array_equal(got, golden)
        assert store.recovery_log.reencryptions.get("t", 0) >= 1
        assert store.quarantined_rows("t") == set()
        assert store.device.stored("t").version > old_version
        # The table is healed: a fresh serve is clean end to end.
        n = len(store.recovery_log.outcomes)
        assert np.array_equal(store.sls_many("t", QUERIES, WEIGHTS), golden)
        assert all(
            o.resolved_via == "ok" for o in store.recovery_log.outcomes[n:]
        )

    def test_no_plaintext_means_recovery_exhausted(self):
        plan = FaultPlan(rates={FaultKind.CIPHERTEXT_BIT: 1.0}, max_faults=8, seed=2)
        inj = FaultInjector(plan)
        policy = RecoveryPolicy(sleep=lambda s: None, retain_plaintext=False)
        store = build_store(recovery=policy, injector=inj)
        corrupted = inj.corrupt_device(store.device)
        row = next(iter(corrupted["t"]))
        with pytest.raises(RecoveryExhaustedError):
            store.sls("t", [row], [1])

    def test_injector_requires_recovery(self):
        with pytest.raises(ConfigurationError, match="RecoveryPolicy"):
            build_store(injector=FaultInjector(FaultPlan(rates={})))

    def test_recovery_requires_verification(self):
        with pytest.raises(ConfigurationError, match="verify"):
            build_store(recovery=FAST_POLICY, verify=False)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RecoveryPolicy(backoff_base_s=0.01, backoff_factor=2.0, jitter=0.5)
        for attempt in range(3):
            base = 0.01 * (2.0 ** attempt)
            delay = policy.backoff_s(attempt, salt=7)
            assert delay == policy.backoff_s(attempt, salt=7)
            assert base * 0.5 <= delay <= base * 1.5
        flat = RecoveryPolicy(backoff_base_s=0.01, jitter=0.0)
        assert flat.backoff_s(2) == pytest.approx(0.04)

    def test_retries_sleep_with_backoff(self, golden):
        sleeps = []
        policy = RecoveryPolicy(max_retries=2, sleep=sleeps.append)
        plan = FaultPlan(rates={FaultKind.TAG_TAMPER: 1.0}, max_faults=2, seed=1)
        store = build_store(recovery=policy, injector=FaultInjector(plan))
        got = store.sls("t", QUERIES[0], WEIGHTS[0])
        assert np.array_equal(got, golden[0])
        assert len(sleeps) == 2  # two faulted attempts, then a clean third
        assert all(s > 0 for s in sleeps)

    def test_clean_recovery_store_matches_golden(self, golden):
        store = build_store(
            recovery=FAST_POLICY, injector=FaultInjector(FaultPlan(rates={}))
        )
        assert np.array_equal(store.sls_many("t", QUERIES, WEIGHTS), golden)
        counts = store.recovery_log.counts_by_resolution()
        assert set(counts) == {"ok"}


# -- hardened parallel engine --------------------------------------------------


class _PoisonedPool:
    def terminate(self):
        raise RuntimeError("poisoned pool")

    def join(self):  # pragma: no cover - terminate raises first
        raise RuntimeError("poisoned pool")


class TestEngineChaos:
    def _engine(self, store, workers=2, task_timeout=30.0):
        engine = ParallelSlsEngine(store, workers=workers, task_timeout=task_timeout)
        if workers >= 1 and engine.workers == 0:
            engine.close()
            pytest.skip("shared memory unavailable; engine degraded at start")
        return engine

    def test_worker_raise_respawns_and_matches(self, golden):
        plan = FaultPlan(rates={FaultKind.WORKER_RAISE: 1.0}, max_faults=1, seed=4)
        store = build_store(recovery=FAST_POLICY, injector=FaultInjector(plan))
        with self._engine(store) as engine:
            assert np.array_equal(engine.sls_many("t", QUERIES, WEIGHTS), golden)
            assert engine.workers > 0  # recovered by respawn, not degradation

    def test_worker_crash_respawns_and_matches(self, golden):
        plan = FaultPlan(rates={FaultKind.WORKER_CRASH: 1.0}, max_faults=1, seed=4)
        store = build_store(recovery=FAST_POLICY, injector=FaultInjector(plan))
        with self._engine(store, task_timeout=5.0) as engine:
            assert np.array_equal(engine.sls_many("t", QUERIES, WEIGHTS), golden)

    def test_worker_hang_is_absorbed_by_deadline(self, golden):
        plan = FaultPlan(
            rates={FaultKind.WORKER_HANG: 1.0}, max_faults=1, delay_s=0.05, seed=4
        )
        store = build_store(recovery=FAST_POLICY, injector=FaultInjector(plan))
        with self._engine(store) as engine:
            assert np.array_equal(engine.sls_many("t", QUERIES, WEIGHTS), golden)

    def test_corrupted_arena_delegates_to_recovery(self, golden):
        plan = FaultPlan(rates={FaultKind.CIPHERTEXT_BIT: 3e-3}, seed=9)
        inj = FaultInjector(plan)
        policy = RecoveryPolicy(sleep=lambda s: None, reencrypt_after=None)
        store = build_store(recovery=policy, injector=inj)
        corrupted = inj.corrupt_device(store.device)
        assert corrupted
        with self._engine(store) as engine:  # arenas snapshot the damage
            assert np.array_equal(engine.sls_many("t", QUERIES, WEIGHTS), golden)
        assert store.recovery_log.detected_count() > 0

    def test_stale_arenas_after_reencryption_refresh(self, golden):
        store = build_store(
            recovery=FAST_POLICY, injector=FaultInjector(FaultPlan(rates={}))
        )
        with self._engine(store) as engine:
            assert np.array_equal(engine.sls_many("t", QUERIES, WEIGHTS), golden)
            store.reencrypt_table("t")
            assert np.array_equal(engine.sls_many("t", QUERIES, WEIGHTS), golden)

    def test_unrecoverable_store_draws_no_directives(self, golden):
        # A plain store served through the engine must never be faulted,
        # even with a hostile injector installed process-wide.
        inj = hooks.install(
            FaultInjector(FaultPlan(rates={FaultKind.WORKER_CRASH: 1.0}))
        )
        store = build_store()
        with self._engine(store) as engine:
            assert np.array_equal(engine.sls_many("t", QUERIES, WEIGHTS), golden)
        assert inj.injected == 0

    def test_poisoned_pool_still_tears_down(self):
        store = build_store()
        obs.get_registry().reset()
        obs.enable()
        try:
            engine = self._engine(store)
            real_pool = engine._pool
            real_pool.terminate()
            real_pool.join()
            engine._pool = _PoisonedPool()
            assert engine._segments
            engine.close()  # must not raise despite the poisoned pool
            assert engine._pool is None
            assert engine._segments == []
            counters = obs.snapshot()["counters"]
            assert counters.get("parallel.teardown_errors", 0) >= 1
            engine.close()  # idempotent
        finally:
            obs.disable()
            obs.get_registry().reset()


# -- hypothesis sweep: fault kinds x worker counts -----------------------------


_SWEEP_KINDS = sorted(
    set(MEMORY_FAULTS) | set(TRANSIENT_FAULTS) | {FaultKind.WORKER_RAISE},
    key=lambda k: k.value,
)


class TestFaultSweep:
    @given(
        kind=st.sampled_from(_SWEEP_KINDS),
        workers=st.sampled_from([0, 0, 0, 0, 1, 2]),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_fault_kind_recovers_bit_exact(self, kind, workers, seed, golden):
        rate = 0.01 if kind in MEMORY_FAULTS else 0.5
        plan = FaultPlan(rates={kind: rate}, seed=seed, max_faults=50)
        inj = FaultInjector(plan)
        policy = RecoveryPolicy(sleep=lambda s: None, reencrypt_after=None)
        store = build_store(recovery=policy, injector=inj)
        if kind in MEMORY_FAULTS:
            inj.corrupt_device(store.device)
        if workers == 0:
            got = store.sls_many("t", QUERIES, WEIGHTS)
        else:
            with ParallelSlsEngine(store, workers=workers, task_timeout=30.0) as eng:
                got = eng.sls_many("t", QUERIES, WEIGHTS)
        assert np.array_equal(got, golden)
        if kind in TRANSIENT_FAULTS and inj.injected and workers == 0:
            # A transient fault during an armed serve is always detected.
            assert store.recovery_log.detected_count() > 0


# -- chaos acceptance ----------------------------------------------------------


class TestChaosAcceptance:
    """The ISSUE's bar: 1e-3 memory-fault chaos run, detection and
    recovery both at 1.0, results bit-exact."""

    def test_sequential_chaos_run(self):
        result = run_chaos(SMOKE_SCALE, fault_rate=1e-3, workers=0)
        assert result.mismatched == 0
        assert result.exposed > 0  # the run actually exercised faults
        assert result.detection_rate == 1.0
        assert result.recovery_rate == 1.0

    def test_parallel_chaos_run(self):
        result = run_chaos(SMOKE_SCALE, fault_rate=1e-3, workers=2, task_timeout=30.0)
        assert result.mismatched == 0
        assert result.detection_rate == 1.0
        assert result.recovery_rate == 1.0

    def test_default_plan_shape(self):
        plan = default_chaos_plan(2e-3, seed=11)
        assert plan.rate(FaultKind.CIPHERTEXT_BIT) == 2e-3
        assert plan.rate(FaultKind.TAG_REPLAY) == 2e-3
        assert plan.seed == 11
