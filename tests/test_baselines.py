"""Baselines: non-NDP, TEE, SGX models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    SGX_CFL,
    SGX_ICL,
    SgxMachine,
    run_non_ndp,
    run_tee,
    run_unprotected_ndp,
    sgx_slowdown,
)
from repro.errors import ConfigurationError
from repro.ndp import AesEngineModel, NdpWorkload, SimQuery, TableGeometry


def make_workload(n_queries=8, pf=40, seed=0, row_bytes=128):
    rng = np.random.default_rng(seed)
    tables = {0: TableGeometry(50_000, row_bytes, 128)}
    queries = tuple(
        SimQuery(0, tuple(int(x) for x in rng.integers(0, 50_000, size=pf)))
        for _ in range(n_queries)
    )
    return NdpWorkload(tables=tables, queries=queries)


@pytest.fixture(scope="module")
def workload():
    return make_workload()


class TestNonNdp:
    def test_line_accounting(self, workload):
        res = run_non_ndp(workload)
        assert res.total_lines == 8 * 40 * 2  # 128-byte rows = 2 lines
        assert res.total_bytes_on_bus == res.total_lines * 64

    def test_extra_bytes_increase_traffic_and_time(self, workload):
        base = run_non_ndp(workload)
        mac = run_non_ndp(workload, extra_bytes_per_row=8)
        assert mac.total_lines >= base.total_lines
        assert mac.total_ns >= base.total_ns * 0.98

    def test_time_positive_and_bandwidth_sane(self, workload):
        res = run_non_ndp(workload)
        gbps = res.total_bytes_on_bus / res.total_ns
        assert 1.0 < gbps < 19.2  # below DDR4-2400 channel peak

    def test_page_seed_changes_timing_slightly(self, workload):
        a = run_non_ndp(workload, page_seed=0).total_ns
        b = run_non_ndp(workload, page_seed=1).total_ns
        assert a != b
        assert abs(a - b) / a < 0.2


class TestNdpVsNonNdp:
    def test_eight_rank_ndp_beats_cpu(self, workload):
        base = run_non_ndp(workload)
        ndp = run_unprotected_ndp(workload, ndp_ranks=8, ndp_regs=8)
        assert base.total_ns / ndp.ndp_only_ns > 2.0


class TestTee:
    def test_integrity_adds_traffic(self, workload):
        enc_only = run_tee(workload, with_integrity=False)
        with_mac = run_tee(workload, with_integrity=True)
        assert with_mac.total_lines >= enc_only.total_lines

    def test_one_engine_nearly_matches_channel(self, workload):
        """A single 111.3 Gbps engine nearly covers one DDR4-2400 channel -
        which is exactly why conventional TEEs need so few AES engines
        while SecNDP (8 ranks of internal bandwidth) needs ~10."""
        slow = run_tee(workload, aes=AesEngineModel(1))
        assert slow.otp_ns > 0.5 * slow.memory_ns
        assert slow.total_ns == max(slow.memory_ns, slow.otp_ns)

    def test_decryption_bound_with_slow_engine(self, workload):
        slow = run_tee(workload, aes=AesEngineModel(1, block_ns=5.0))
        assert slow.decryption_bound
        assert slow.total_ns == pytest.approx(slow.otp_ns)

    def test_memory_bound_with_many_engines(self, workload):
        fast = run_tee(workload, aes=AesEngineModel(16))
        assert not fast.decryption_bound
        assert fast.total_ns == pytest.approx(fast.memory_ns)

    def test_tee_never_faster_than_unprotected(self, workload):
        base = run_non_ndp(workload)
        tee = run_tee(workload)
        assert tee.total_ns >= base.total_ns * 0.99


class TestSgxModel:
    def test_within_epc_mee_factor(self):
        ns = sgx_slowdown(SGX_CFL, 10 << 20, 1 << 20, baseline_ns=1000.0)
        assert ns == pytest.approx(1000.0 * SGX_CFL.mee_bandwidth_factor)

    def test_oversubscribed_epc_pays_paging(self):
        inside = sgx_slowdown(SGX_CFL, 100 << 20, 10 << 20, 1e6)
        outside = sgx_slowdown(SGX_CFL, 1 << 30, 10 << 20, 1e6)
        assert outside > inside * 10

    def test_paging_grows_with_working_set(self):
        a = sgx_slowdown(SGX_CFL, 256 << 20, 10 << 20, 1e6)
        b = sgx_slowdown(SGX_CFL, 8 << 30, 10 << 20, 1e6)
        assert b > a

    def test_icl_has_no_paging_cliff(self):
        # ICL (no integrity tree): same factor either side of CFL's EPC size.
        small = sgx_slowdown(SGX_ICL, 100 << 20, 10 << 20, 1e6)
        large = sgx_slowdown(SGX_ICL, 8 << 30, 10 << 20, 1e6)
        assert small == large == pytest.approx(1e6 * SGX_ICL.mee_bandwidth_factor)

    def test_icl_milder_than_cfl(self):
        assert SGX_ICL.mee_bandwidth_factor < SGX_CFL.mee_bandwidth_factor

    def test_paper_machine_parameters(self):
        assert SGX_CFL.epc_bytes == 168 << 20
        assert SGX_CFL.has_integrity_tree
        assert SGX_ICL.epc_bytes == 96 << 30
        assert not SGX_ICL.has_integrity_tree

    def test_invalid_machine_rejected(self):
        with pytest.raises(ConfigurationError):
            SgxMachine("bad", 0, True, 2.0, 1.0)
