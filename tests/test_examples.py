"""Every example script must run cleanly end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: faster examples run in CI; the heavier ones are marked slow-ish but
#: still bounded (tens of seconds).
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_complete():
    assert set(ALL_EXAMPLES) >= {
        "quickstart.py",
        "dlrm_inference.py",
        "medical_analytics.py",
        "threat_demo.py",
        "architecture_study.py",
        "near_storage.py",
    }


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert "OK" in result.stdout
