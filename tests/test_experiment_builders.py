"""Experiment-harness builders: trace kinds, scaling, and config routing."""

from __future__ import annotations

import pytest

from repro.harness import SMOKE_SCALE
from repro.harness.experiments.common import (
    build_analytics_workload,
    build_sls_workload,
    run_baseline,
    run_ndp,
    scaled_config,
)
from repro.ndp import TagScheme


class TestScaledConfig:
    def test_shrinks_rows_only(self):
        config = scaled_config("RMC2-large", SMOKE_SCALE)
        assert config.rows_per_table == SMOKE_SCALE.rows_per_table
        assert config.n_tables == 64  # architecture untouched

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            scaled_config("RMC9-huge", SMOKE_SCALE)


class TestBuildSls:
    def test_random_kind_fixed_pf(self):
        config = scaled_config("RMC1-small", SMOKE_SCALE)
        wl = build_sls_workload(config, SMOKE_SCALE, trace_kind="random")
        assert all(
            q.pooling_factor == SMOKE_SCALE.pooling_factor for q in wl.queries
        )

    def test_production_kind_varies_pf(self):
        config = scaled_config("RMC1-small", SMOKE_SCALE)
        wl = build_sls_workload(config, SMOKE_SCALE, trace_kind="production")
        pfs = {q.pooling_factor for q in wl.queries}
        assert len(pfs) > 1
        lo = max(1, SMOKE_SCALE.pooling_factor * 5 // 8)
        hi = SMOKE_SCALE.pooling_factor * 5 // 4
        assert all(lo <= pf <= hi for pf in pfs)

    def test_unknown_kind_rejected(self):
        config = scaled_config("RMC1-small", SMOKE_SCALE)
        with pytest.raises(ValueError):
            build_sls_workload(config, SMOKE_SCALE, trace_kind="zipfian")

    def test_queries_count(self):
        config = scaled_config("RMC1-small", SMOKE_SCALE)
        wl = build_sls_workload(config, SMOKE_SCALE)
        assert len(wl.queries) == SMOKE_SCALE.batch * config.n_tables


class TestBuildAnalytics:
    def test_geometry_from_scale(self):
        wl = build_analytics_workload(SMOKE_SCALE)
        geo = wl.tables[0]
        assert geo.n_rows == SMOKE_SCALE.analytics_patients
        assert geo.row_bytes == SMOKE_SCALE.analytics_genes * 4
        assert len(wl.queries) == SMOKE_SCALE.analytics_queries


class TestRunners:
    def test_run_ndp_respects_scheme(self):
        config = scaled_config("RMC1-small", SMOKE_SCALE)
        wl = build_sls_workload(config, SMOKE_SCALE)
        enc = run_ndp(wl, tag_scheme=TagScheme.ENC_ONLY)
        sep = run_ndp(wl, tag_scheme=TagScheme.VER_SEP)
        assert sep.total_lines > enc.total_lines

    def test_run_baseline_deterministic_per_seed(self):
        config = scaled_config("RMC1-small", SMOKE_SCALE)
        wl = build_sls_workload(config, SMOKE_SCALE)
        assert run_baseline(wl, page_seed=2).total_ns == run_baseline(
            wl, page_seed=2
        ).total_ns
