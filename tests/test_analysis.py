"""Energy (Table V), area (Sec. VII-C), accuracy (Table IV) analyses."""

from __future__ import annotations

import pytest

from repro.analysis import (
    AreaModel,
    EngineEnergyParams,
    PAPER_AES_ENGINES,
    PAPER_TOTAL_MM2,
    normalized_table5,
    quantization_accuracy,
    table5_rows,
)
from repro.errors import ConfigurationError


class TestTable5:
    def test_five_scenarios(self):
        rows = table5_rows()
        assert [r.name for r in rows] == [
            "unprotected non-NDP",
            "unprotected NDP",
            "non-NDP Enc",
            "SecNDP Enc",
            "SecNDP Enc+ver",
        ]

    def test_paper_coefficients(self):
        rows = {r.name: r for r in table5_rows()}
        base = rows["unprotected non-NDP"]
        assert base.dimm_pj_per_bit == pytest.approx(27.42)
        assert base.io_pj_per_bit_pf == pytest.approx(7.3)
        assert rows["non-NDP Enc"].engine_pj_per_bit_pf == pytest.approx(0.5)
        assert rows["SecNDP Enc"].engine_pj_per_bit_pf == pytest.approx(0.9)

    def test_normalized_matches_paper_pf80(self):
        """Paper Table V normalised column: 100 / 79.2 / 101.5 / 81.83 / 92.09."""
        norm = normalized_table5(pf=80)
        assert norm["unprotected non-NDP"] == pytest.approx(100.0)
        assert norm["unprotected NDP"] == pytest.approx(79.2, abs=0.5)
        assert norm["non-NDP Enc"] == pytest.approx(101.5, abs=0.5)
        assert norm["SecNDP Enc"] == pytest.approx(81.83, abs=0.5)
        assert norm["SecNDP Enc+ver"] == pytest.approx(92.09, abs=0.8)

    def test_orderings_hold_at_any_pf(self):
        for pf in (10, 40, 80, 200):
            norm = normalized_table5(pf=pf)
            assert norm["unprotected NDP"] < 100.0
            assert norm["non-NDP Enc"] > 100.0
            assert norm["SecNDP Enc"] > norm["unprotected NDP"]
            assert norm["SecNDP Enc+ver"] > norm["SecNDP Enc"]
            assert norm["SecNDP Enc+ver"] < 100.0  # still saves energy

    def test_engine_coefficients_derived(self):
        e = EngineEnergyParams()
        assert e.enc_pj_per_bit == pytest.approx(e.aes_block_pj / 128)
        assert e.secndp_pj_per_bit > e.enc_pj_per_bit


class TestArea:
    def test_paper_total(self):
        assert AreaModel().total_mm2(PAPER_AES_ENGINES) == pytest.approx(
            PAPER_TOTAL_MM2, abs=0.01
        )

    def test_scales_with_engines(self):
        m = AreaModel()
        assert m.total_mm2(20) > m.total_mm2(10) > m.total_mm2(1)

    def test_node_scaling(self):
        m = AreaModel()
        scaled = m.scaled_to_node(1.625, from_nm=45, to_nm=7)
        assert scaled == pytest.approx(1.625 * (7 / 45) ** 2)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            AreaModel().total_mm2(0)
        with pytest.raises(ConfigurationError):
            AreaModel().scaled_to_node(1.0, from_nm=0)


class TestAccuracySmoke:
    """Fast, shape-level checks; the full Table IV runs in the benchmark."""

    @pytest.fixture(scope="class")
    def report(self):
        return quantization_accuracy(
            n_tables=2,
            rows_per_table=128,
            n_train=600,
            n_eval=400,
            epochs=3,
            seed=1,
        )

    def test_all_schemes_present(self, report):
        assert "32-bit floating point" in report.logloss
        assert "32-bit fixed point" in report.logloss
        assert "table-wise quantization (8-bit)" in report.logloss
        assert "column-wise quantization (8-bit)" in report.logloss

    def test_logloss_in_sane_band(self, report):
        for ll in report.logloss.values():
            assert 0.3 < ll < 0.8

    def test_fixed32_nearly_identical_to_fp32(self, report):
        assert abs(report.degradation("32-bit fixed point")) < 1e-4

    def test_8bit_degradation_below_paper_threshold(self, report):
        """Paper: <= 0.07% LogLoss degradation for 8-bit schemes."""
        for scheme in (
            "table-wise quantization (8-bit)",
            "column-wise quantization (8-bit)",
        ):
            assert abs(report.degradation_pct(scheme)) < 0.5

    def test_rows_render(self, report):
        rows = report.rows()
        assert len(rows) >= 4
        assert rows[0][0] == "32-bit floating point"
