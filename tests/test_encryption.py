"""Arithmetic encryption (Alg. 1): roundtrip, sharing property, addressing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ArithmeticEncryptor, SecNDPParams
from repro.crypto import TweakedCipher
from repro.errors import ConfigurationError

KEY = bytes(range(16))


def make_encryptor(element_bits=32):
    params = SecNDPParams(element_bits=element_bits)
    return ArithmeticEncryptor(TweakedCipher(KEY), params), params


class TestRoundtrip:
    @pytest.mark.parametrize("element_bits", [8, 16, 32, 64])
    def test_decrypt_recovers_plaintext(self, element_bits):
        enc, params = make_encryptor(element_bits)
        ring = params.ring()
        rng = np.random.default_rng(element_bits)
        n_cols = 256 // element_bits * 2  # whole blocks
        pt = rng.integers(0, ring.modulus, size=(8, n_cols), dtype=np.uint64).astype(
            ring.dtype
        )
        e = enc.encrypt(pt, 0x4000, version=1)
        assert np.array_equal(enc.decrypt(e), pt)

    def test_ciphertext_differs_from_plaintext(self):
        enc, _ = make_encryptor()
        pt = np.zeros((4, 8), dtype=np.uint32)
        e = enc.encrypt(pt, 0x4000, version=0)
        assert not np.array_equal(e.ciphertext, pt)

    def test_sharing_property(self):
        """C + E = P elementwise - the arithmetic-sharing invariant."""
        enc, params = make_encryptor()
        ring = params.ring()
        rng = np.random.default_rng(0)
        pt = rng.integers(0, 2**32, size=(4, 8), dtype=np.uint64).astype(np.uint32)
        e = enc.encrypt(pt, 0x8000, version=7)
        pads = enc.otp.pad_elements(0x8000, pt.size, 7).reshape(pt.shape)
        assert np.array_equal(ring.add(e.ciphertext, pads), pt)


class TestValidation:
    def test_rejects_1d(self):
        enc, _ = make_encryptor()
        with pytest.raises(ConfigurationError):
            enc.encrypt(np.zeros(8, dtype=np.uint32), 0x1000, 0)

    def test_rejects_partial_block(self):
        enc, _ = make_encryptor()
        # 3x3 x 32-bit = 288 bits, not a multiple of 128.
        with pytest.raises(ConfigurationError):
            enc.encrypt(np.zeros((3, 3), dtype=np.uint32), 0x1000, 0)

    def test_rejects_unaligned_base(self):
        enc, _ = make_encryptor()
        with pytest.raises(ConfigurationError):
            enc.encrypt(np.zeros((4, 8), dtype=np.uint32), 0x1004, 0)


class TestVersionsAndAddresses:
    def test_same_plaintext_different_versions_different_ciphertext(self):
        enc, _ = make_encryptor()
        pt = np.arange(32, dtype=np.uint32).reshape(4, 8)
        a = enc.encrypt(pt, 0x1000, version=0)
        b = enc.encrypt(pt, 0x1000, version=1)
        assert not np.array_equal(a.ciphertext, b.ciphertext)

    def test_same_plaintext_different_addresses_different_ciphertext(self):
        enc, _ = make_encryptor()
        pt = np.arange(32, dtype=np.uint32).reshape(4, 8)
        a = enc.encrypt(pt, 0x1000, version=0)
        b = enc.encrypt(pt, 0x2000, version=0)
        assert not np.array_equal(a.ciphertext, b.ciphertext)

    def test_version_reuse_leaks_differences(self):
        """The attack the version discipline prevents: same (addr, v) for
        two plaintexts exposes their ring difference."""
        enc, params = make_encryptor()
        ring = params.ring()
        p1 = np.full((4, 8), 100, dtype=np.uint32)
        p2 = np.full((4, 8), 250, dtype=np.uint32)
        c1 = enc.encrypt(p1, 0x1000, version=5).ciphertext
        c2 = enc.encrypt(p2, 0x1000, version=5).ciphertext
        assert np.all(ring.sub(c2, c1) == 150)  # plaintext delta leaks


class TestRowAddressing:
    def test_row_and_element_addresses(self):
        enc, params = make_encryptor()
        pt = np.zeros((4, 8), dtype=np.uint32)
        e = enc.encrypt(pt, 0x1000, version=0)
        assert e.row_bytes == 32
        assert e.row_addr(0) == 0x1000
        assert e.row_addr(3) == 0x1000 + 3 * 32
        assert e.element_addr(2, 5) == 0x1000 + 2 * 32 + 20

    def test_out_of_range_rejected(self):
        enc, _ = make_encryptor()
        e = enc.encrypt(np.zeros((4, 8), dtype=np.uint32), 0x1000, 0)
        with pytest.raises(IndexError):
            e.row_addr(4)
        with pytest.raises(IndexError):
            e.element_addr(0, 8)

    def test_pads_for_rows_match_bulk(self):
        enc, _ = make_encryptor()
        rng = np.random.default_rng(1)
        pt = rng.integers(0, 2**32, size=(16, 8), dtype=np.uint64).astype(np.uint32)
        e = enc.encrypt(pt, 0x2000, version=3)
        bulk = enc.otp.pad_elements(0x2000, pt.size, 3).reshape(pt.shape)
        rows = [0, 5, 11, 15]
        assert np.array_equal(enc.pads_for_rows(e, rows), bulk[rows])

    def test_pad_for_element_matches_bulk(self):
        enc, _ = make_encryptor()
        pt = np.zeros((4, 8), dtype=np.uint32)
        e = enc.encrypt(pt, 0x2000, version=3)
        bulk = enc.otp.pad_elements(0x2000, 32, 3).reshape(4, 8)
        assert enc.pad_for_element(e, 2, 5) == int(bulk[2, 5])


class TestPropertyBased:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 100),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_single_value_roundtrip(self, value, version, addr_blocks):
        enc, _ = make_encryptor()
        pt = np.full((1, 4), value, dtype=np.uint32)
        e = enc.encrypt(pt, addr_blocks * 16, version=version)
        assert np.array_equal(enc.decrypt(e), pt)
