"""Cross-module integration: full secure-inference and analytics paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SecNDPParams,
    SecNDPProcessor,
    UntrustedNdpDevice,
    deserialize_matrix,
    serialize_matrix,
)
from repro.workloads import (
    DlrmConfig,
    DlrmModel,
    SecureEmbeddingStore,
    click_dataset,
)

KEY = b"integration-key!"


@pytest.fixture(scope="module")
def secure_dlrm():
    """A small DLRM whose embedding path runs through SecNDP."""
    config = DlrmConfig(
        "it", (8, 16, 4), (16, 8, 1), n_tables=3, rows_per_table=64,
        embedding_dim=4,
    )
    model = DlrmModel(config, seed=2)
    data = click_dataset(16, 3, 64, dense_dim=8, seed=2)

    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(KEY, params)
    device = UntrustedNdpDevice(params)
    store = SecureEmbeddingStore(processor, device, quantization="column")
    for t, table in enumerate(model.tables):
        store.add_table(f"t{t}", table.values)
    return model, data, store


class TestSecureDlrmInference:
    def _pooled_secure(self, model, data, store):
        cfg = model.config
        pooled = np.zeros((data.n_samples, cfg.n_tables, cfg.embedding_dim))
        for s, per_table in enumerate(data.sparse_rows):
            for t, rows in enumerate(per_table):
                pooled[s, t] = store.sls(f"t{t}", rows)
        return pooled

    def test_predictions_match_quantized_plaintext(self, secure_dlrm):
        model, data, store = secure_dlrm
        pooled_secure = self._pooled_secure(model, data, store)

        pooled_plain = np.zeros_like(pooled_secure)
        for s, per_table in enumerate(data.sparse_rows):
            for t, rows in enumerate(per_table):
                dq = store.dequantized_table(f"t{t}")
                pooled_plain[s, t] = dq[rows].sum(axis=0)

        pred_secure = model.forward(
            data.dense, data.sparse_rows, pooled_override=pooled_secure
        )
        pred_plain = model.forward(
            data.dense, data.sparse_rows, pooled_override=pooled_plain
        )
        assert np.allclose(pred_secure, pred_plain)

    def test_predictions_close_to_fp32(self, secure_dlrm):
        model, data, store = secure_dlrm
        pooled_secure = self._pooled_secure(model, data, store)
        pred_secure = model.forward(
            data.dense, data.sparse_rows, pooled_override=pooled_secure
        )
        pred_fp32 = model.forward(data.dense, data.sparse_rows)
        # 8-bit quantization moves predictions only slightly.
        assert np.max(np.abs(pred_secure - pred_fp32)) < 0.15


class TestPersistenceRoundTrip:
    def test_offload_resume_on_second_device(self, processor, small_matrix):
        """Encrypt on one 'host', serialize, resume serving on another
        untrusted device - decryption and verification need only the key."""
        enc = processor.encrypt_matrix(small_matrix, 0x7000, "mv", with_tags=True)
        blob = serialize_matrix(enc)

        other_device = UntrustedNdpDevice(processor.params)
        other_device.store("mv", deserialize_matrix(blob, processor.params))
        res = processor.weighted_row_sum(other_device, "mv", [2, 4], [3, 1])
        expected = (
            3 * small_matrix[2].astype(np.int64) + small_matrix[4]
        ) % (1 << 32)
        assert np.array_equal(res.values.astype(np.int64), expected)


class TestMultiTenant:
    def test_two_processors_cannot_cross_verify(self, small_matrix):
        """Two enclaves with different keys sharing one NDP device stay
        cryptographically isolated."""
        params = SecNDPParams(element_bits=32)
        alice = SecNDPProcessor(b"alice-key-000000", params)
        bob = SecNDPProcessor(b"bob-key-11111111", params)
        device = UntrustedNdpDevice(params)

        enc_a = alice.encrypt_matrix(small_matrix, 0x1000, "a", with_tags=True)
        device.store("a", enc_a)

        res_a = alice.weighted_row_sum(device, "a", [0, 1], [1, 1])
        expected = (
            small_matrix[0].astype(np.int64) + small_matrix[1]
        ) % (1 << 32)
        assert np.array_equal(res_a.values.astype(np.int64), expected)

        # Bob cannot decrypt Alice's data (wrong pads) ...
        assert not np.array_equal(bob.decrypt_matrix(enc_a), small_matrix)
        # ... and Bob's verification of Alice's region fails.
        bob.versions.fresh("a/data")
        bob.versions.fresh("a/checksum")
        bob.versions.fresh("a/tag")
        from repro.errors import VerificationError

        with pytest.raises(VerificationError):
            bob.weighted_row_sum(device, "a", [0, 1], [1, 1])
