"""Embedding tables, SLS pooling and quantization schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    ColumnwiseQuantizer,
    EmbeddingTable,
    FixedPointCodec,
    RowwiseQuantizer,
    TablewiseQuantizer,
    sls,
    sls_weighted,
)


@pytest.fixture
def table():
    rng = np.random.default_rng(5)
    return EmbeddingTable(rng.normal(0, 1, size=(100, 16)).astype(np.float32))


class TestSls:
    def test_unweighted(self, table):
        out = sls(table, [1, 5, 9])
        assert np.allclose(out, table.values[[1, 5, 9]].sum(axis=0))

    def test_weighted(self, table):
        out = sls_weighted(table, [1, 5], [0.5, 2.0])
        assert np.allclose(out, 0.5 * table.values[1] + 2.0 * table.values[5])

    def test_length_mismatch(self, table):
        with pytest.raises(ConfigurationError):
            sls_weighted(table, [1, 2], [1.0])

    def test_geometry(self, table):
        assert table.n_rows == 100
        assert table.dim == 16
        assert table.row_bytes == 64

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            EmbeddingTable(np.zeros(8, dtype=np.float32))


class TestFixedPointCodec:
    def test_roundtrip_error_bounded(self):
        codec = FixedPointCodec(frac_bits=16)
        values = np.array([0.1, -2.5, 3.14159, 0.0])
        recovered = codec.dequantize(codec.quantize(values))
        assert np.max(np.abs(recovered - values)) <= 0.5 / codec.scale

    def test_out_of_range_rejected(self):
        codec = FixedPointCodec(frac_bits=16, total_bits=32)
        with pytest.raises(ConfigurationError):
            codec.quantize(np.array([1e6]))

    def test_invalid_frac_bits(self):
        with pytest.raises(ConfigurationError):
            FixedPointCodec(frac_bits=32, total_bits=32)

    def test_integer_exactness(self):
        codec = FixedPointCodec(frac_bits=8)
        values = np.array([1.0, 2.0, -3.0])
        assert np.array_equal(codec.dequantize(codec.quantize(values)), values)


class TestQuantizers:
    def setup_method(self):
        rng = np.random.default_rng(6)
        self.table = rng.normal(0, 1, size=(64, 8))

    def test_rowwise_roundtrip(self):
        rw = RowwiseQuantizer()
        q, scales, biases = rw.quantize(self.table)
        rec = rw.dequantize(q, scales, biases)
        per_row_span = self.table.max(axis=1) - self.table.min(axis=1)
        assert np.all(np.abs(rec - self.table) <= per_row_span[:, None] / 255 + 1e-12)

    def test_tablewise_roundtrip(self):
        tw = TablewiseQuantizer()
        q, scale, bias = tw.quantize(self.table)
        rec = tw.dequantize(q, scale, bias)
        span = self.table.max() - self.table.min()
        assert np.max(np.abs(rec - self.table)) <= span / 255 + 1e-12

    def test_columnwise_roundtrip(self):
        cw = ColumnwiseQuantizer()
        q, scales, biases = cw.quantize(self.table)
        rec = cw.dequantize(q, scales, biases)
        span = self.table.max(axis=0) - self.table.min(axis=0)
        assert np.all(np.abs(rec - self.table) <= span[None, :] / 255 + 1e-12)

    def test_columnwise_tighter_than_tablewise(self):
        """Per-column spans never exceed the global span, so column-wise
        error is at most table-wise error (the paper's motivation)."""
        tw_q, tw_s, tw_b = TablewiseQuantizer().quantize(self.table)
        cw_q, cw_s, cw_b = ColumnwiseQuantizer().quantize(self.table)
        tw_err = np.abs(
            TablewiseQuantizer().dequantize(tw_q, tw_s, tw_b) - self.table
        ).mean()
        cw_err = np.abs(
            ColumnwiseQuantizer().dequantize(cw_q, cw_s, cw_b) - self.table
        ).mean()
        assert cw_err <= tw_err * 1.01

    def test_tablewise_pooled_correction(self):
        """res = resq * scale + bias * sum(a) equals pooling the
        dequantized rows - the identity enabling SLS over ciphertext."""
        tw = TablewiseQuantizer()
        q, scale, bias = tw.quantize(self.table)
        rows = [3, 7, 11]
        weights = [1.0, 2.0, 1.0]
        pooled_q = (np.array(weights)[:, None] * q[rows].astype(np.float64)).sum(
            axis=0
        )
        corrected = tw.correct_pooled(pooled_q, scale, bias, weights)
        direct = (
            np.array(weights)[:, None] * tw.dequantize(q, scale, bias)[rows]
        ).sum(axis=0)
        assert np.allclose(corrected, direct)

    def test_columnwise_pooled_correction(self):
        cw = ColumnwiseQuantizer()
        q, scales, biases = cw.quantize(self.table)
        rows = [0, 1]
        weights = [3.0, 4.0]
        pooled_q = (np.array(weights)[:, None] * q[rows].astype(np.float64)).sum(
            axis=0
        )
        corrected = cw.correct_pooled(pooled_q, scales, biases, weights)
        direct = (
            np.array(weights)[:, None] * cw.dequantize(q, scales, biases)[rows]
        ).sum(axis=0)
        assert np.allclose(corrected, direct)

    def test_rowwise_pooled_needs_per_row_scale(self):
        rw = RowwiseQuantizer()
        q, scales, biases = rw.quantize(self.table)
        rows = [2, 9]
        weights = [1.0, 1.0]
        pooled = rw.pooled(q, scales, biases, rows, weights)
        direct = rw.dequantize(q, scales, biases)[rows].sum(axis=0)
        assert np.allclose(pooled, direct)

    def test_constant_table_handled(self):
        const = np.full((4, 4), 2.5)
        q, scale, bias = TablewiseQuantizer().quantize(const)
        assert np.allclose(TablewiseQuantizer().dequantize(q, scale, bias), const)
