"""Direct unit tests: Bank FSM and PacketTiming attribution."""

from __future__ import annotations

import pytest

from repro.memsim import DDR4Timing
from repro.memsim.bank import Bank
from repro.ndp import PacketTiming, SecNdpEngineModel, AesEngineModel

T = DDR4Timing()


class TestBank:
    def test_activate_sets_windows(self):
        bank = Bank(T)
        t = bank.activate(row=5, at=10)
        assert t == 10
        assert bank.open_row == 5
        assert bank.next_act == 10 + T.tRC
        assert bank.next_rdwr == 10 + T.tRCD
        assert bank.next_pre == 10 + T.tRAS

    def test_activate_respects_trc(self):
        bank = Bank(T)
        bank.activate(1, at=0)
        bank.precharge(at=T.tRAS)
        t = bank.activate(2, at=0)
        assert t >= T.tRC  # tRC from the first ACT binds over tRP

    def test_precharge_respects_tras(self):
        bank = Bank(T)
        bank.activate(1, at=0)
        t = bank.precharge(at=0)
        assert t == T.tRAS
        assert bank.open_row is None

    def test_read_extends_pre_window(self):
        bank = Bank(T)
        bank.activate(1, at=0)
        rd_cycle = T.tRAS  # a late read
        bank.note_read(rd_cycle)
        assert bank.next_pre >= rd_cycle + T.tCL + T.tBL

    def test_write_recovery(self):
        bank = Bank(T)
        bank.activate(1, at=0)
        bank.note_write(wr_cycle=20)
        assert bank.next_pre >= 20 + T.tCL + T.tBL + T.tWR


class TestPacketTiming:
    def test_secndp_is_max(self):
        t = PacketTiming(ndp_ns=100.0, otp_ns=80.0)
        assert t.secndp_ns == 100.0
        assert not t.decryption_bound
        t2 = PacketTiming(ndp_ns=100.0, otp_ns=130.0)
        assert t2.secndp_ns == 130.0
        assert t2.decryption_bound

    def test_tie_is_not_bound(self):
        assert not PacketTiming(100.0, 100.0).decryption_bound

    def test_aggregations(self):
        timings = [
            PacketTiming(100.0, 50.0),
            PacketTiming(100.0, 150.0),
            PacketTiming(100.0, 100.0),
        ]
        assert SecNdpEngineModel.total_ns(timings) == 100 + 150 + 100
        assert SecNdpEngineModel.total_ndp_only_ns(timings) == 300
        assert SecNdpEngineModel.bottleneck_fraction(timings) == pytest.approx(1 / 3)

    def test_empty_fraction(self):
        assert SecNdpEngineModel.bottleneck_fraction([]) == 0.0

    def test_engine_model_packet_timing(self):
        model = SecNdpEngineModel(AesEngineModel(n_engines=2))
        timing = model.packet_timing(ndp_ns=100.0, otp_blocks=400)
        assert timing.otp_ns == pytest.approx(400 * 1.15 / 2)
