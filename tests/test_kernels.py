"""Kernel-tier tests: policy, degradation, and cross-tier bit-identity.

The contract under test (DESIGN.md Sec. 14): the scalar
:class:`PrimeField` is the bit-exact oracle, the NumPy limb kernels the
always-available tier, and the compiled backends (numba / C) an
optional accelerator that must be bit-identical to both.  Policy errors
must fail fast with the allowed values; an absent backend must degrade
to NumPy with exactly one counter bump and zero warnings.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels, obs
from repro.cli import main as cli_main
from repro.crypto import limb_field as lf
from repro.crypto.aes import AES128, aes128_encrypt_blocks
from repro.crypto.prime_field import MERSENNE_127, PrimeField
from repro.errors import ConfigurationError

P = MERSENNE_127
FIELD = PrimeField(P)

NATIVE = kernels.native_available()
needs_native = pytest.mark.skipif(
    not NATIVE, reason="no compiled kernel backend on this host"
)
try:  # pragma: no cover - exercised on the with-numba CI leg
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False


@pytest.fixture(autouse=True)
def _clean_tier_state(monkeypatch):
    """Leave no tier policy behind: every test starts from env default."""
    monkeypatch.delenv(kernels.ENV_KERNEL_TIER, raising=False)
    kernels._reset_for_tests()
    yield
    kernels._reset_for_tests()


def _ints(limbs):
    out = lf.from_limbs(limbs)
    return out if isinstance(out, list) else [out]


# ---------------------------------------------------------------------------
# Policy validation (satellite: fail fast, never silently fall back).
# ---------------------------------------------------------------------------


class TestTierPolicy:
    def test_default_is_auto(self):
        assert kernels.policy() == "auto"
        assert kernels.active_tier() in ("native", "numpy")

    @pytest.mark.parametrize("tier", kernels.TIERS)
    def test_all_documented_tiers_accepted(self, tier):
        if tier == "native" and not NATIVE:
            with pytest.raises(ConfigurationError):
                kernels.set_tier(tier)
        else:
            kernels.set_tier(tier)
            assert kernels.policy() == tier

    def test_value_normalization(self):
        assert kernels.resolve_policy("  NumPy ") == "numpy"
        assert kernels.resolve_policy("") == "auto"

    @pytest.mark.parametrize("bad", ["bogus", "numba", "gpu", "0", "native!"])
    def test_invalid_value_raises_with_allowed_values(self, bad):
        with pytest.raises(ConfigurationError) as exc:
            kernels.set_tier(bad)
        msg = str(exc.value)
        assert bad in msg
        for tier in kernels.TIERS:
            assert tier in msg

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_KERNEL_TIER, "warp-speed")
        kernels._reset_for_tests()
        with pytest.raises(ConfigurationError) as exc:
            kernels.active_tier()
        assert kernels.ENV_KERNEL_TIER in str(exc.value)

    def test_env_value_resolves(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_KERNEL_TIER, "numpy")
        kernels._reset_for_tests()
        assert kernels.active_tier() == "numpy"
        assert kernels.active_native() is None

    def test_use_tier_restores(self):
        before = kernels.active_tier()
        with kernels.use_tier("numpy") as tier:
            assert tier == "numpy"
            assert kernels.active_native() is None
        assert kernels.active_tier() == before

    def test_cli_flag_rejected_with_exit_2(self, capsys):
        assert cli_main(["table3", "--kernel-tier", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "--kernel-tier" in err
        for tier in kernels.TIERS:
            assert tier in err

    def test_cli_env_rejected_with_exit_2(self, monkeypatch, capsys):
        monkeypatch.setenv(kernels.ENV_KERNEL_TIER, "nope")
        kernels._reset_for_tests()
        assert cli_main(["table3", "--scale", "smoke"]) == 2
        assert kernels.ENV_KERNEL_TIER in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Graceful degradation (satellite: single counter bump, no warning spam).
# ---------------------------------------------------------------------------


class TestDegradation:
    def test_absent_backend_degrades_to_numpy_with_one_counter_bump(
        self, monkeypatch
    ):
        monkeypatch.setattr(
            kernels, "_BACKEND_MODULES", ("_definitely_not_a_backend",)
        )
        kernels._reset_for_tests()
        obs.reset()
        obs.enable()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert kernels.set_tier("auto") == "numpy"
                # Repeated resolution must not re-probe or re-count.
                assert kernels.active_tier() == "numpy"
                assert not kernels.native_available()
                assert kernels.backend_name() is None
            counters = obs.snapshot()["counters"]
            assert counters.get("kernel.native_unavailable") == 1
            assert "not_a_backend" in kernels.unavailable_reason()
        finally:
            obs.disable()
            obs.reset()

    def test_native_forced_but_unavailable_raises(self, monkeypatch):
        monkeypatch.setattr(
            kernels, "_BACKEND_MODULES", ("_definitely_not_a_backend",)
        )
        kernels._reset_for_tests()
        with pytest.raises(ConfigurationError) as exc:
            kernels.set_tier("native")
        msg = str(exc.value)
        assert "native" in msg and "numpy" in msg

    def test_use_tier_restores_when_set_tier_raises(self, monkeypatch):
        # Regression: a failing use_tier("native") must not leave the
        # process pinned to the unsatisfiable policy.
        monkeypatch.setattr(
            kernels, "_BACKEND_MODULES", ("_definitely_not_a_backend",)
        )
        kernels._reset_for_tests()
        before = kernels.set_tier("numpy")
        with pytest.raises(ConfigurationError):
            with kernels.use_tier("native"):
                pytest.fail("body must not run")
        assert kernels.active_tier() == before
        assert kernels.policy() == "numpy"

    def test_numpy_and_scalar_never_probe(self, monkeypatch):
        monkeypatch.setattr(
            kernels, "_BACKEND_MODULES", ("_definitely_not_a_backend",)
        )
        kernels._reset_for_tests()
        obs.reset()
        obs.enable()
        try:
            kernels.set_tier("numpy")
            kernels.set_tier("scalar")
            assert "kernel.native_unavailable" not in obs.snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()


# ---------------------------------------------------------------------------
# Warmup and telemetry.
# ---------------------------------------------------------------------------


class TestWarmup:
    def test_warmup_publishes_gauges(self):
        obs.reset()
        obs.enable()
        try:
            ns = kernels.warmup()
            assert ns >= 0 and kernels.last_warmup_ns() == ns
            gauges = obs.snapshot()["gauges"]
            assert gauges["kernel.jit_warmup_ns"] == ns
            assert gauges["kernel.tier"] == kernels.tier_code()
        finally:
            obs.disable()
            obs.reset()

    def test_warmup_disabled_obs_is_silent(self):
        obs.reset()
        assert not obs.enabled()
        assert kernels.warmup() >= 0
        assert obs.snapshot()["gauges"] == {}

    def test_tier_codes_are_stable(self):
        assert kernels.tier_code("scalar") == 0
        assert kernels.tier_code("numpy") == 1
        assert kernels.tier_code("native") == 2


# ---------------------------------------------------------------------------
# Scalar tier: every dispatch site must route to the PrimeField oracle.
# ---------------------------------------------------------------------------


class TestScalarTier:
    def test_supports_field_gated_off(self):
        kernels.set_tier("scalar")
        assert not lf.supports_field(FIELD)
        kernels.set_tier("numpy")
        assert lf.supports_field(FIELD)

    def test_field_dot_falls_back_to_oracle(self):
        ws = [3, 2**40, 7]
        vs = [P - 1, 5, 2**100]
        want = FIELD.dot(ws, vs)
        kernels.set_tier("scalar")
        assert lf.field_dot(FIELD, ws, vs) == want
        kernels.set_tier("numpy")
        assert lf.field_dot(FIELD, ws, vs) == want


# ---------------------------------------------------------------------------
# Cross-tier bit-identity: scalar oracle vs NumPy vs native.
# ---------------------------------------------------------------------------

field_elements = st.integers(min_value=0, max_value=P - 1)
ring_residues = st.integers(min_value=0, max_value=(1 << 64) - 1)


def _both_tiers(fn):
    """Run fn under the numpy and native tiers; return both results."""
    with kernels.use_tier("numpy"):
        a = fn()
    with kernels.use_tier("native"):
        b = fn()
    return a, b


@needs_native
class TestCrossTierBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(field_elements, min_size=1, max_size=8), field_elements)
    def test_mul(self, values, scalar):
        a = lf.to_limbs(values)
        b = lf.to_limbs(scalar)
        np_res, nat_res = _both_tiers(lambda: lf.mul(a, b))
        np.testing.assert_array_equal(np_res, nat_res)
        assert _ints(nat_res) == [FIELD.mul(v, scalar) for v in values]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=(1 << 63) - 1),
                min_size=2,
                max_size=6,
            ),
            min_size=1,
            max_size=6,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1)
    )
    def test_fold(self, rows):
        cols = np.array(rows, dtype=np.uint64)
        np_res, nat_res = _both_tiers(lambda: lf.fold(cols))
        np.testing.assert_array_equal(np_res, nat_res)
        assert _ints(nat_res) == [
            sum(v << (32 * k) for k, v in enumerate(row)) % P for row in rows
        ]

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=9),
        st.sampled_from([255, (1 << 32) - 1, (1 << 64) - 1]),
        st.integers(min_value=0),
    )
    def test_dot(self, n, m, c_max, seed):
        rng = np.random.default_rng(seed % 2**32)
        coeffs = rng.integers(0, c_max, size=(n, m), dtype=np.uint64, endpoint=True)
        w_ints = [int(x) for x in rng.integers(0, 2**63, size=m)]
        w_ints = [(w << 64 | w) % P for w in w_ints]  # exercise high limbs
        wl = lf.to_limbs(w_ints)
        np_res, nat_res = _both_tiers(lambda: lf.dot(coeffs, wl))
        np.testing.assert_array_equal(np_res, nat_res)
        assert _ints(nat_res) == [
            sum(int(c) * w for c, w in zip(row, w_ints)) % P for row in coeffs
        ]

    def test_dot_small_path_boundary(self):
        # Regression: m=1 coefficients at/just above 2^32 sit exactly in
        # the small-path selection window.  The C backend's u32 cast used
        # to truncate 2^32 -> 0, and the numba backend's wrapping-u64
        # carry-normalize could overflow on column sums >= 2^63; both
        # must now route these to an exact path.
        for w in (1, 3, P - 1):
            wl = lf.to_limbs([w])
            for c in ((1 << 32) - 1, 1 << 32, (1 << 32) + 1, (1 << 33) - 1):
                coeffs = np.array([[c]], dtype=np.uint64)
                np_res, nat_res = _both_tiers(lambda: lf.dot(coeffs, wl))
                np.testing.assert_array_equal(np_res, nat_res)
                assert _ints(nat_res) == [(c * w) % P]

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=6),
        field_elements,
        st.integers(min_value=0),
    )
    def test_horner_sweep(self, n, m, s, seed):
        rng = np.random.default_rng(seed % 2**32)
        matrix = rng.integers(0, 2**64, size=(n, m), dtype=np.uint64)
        sl = lf.to_limbs(s)
        np_res, nat_res = _both_tiers(lambda: lf.horner(matrix, sl))
        np.testing.assert_array_equal(np_res, nat_res)
        want = []
        for row in matrix:
            acc = 0
            for v in row:
                acc = (acc * s + int(v)) % P
            want.append(acc)
        assert _ints(nat_res) == want

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=16, max_size=16), st.integers(min_value=0))
    def test_aes_blocks(self, key, seed):
        rng = np.random.default_rng(seed % 2**32)
        blocks = rng.integers(0, 256, size=(9, 16), dtype=np.uint8)
        np_res, nat_res = _both_tiers(lambda: aes128_encrypt_blocks(key, blocks))
        np.testing.assert_array_equal(np_res, nat_res)
        oracle = AES128(key)
        assert nat_res[3].tobytes() == oracle.encrypt_block(blocks[3].tobytes())

    def test_aes_fips_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        pt = np.frombuffer(
            bytes.fromhex("00112233445566778899aabbccddeeff"), dtype=np.uint8
        ).reshape(1, 16)
        with kernels.use_tier("native"):
            ct = aes128_encrypt_blocks(key, pt)
        assert ct.tobytes().hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_weighted_row_tags_and_checksum_paths(self):
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 2**32, size=(50, 12), dtype=np.uint64)
        weights = lf.power_weights(FIELD, 123456789, 12)

        def tags():
            return lf.weighted_row_tags(matrix, weights)

        np_res, nat_res = _both_tiers(tags)
        assert np_res == nat_res

    def test_native_tier_counts_dots(self):
        obs.reset()
        obs.enable()
        try:
            with kernels.use_tier("native"):
                lf.dot(
                    np.ones((3, 4), dtype=np.uint64), lf.to_limbs([1, 2, 3, 4])
                )
            assert obs.snapshot()["counters"].get("limb.dot.native", 0) >= 1
        finally:
            obs.disable()
            obs.reset()


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaBackend:  # pragma: no cover - with-numba CI leg only
    def test_numba_backend_loads_and_matches(self):
        from repro.kernels import _numba

        rng = np.random.default_rng(3)
        coeffs = rng.integers(0, 2**64, size=(8, 5), dtype=np.uint64)
        wl = lf.to_limbs([int(x) % P for x in rng.integers(0, 2**63, size=5)])
        with kernels.use_tier("numpy"):
            want = lf.dot(coeffs, wl)
        np.testing.assert_array_equal(_numba.dot(coeffs, wl), want)
        blocks = rng.integers(0, 256, size=(4, 16), dtype=np.uint8)
        with kernels.use_tier("numpy"):
            want = aes128_encrypt_blocks(bytes(range(16)), blocks)
        np.testing.assert_array_equal(
            _numba.aes_blocks(bytes(range(16)), blocks), want
        )

    def test_numba_dot_small_path_carry_boundary(self):
        # Regression: m=1, coeff=2^32+1, weight=p-1 used to select the
        # small path with column sums up to 2^64-1, overflowing
        # _canon_into's wrapping-u64 carry-normalize (contract: < 2^63).
        from repro.kernels import _numba

        c = (1 << 32) + 1
        wl = lf.to_limbs([P - 1])
        got = _numba.dot(np.array([[c]], dtype=np.uint64), wl)
        assert _ints(got) == [(c * (P - 1)) % P]


# ---------------------------------------------------------------------------
# End-to-end: the serving stack is bit-identical across tiers, including
# a ParallelSlsEngine pool with the native tier broadcast to workers.
# ---------------------------------------------------------------------------


def _build_store(seed=0):
    from repro.core.params import SecNDPParams
    from repro.core.protocol import SecNDPProcessor, UntrustedNdpDevice
    from repro.workloads import SecureEmbeddingStore

    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(bytes(range(16)), params)
    device = UntrustedNdpDevice(params)
    store = SecureEmbeddingStore(processor, device, verify=True)
    rng = np.random.default_rng(seed)
    store.add_table("emb", rng.normal(0, 1, size=(48, 8)))
    return store


class TestEndToEndTiers:
    def test_store_results_identical_across_tiers(self):
        rng = np.random.default_rng(11)
        batch = [[int(r) for r in rng.integers(0, 48, size=6)] for _ in range(4)]
        results = {}
        tiers = ["scalar", "numpy"] + (["native"] if NATIVE else [])
        for tier in tiers:
            kernels.set_tier(tier)
            results[tier] = _build_store().sls_many("emb", batch)
        for tier in tiers[1:]:
            np.testing.assert_array_equal(results[tiers[0]], results[tier])

    @needs_native
    def test_parallel_engine_native_bit_identity(self):
        from repro.parallel import ParallelSlsEngine
        from repro.parallel.shm import shared_memory_available

        if not shared_memory_available():
            pytest.skip("shared memory unavailable")
        rng = np.random.default_rng(13)
        batch = [[int(r) for r in rng.integers(0, 48, size=7)] for _ in range(5)]
        with kernels.use_tier("numpy"):
            expected = _build_store().sls_many("emb", batch)
        kernels.set_tier("native")
        store = _build_store()
        with ParallelSlsEngine(store, workers=2) as engine:
            if engine.workers == 0:
                pytest.skip("pool fell back to in-process serving")
            got = engine.sls_many("emb", batch)
        np.testing.assert_array_equal(expected, got)
