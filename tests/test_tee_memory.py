"""Conventional TEE memory: protection works; computation over it doesn't."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.tee_memory import LINE_BYTES_TEE, TeeProtectedMemory
from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import ConfigurationError, VerificationError

KEY = bytes(range(16))


@pytest.fixture
def memory():
    mem = TeeProtectedMemory(KEY, n_lines=16)
    for line in range(8):
        mem.write(line, bytes([line]) * LINE_BYTES_TEE)
    return mem


class TestProtection:
    def test_roundtrip(self, memory):
        assert memory.read(3) == bytes([3]) * 64

    def test_rewrite_bumps_version(self, memory):
        memory.write(3, b"\xaa" * 64)
        assert memory.read(3) == b"\xaa" * 64

    def test_ciphertext_not_plaintext(self, memory):
        assert memory.raw_ciphertext(1) != bytes([1]) * 64

    def test_same_data_different_lines_different_ciphertext(self, memory):
        memory.write(10, b"\x55" * 64)
        memory.write(11, b"\x55" * 64)
        assert memory.raw_ciphertext(10) != memory.raw_ciphertext(11)

    def test_same_data_rewrite_changes_ciphertext(self, memory):
        memory.write(10, b"\x55" * 64)
        first = memory.raw_ciphertext(10)
        memory.write(10, b"\x55" * 64)  # same plaintext, fresh version
        assert memory.raw_ciphertext(10) != first

    def test_tamper_detected(self, memory):
        memory.tamper_ciphertext(2, 17, 0x01)
        with pytest.raises(VerificationError):
            memory.read(2)

    def test_replay_detected(self, memory):
        stale = memory.snapshot_line(4)
        memory.write(4, b"\xff" * 64)       # legitimate update
        memory.replay_line(4, *stale)        # attacker restores old pair
        with pytest.raises(VerificationError):
            memory.read(4)

    def test_unwritten_line_rejected(self, memory):
        with pytest.raises(ConfigurationError):
            memory.read(15)

    def test_bad_sizes_rejected(self, memory):
        with pytest.raises(ConfigurationError):
            memory.write(0, b"short")
        with pytest.raises(ConfigurationError):
            memory.write(99, bytes(64))


class TestWhyNdpNeedsArithmeticEncryption:
    """The paper's motivating contrast, executed."""

    def test_xor_ciphertext_sum_is_garbage(self):
        """Summing XOR-counter-mode ciphertext lines and decrypting the
        sum does NOT give the sum of plaintexts."""
        mem = TeeProtectedMemory(KEY, n_lines=4)
        a = np.arange(16, dtype=np.uint32)
        b = np.arange(16, dtype=np.uint32) * 3 + 1
        mem.write(0, a.tobytes())
        mem.write(1, b.tobytes())
        ct_sum = (
            np.frombuffer(mem.raw_ciphertext(0), dtype=np.uint32)
            + np.frombuffer(mem.raw_ciphertext(1), dtype=np.uint32)
        ).astype(np.uint32)
        # There is no pad the processor could derive that turns ct_sum
        # into a+b: even applying both lines' pads fails.
        pad0 = np.frombuffer(mem._pad(0, 1), dtype=np.uint32)
        pad1 = np.frombuffer(mem._pad(1, 1), dtype=np.uint32)
        attempt = (ct_sum ^ pad0 ^ pad1).astype(np.uint32)
        assert not np.array_equal(attempt, (a + b).astype(np.uint32))

    def test_arithmetic_ciphertext_sum_decrypts_correctly(self):
        """The same experiment under SecNDP's arithmetic encryption works
        - this is exactly Theorem A.1."""
        params = SecNDPParams(element_bits=32)
        proc = SecNDPProcessor(KEY, params)
        dev = UntrustedNdpDevice(params)
        a = np.arange(16, dtype=np.uint32)
        b = np.arange(16, dtype=np.uint32) * 3 + 1
        enc = proc.encrypt_matrix(np.stack([a, b]), 0x1000, "ab", with_tags=False)
        dev.store("ab", enc)
        res = proc.weighted_row_sum(dev, "ab", [0, 1], [1, 1], verify=False)
        assert np.array_equal(res.values, (a + b).astype(np.uint32))
