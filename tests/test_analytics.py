"""Medical analytics: secure sums, Welch t-test, end-to-end equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import ConfigurationError, VerificationError
from repro.workloads import (
    SecureGeneDatabase,
    gene_expression,
    welch_t_test,
)

KEY = bytes(range(16))


class TestWelchTTest:
    def test_identical_groups_t_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.normal(5, 1, size=500)
        b = rng.normal(5, 1, size=500)
        res = welch_t_test(
            a.sum(), (a**2).sum(), len(a), b.sum(), (b**2).sum(), len(b)
        )
        assert abs(res.t_statistic) < 3
        assert not res.significant_at_3sigma

    def test_shifted_groups_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(7, 1, size=500)
        b = rng.normal(5, 1, size=500)
        res = welch_t_test(
            a.sum(), (a**2).sum(), len(a), b.sum(), (b**2).sum(), len(b)
        )
        assert res.t_statistic > 10
        assert res.significant_at_3sigma
        assert res.mean_case > res.mean_control

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(2)
        a = rng.normal(5.2, 1.3, size=300)
        b = rng.normal(5.0, 0.9, size=400)
        ours = welch_t_test(
            a.sum(), (a**2).sum(), len(a), b.sum(), (b**2).sum(), len(b)
        )
        ref = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.t_statistic == pytest.approx(ref.statistic, rel=1e-9)

    def test_degenerate_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            welch_t_test(1.0, 1.0, 1, 2.0, 4.0, 10)

    def test_zero_variance(self):
        res = welch_t_test(10.0, 20.0, 5, 10.0, 20.0, 5)  # constant groups
        assert res.t_statistic == 0.0


@pytest.fixture(scope="module")
def secure_db():
    data = gene_expression(128, 32, n_disease_genes=4, effect_size=2.5, seed=3)
    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(KEY, params)
    device = UntrustedNdpDevice(params)
    db = SecureGeneDatabase(data, processor, device, verify=True)
    return data, db, device


class TestSecureGeneDatabase:
    def test_group_sum_matches_plaintext(self, secure_db):
        data, db, _ = secure_db
        ids = [0, 5, 9, 40]
        secure = db.group_sum(ids)
        plain = data.expression[ids].sum(axis=0)
        # Fixed-point at 8 fractional bits: error <= n * 2^-9 per element.
        assert np.max(np.abs(secure - plain)) < len(ids) * 0.01

    def test_group_sum_squares(self, secure_db):
        data, db, _ = secure_db
        ids = list(range(16))
        secure = db.group_sum_squares(ids)
        plain = (data.expression[ids] ** 2).sum(axis=0)
        assert np.max(np.abs(secure - plain) / np.maximum(plain, 1)) < 0.01

    def test_t_test_finds_disease_gene(self, secure_db):
        data, db, _ = secure_db
        disease = int(data.disease_genes[0])
        res = db.t_test(disease)
        assert res.significant_at_3sigma
        assert res.mean_case > res.mean_control

    def test_t_test_rejects_null_gene(self, secure_db):
        data, db, _ = secure_db
        null_gene = next(
            g for g in range(data.n_genes) if g not in set(data.disease_genes)
        )
        res = db.t_test(null_gene)
        assert abs(res.t_statistic) < 4  # generous bound on a 32-gene panel

    def test_t_test_matches_plaintext(self, secure_db):
        data, db, _ = secure_db
        gene = int(data.disease_genes[1])
        secure = db.t_test(gene)
        case = data.expression[data.is_case, gene]
        ctrl = data.expression[~data.is_case, gene]
        plain = welch_t_test(
            case.sum(), (case**2).sum(), len(case),
            ctrl.sum(), (ctrl**2).sum(), len(ctrl),
        )
        assert secure.t_statistic == pytest.approx(plain.t_statistic, rel=0.05)

    def test_tampering_detected(self, secure_db):
        _, db, device = secure_db
        device.tamper_results(7)
        try:
            with pytest.raises(VerificationError):
                db.group_sum([0, 1, 2])
        finally:
            device.behave_honestly()
