"""Property-based end-to-end protocol tests across parameterisations.

These exercise Theorems A.1/A.2 as executable properties: for *any*
element width, matrix, index multiset and non-negative weights within the
overflow budget, the reconstructed result equals the integer weighted sum
and verification passes; any single-bit ciphertext flip in a queried row
fails verification.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import VerificationError

KEY = bytes(range(16))

# Cache processors per width: key schedule + params are reusable.
_PROCESSORS = {}


def processor_for(width: int) -> SecNDPProcessor:
    if width not in _PROCESSORS:
        _PROCESSORS[width] = SecNDPProcessor(KEY, SecNDPParams(element_bits=width))
    return _PROCESSORS[width]


@st.composite
def protocol_case(draw):
    width = draw(st.sampled_from([8, 16, 32]))
    n_rows = draw(st.integers(2, 12))
    elems_per_block = 128 // width
    m = elems_per_block * draw(st.integers(1, 3))
    pf = draw(st.integers(1, 6))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=pf, max_size=pf)
    )
    # Budget values/weights so sum stays below 2^width (Thm. A.2 premise):
    # pf * max_w * max_v < 2^width, with max_w <= 3.
    max_v = max(((1 << width) - 1) // (6 * 3), 1)
    weights = draw(st.lists(st.integers(0, 3), min_size=pf, max_size=pf))
    seed = draw(st.integers(0, 2**16))
    values = np.random.default_rng(seed).integers(
        0, max_v + 1, size=(n_rows, m), dtype=np.int64
    )
    version_salt = draw(st.integers(0, 1000))
    return width, values, rows, weights, version_salt


class TestCorrectnessProperty:
    @given(protocol_case())
    @settings(max_examples=40, deadline=None)
    def test_weighted_sum_and_verification(self, case):
        width, values, rows, weights, salt = case
        proc = processor_for(width)
        device = UntrustedNdpDevice(proc.params)
        ring = proc.ring
        enc = proc.encrypt_matrix(
            ring.encode(values), 0x1000, "prop", with_tags=True  # one region, fresh versions per example
        )
        device.store("m", enc)
        res = proc.weighted_row_sum(device, "m", rows, weights, verify=True)
        expected = (
            np.asarray(weights, dtype=np.int64)[:, None] * values[rows]
        ).sum(axis=0) % (1 << width)
        assert np.array_equal(res.values.astype(np.int64), expected)

    @given(protocol_case(), st.integers(1, 63))
    @settings(max_examples=25, deadline=None)
    def test_any_corruption_in_queried_row_detected(self, case, delta):
        """Soundness caveat baked into the construction: the result only
        changes by ``(sum of the row's weights) * delta mod 2^w_e``, so the
        test dedupes rows and bounds ``w * delta < 2^8`` - otherwise the
        corruption can *cancel*, leaving a correct result that rightly
        verifies."""
        width, values, rows, weights, salt = case
        rows = sorted(set(rows))                      # each row at most once
        weights = [max(w, 1) for w in weights[: len(rows)]]  # w in [1, 3]
        proc = processor_for(width)
        device = UntrustedNdpDevice(proc.params)
        enc = proc.encrypt_matrix(
            proc.ring.encode(values), 0x1000, "propc", with_tags=True
        )
        device.store("m", enc)
        # w * delta <= 3 * 63 = 189 < 2^8 <= 2^width: never cancels.
        device.corrupt_stored_ciphertext("m", rows[0], delta % values.shape[1], delta)
        with pytest.raises(VerificationError):
            proc.weighted_row_sum(device, "m", rows, weights, verify=True)


class TestDeterminismProperty:
    @given(protocol_case())
    @settings(max_examples=15, deadline=None)
    def test_idempotent_queries(self, case):
        width, values, rows, weights, salt = case
        proc = processor_for(width)
        device = UntrustedNdpDevice(proc.params)
        enc = proc.encrypt_matrix(
            proc.ring.encode(values), 0x2000, "propd", with_tags=True
        )
        device.store("m", enc)
        a = proc.weighted_row_sum(device, "m", rows, weights).values
        b = proc.weighted_row_sum(device, "m", rows, weights).values
        assert np.array_equal(a, b)
