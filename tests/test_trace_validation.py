"""Trace-based validation: the scheduler never violates a JEDEC constraint.

The controller's own bookkeeping is re-checked by an *independent*
validator over the recorded command stream - on directed patterns, on
random request soups (hypothesis), and on a real NDP workload replay.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    DDR4Timing,
    DramCommand,
    DramGeometry,
    MemoryController,
    TraceEntry,
    validate_trace,
)
from repro.memsim.address import DecodedAddress

T = DDR4Timing()


def run_requests(requests, use_channel_bus=True, enable_refresh=True):
    ctrl = MemoryController(
        T, DramGeometry(), enable_refresh=enable_refresh, enable_trace=True
    )
    for rank, bg, bank, row, col, is_write in requests:
        ctrl.access(
            DecodedAddress(0, rank, bg, bank, row, col),
            at=0,
            is_write=is_write,
            use_channel_bus=use_channel_bus,
        )
    return ctrl


class TestDirectedPatterns:
    def test_same_bank_row_conflicts_clean(self):
        reqs = [(0, 0, 0, row, 0, False) for row in range(20)]
        ctrl = run_requests(reqs)
        assert validate_trace(ctrl.trace, T) == []

    def test_bank_interleaved_stream_clean(self):
        reqs = [
            (0, i % 4, (i // 4) % 4, i, 0, False) for i in range(64)
        ]
        ctrl = run_requests(reqs)
        assert validate_trace(ctrl.trace, T) == []

    def test_row_hit_stream_clean(self):
        reqs = [(0, 0, 0, 7, col, False) for col in range(32)]
        ctrl = run_requests(reqs)
        assert validate_trace(ctrl.trace, T) == []
        # one ACT, 32 RDs
        acts = [e for e in ctrl.trace if e.command is DramCommand.ACT]
        assert len(acts) == 1

    def test_mixed_read_write_clean(self):
        reqs = [(0, i % 4, 0, i % 3, 0, i % 2 == 0) for i in range(40)]
        ctrl = run_requests(reqs)
        assert validate_trace(ctrl.trace, T) == []

    def test_multi_rank_clean(self):
        reqs = [(i % 8, i % 4, 0, i, 0, False) for i in range(64)]
        ctrl = run_requests(reqs, use_channel_bus=False)
        assert validate_trace(ctrl.trace, T) == []


class TestValidatorItself:
    """The validator must actually catch violations (not vacuously pass)."""

    def _entry(self, cycle, cmd, bg=0, bank=0, row=0):
        return TraceEntry(cycle, cmd, rank=0, bank_group=bg, bank=bank, row=row)

    def test_detects_trc_violation(self):
        trace = [
            self._entry(0, DramCommand.ACT),
            self._entry(T.tRC - 1, DramCommand.ACT),
        ]
        violations = validate_trace(trace, T)
        assert any(v.constraint == "tRC" for v in violations)

    def test_detects_trcd_violation(self):
        trace = [
            self._entry(0, DramCommand.ACT),
            self._entry(T.tRCD - 1, DramCommand.RD),
        ]
        assert any(v.constraint == "tRCD" for v in validate_trace(trace, T))

    def test_detects_tccd_violation(self):
        trace = [
            self._entry(100, DramCommand.RD),
            self._entry(100 + T.tCCD_L - 1, DramCommand.RD),
        ]
        assert any("tCCD" in v.constraint for v in validate_trace(trace, T))

    def test_detects_tfaw_violation(self):
        trace = [
            self._entry(i * T.tRRD_S, DramCommand.ACT, bg=i % 4, bank=i // 4)
            for i in range(5)
        ]
        # 5 ACTs within 4*tRRD_S = 16 < tFAW = 26.
        assert any(v.constraint == "tFAW" for v in validate_trace(trace, T))

    def test_detects_tras_violation(self):
        trace = [
            self._entry(0, DramCommand.ACT),
            self._entry(T.tRAS - 1, DramCommand.PRE),
        ]
        assert any(v.constraint == "tRAS" for v in validate_trace(trace, T))

    def test_clean_trace_reports_nothing(self):
        trace = [
            self._entry(0, DramCommand.ACT),
            self._entry(T.tRCD, DramCommand.RD),
        ]
        assert validate_trace(trace, T) == []


class TestRandomisedSoup:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),    # rank
                st.integers(0, 3),    # bank group
                st.integers(0, 3),    # bank
                st.integers(0, 30),   # row
                st.integers(0, 127),  # column
                st.booleans(),        # write?
            ),
            min_size=1,
            max_size=120,
        ),
        st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_request_soup_never_violates(self, requests, use_bus):
        ctrl = run_requests(requests, use_channel_bus=use_bus)
        violations = validate_trace(ctrl.trace, T)
        assert violations == [], "\n".join(str(v) for v in violations)


class TestRealWorkloadReplay:
    def test_ndp_packet_trace_clean(self):
        """Replay a real SLS packet stream with tracing and validate."""
        rng = np.random.default_rng(0)
        ctrl = MemoryController(T, DramGeometry(), enable_trace=True)
        from repro.memsim.address import RankAddressMapper

        mapper = RankAddressMapper(DramGeometry())
        for _ in range(600):
            rank = int(rng.integers(0, 8))
            row_addr = int(rng.integers(0, 50_000)) * 128
            for line in (row_addr, row_addr + 64):
                ctrl.access(
                    mapper.decode(rank, line), at=0, use_channel_bus=False
                )
        violations = validate_trace(ctrl.trace, T)
        assert violations == [], "\n".join(str(v) for v in violations)
