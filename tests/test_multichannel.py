"""Multi-channel DRAM scaling (beyond the paper's single-channel Table II)."""

from __future__ import annotations

import pytest

from repro.memsim import DDR4_2400, DramGeometry, DramSystem


def stream(channels: int, n_lines: int = 2048) -> tuple:
    system = DramSystem(
        geometry=DramGeometry(channels=channels), identity_pages=True
    )
    end = system.stream_logical([i * 64 for i in range(n_lines)])
    return system, end


class TestChannelScaling:
    def test_two_channels_roughly_double_bandwidth(self):
        _, one = stream(1)
        _, two = stream(2)
        assert 1.7 < one / two < 2.6

    def test_four_channels_scale_further(self):
        _, two = stream(2)
        _, four = stream(4)
        assert four < two

    def test_counters_aggregate_across_channels(self):
        system, _ = stream(2)
        assert system.counters.reads == 2048
        assert system.counters.bus_bursts == 2048

    def test_consecutive_lines_alternate_channels(self):
        system = DramSystem(geometry=DramGeometry(channels=2), identity_pages=True)
        a = system.mapper.decode(0)
        b = system.mapper.decode(64)
        assert {a.channel, b.channel} == {0, 1}

    def test_elapsed_ns_covers_all_channels(self):
        system, end = stream(2)
        assert system.elapsed_ns() == pytest.approx(DDR4_2400.cycles_to_ns(end))

    def test_single_channel_counters_alias(self):
        system, _ = stream(1)
        assert system.counters is system.controller.counters

    def test_energy_includes_all_channels(self):
        one_sys, _ = stream(1)
        two_sys, _ = stream(2)
        # Same traffic -> comparable core+IO energy regardless of channels.
        e1 = one_sys.energy_nj()
        e2 = two_sys.energy_nj()
        assert e2["io_nj"] == pytest.approx(e1["io_nj"])
