"""The shared-memory parallel serving engine and ``parallel_map``.

The load-bearing property (DESIGN.md Sec. 10): a ``ParallelSlsEngine``
must be *bit-identical* to the in-process ``SecureEmbeddingStore`` path
for every worker count, quantization mode and verification setting —
ring/field partial sums recombine exactly, so sharding is purely a
scheduling decision.  Alongside it: validation and tamper detection
must survive the pool hop, and worker-side observability must drain
back into the parent registry.

Pools are spawn-based and cost ~1 s each to start; tests share
module-scoped engines where possible and keep tables tiny.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.crypto.otp import OtpCacheInfo, merge_cache_info
from repro.errors import ConfigurationError, VerificationError
from repro.obs.metrics import MetricsRegistry
from repro.parallel import ParallelSlsEngine, parallel_map, resolve_workers
from repro.parallel.pmap import ENV_WORKERS
from repro.parallel.shm import pack_tags, shared_memory_available, unpack_tags
from repro.workloads import SecureEmbeddingStore

KEY = bytes(range(16))

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def _build_store(quantization="table", verify=True, n_rows=64, dim=16, seed=0):
    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(KEY, params)
    device = UntrustedNdpDevice(params)
    store = SecureEmbeddingStore(
        processor, device, quantization=quantization, verify=verify
    )
    rng = np.random.default_rng(seed)
    store.add_table("emb", rng.normal(0, 1, size=(n_rows, dim)))
    return store


def _batch(rng, n_rows, pf=12, n_queries=5):
    return [
        [int(r) for r in rng.integers(0, n_rows, size=pf)] for _ in range(n_queries)
    ]


# -- bit-identity across modes and worker counts -------------------------------


class TestEngineEquivalence:
    @pytest.mark.parametrize("quantization", ["table", "column"])
    @pytest.mark.parametrize("verify", [True, False])
    @pytest.mark.parametrize("workers", [0, 2])
    def test_bit_identical_to_store(self, quantization, verify, workers):
        store = _build_store(quantization=quantization, verify=verify)
        rng = np.random.default_rng(1)
        batch_rows = _batch(rng, 64)
        batch_weights = [
            [int(w) for w in rng.integers(1, 4, size=len(q))] for q in batch_rows
        ]
        expected = store.sls_many("emb", batch_rows, batch_weights)
        with ParallelSlsEngine(store, workers=workers) as engine:
            got = engine.sls_many("emb", batch_rows, batch_weights)
            again = engine.sls_many("emb", batch_rows, batch_weights)
        assert np.array_equal(expected, got)
        assert np.array_equal(got, again)  # deterministic across calls

    def test_single_worker_matches(self):
        store = _build_store()
        batch_rows = _batch(np.random.default_rng(2), 64)
        expected = store.sls_many("emb", batch_rows)
        with ParallelSlsEngine(store, workers=1) as engine:
            assert np.array_equal(expected, engine.sls_many("emb", batch_rows))

    def test_default_weights_and_empty_queries(self):
        store = _build_store()
        batch_rows = [[0, 1, 2], [], [63, 63, 5]]
        expected = store.sls_many("emb", batch_rows)
        with ParallelSlsEngine(store, workers=2) as engine:
            assert np.array_equal(expected, engine.sls_many("emb", batch_rows))

    def test_all_empty_batch_delegates(self):
        store = _build_store()
        expected = store.sls_many("emb", [[], []])
        with ParallelSlsEngine(store, workers=2) as engine:
            assert np.array_equal(expected, engine.sls_many("emb", [[], []]))

    def test_negative_indices_rejected_like_store(self):
        store = _build_store()
        with pytest.raises(IndexError):
            store.sls_many("emb", [[-1, 3]])
        with ParallelSlsEngine(store, workers=2) as engine:
            with pytest.raises(IndexError):
                engine.sls_many("emb", [[-1, 3]])

    def test_unknown_table_delegates_to_store(self):
        store = _build_store()
        with ParallelSlsEngine(store, workers=2) as engine:
            store.add_table("late", np.random.default_rng(3).normal(size=(8, 4)))
            expected = store.sls_many("late", [[0, 1]])
            assert np.array_equal(expected, engine.sls_many("late", [[0, 1]]))


class TestEngineProperty:
    """Hypothesis sweep against one long-lived 2-worker engine."""

    @pytest.fixture(scope="class")
    def served(self):
        store = _build_store(seed=4)
        with ParallelSlsEngine(store, workers=2) as engine:
            yield store, engine

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_any_batch_bit_identical(self, served, data):
        store, engine = served
        n_queries = data.draw(st.integers(1, 6))
        batch_rows = [
            data.draw(
                st.lists(st.integers(0, 63), min_size=0, max_size=16)
            )
            for _ in range(n_queries)
        ]
        batch_weights = [
            data.draw(
                st.lists(
                    st.integers(0, 5), min_size=len(rows), max_size=len(rows)
                )
            )
            for rows in batch_rows
        ]
        expected = store.sls_many("emb", batch_rows, batch_weights)
        got = engine.sls_many("emb", batch_rows, batch_weights)
        assert np.array_equal(expected, got)


# -- validation and integrity through the pool ---------------------------------


class TestEngineValidation:
    def test_oversized_query_rejected(self):
        store = _build_store()
        huge = 1 << 30  # weight that blows the 32-bit ring budget
        with ParallelSlsEngine(store, workers=2) as engine:
            with pytest.raises(ConfigurationError):
                engine.sls_many("emb", [[0, 1]], [[huge, huge]])
            # and identically through the store path
            with pytest.raises(ConfigurationError):
                store.sls_many("emb", [[0, 1]], [[huge, huge]])

    def test_negative_weight_rejected(self):
        store = _build_store()
        with ParallelSlsEngine(store, workers=0) as engine:
            with pytest.raises(ConfigurationError):
                engine.sls_many("emb", [[0]], [[-1]])

    def test_out_of_range_row_rejected(self):
        store = _build_store()
        with ParallelSlsEngine(store, workers=2) as engine:
            with pytest.raises(IndexError):
                engine.sls_many("emb", [[64]])

    def test_tampering_detected_through_shards(self):
        # Flip one stored ciphertext element *before* the arenas are
        # exported: the recombined tag check must still catch it.
        store = _build_store(seed=5)
        store.device.corrupt_stored_ciphertext("emb", 3, 0, 1)
        with ParallelSlsEngine(store, workers=2) as engine:
            with pytest.raises(VerificationError):
                engine.sls_many("emb", [[3, 4, 5]])


# -- observability drain -------------------------------------------------------


class TestWorkerObservability:
    def test_worker_metrics_merge_into_parent(self):
        store = _build_store(seed=6)
        obs.get_registry().reset()
        obs.enable()
        try:
            with ParallelSlsEngine(store, workers=2) as engine:
                engine.sls_many("emb", _batch(np.random.default_rng(7), 64))
                counters = obs.snapshot()["counters"]
                assert counters.get("parallel.batch.calls") == 1
                assert counters.get("protocol.partial.queries", 0) >= 5
                info = engine.cache_info()
            assert isinstance(info, OtpCacheInfo)
            assert info.misses > 0  # workers reported their private caches
        finally:
            obs.disable()
            obs.get_registry().reset()


# -- parallel_map --------------------------------------------------------------


def _square(x):
    return x * x


def _labelled(x):
    return (obs.worker_label(), x + 1)


class TestParallelMap:
    def test_in_process_when_zero(self):
        assert parallel_map(_square, [1, 2, 3], workers=0) == [1, 4, 9]

    def test_order_preserved_across_pool(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_results_match_in_process(self):
        # Values identical regardless of worker count (labels aside, which
        # prove the work actually ran on labelled pool workers).
        items = list(range(8))
        par = parallel_map(_labelled, items, workers=2)
        seq = parallel_map(_labelled, items, workers=0)
        assert [v for _, v in par] == [v for _, v in seq]
        assert all(str(label).startswith("pmap-") for label, _ in par)

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=2) == []


class TestWorkerPolicy:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "5")
        assert resolve_workers(None) == 5

    def test_library_default_is_in_process(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers(None) == 0

    def test_negative_clamped(self):
        assert resolve_workers(-4) == 0

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "lots")
        assert resolve_workers(None) == 0


# -- supporting pieces ---------------------------------------------------------


class TestSnapshotMerge:
    def test_counters_add_gauges_overwrite_timers_absorb(self):
        a = MetricsRegistry()
        a.inc("x", 2)
        a.gauge("g", 1)
        a.observe_ns("t", 1000)
        a.observe_ns("t", 3000)
        snap = a.snapshot(include_samples=True)

        b = MetricsRegistry()
        b.inc("x", 1)
        b.gauge("g", 9)
        b.observe_ns("t", 2000)
        b.merge(snap)
        merged = b.snapshot()
        assert merged["counters"]["x"] == 3
        assert merged["gauges"]["g"] == 1  # last write (the snapshot) wins
        assert merged["timers"]["t"]["count"] == 3
        assert merged["timers"]["t"]["total_ns"] == 6000
        assert merged["timers"]["t"]["max_ns"] == 3000

    def test_snapshot_is_picklable(self):
        import pickle

        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe_ns("t", 500)
        blob = pickle.dumps(reg.snapshot(include_samples=True))
        assert pickle.loads(blob)["counters"]["c"] == 1


class TestTagPacking:
    def test_roundtrip_extremes(self):
        tags = [0, 1, (1 << 127) - 2, (1 << 64), 12345678901234567890]
        assert unpack_tags(pack_tags(tags)) == tags

    def test_shared_memory_probe_is_bool(self):
        assert shared_memory_available() in (True, False)


class TestCacheInfoMerge:
    def test_merge_sums_fields(self):
        merged = merge_cache_info(
            [
                OtpCacheInfo(hits=1, misses=2, evictions=0, currsize=3, maxsize=8),
                OtpCacheInfo(hits=4, misses=1, evictions=2, currsize=1, maxsize=8),
            ]
        )
        assert merged.hits == 5
        assert merged.misses == 3
        assert merged.evictions == 2
        assert merged.currsize == 4
