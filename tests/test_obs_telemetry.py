"""Production telemetry layer: histograms, SLOs, audit events, exporter.

The load-bearing properties (DESIGN.md Sec. 13):

* log-bucketed histogram merge is exact — associative, commutative, and
  a merge of per-worker histograms is bit-identical to a single
  histogram that saw every observation, so fleet percentiles carry the
  same documented ``RELATIVE_ERROR`` bound as single-process ones;
* worker metric snapshots arrive at the parent *live* (with every task
  result), not only at pool teardown;
* every recovery-ladder step emits a typed security event with
  row/table attribution, the JSONL journal round-trips, and a restarted
  store reloads its quarantine from it;
* the Prometheus exporter emits text the strict validator accepts.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.faults import FaultKind, FaultPlan, RecoveryPolicy
from repro.faults.recovery import RecoveryLog
from repro.harness.chaos import run_chaos
from repro.harness.configs import SMOKE_SCALE
from repro.obs.hist import (
    LogHistogram,
    RELATIVE_ERROR,
    bucket_bounds,
    bucket_index,
)
from repro.obs.metrics import MetricsRegistry
from repro.parallel import ParallelSlsEngine
from repro.workloads import SecureEmbeddingStore

KEY = bytes(range(16))

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    obs.disable_events()
    yield
    obs.disable()
    obs.reset()
    obs.disable_events()


def _build_store(recovery=None, injector=None, n_rows=64, dim=16, seed=0):
    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(KEY, params)
    device = UntrustedNdpDevice(params)
    store = SecureEmbeddingStore(
        processor, device, recovery=recovery, fault_injector=injector
    )
    rng = np.random.default_rng(seed)
    store.add_table("emb", rng.normal(0, 1, size=(n_rows, dim)))
    return store


# -- histogram properties ------------------------------------------------------

_values = st.lists(st.integers(0, 10**12), min_size=0, max_size=200)


class TestHistogramProperties:
    @given(a=_values, b=_values)
    @settings(max_examples=60, deadline=None)
    def test_merge_commutative(self, a, b):
        ab = LogHistogram.of(a)
        ab.merge(LogHistogram.of(b))
        ba = LogHistogram.of(b)
        ba.merge(LogHistogram.of(a))
        assert ab.to_dict() == ba.to_dict()

    @given(a=_values, b=_values, c=_values)
    @settings(max_examples=60, deadline=None)
    def test_merge_associative(self, a, b, c):
        left = LogHistogram.of(a)
        left.merge(LogHistogram.of(b))
        left.merge(LogHistogram.of(c))
        bc = LogHistogram.of(b)
        bc.merge(LogHistogram.of(c))
        right = LogHistogram.of(a)
        right.merge(bc)
        assert left.to_dict() == right.to_dict()

    @given(values=st.lists(st.integers(0, 10**12), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_percentile_within_documented_error(self, values):
        hist = LogHistogram.of(values)
        ordered = sorted(values)
        for q in (0.5, 0.95, 0.99, 1.0):
            exact = ordered[min(len(ordered) - 1, max(0, int(np.ceil(q * len(ordered))) - 1))]
            got = hist.percentile(q)
            assert abs(got - exact) <= max(1, exact * RELATIVE_ERROR)

    @given(value=st.integers(0, 2**80))
    @settings(max_examples=200, deadline=None)
    def test_bucket_contains_value_and_is_narrow(self, value):
        idx = bucket_index(value)
        low, high = bucket_bounds(idx)
        assert low <= value <= high
        if low > 0:
            assert (high - low) <= max(1, low * RELATIVE_ERROR)

    def test_bucket_index_monotone_at_boundaries(self):
        probes = [0, 1, 63, 64, 65, 127, 128, 129, 255, 256, 1 << 20, (1 << 20) + 1]
        indices = [bucket_index(v) for v in sorted(probes)]
        assert indices == sorted(indices)

    def test_json_roundtrip_is_exact(self):
        hist = LogHistogram.of([0, 5, 77, 10**9, 10**9 + 1])
        blob = json.dumps(hist.to_dict())
        back = LogHistogram.from_dict(json.loads(blob))
        assert back.to_dict() == hist.to_dict()


class TestWorkerMergeEquivalence:
    """Merged per-worker snapshots == one registry that saw everything.

    This is the fleet-view acceptance property, exercised through the
    exact pathway the engine uses: per-worker ``MetricsRegistry`` ->
    ``snapshot(include_samples=True)`` -> JSON round trip (snapshots
    cross the process boundary serialised) -> parent ``merge``.
    """

    @given(
        data=st.data(),
        workers=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_sharded_merge_bit_identical(self, data, workers):
        values = data.draw(
            st.lists(st.integers(0, 10**10), min_size=1, max_size=200)
        )
        single = MetricsRegistry()
        for v in values:
            single.observe_ns("sls.batch.ns", v)

        parent = MetricsRegistry()
        for w in range(workers):
            shard = MetricsRegistry()
            for v in values[w::workers]:
                shard.observe_ns("sls.batch.ns", v)
            if not shard.snapshot()["timers"]:
                continue
            snap = json.loads(json.dumps(shard.snapshot(include_samples=True)))
            parent.merge(snap)

        got = parent.snapshot(include_samples=True)["timers"]["sls.batch.ns"]
        want = single.snapshot(include_samples=True)["timers"]["sls.batch.ns"]
        assert got == want  # bit-identical, not just within error
        exact = sorted(values)
        for q, key in ((0.5, "p50_ns"), (0.99, "p99_ns")):
            true = exact[min(len(exact) - 1, max(0, int(np.ceil(q * len(exact))) - 1))]
            assert abs(got[key] - true) <= max(1, true * RELATIVE_ERROR)

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_env_worker_sweep(self, workers, monkeypatch):
        # SECNDP_WORKERS drives the engine's default pool size; the merged
        # fleet histogram must stay exact for any value of it.
        monkeypatch.setenv("SECNDP_WORKERS", str(workers))
        values = list(range(1, 500, 7))
        single = MetricsRegistry()
        parent = MetricsRegistry()
        for v in values:
            single.observe_ns("t", v)
        from repro.parallel import resolve_workers

        n = max(1, resolve_workers(None))
        for w in range(n):
            shard = MetricsRegistry()
            for v in values[w::n]:
                shard.observe_ns("t", v)
            parent.merge(shard.snapshot(include_samples=True))
        assert (
            parent.snapshot(include_samples=True)["timers"]["t"]
            == single.snapshot(include_samples=True)["timers"]["t"]
        )


class TestLiveWorkerSnapshots:
    def test_snapshots_arrive_before_teardown(self):
        store = _build_store()
        obs.enable()
        batch = [[0, 1, 2, 3], [10, 20, 30], [40, 41, 63]]
        with ParallelSlsEngine(store, workers=2) as engine:
            if engine.workers == 0:
                pytest.skip("no shared memory / pool unavailable")
            engine.sls_many("emb", batch)
            # Live fleet view: the worker-side span timers are already in
            # the parent registry while the pool is still serving.
            timers = obs.snapshot(include_samples=True)["timers"]
            assert "parallel.shard.ns" in timers
            assert timers["parallel.shard.ns"]["count"] >= 1
            assert timers["parallel.shard.ns"]["buckets"]

    def test_snapshot_interval_throttles(self):
        store = _build_store()
        obs.enable()
        batch = [[0, 1, 2], [5, 6, 7]]
        with ParallelSlsEngine(
            store, workers=1, snapshot_interval=3600.0
        ) as engine:
            if engine.workers == 0:
                pytest.skip("no shared memory / pool unavailable")
            engine.sls_many("emb", batch)  # first task always pushes
            engine.sls_many("emb", batch)  # within interval: accumulate
            timers = obs.snapshot()["timers"]
            # Only the first push arrived; the second batch's shard span
            # is still accumulating worker-side.
            assert timers["parallel.shard.ns"]["count"] == 1


# -- SLOs ----------------------------------------------------------------------

class TestSlo:
    def test_parse_latency_spec(self):
        spec = obs.SloSpec.parse("sls.batch.p99 < 5ms @ 2%")
        assert spec.kind == "latency"
        assert spec.timer == "sls.batch.ns"
        assert spec.quantile == pytest.approx(0.99)
        assert spec.threshold == pytest.approx(5e6)
        assert spec.budget == pytest.approx(0.02)

    def test_parse_ratio_alias_and_expression(self):
        alias = obs.SloSpec.parse("verify.failure_rate<0.001")
        assert alias.kind == "ratio"
        assert alias.numerator == ("recovery.detections",)
        expr = obs.SloSpec.parse("a/b+c < 10%")
        assert expr.numerator == ("a",)
        assert expr.denominator == ("b", "c")
        assert expr.threshold == pytest.approx(0.1)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "sls.p99",
            "nonsense < 1",
            "sls.p99 < 5parsecs",
            "sls.p0 < 5ms",
            "verify.failure_rate < 0.1 @ 0.5",
            "sls.p99 < 5ms @ 2",
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            obs.SloSpec.parse(bad)

    def test_latency_burn_and_degradation_gauge(self):
        reg = obs.get_registry()
        obs.enable()
        for v in [1_000_000] * 90 + [9_000_000] * 10:  # 10% over 5ms
            reg.observe_ns("sls.batch.ns", v)
        snap = obs.snapshot(include_samples=True)
        tracker = obs.SloTracker(["sls.batch.p99 < 5ms @ 20%"])
        (status,) = tracker.evaluate(snap)
        assert status.bad_fraction == pytest.approx(0.10)
        assert status.burn_rate == pytest.approx(0.5)
        assert status.met and status.state == 0
        assert obs.snapshot()["gauges"]["slo.degraded"] == 0.0

        hot = obs.SloTracker(["sls.batch.p99 < 5ms @ 1%"])  # burn 10x
        (status,) = hot.evaluate(snap)
        assert not status.met and status.state == 2
        assert obs.snapshot()["gauges"]["slo.degraded"] == 2.0

    def test_ratio_evaluation(self):
        obs.enable()
        obs.inc("recovery.detections", 3)
        obs.inc("sls.queries", 1000)
        snap = obs.snapshot()
        tracker = obs.SloTracker(["verify.failure_rate < 0.01"])
        (status,) = tracker.evaluate(snap)
        assert status.value == pytest.approx(0.003)
        assert status.burn_rate == pytest.approx(0.3)
        assert status.met

    def test_no_data_is_healthy(self):
        tracker = obs.SloTracker(["sls.batch.p99<1ms", "verify.failure_rate<0.1"])
        statuses = tracker.evaluate({"counters": {}, "timers": {}})
        assert all(s.met for s in statuses)

    def test_parse_slo_specs_comma_and_repeat(self):
        specs = obs.parse_slo_specs(["a.p50<1ms, b.p99<2ms", "x/y<0.5"])
        assert [s.name for s in specs] == ["a.p50", "b.p99", "x/y"]


# -- security events -----------------------------------------------------------

class TestEvents:
    def test_disabled_emit_is_noop(self):
        assert obs.emit_event(obs.QUARANTINE, table="t", rows=[1]) is None
        assert obs.event_log() is None

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = obs.enable_events(path)
        obs.emit_event(obs.QUARANTINE, table="emb", rows=[3, 5], reason="tag")
        obs.emit_event(obs.REENCRYPT, table="emb", version=7)
        obs.disable_events()
        events = obs.read_events(path)
        assert [e.kind for e in events] == ["quarantine", "reencrypt"]
        assert events[0].rows == (3, 5)
        assert events[0].details["reason"] == "tag"
        assert events[1].version == 7
        assert events[0].seq < events[1].seq
        assert log.total == 2

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        obs.enable_events(path)
        obs.emit_event(obs.QUARANTINE, table="t", rows=[1])
        obs.disable_events()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "quarantine", "table": "t", "rows": [9')  # torn
        events = obs.read_events(path)
        assert len(events) == 1 and events[0].rows == (1,)

    def test_ring_bounded_counts_exact(self):
        log = obs.enable_events(capacity=4)
        for i in range(10):
            log.emit(obs.VERIFY_FAILURE, table="t", rows=[i])
        assert len(log) == 4
        assert log.total == 10
        assert log.counts_by_kind() == {"verify_failure": 10}


class TestQuarantineJournal:
    def test_replay_rebuilds_state(self):
        log = RecoveryLog()
        events = [
            obs.SecurityEvent(seq=1, ts=0, kind=obs.QUARANTINE, table="emb", rows=(3, 5)),
            obs.SecurityEvent(seq=2, ts=0, kind=obs.RECOVERY_REPAIR, table="emb", rows=(3, 5)),
            obs.SecurityEvent(seq=3, ts=0, kind=obs.QUARANTINE, table="other", rows=(1,)),
            obs.SecurityEvent(seq=4, ts=0, kind=obs.REENCRYPT, table="other"),
            obs.SecurityEvent(seq=5, ts=0, kind=obs.VERIFY_FAILURE, table="emb", rows=(9,)),
        ]
        applied = log.replay_events(events)
        assert applied == 4  # verify_failure carries no durable state
        assert log.quarantined_rows("emb") == {3, 5}
        assert log.repairs["emb"] == 2
        # re-encryption cleared the other table's quarantine
        assert log.quarantined_rows("other") == set()
        assert log.reencryptions["other"] == 1

    def test_store_roundtrip_through_journal(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        obs.enable_events(path)
        first = _build_store(recovery=RecoveryPolicy(reencrypt_after=None))
        first.recovery_log.quarantine_rows("emb", [2, 7])
        obs.disable_events()

        # A "restarted" store (fresh process state) reloads the journal
        # and keeps serving the quarantined rows trusted-side.
        second = _build_store(recovery=RecoveryPolicy(reencrypt_after=None))
        assert second.quarantined_rows("emb") == set()
        applied = second.load_quarantine_journal(path)
        assert applied == 1
        assert second.quarantined_rows("emb") == {2, 7}
        got = second.sls("emb", [2, 7], [1, 1])
        expected = first.sls("emb", [2, 7], [1, 1])
        assert np.allclose(got, expected)
        (outcome,) = second.recovery_log.outcomes[-1:]
        assert outcome.resolved_via == "quarantined"

    def test_replay_never_reemits(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        obs.enable_events(path)
        store = _build_store(recovery=RecoveryPolicy())
        store.recovery_log.quarantine_rows("emb", [1])
        store.load_quarantine_journal(path)
        obs.disable_events()
        # one event in, one event on disk - replay appended nothing
        assert len(obs.read_events(path)) == 1

    def test_journal_ignores_foreign_tables(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        obs.enable_events(path)
        obs.emit_event(obs.QUARANTINE, table="not_loaded", rows=[1, 2])
        obs.disable_events()
        store = _build_store(recovery=RecoveryPolicy())
        assert store.load_quarantine_journal(path) == 0


# -- chaos events --------------------------------------------------------------

class TestChaosEvents:
    def test_ladder_steps_are_typed_events_with_attribution(self, tmp_path):
        path = tmp_path / "chaos.jsonl"
        obs.enable_events(path)
        try:
            plan = FaultPlan(
                name="test", seed=5, rates={FaultKind.CIPHERTEXT_BIT: 2e-3}
            )
            result = run_chaos(SMOKE_SCALE, plan=plan, seed=11)
        finally:
            obs.disable_events()
        assert result.exposed > 0
        assert result.detection_rate == 1.0
        assert result.events.get("verify_failure", 0) > 0
        assert result.events.get("recovery_repair", 0) > 0
        # ChaosResult aggregates come from replaying the journal; they
        # must agree with the journal itself.
        events = obs.read_events(path)
        replayed = RecoveryLog()
        replayed.replay_events(events)
        assert sum(len(v) for v in replayed.quarantined.values()) == result.quarantined
        assert sum(replayed.repairs.values()) == result.repairs
        # every ladder event names its table and rows
        ladder = {
            obs.VERIFY_FAILURE,
            obs.RECOVERY_RETRY,
            obs.RECOVERY_FALLBACK,
            obs.RECOVERY_REPAIR,
            obs.QUARANTINE,
            obs.QUARANTINE_HIT,
        }
        saw = set()
        for event in events:
            if event.kind in ladder:
                saw.add(event.kind)
                assert event.table is not None
                assert event.rows
        assert obs.VERIFY_FAILURE in saw and obs.RECOVERY_REPAIR in saw


# -- exporter ------------------------------------------------------------------

class TestExporter:
    def test_snapshot_exports_and_validates(self):
        obs.enable()
        obs.inc("protocol.queries", 4)
        obs.gauge("otp.cache.hit_rate", 0.75)
        reg = obs.get_registry()
        for v in [100, 2000, 30_000, 400_000]:
            reg.observe_ns("sls.batch.ns", v)
        snap = obs.snapshot(include_samples=True)
        text = obs.to_prometheus(snap, event_counts={"quarantine": 2})
        n = obs.validate_prometheus_text(text)
        assert n > 0
        assert "secndp_protocol_queries_total 4" in text
        assert 'secndp_security_events_total{kind="quarantine"} 2' in text
        assert 'secndp_sls_batch_seconds_bucket{le="+Inf"} 4' in text
        assert "secndp_sls_batch_seconds_count 4" in text

    def test_histogram_buckets_are_cumulative_seconds(self):
        obs.enable()
        reg = obs.get_registry()
        reg.observe_ns("t.ns", 1_000_000_000)  # exactly 1 s
        text = obs.to_prometheus(obs.snapshot(include_samples=True))
        bucket_lines = [
            line for line in text.splitlines() if "secndp_t_seconds_bucket" in line
        ]
        finite = [line for line in bucket_lines if "+Inf" not in line]
        assert len(finite) == 1
        le = float(finite[0].split('le="')[1].split('"')[0])
        assert le == pytest.approx(1.0, rel=2 * RELATIVE_ERROR)

    @pytest.mark.parametrize(
        "bad",
        [
            "metric-with-dash 1\n",
            "metric{le=unquoted} 1\n",
            "metric 1 2 3 extra\n",
            "metric notanumber\n",
            "# TYPE m sandwich\n",
            "m 1\n# TYPE m counter\n",
        ],
    )
    def test_validator_rejects(self, bad):
        with pytest.raises(ValueError):
            obs.validate_prometheus_text(bad)

    def test_validator_accepts_empty_and_comments(self):
        assert obs.validate_prometheus_text("") == 0
        assert obs.validate_prometheus_text("# HELP m something\n") == 0


class TestCliObsReport:
    def test_report_with_slo_prom_and_events(self, tmp_path, capsys):
        from repro.cli import main

        prom = tmp_path / "m.prom"
        journal = tmp_path / "audit.jsonl"
        rc = main(
            [
                "obs",
                "report",
                "--scale",
                "smoke",
                "--workers",
                "0",
                "--slo",
                "sls.batch.p99<10s",
                "--prom",
                str(prom),
                "--events",
                str(journal),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "telemetry report" in out
        assert "slo:" in out and "healthy" in out
        assert obs.validate_prometheus_text(prom.read_text()) > 0

    def test_report_offline_from_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        obs.enable()
        obs.inc("sls.queries", 10)
        obs.get_registry().observe_ns("sls.batch.ns", 2_000_000)
        snap_path = tmp_path / "snap.json"
        snap_path.write_text(json.dumps(obs.snapshot(include_samples=True)))
        obs.disable()
        rc = main(
            ["obs", "report", "--metrics", str(snap_path), "--slo", "sls.batch.p99<1ms"]
        )
        out = capsys.readouterr().out
        assert rc == 1  # p99 = 2ms breaches the 1ms objective
        assert "DEGRADED" in out or "CRITICAL" in out

    def test_unknown_action_fails_fast(self, capsys):
        from repro.cli import main

        assert main(["obs", "frobnicate"]) == 2
