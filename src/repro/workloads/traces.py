"""Query-trace generation for the performance evaluation (Sec. VI-A).

Two trace families drive the paper's SLS experiments:

* *random traces* with fixed pooling factor (PF = 40 or 80): indices drawn
  uniformly over the table;
* *production-like traces* with PF drawn from [50, 100] and a skewed,
  temporally-correlated index distribution (hot rows get re-referenced) -
  the shape real recommendation traffic exhibits.

For the medical-analytics workload, queries are contiguous runs of
patient IDs ("usually the queried patient IDs are not sparse").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["SlsTrace", "random_trace", "production_trace", "analytics_trace"]


@dataclass(frozen=True)
class SlsTrace:
    """A batch of SLS queries against one table."""

    table_rows: int
    #: per-query index arrays
    indices: Tuple[Tuple[int, ...], ...]
    #: per-query weight arrays (same shapes as ``indices``)
    weights: Tuple[Tuple[float, ...], ...]

    @property
    def n_queries(self) -> int:
        return len(self.indices)

    @property
    def mean_pooling_factor(self) -> float:
        if not self.indices:
            return 0.0
        return sum(len(ix) for ix in self.indices) / len(self.indices)


def random_trace(
    table_rows: int,
    n_queries: int,
    pooling_factor: int,
    seed: int = 0,
    weighted: bool = True,
) -> SlsTrace:
    """Uniform-random indices with a fixed pooling factor (PF=40/80 runs)."""
    if pooling_factor < 1 or n_queries < 1:
        raise ConfigurationError("n_queries and pooling_factor must be >= 1")
    rng = np.random.default_rng(seed)
    indices = []
    weights = []
    for _ in range(n_queries):
        ix = rng.integers(0, table_rows, size=pooling_factor)
        indices.append(tuple(int(i) for i in ix))
        if weighted:
            w = rng.integers(1, 4, size=pooling_factor)  # small positive weights
        else:
            w = np.ones(pooling_factor, dtype=np.int64)
        weights.append(tuple(float(x) for x in w))
    return SlsTrace(table_rows, tuple(indices), tuple(weights))


def production_trace(
    table_rows: int,
    n_queries: int,
    pf_range: Tuple[int, int] = (50, 100),
    hot_fraction: float = 0.05,
    hot_probability: float = 0.6,
    seed: int = 0,
) -> SlsTrace:
    """Skewed trace mimicking production embedding traffic.

    ``hot_fraction`` of the rows receive ``hot_probability`` of the
    references (a coarse Zipf stand-in that reproduces the row-buffer
    locality production traces show), and PF varies per query over
    ``pf_range`` as in the paper's production trace (PF in [50, 100]).
    """
    if not 0 < hot_fraction < 1 or not 0 <= hot_probability <= 1:
        raise ConfigurationError("invalid hot-set parameters")
    rng = np.random.default_rng(seed)
    n_hot = max(1, int(table_rows * hot_fraction))
    indices = []
    weights = []
    for _ in range(n_queries):
        pf = int(rng.integers(pf_range[0], pf_range[1] + 1))
        hot_mask = rng.random(pf) < hot_probability
        ix = np.where(
            hot_mask,
            rng.integers(0, n_hot, size=pf),
            rng.integers(0, table_rows, size=pf),
        )
        indices.append(tuple(int(i) for i in ix))
        weights.append(tuple(float(x) for x in rng.integers(1, 4, size=pf)))
    return SlsTrace(table_rows, tuple(indices), tuple(weights))


def analytics_trace(
    n_patients: int,
    n_queries: int,
    pooling_factor: int,
    seed: int = 0,
) -> SlsTrace:
    """Medical-analytics queries: contiguous patient-ID runs, weight 1.

    Each query aggregates ``pooling_factor`` consecutive patients starting
    at a random (aligned) offset - the regular streaming pattern that
    gives the analytics workload its near-ideal rank parallelism.
    """
    if pooling_factor > n_patients:
        raise ConfigurationError("pooling factor exceeds patient count")
    rng = np.random.default_rng(seed)
    indices = []
    weights = []
    for _ in range(n_queries):
        start = int(rng.integers(0, max(1, n_patients - pooling_factor + 1)))
        ix = range(start, start + pooling_factor)
        indices.append(tuple(ix))
        weights.append(tuple(1.0 for _ in ix))
    return SlsTrace(n_patients, tuple(indices), tuple(weights))
