"""Quantization schemes for embedding tables (paper Sec. VI-A, Fig. 6 right).

The paper evaluates four precision settings (Table IV):

* 32-bit floating point (reference),
* 32-bit fixed point (what SecNDP computes over at full precision),
* 8-bit **row-wise** quantization - scale/bias per row, the standard DLRM
  scheme; efficient for plain NDP but *incompatible* with efficient
  computation over ciphertext (the per-row scale multiplies ciphertext),
* 8-bit **table-wise** and **column-wise** quantization - the paper's
  proposed schemes where the scale/bias factor out of the pooling
  (``res_j = resq_j * scale_j + bias_j * sum_k a_k``), so SLS runs
  directly on quantized integers and the affine correction happens once
  at the end.

Each scheme implements ``quantize`` / ``dequantize`` and the pooled-
result correction used by the secure SLS path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "FixedPointCodec",
    "RowwiseQuantizer",
    "TablewiseQuantizer",
    "ColumnwiseQuantizer",
]


@dataclass(frozen=True)
class FixedPointCodec:
    """Symmetric fixed-point representation with ``frac_bits`` of fraction.

    Used for the 32-bit fixed-point rows of Table IV: floats are scaled by
    ``2^frac_bits`` and rounded to integers; pooling then happens in
    integer arithmetic (which is what the ring carries) and results are
    scaled back.
    """

    frac_bits: int = 16
    total_bits: int = 32

    def __post_init__(self) -> None:
        if not 0 <= self.frac_bits < self.total_bits:
            raise ConfigurationError("frac_bits must be in [0, total_bits)")

    @property
    def scale(self) -> float:
        return float(1 << self.frac_bits)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        q = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        limit = float(1 << (self.total_bits - 1))
        if np.any(np.abs(q) >= limit):
            raise ConfigurationError("value out of fixed-point range")
        return q.astype(np.int64)

    def dequantize(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64) / self.scale


def _affine_params(lo: float, hi: float, bits: int) -> Tuple[float, float]:
    """Scale/bias mapping [lo, hi] onto the unsigned integer range."""
    qmax = (1 << bits) - 1
    span = hi - lo
    scale = span / qmax if span > 0 else 1.0
    return scale, lo


class RowwiseQuantizer:
    """Per-row affine 8-bit quantization (the standard DLRM scheme)."""

    def __init__(self, bits: int = 8):
        self.bits = bits

    def quantize(self, table: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns (q, scales, biases) with per-row scale/bias."""
        table = np.asarray(table, dtype=np.float64)
        lo = table.min(axis=1)
        hi = table.max(axis=1)
        qmax = (1 << self.bits) - 1
        span = np.where(hi > lo, hi - lo, 1.0)
        scales = span / qmax
        biases = lo
        q = np.rint((table - biases[:, None]) / scales[:, None])
        return q.astype(np.uint8 if self.bits <= 8 else np.uint16), scales, biases

    def dequantize(
        self, q: np.ndarray, scales: np.ndarray, biases: np.ndarray
    ) -> np.ndarray:
        return q.astype(np.float64) * scales[:, None] + biases[:, None]

    def pooled(
        self,
        q: np.ndarray,
        scales: np.ndarray,
        biases: np.ndarray,
        rows: Sequence[int],
        weights: Sequence[float],
    ) -> np.ndarray:
        """Weighted pooling - needs the per-row scale *inside* the sum,
        which is the property that makes this scheme hostile to
        computation over ciphertext."""
        rows = np.asarray(rows, dtype=np.int64)
        w = np.asarray(weights, dtype=np.float64)
        vals = q[rows].astype(np.float64) * scales[rows][:, None] + biases[rows][:, None]
        return (w[:, None] * vals).sum(axis=0)


class TablewiseQuantizer:
    """One scale/bias for the whole table (paper's proposed scheme)."""

    def __init__(self, bits: int = 8):
        self.bits = bits

    def quantize(self, table: np.ndarray) -> Tuple[np.ndarray, float, float]:
        table = np.asarray(table, dtype=np.float64)
        scale, bias = _affine_params(float(table.min()), float(table.max()), self.bits)
        q = np.rint((table - bias) / scale)
        return q.astype(np.uint8 if self.bits <= 8 else np.uint16), scale, bias

    def dequantize(self, q: np.ndarray, scale: float, bias: float) -> np.ndarray:
        return q.astype(np.float64) * scale + bias

    def correct_pooled(
        self,
        pooled_q: np.ndarray,
        scale: float,
        bias: float,
        weights: Sequence[float],
    ) -> np.ndarray:
        """``res = resq * scale + bias * sum(a)`` - the final affine step
        applied after integer pooling (possibly over ciphertext)."""
        wsum = float(np.sum(np.asarray(weights, dtype=np.float64)))
        return np.asarray(pooled_q, dtype=np.float64) * scale + bias * wsum


class ColumnwiseQuantizer:
    """One scale/bias per column (paper's finer-grained proposal)."""

    def __init__(self, bits: int = 8):
        self.bits = bits

    def quantize(self, table: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        table = np.asarray(table, dtype=np.float64)
        lo = table.min(axis=0)
        hi = table.max(axis=0)
        qmax = (1 << self.bits) - 1
        span = np.where(hi > lo, hi - lo, 1.0)
        scales = span / qmax
        biases = lo
        q = np.rint((table - biases[None, :]) / scales[None, :])
        return q.astype(np.uint8 if self.bits <= 8 else np.uint16), scales, biases

    def dequantize(
        self, q: np.ndarray, scales: np.ndarray, biases: np.ndarray
    ) -> np.ndarray:
        return q.astype(np.float64) * scales[None, :] + biases[None, :]

    def correct_pooled(
        self,
        pooled_q: np.ndarray,
        scales: np.ndarray,
        biases: np.ndarray,
        weights: Sequence[float],
    ) -> np.ndarray:
        wsum = float(np.sum(np.asarray(weights, dtype=np.float64)))
        return np.asarray(pooled_q, dtype=np.float64) * scales + biases * wsum
