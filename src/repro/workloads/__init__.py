"""Evaluation workloads: DLRM recommendation inference and medical analytics."""

from .analytics import SecureGeneDatabase, TTestResult, welch_t_test
from .datasets import (
    ClickDataset,
    GeneExpressionData,
    click_dataset,
    gene_expression,
)
from .dlrm import RMC_CONFIGS, DlrmConfig, DlrmModel
from .embedding import EmbeddingTable, sls, sls_weighted
from .perf import analytics_workload, sls_workload
from .private_mlp import PrivateMlp
from .secure_sls import SecureEmbeddingStore
from .quantization import (
    ColumnwiseQuantizer,
    FixedPointCodec,
    RowwiseQuantizer,
    TablewiseQuantizer,
)
from .traces import SlsTrace, analytics_trace, production_trace, random_trace

__all__ = [
    "SecureGeneDatabase",
    "TTestResult",
    "welch_t_test",
    "ClickDataset",
    "GeneExpressionData",
    "click_dataset",
    "gene_expression",
    "RMC_CONFIGS",
    "DlrmConfig",
    "DlrmModel",
    "EmbeddingTable",
    "sls",
    "sls_weighted",
    "analytics_workload",
    "sls_workload",
    "PrivateMlp",
    "SecureEmbeddingStore",
    "ColumnwiseQuantizer",
    "FixedPointCodec",
    "RowwiseQuantizer",
    "TablewiseQuantizer",
    "SlsTrace",
    "analytics_trace",
    "production_trace",
    "random_trace",
]
