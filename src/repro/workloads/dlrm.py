"""Deep Learning Recommendation Model (DLRM) - functional model + Table I configs.

The paper evaluates four representative DLRM configurations (Table I)::

    name        bottom FC     top FC      #Emb  total Emb. size
    RMC1-small  256-128-32    256-64-1      8    1   GB
    RMC1-large  256-128-32    256-64-1     12    1.5 GB
    RMC2-small  256-128-32    256-128-1    24    3   GB
    RMC2-large  256-128-32    256-128-1    64    8   GB

with 32-element embedding rows.  The embedding-lookup (SLS) portion is
offloaded to NDP; the MLPs run on the CPU TEE.  This module provides:

* :class:`DlrmConfig` - the Table I parameter sets (full scale) plus a
  ``scaled`` constructor for laptop-size simulation with identical
  geometry *shape*;
* :class:`DlrmModel` - a NumPy implementation (bottom MLP, embedding
  pooling, dot-product feature interaction, top MLP, sigmoid) with
  mini-batch SGD training - enough to measure LogLoss deltas between
  quantization schemes (Table IV);
* FLOP accounting used by the end-to-end CPU-portion model (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .embedding import EmbeddingTable
from .traces import SlsTrace

__all__ = ["DlrmConfig", "RMC_CONFIGS", "DlrmModel"]

EMBEDDING_DIM = 32
BYTES_PER_FP32 = 4


@dataclass(frozen=True)
class DlrmConfig:
    """One Table I row (or a scaled-down version of it).

    ``bottom_mlp`` and ``top_mlp`` follow the paper's layer-chain notation:
    "256-128-32" means a 256-wide input, one 128-wide hidden layer, and a
    32-wide output.  The bottom chain's input is the dense-feature width
    and its output must match the embedding dimension (dot interaction);
    the top chain's nominal input is the post-interaction feature width.
    """

    name: str
    bottom_mlp: Tuple[int, ...]      #: full layer chain incl. input width
    top_mlp: Tuple[int, ...]         #: full layer chain incl. input width (last = 1)
    n_tables: int
    rows_per_table: int
    embedding_dim: int = EMBEDDING_DIM

    def __post_init__(self) -> None:
        if len(self.bottom_mlp) < 2 or len(self.top_mlp) < 2:
            raise ConfigurationError("MLP chains need an input and an output width")
        if self.top_mlp[-1] != 1:
            raise ConfigurationError("top MLP must end in a single logit")
        if min(self.n_tables, self.rows_per_table, self.embedding_dim) < 1:
            raise ConfigurationError("invalid DLRM geometry")
        if self.bottom_mlp[-1] != self.embedding_dim:
            raise ConfigurationError(
                "dot interaction requires bottom_mlp[-1] == embedding_dim "
                f"({self.bottom_mlp[-1]} != {self.embedding_dim})"
            )

    @property
    def dense_dim(self) -> int:
        """Width of the dense-feature input (the bottom chain's input)."""
        return self.bottom_mlp[0]

    @property
    def total_embedding_bytes(self) -> int:
        return (
            self.n_tables
            * self.rows_per_table
            * self.embedding_dim
            * BYTES_PER_FP32
        )

    def scaled(self, rows_per_table: int) -> "DlrmConfig":
        """Same architecture with smaller tables (simulation scaling knob)."""
        return replace(self, rows_per_table=rows_per_table)

    # -- FLOP accounting (CPU-TEE portion of the end-to-end model) -----------

    def mlp_flops_per_sample(self) -> int:
        """Multiply-accumulate FLOPs of both MLPs for one sample.

        Uses the configured chains directly (the paper's notation fixes
        the top input width at 256, independent of table count), plus the
        pairwise-dot interaction cost which does grow with table count.
        """
        flops = 0
        for a, b in zip(self.bottom_mlp[:-1], self.bottom_mlp[1:]):
            flops += 2 * a * b
        n_vec = self.n_tables + 1
        n_pairs = n_vec * (n_vec - 1) // 2
        flops += 2 * n_pairs * self.embedding_dim
        for a, b in zip(self.top_mlp[:-1], self.top_mlp[1:]):
            flops += 2 * a * b
        return flops


def _rows_for_size(total_bytes: int, n_tables: int) -> int:
    return total_bytes // (n_tables * EMBEDDING_DIM * BYTES_PER_FP32)


#: The Table I configurations at full (paper) scale.
RMC_CONFIGS: Dict[str, DlrmConfig] = {
    "RMC1-small": DlrmConfig(
        "RMC1-small", (256, 128, 32), (256, 64, 1), 8, _rows_for_size(1 << 30, 8)
    ),
    "RMC1-large": DlrmConfig(
        "RMC1-large", (256, 128, 32), (256, 64, 1), 12,
        _rows_for_size(3 << 29, 12),  # 1.5 GB
    ),
    "RMC2-small": DlrmConfig(
        "RMC2-small", (256, 128, 32), (256, 128, 1), 24, _rows_for_size(3 << 30, 24)
    ),
    "RMC2-large": DlrmConfig(
        "RMC2-large", (256, 128, 32), (256, 128, 1), 64, _rows_for_size(8 << 30, 64)
    ),
}


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class DlrmModel:
    """NumPy DLRM: dense MLP + embedding pooling + interaction + top MLP."""

    def __init__(self, config: DlrmConfig, seed: int = 0):
        self.config = config
        rng = np.random.default_rng(seed)
        self.tables: List[EmbeddingTable] = [
            EmbeddingTable(
                rng.normal(
                    0.0, 0.1, size=(config.rows_per_table, config.embedding_dim)
                ).astype(np.float32)
            )
            for _ in range(config.n_tables)
        ]
        self.bottom_weights = self._init_mlp(
            rng, config.bottom_mlp[0], config.bottom_mlp[1:]
        )
        # The functional top MLP takes the *actual* interaction width
        # (bottom output + pairwise dots); the configured top_mlp[0] is the
        # paper's nominal input width, used only for FLOP accounting.
        n_vec = config.n_tables + 1
        n_pairs = n_vec * (n_vec - 1) // 2
        top_in = config.bottom_mlp[-1] + n_pairs
        self.top_weights = self._init_mlp(rng, top_in, config.top_mlp[1:])

    @staticmethod
    def _init_mlp(
        rng: np.random.Generator, in_dim: int, widths: Sequence[int]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        layers = []
        prev = in_dim
        for width in widths:
            scale = np.sqrt(2.0 / prev)
            layers.append(
                (
                    rng.normal(0.0, scale, size=(prev, width)).astype(np.float64),
                    np.zeros(width, dtype=np.float64),
                )
            )
            prev = width
        return layers

    # -- forward ------------------------------------------------------------------

    @staticmethod
    def _mlp_forward(
        layers: List[Tuple[np.ndarray, np.ndarray]],
        x: np.ndarray,
        final_linear: bool,
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        activations = [x]
        for idx, (w, b) in enumerate(layers):
            x = x @ w + b
            if not (final_linear and idx == len(layers) - 1):
                x = _relu(x)
            activations.append(x)
        return x, activations

    def pooled_embeddings(
        self,
        sparse_rows: Sequence[Sequence[Sequence[int]]],
        sparse_weights: Optional[Sequence[Sequence[Sequence[float]]]] = None,
        pooled_override: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Pool each table's rows per sample -> (batch, n_tables, dim).

        ``pooled_override`` lets callers substitute externally computed
        pooled vectors (e.g. produced by the SecNDP protocol or by a
        quantized table) while keeping the rest of the model identical -
        this is how the accuracy experiment isolates the embedding
        precision change.
        """
        if pooled_override is not None:
            return np.asarray(pooled_override, dtype=np.float64)
        batch = len(sparse_rows)
        cfg = self.config
        out = np.zeros((batch, cfg.n_tables, cfg.embedding_dim), dtype=np.float64)
        for s in range(batch):
            for t in range(cfg.n_tables):
                rows = np.asarray(sparse_rows[s][t], dtype=np.int64)
                gathered = self.tables[t].values[rows].astype(np.float64)
                if sparse_weights is not None:
                    w = np.asarray(sparse_weights[s][t], dtype=np.float64)[:, None]
                    out[s, t] = (gathered * w).sum(axis=0)
                else:
                    out[s, t] = gathered.sum(axis=0)
        return out

    def forward(
        self,
        dense: np.ndarray,
        sparse_rows: Sequence[Sequence[Sequence[int]]],
        sparse_weights: Optional[Sequence] = None,
        pooled_override: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Predicted click probability per sample."""
        bottom_out, _ = self._mlp_forward(
            self.bottom_weights, np.asarray(dense, dtype=np.float64), False
        )
        pooled = self.pooled_embeddings(sparse_rows, sparse_weights, pooled_override)
        interacted = self._interact(bottom_out, pooled)
        logit, _ = self._mlp_forward(self.top_weights, interacted, True)
        return _sigmoid(logit[:, 0])

    def _interact(self, bottom_out: np.ndarray, pooled: np.ndarray) -> np.ndarray:
        """Dot-product feature interaction (DLRM's 'dot' mode)."""
        batch = bottom_out.shape[0]
        vectors = np.concatenate([bottom_out[:, None, :], pooled], axis=1)
        gram = np.einsum("bid,bjd->bij", vectors, vectors)
        n_vec = vectors.shape[1]
        iu = np.triu_indices(n_vec, k=1)
        pairs = gram[:, iu[0], iu[1]]
        return np.concatenate([bottom_out, pairs], axis=1)

    # -- training -------------------------------------------------------------------

    def train(
        self,
        dense: np.ndarray,
        sparse_rows: Sequence,
        labels: np.ndarray,
        epochs: int = 3,
        lr: float = 0.05,
        batch_size: int = 128,
        seed: int = 0,
    ) -> float:
        """Mini-batch SGD on binary cross-entropy.

        Backprop covers both MLPs and the embedding rows touched by each
        batch.  Returns the final training LogLoss.  The implementation
        favours clarity over speed: the accuracy experiment trains a
        small-scale model.
        """
        rng = np.random.default_rng(seed)
        n = len(labels)
        dense = np.asarray(dense, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        final_loss = float("inf")
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch_idx = order[start : start + batch_size]
                final_loss = self._sgd_step(
                    dense[batch_idx],
                    [sparse_rows[i] for i in batch_idx],
                    labels[batch_idx],
                    lr,
                )
        return final_loss

    def _sgd_step(
        self,
        dense: np.ndarray,
        sparse_rows: Sequence,
        labels: np.ndarray,
        lr: float,
    ) -> float:
        batch = dense.shape[0]
        cfg = self.config

        # Forward with cached activations.
        bottom_out, bottom_acts = self._mlp_forward(self.bottom_weights, dense, False)
        pooled = self.pooled_embeddings(sparse_rows)
        vectors = np.concatenate([bottom_out[:, None, :], pooled], axis=1)
        gram = np.einsum("bid,bjd->bij", vectors, vectors)
        n_vec = vectors.shape[1]
        iu = np.triu_indices(n_vec, k=1)
        pairs = gram[:, iu[0], iu[1]]
        top_in = np.concatenate([bottom_out, pairs], axis=1)
        logit, top_acts = self._mlp_forward(self.top_weights, top_in, True)
        pred = _sigmoid(logit[:, 0])

        eps = 1e-12
        loss = -np.mean(
            labels * np.log(pred + eps) + (1 - labels) * np.log(1 - pred + eps)
        )

        # Backward: BCE + sigmoid gives (pred - label) at the logit.
        grad = ((pred - labels) / batch)[:, None]
        grad_top_in = self._mlp_backward(self.top_weights, top_acts, grad, True, lr)

        d_bottom = grad_top_in[:, : cfg.bottom_mlp[-1]].copy()
        d_pairs = grad_top_in[:, cfg.bottom_mlp[-1] :]

        # Interaction backward: d(gram[i,j]) flows to both vectors.
        d_vectors = np.zeros_like(vectors)
        for p, (i, j) in enumerate(zip(iu[0], iu[1])):
            gp = d_pairs[:, p][:, None]
            d_vectors[:, i] += gp * vectors[:, j]
            d_vectors[:, j] += gp * vectors[:, i]
        d_bottom += d_vectors[:, 0]

        # Embedding-row updates.
        for s in range(batch):
            for t in range(cfg.n_tables):
                rows = np.asarray(sparse_rows[s][t], dtype=np.int64)
                update = lr * d_vectors[s, t + 1]
                self.tables[t].values[rows] -= update.astype(np.float32)

        self._mlp_backward(self.bottom_weights, bottom_acts, d_bottom, False, lr)
        return float(loss)

    @staticmethod
    def _mlp_backward(
        layers: List[Tuple[np.ndarray, np.ndarray]],
        activations: List[np.ndarray],
        grad_out: np.ndarray,
        final_linear: bool,
        lr: float,
    ) -> np.ndarray:
        grad = grad_out
        for idx in range(len(layers) - 1, -1, -1):
            w, b = layers[idx]
            is_last = idx == len(layers) - 1
            post = activations[idx + 1]
            if not (final_linear and is_last):
                grad = grad * (post > 0)
            pre = activations[idx]
            gw = pre.T @ grad
            gb = grad.sum(axis=0)
            grad = grad @ w.T
            layers[idx] = (w - lr * gw, b - lr * gb)
        return grad

    # -- evaluation --------------------------------------------------------------------

    def logloss(
        self,
        dense: np.ndarray,
        sparse_rows: Sequence,
        labels: np.ndarray,
        pooled_override: Optional[np.ndarray] = None,
    ) -> float:
        pred = self.forward(dense, sparse_rows, pooled_override=pooled_override)
        eps = 1e-12
        labels = np.asarray(labels, dtype=np.float64)
        return float(
            -np.mean(
                labels * np.log(pred + eps) + (1 - labels) * np.log(1 - pred + eps)
            )
        )
