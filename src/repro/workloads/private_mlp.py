"""Private MLP inference over SecNDP - the GEMV generality claim.

The paper's running primitive is a non-private vector times a *private*
matrix (Sec. IV-A: "machine learning inference using private models",
models as "the service provider's IP").  This module builds that use
case end to end: an MLP whose weight matrices live arithmetically
encrypted in untrusted memory, with every layer's ``x @ W`` evaluated as
verified weighted row summations (row ``i`` of ``W`` weighted by
``x_i``), quantized the same way the DLRM path quantizes embeddings.

The activation vector is the TEE's (non-private per the threat model:
weights are the secret); the weights never leave memory in plaintext,
and any tampering with them - or with the NDP's partial products - is
caught by the tag check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.protocol import SecNDPProcessor, UntrustedNdpDevice
from ..errors import ConfigurationError
from .secure_sls import SecureEmbeddingStore

__all__ = ["PrivateMlp"]

#: activations are quantized to this many levels per unit interval
ACTIVATION_SCALE = 64


@dataclass
class _Layer:
    name: str
    in_dim: int
    out_dim: int
    bias: np.ndarray


class PrivateMlp:
    """An MLP whose weights are SecNDP-encrypted in untrusted memory.

    Layers are dense ``in_dim x out_dim`` float matrices; biases stay on
    the trusted side (they are tiny and used once per layer).  Forward
    evaluation quantizes the activation vector to non-negative integers
    (shift-and-scale), runs the weighted row summation over ciphertext,
    and undoes the affine maps exactly - so the only error vs. float
    inference is the two quantizations, which the tests bound.
    """

    def __init__(
        self,
        processor: SecNDPProcessor,
        device: UntrustedNdpDevice,
        quantization: str = "column",
        verify: bool = True,
    ):
        self.store = SecureEmbeddingStore(
            processor, device, quantization=quantization, verify=verify
        )
        self.layers: List[_Layer] = []
        # Column sums of the dequantized weights, needed to undo the
        # activation shift; computed once per layer at load time (they
        # are derivable on the trusted side and leak nothing new).
        self._colsums: dict = {}

    # -- construction ------------------------------------------------------------

    def add_layer(self, weights: np.ndarray, bias: Optional[np.ndarray] = None) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ConfigurationError("layer weights must be 2-D (in_dim x out_dim)")
        if self.layers and weights.shape[0] != self.layers[-1].out_dim:
            raise ConfigurationError(
                f"layer input {weights.shape[0]} does not match previous "
                f"output {self.layers[-1].out_dim}"
            )
        bias = (
            np.zeros(weights.shape[1])
            if bias is None
            else np.asarray(bias, dtype=np.float64)
        )
        if bias.shape != (weights.shape[1],):
            raise ConfigurationError("bias shape mismatch")
        name = f"layer{len(self.layers)}"
        self.store.add_table(name, weights)
        self.layers.append(
            _Layer(name=name, in_dim=weights.shape[0], out_dim=weights.shape[1],
                   bias=bias)
        )
        self._colsums[name] = self.store.dequantized_table(name).sum(axis=0)

    # -- inference ----------------------------------------------------------------

    @staticmethod
    def _quantize_activations(x: np.ndarray) -> Tuple[np.ndarray, float, float]:
        """Map activations to non-negative integers: ``q = round((x-lo)*s)``.

        Non-negativity is required by the protocol (ring residues); the
        shift is undone exactly using the column sums of the weights,
        which the trusted side can reconstruct from one extra secure
        query with all-ones weights... but cheaper: fold the shift into
        the result using the same secure dot product with q == s*lo.
        """
        lo = float(np.min(x))
        q = np.rint((x - lo) * ACTIVATION_SCALE).astype(np.int64)
        return q, lo, float(ACTIVATION_SCALE)

    def _secure_matvec(self, layer: _Layer, x: np.ndarray) -> np.ndarray:
        """``x @ W`` with W encrypted: weighted sum of W's rows by q_i,
        then exact affine correction for the activation quantization."""
        if x.shape != (layer.in_dim,):
            raise ConfigurationError(
                f"activation dim {x.shape} != layer input ({layer.in_dim},)"
            )
        q, lo, scale = self._quantize_activations(x)
        rows = list(range(layer.in_dim))
        pooled = self.store.sls_split(layer.name, rows, [int(v) for v in q])
        # pooled = sum_i q_i * W[i]; undo q = (x - lo) * scale:
        #   x @ W = pooled / scale + lo * colsum(W)
        return pooled / scale + lo * self._colsums[layer.name]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the network on one input vector (ReLU between layers)."""
        if not self.layers:
            raise ConfigurationError("no layers added")
        h = np.asarray(x, dtype=np.float64)
        for idx, layer in enumerate(self.layers):
            h = self._secure_matvec(layer, h) + layer.bias
            if idx < len(self.layers) - 1:
                h = np.maximum(h, 0.0)
        return h

    def forward_plaintext(self, x: np.ndarray) -> np.ndarray:
        """Reference path over the *dequantized* weights (isolates the
        activation-quantization error from the weight-quantization error)."""
        h = np.asarray(x, dtype=np.float64)
        for idx, layer in enumerate(self.layers):
            w = self.store.dequantized_table(layer.name)
            h = h @ w + layer.bias
            if idx < len(self.layers) - 1:
                h = np.maximum(h, 0.0)
        return h
