"""Synthetic datasets standing in for the paper's proprietary data.

The paper's accuracy study (Table IV) uses a production recommendation
model and a production CTR dataset; its analytics workload uses private
gene-expression data (UK-Biobank-like).  Neither is available, so we
generate synthetic equivalents whose *structure* matches what the
experiments exercise:

* :func:`click_dataset` - a planted-model click-through dataset: labels
  are drawn from a ground-truth DLRM-like scorer over random dense and
  categorical features, so a trained model achieves a non-trivial
  LogLoss and quantization perturbs it measurably.
* :func:`gene_expression` - patient x gene expression levels with a
  disease-associated subset of genes shifted for case patients, so
  group-mean differences and t-statistics are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ClickDataset", "click_dataset", "GeneExpressionData", "gene_expression"]


@dataclass
class ClickDataset:
    """Synthetic CTR data: dense features, per-table row indices, labels."""

    dense: np.ndarray                      #: (n, dense_dim) float
    sparse_rows: List[List[List[int]]]     #: [sample][table] -> row indices
    labels: np.ndarray                     #: (n,) {0,1}

    @property
    def n_samples(self) -> int:
        return len(self.labels)


def click_dataset(
    n_samples: int,
    n_tables: int,
    rows_per_table: int,
    dense_dim: int = 16,
    pooling_factor: int = 4,
    seed: int = 0,
) -> ClickDataset:
    """Planted-model CTR dataset.

    A hidden scorer combines a random linear model on the dense features
    with random per-row utilities for the categorical features; labels
    are Bernoulli draws from the sigmoid of the hidden score.  Trained
    models therefore have real signal to fit, and the achievable LogLoss
    sits in the realistic 0.5-0.7 band.
    """
    if min(n_samples, n_tables, rows_per_table, pooling_factor) < 1:
        raise ConfigurationError("dataset dimensions must be positive")
    rng = np.random.default_rng(seed)
    dense = rng.normal(0, 1, size=(n_samples, dense_dim))
    dense_w = rng.normal(0, 0.7 / np.sqrt(dense_dim), size=dense_dim)
    row_utility = [
        rng.normal(0, 0.4, size=rows_per_table) for _ in range(n_tables)
    ]
    sparse_rows: List[List[List[int]]] = []
    score = dense @ dense_w
    for s in range(n_samples):
        per_table = []
        for t in range(n_tables):
            rows = rng.integers(0, rows_per_table, size=pooling_factor)
            per_table.append([int(r) for r in rows])
            score[s] += row_utility[t][rows].mean()
        sparse_rows.append(per_table)
    prob = 1.0 / (1.0 + np.exp(-score))
    labels = (rng.random(n_samples) < prob).astype(np.float64)
    return ClickDataset(dense=dense, sparse_rows=sparse_rows, labels=labels)


@dataclass
class GeneExpressionData:
    """Patient x gene expression matrix with case/control labels."""

    expression: np.ndarray     #: (n_patients, n_genes) float, non-negative
    is_case: np.ndarray        #: (n_patients,) bool
    disease_genes: np.ndarray  #: indices of genes shifted in cases

    @property
    def n_patients(self) -> int:
        return self.expression.shape[0]

    @property
    def n_genes(self) -> int:
        return self.expression.shape[1]


def gene_expression(
    n_patients: int,
    n_genes: int,
    n_disease_genes: int = 16,
    effect_size: float = 1.5,
    case_fraction: float = 0.3,
    seed: int = 0,
) -> GeneExpressionData:
    """Synthetic expression data with a planted disease signal.

    Expression levels are log-normal-ish (non-negative, right-skewed);
    case patients have ``disease_genes`` shifted upward by
    ``effect_size`` standard deviations so two-sample t-tests on those
    genes reject and on others do not.
    """
    if n_disease_genes > n_genes:
        raise ConfigurationError("more disease genes than genes")
    rng = np.random.default_rng(seed)
    base = rng.gamma(shape=4.0, scale=2.0, size=(n_patients, n_genes))
    is_case = rng.random(n_patients) < case_fraction
    disease_genes = rng.choice(n_genes, size=n_disease_genes, replace=False)
    shift = effect_size * base[:, disease_genes].std(axis=0)
    base[np.ix_(is_case, disease_genes)] += shift
    return GeneExpressionData(
        expression=base, is_case=is_case, disease_genes=np.sort(disease_genes)
    )
