"""Embedding tables and the SparseLengths(Weighted)Sum operation.

DLRM's categorical features are looked up in large embedding tables and
pooled: an SLS query carries ``PF`` row indices and weights, and produces
``res_j = sum_k a_k * P_{i_k, j}`` (paper Fig. 6).  This module is the
*functional* embedding substrate: tables as NumPy arrays, plain and
weighted pooling, and the fixed-point view SecNDP computes over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["EmbeddingTable", "sls", "sls_weighted"]


@dataclass
class EmbeddingTable:
    """One embedding table of shape ``(n_rows, dim)``.

    ``values`` may be float32 (reference model) or an integer dtype
    (quantized / fixed-point operation).
    """

    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.ndim != 2:
            raise ConfigurationError("embedding table must be 2-D")

    @property
    def n_rows(self) -> int:
        return self.values.shape[0]

    @property
    def dim(self) -> int:
        return self.values.shape[1]

    @property
    def row_bytes(self) -> int:
        return self.dim * self.values.dtype.itemsize

    def lookup(self, rows: Sequence[int]) -> np.ndarray:
        return self.values[np.asarray(rows, dtype=np.int64)]


def sls(table: EmbeddingTable, rows: Sequence[int]) -> np.ndarray:
    """SparseLengthsSum: unweighted pooling of the given rows."""
    return table.lookup(rows).sum(axis=0)


def sls_weighted(
    table: EmbeddingTable,
    rows: Sequence[int],
    weights: Sequence[float],
) -> np.ndarray:
    """SparseLengthsWeightedSum: ``sum_k a_k * P[i_k]``."""
    rows = np.asarray(rows, dtype=np.int64)
    weights = np.asarray(weights)
    if rows.shape[0] != weights.shape[0]:
        raise ConfigurationError("rows and weights must have equal length")
    gathered = table.values[rows]
    return (weights[:, None] * gathered).sum(axis=0)
