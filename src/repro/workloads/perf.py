"""Bridges from functional workloads to the performance simulator.

The NDP timing simulator consumes :class:`~repro.ndp.packets.NdpWorkload`
(tables as geometry, queries as row-index sets).  These builders produce
that representation for the two evaluation workloads, parameterised by
element precision (32-bit vs 8-bit quantized) so the same trace can be
replayed under every scheme of Figs. 7-10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..ndp.packets import NdpWorkload, SimQuery, TableGeometry
from .dlrm import DlrmConfig
from .traces import SlsTrace

__all__ = ["sls_workload", "analytics_workload", "QUANT_SCALE_BIAS_BYTES"]

#: fp32 scale + fp32 bias appended per row under row-wise quantization.
QUANT_SCALE_BIAS_BYTES = 8


def sls_workload(
    config: DlrmConfig,
    traces: Sequence[SlsTrace],
    element_bytes: int = 4,
    rowwise_quant: bool = False,
    batch: Optional[int] = None,
) -> NdpWorkload:
    """The SLS (embedding) portion of a DLRM batch as an NDP workload.

    ``traces`` supplies one trace per embedding table (trace ``t`` drives
    table ``t``); each trace query is one sample's lookup into that
    table, so ``batch`` samples consume ``batch`` queries from every
    trace.  Queries are emitted sample-major (all tables of sample 0,
    then sample 1, ...), matching how the model issues them.
    """
    if len(traces) != config.n_tables:
        raise ConfigurationError(
            f"need one trace per table ({config.n_tables}), got {len(traces)}"
        )
    row_payload = config.embedding_dim * element_bytes
    if rowwise_quant and element_bytes != 4:
        # Row-wise quantization stores scale/bias inline with each row.
        row_payload += QUANT_SCALE_BIAS_BYTES
    tables: Dict[int, TableGeometry] = {
        t: TableGeometry(
            n_rows=config.rows_per_table,
            row_bytes=row_payload,
            result_bytes=config.embedding_dim * 4,  # results return as fp32/int32
        )
        for t in range(config.n_tables)
    }
    n_samples = batch if batch is not None else min(tr.n_queries for tr in traces)
    queries: List[SimQuery] = []
    for s in range(n_samples):
        for t, trace in enumerate(traces):
            queries.append(SimQuery(table=t, rows=trace.indices[s % trace.n_queries]))
    return NdpWorkload(tables=tables, queries=tuple(queries))


def analytics_workload(
    n_patients: int,
    n_genes: int,
    trace: SlsTrace,
    element_bytes: int = 4,
) -> NdpWorkload:
    """The medical-analytics summation as an NDP workload.

    One table: patients are rows, genes are columns (m = ``n_genes``);
    each query pools a contiguous run of patient rows (Sec. VI-A:
    m=1024 genes, PF=10,000 patients at paper scale).
    """
    tables = {
        0: TableGeometry(
            n_rows=n_patients,
            row_bytes=n_genes * element_bytes,
            result_bytes=n_genes * 4,
        )
    }
    queries = tuple(SimQuery(table=0, rows=ix) for ix in trace.indices)
    return NdpWorkload(tables=tables, queries=queries)
