"""High-level secure embedding store: quantized SLS over SecNDP.

This is the deployment-facing API the paper's DLRM use case implies: an
enclave owns a set of embedding tables, quantizes them with one of the
ciphertext-friendly schemes (table-wise or column-wise, Sec. VI-A),
encrypts them into untrusted memory, and serves verified
SparseLengthsWeightedSum queries whose affine correction happens on the
trusted side.

The store also enforces the overflow budget of footnote 1 /
Thm. A.2: at construction it computes the largest pooling factor for
which `PF * max(a) * max(q)` fits the ring, and rejects larger queries
up front rather than letting verification fail at runtime.

With a :class:`~repro.faults.recovery.RecoveryPolicy` attached the store
additionally models what a deployed enclave does *after* the
verification-failure interrupt of Sec. V-E3: bounded retries, a trusted
non-NDP recompute with per-row verification, plaintext repair with
per-row quarantine, and re-encryption of the region under bumped
versions (DESIGN.md Sec. 11).  Recovery-enabled stores arm the
process-wide fault injector (:mod:`repro.faults.hooks`) around their
offload attempts, which is how chaos runs drive faults only into paths
that can absorb them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import obs
from ..core.params import SecNDPParams
from ..core.protocol import SecNDPProcessor, UntrustedNdpDevice
from ..errors import ConfigurationError, RecoveryExhaustedError, VerificationError
from ..faults import hooks as fault_hooks
from ..faults.plan import FaultInjector
from ..faults.recovery import RecoveryLog, RecoveryOutcome, RecoveryPolicy
from .quantization import ColumnwiseQuantizer, TablewiseQuantizer

__all__ = ["QueryOutcome", "SecureEmbeddingStore"]

_BLOCK_BYTES = 16


@dataclass(frozen=True)
class QueryOutcome:
    """Per-query verdict from :meth:`SecureEmbeddingStore.sls_scatter`.

    ``ok`` queries carry served values; failed queries name the terminal
    exception (``kind`` is the :mod:`repro.errors` class name) so the
    serving layer can emit a typed per-request error.  ``degraded`` marks
    queries served (or failed) on the per-query fallback path after the
    amortized batch failed verification wholesale.
    """

    ok: bool
    error: Optional[str] = None
    kind: Optional[str] = None
    degraded: bool = False


@dataclass
class _TableEntry:
    name: str
    scale: np.ndarray      # scalar (table-wise) or per-column vector
    bias: np.ndarray
    n_rows: int
    dim: int
    max_quant: int


class SecureEmbeddingStore:
    """Quantize, encrypt and serve embedding tables through SecNDP.

    Parameters
    ----------
    processor / device:
        The trusted and untrusted protocol parties.
    quantization:
        ``"table"`` (one scale/bias per table) or ``"column"`` (per
        column); both commute with pooling over ciphertext.
    bits:
        Quantized integer width (8 in the paper's evaluation).
    verify:
        Attach tags and verify every query (default True).
    base_addr:
        Start of the arena in untrusted memory where tables are placed.
    recovery:
        Optional :class:`RecoveryPolicy`; when set, every query is served
        through the verification-triggered recovery ladder (retry ->
        trusted recompute -> repair/quarantine -> re-encryption) instead
        of letting :class:`VerificationError` propagate.  Requires
        ``verify=True``.
    fault_injector:
        Explicit :class:`FaultInjector` armed around this store's offload
        attempts.  Defaults to the process-wide injector
        (:func:`repro.faults.hooks.get`) or the ambient
        ``SECNDP_FAULT_PLAN`` one; only consulted when ``recovery`` is
        set - a store that cannot recover is never armed.
    """

    def __init__(
        self,
        processor: SecNDPProcessor,
        device: UntrustedNdpDevice,
        quantization: str = "table",
        bits: int = 8,
        verify: bool = True,
        base_addr: int = 0x100000,
        recovery: Optional[RecoveryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if quantization not in ("table", "column"):
            raise ConfigurationError(
                f"quantization must be 'table' or 'column', got {quantization!r}"
            )
        if fault_injector is not None and recovery is None:
            raise ConfigurationError(
                "fault_injector requires a RecoveryPolicy (an unrecoverable "
                "store must never arm fault injection)"
            )
        if recovery is not None and not verify:
            raise ConfigurationError(
                "recovery requires verify=True (detection drives the ladder)"
            )
        self.processor = processor
        self.device = device
        self.quantization = quantization
        self.bits = bits
        self.verify = verify
        self._cursor = base_addr
        self._tables: Dict[str, _TableEntry] = {}
        self.recovery = recovery
        self.recovery_log = RecoveryLog()
        self._plain: Dict[str, np.ndarray] = {}
        #: optional hot-row tiering facade (see :meth:`attach_tiering`)
        self._tiering = None
        if recovery is not None:
            self.fault_injector = (
                fault_injector
                if fault_injector is not None
                else (fault_hooks.get() or fault_hooks.ambient_injector())
            )
        else:
            self.fault_injector = None

    # -- loading ---------------------------------------------------------------

    def add_table(self, name: str, values: np.ndarray) -> None:
        """Quantize + encrypt one float table into untrusted memory."""
        if name in self._tables:
            raise ConfigurationError(f"table {name!r} already loaded")
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ConfigurationError("embedding table must be 2-D")
        if self.quantization == "table":
            q, scale, bias = TablewiseQuantizer(self.bits).quantize(values)
            scale_arr = np.full(values.shape[1], scale)
            bias_arr = np.full(values.shape[1], bias)
        else:
            q, scales, biases = ColumnwiseQuantizer(self.bits).quantize(values)
            scale_arr, bias_arr = scales, biases

        # Pad columns so each row fills whole cipher blocks (Alg. 1 chunks
        # the matrix into w_c-bit blocks); padding columns are sliced off
        # at query time.
        elems_per_block = self.processor.params.elements_per_block
        pad_cols = (-q.shape[1]) % elems_per_block
        if pad_cols:
            q = np.concatenate(
                [q, np.zeros((q.shape[0], pad_cols), dtype=q.dtype)], axis=1
            )

        ring = self.processor.ring
        encoded = ring.encode(q.astype(np.int64))
        enc = self.processor.encrypt_matrix(
            encoded, self._cursor, f"emb/{name}", with_tags=self.verify
        )
        self.device.store(name, enc)
        if self.recovery is not None and self.recovery.retain_plaintext:
            # Trusted-side copy of the quantized residues: rung 3 (repair)
            # and rung 4 (re-encryption) of the recovery ladder need it.
            self._plain[name] = encoded.copy()
        footprint = encoded.size * self.processor.params.element_bytes
        self._cursor = -(-(self._cursor + footprint) // _BLOCK_BYTES) * _BLOCK_BYTES

        self._tables[name] = _TableEntry(
            name=name,
            scale=scale_arr,
            bias=bias_arr,
            n_rows=values.shape[0],
            dim=values.shape[1],
            max_quant=int(q.max()) if q.size else 0,
        )

    def tables(self) -> List[str]:
        return sorted(self._tables)

    # -- hot-row tiering (DESIGN.md Sec. 12) -----------------------------------

    def attach_tiering(self, config=None, tracker=None):
        """Attach a :class:`~repro.tiering.HotRowTiering` facade.

        Once attached, every validated query (``sls`` / ``sls_many`` /
        the parallel engine — all funnel through ``_validate_query``)
        feeds the access tracker, and re-encryptions report their retired
        versions so prewarmed pads are invalidated.  Returns the facade;
        call ``start()`` on it for background prewarming or
        ``prewarm_now()`` for synchronous warming.
        """
        from ..tiering import HotRowTiering  # local import: avoid cycle

        self._tiering = HotRowTiering(self, config=config, tracker=tracker)
        return self._tiering

    @property
    def tiering(self):
        """The attached tiering facade, or ``None``."""
        return self._tiering

    def cache_info(self):
        """This store's OTP pad-cache statistics (single-process view).

        For the fleet-wide view (store + pool workers) use
        :meth:`~repro.parallel.engine.ParallelSlsEngine.cache_info`.
        """
        return self.processor.encryptor.otp.cache_info()

    def tag_cache_info(self):
        """This store's tag-pad cache statistics."""
        return self.processor.mac.tag_cache_info()

    # -- overflow budgeting ---------------------------------------------------------

    def max_pooling_factor(self, name: str, max_weight: int = 1) -> int:
        """Largest PF guaranteed not to overflow the ring for this table.

        Verification treats a column sum reaching ``2^w_e`` as a fault
        (Thm. A.2), so callers must stay under
        ``PF * max_weight * max(q) < 2^w_e``.
        """
        entry = self._tables[name]
        per_term = max(entry.max_quant, 1) * max(max_weight, 1)
        return max((self.processor.ring.modulus - 1) // per_term, 0)

    def _validate_query(
        self,
        name: str,
        rows: Sequence[int],
        weights: Optional[Sequence[int]],
    ) -> Tuple[List[int], List[int]]:
        """Shared per-query checks: weight sanity + overflow budget.

        Returns the normalised ``(rows, weights)`` lists.  Used by
        :meth:`sls`, :meth:`sls_many` and the sharded engine in
        ``repro.parallel`` so the overflow budget of Thm. A.2 is enforced
        identically on every serving path.
        """
        rows = [int(r) for r in rows]
        if weights is None:
            weights = [1] * len(rows)
        else:
            weights = [int(w) for w in weights]
        if any(w < 0 for w in weights):
            raise ConfigurationError("weights must be non-negative integers")
        if len(weights) != len(rows):
            raise ConfigurationError("rows and weights must have equal length")
        max_w = max(weights, default=1)
        if len(rows) > self.max_pooling_factor(name, max_w):
            raise ConfigurationError(
                f"pooling factor {len(rows)} with max weight {max_w} may "
                f"overflow Z(2^{self.processor.params.element_bits}) for "
                f"table {name!r}; split the query"
            )
        if self._tiering is not None:
            # Single observation point for every serving path (sls,
            # sls_many, parallel engine): feed the hot-row sketch.
            self._tiering.observe(name, rows)
        return rows, weights

    def _validate_batch(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]],
    ) -> Tuple[List[List[int]], List[List[int]]]:
        """:meth:`_validate_query` over a whole batch."""
        if batch_weights is not None and len(batch_weights) != len(batch_rows):
            raise ConfigurationError(
                "batch_rows and batch_weights must have equal length"
            )
        rows_list: List[List[int]] = []
        weights_list: List[List[int]] = []
        for i, rows in enumerate(batch_rows):
            weights = batch_weights[i] if batch_weights is not None else None
            rows, weights = self._validate_query(name, rows, weights)
            rows_list.append(rows)
            weights_list.append(weights)
        return rows_list, weights_list

    # -- queries -----------------------------------------------------------------------

    def sls(
        self,
        name: str,
        rows: Sequence[int],
        weights: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Verified SparseLengths(Weighted)Sum, returned as floats.

        The NDP side pools quantized ciphertext; the trusted side applies
        the affine correction ``res = resq * scale + bias * sum(a)``.
        Weights must be non-negative integers (the protocol operates on
        ring residues; Sec. IV-A).
        """
        entry = self._tables[name]
        rows, weights = self._validate_query(name, rows, weights)
        obs.inc("sls.queries")
        if self.recovery is not None:
            return self._serve_query_recovering(name, 0, rows, weights, entry)
        try:
            result = self.processor.weighted_row_sum(
                self.device, name, rows, weights, verify=self.verify
            )
        except VerificationError:
            obs.emit_event(obs.VERIFY_FAILURE, table=name, rows=rows)
            raise
        pooled_q = result.values.astype(np.float64)[: entry.dim]
        return pooled_q * entry.scale + entry.bias * float(sum(weights))

    def sls_split(
        self,
        name: str,
        rows: Sequence[int],
        weights: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Like :meth:`sls` but transparently splits oversized queries.

        A pooling factor beyond the ring's overflow budget is broken into
        chunks that each verify independently; the chunk results are
        summed in the (float) corrected domain.  This is how a deployment
        serves the analytics workload's PF=10,000 queries with an 8-bit
        element ring, at the cost of one extra verification per chunk.
        """
        if weights is None:
            weights = [1] * len(rows)
        if len(weights) != len(rows):
            raise ConfigurationError("rows and weights must have equal length")
        if not rows:
            raise ConfigurationError("empty query")
        max_w = max(int(w) for w in weights)
        budget = self.max_pooling_factor(name, max_w)
        if budget < 1:
            raise ConfigurationError(
                f"even a single row may overflow the ring for table {name!r}"
            )
        total = np.zeros(self._tables[name].dim)
        for start in range(0, len(rows), budget):
            total += self.sls(
                name,
                list(rows[start : start + budget]),
                list(weights[start : start + budget]),
            )
        return total

    def sls_many(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
    ) -> np.ndarray:
        """Batched verified SLS: pooled vectors for many queries at once.

        Semantically identical to calling :meth:`sls` per query (same
        overflow budgeting, same verification, same affine correction),
        but OTP and tag-pad regeneration is amortized over the union of
        rows the batch touches via
        :meth:`SecNDPProcessor.weighted_row_sum_batch` — the DLRM
        inference-batch hot path.
        """
        entry = self._tables[name]
        rows_list, weights_list = self._validate_batch(name, batch_rows, batch_weights)
        if obs.enabled():
            total_rows = sum(len(rows) for rows in rows_list)
            unique_rows = len({r for rows in rows_list for r in rows})
            obs.inc("sls.batch.calls")
            obs.inc("sls.batch.queries", len(rows_list))
            obs.inc("sls.batch.rows_total", total_rows)
            obs.inc("sls.batch.rows_unique", unique_rows)
        if self.recovery is not None:
            return self._serve_many_recovering(name, rows_list, weights_list, entry)
        with obs.span("sls.batch"):
            try:
                results = self.processor.weighted_row_sum_batch(
                    self.device, name, rows_list, weights_list, verify=self.verify
                )
            except VerificationError:
                obs.emit_event(
                    obs.VERIFY_FAILURE,
                    table=name,
                    rows=sorted({r for rows in rows_list for r in rows}),
                    scope="batch",
                    queries=len(rows_list),
                )
                raise
        out = np.zeros((len(rows_list), entry.dim))
        for i, (result, weights) in enumerate(zip(results, weights_list)):
            pooled_q = result.values.astype(np.float64)[: entry.dim]
            out[i] = pooled_q * entry.scale + entry.bias * float(sum(weights))
        return out

    def sls_batch(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
    ) -> np.ndarray:
        """Pooled vectors for a batch of queries -> (batch, dim).

        Kept as the historical name; delegates to the amortized
        :meth:`sls_many` path.
        """
        return self.sls_many(name, batch_rows, batch_weights)

    def sls_scatter(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
    ) -> Tuple[np.ndarray, List["QueryOutcome"]]:
        """Batched SLS with per-query verification outcomes preserved.

        The scatter hook behind the serving front-end: a coalesced batch
        runs the amortized :meth:`sls_many` path, but a verification
        failure must not fail every request in the batch — only the
        requests whose queries actually touch a corrupted row.  On a
        batch-level failure (or exhausted recovery) the batch degrades to
        per-query serving: each query runs individually (feeding the
        recovery ladder when one is attached), failed queries get an
        all-zero row plus a failed :class:`QueryOutcome`, and every other
        query's values stay bit-identical to a direct :meth:`sls` call.

        Returns ``(values, outcomes)`` where ``values`` has one row per
        query (zeros for failed queries) and ``outcomes[i]`` reports
        whether query ``i`` was served.
        """
        batch_rows = [list(rows) for rows in batch_rows]
        if batch_weights is not None:
            batch_weights = [
                None if w is None else list(w) for w in batch_weights
            ]
        try:
            values = self.sls_many(name, batch_rows, batch_weights)
            return values, [QueryOutcome(ok=True)] * len(batch_rows)
        except (VerificationError, RecoveryExhaustedError) as exc:
            obs.inc("sls.scatter.degradations")
            obs.emit_event(
                obs.RECOVERY_FALLBACK,
                table=name,
                scope="scatter",
                queries=len(batch_rows),
                error=type(exc).__name__,
            )
        entry = self._tables[name]
        values = np.zeros((len(batch_rows), entry.dim))
        outcomes: List[QueryOutcome] = []
        for i, rows in enumerate(batch_rows):
            weights = batch_weights[i] if batch_weights is not None else None
            try:
                values[i] = self.sls(name, rows, weights)
                outcomes.append(QueryOutcome(ok=True, degraded=True))
            except (VerificationError, RecoveryExhaustedError) as exc:
                obs.inc("sls.scatter.query_failures")
                outcomes.append(
                    QueryOutcome(
                        ok=False,
                        error=str(exc),
                        kind=type(exc).__name__,
                        degraded=True,
                    )
                )
        return values, outcomes

    # -- reference ---------------------------------------------------------------------

    def dequantized_table(self, name: str) -> np.ndarray:
        """Plaintext view of the quantized table (for accuracy analysis).

        Requires the trusted side: decrypts the stored ciphertext and
        applies the affine map - bit-identical to what :meth:`sls` pools.
        """
        entry = self._tables[name]
        enc = self.device.stored(name)
        q = self.processor.decrypt_matrix(enc).astype(np.float64)[:, : entry.dim]
        return q * entry.scale[None, :] + entry.bias[None, :]

    # -- verification-triggered recovery (DESIGN.md Sec. 11) ---------------------------

    @staticmethod
    def _affine(entry: _TableEntry, values: np.ndarray, weights: Sequence[int]) -> np.ndarray:
        pooled_q = values.astype(np.float64)[: entry.dim]
        return pooled_q * entry.scale + entry.bias * float(sum(weights))

    def _serve_many_recovering(
        self,
        name: str,
        rows_list: List[List[int]],
        weights_list: List[List[int]],
        entry: _TableEntry,
    ) -> np.ndarray:
        """Batched serve under recovery: optimistic amortized path first.

        The whole batch is offloaded through the amortized
        :meth:`SecNDPProcessor.weighted_row_sum_batch`; on any
        verification failure the batch degrades to per-query recovery so
        one faulted query cannot poison its neighbours' results.
        """
        quarantined = (
            self.recovery_log.quarantined_rows(name)
            if self.recovery.quarantine
            else set()
        )
        if not quarantined or all(
            quarantined.isdisjoint(rows) for rows in rows_list
        ):
            inj = self.fault_injector
            try:
                if inj is not None:
                    inj.set_context(f"{name}:batch")
                with fault_hooks.armed(inj):
                    with obs.span("sls.batch"):
                        results = self.processor.weighted_row_sum_batch(
                            self.device, name, rows_list, weights_list, verify=True
                        )
            except VerificationError:
                obs.inc("recovery.detections")
                obs.inc("recovery.batch_degradations")
                obs.emit_event(
                    obs.VERIFY_FAILURE,
                    table=name,
                    rows=sorted({r for rows in rows_list for r in rows}),
                    scope="batch",
                    queries=len(rows_list),
                )
            else:
                out = np.zeros((len(rows_list), entry.dim))
                for i, (result, weights) in enumerate(zip(results, weights_list)):
                    out[i] = self._affine(entry, result.values, weights)
                    self.recovery_log.record(
                        RecoveryOutcome(
                            table=name,
                            rows=tuple(rows_list[i]),
                            resolved_via="ok",
                            detected=False,
                            attempts=1,
                        )
                    )
                return out
        out = np.zeros((len(rows_list), entry.dim))
        for i, (rows, weights) in enumerate(zip(rows_list, weights_list)):
            out[i] = self._serve_query_recovering(name, i, rows, weights, entry)
        return out

    def _serve_query_recovering(
        self,
        name: str,
        idx: int,
        rows: List[int],
        weights: List[int],
        entry: _TableEntry,
    ) -> np.ndarray:
        """One query through the recovery ladder (always ``verify=True``)."""
        policy = self.recovery
        inj = self.fault_injector
        if policy.quarantine and not self.recovery_log.quarantined_rows(
            name
        ).isdisjoint(rows):
            # Rung 3 short-circuit: the query touches known-bad rows, so
            # the NDP offload would only fail again.  Serve trusted-side.
            obs.inc("recovery.quarantine_hits")
            obs.emit_event(obs.QUARANTINE_HIT, table=name, rows=rows)
            with obs.span("recovery.fallback"):
                values, repaired = self._trusted_query(name, rows, weights)
            self.recovery_log.record(
                RecoveryOutcome(
                    table=name,
                    rows=tuple(rows),
                    resolved_via="quarantined",
                    detected=bool(repaired),
                    attempts=0,
                    repaired_rows=tuple(repaired),
                )
            )
            return self._affine(entry, values, weights)

        detected = False
        attempts = 0
        for attempt in range(policy.max_retries + 1):
            attempts += 1
            try:
                if inj is not None:
                    inj.set_context(f"{name}:q{idx}:a{attempt}")
                with fault_hooks.armed(inj):
                    with obs.span("recovery.offload"):
                        result = self.processor.weighted_row_sum(
                            self.device, name, rows, weights, verify=True
                        )
            except VerificationError:
                detected = True
                obs.inc("recovery.detections")
                obs.emit_event(
                    obs.VERIFY_FAILURE, table=name, rows=rows, attempt=attempt
                )
                if attempt < policy.max_retries:
                    obs.inc("recovery.retries")
                    obs.emit_event(
                        obs.RECOVERY_RETRY, table=name, rows=rows, attempt=attempt
                    )
                    policy.sleep(policy.backoff_s(attempt, salt=idx))
                continue
            self.recovery_log.record(
                RecoveryOutcome(
                    table=name,
                    rows=tuple(rows),
                    resolved_via="retry" if detected else "ok",
                    detected=detected,
                    attempts=attempts,
                )
            )
            return self._affine(entry, result.values, weights)

        # Rungs 2/3: retries exhausted -> trusted non-NDP recompute with
        # per-row verification, repairing rows that are truly corrupted.
        obs.inc("recovery.fallbacks")
        obs.emit_event(
            obs.RECOVERY_FALLBACK, table=name, rows=rows, attempts=attempts
        )
        with obs.span("recovery.fallback"):
            values, repaired = self._trusted_query(name, rows, weights)
        self.recovery_log.record(
            RecoveryOutcome(
                table=name,
                rows=tuple(rows),
                resolved_via="repair" if repaired else "fallback",
                detected=True,
                attempts=attempts,
                repaired_rows=tuple(repaired),
            )
        )
        return self._affine(entry, values, weights)

    def _trusted_query(
        self, name: str, rows: List[int], weights: List[int]
    ) -> Tuple[np.ndarray, List[int]]:
        """Rung 2/3: per-row verified reads, pooled trusted-side.

        Each distinct row is fetched as a PF=1 weighted sum (which has a
        full tag identity, so verification pinpoints exactly which rows
        are corrupted); the pooling happens in the enclave.  Never armed:
        this is the paper's non-NDP degraded mode and must stay honest.
        Rows that fail individual verification are repaired from retained
        plaintext (quarantine + possible re-encryption follow) or, with
        no plaintext, raise :class:`RecoveryExhaustedError`.
        """
        ring = self.processor.ring
        residues: Dict[int, np.ndarray] = {}
        bad_rows: List[int] = []
        for row in sorted(set(rows)):
            try:
                result = self.processor.weighted_row_sum(
                    self.device, name, [row], [1], verify=True
                )
            except VerificationError:
                bad_rows.append(row)
            else:
                residues[row] = result.values
        repaired: List[int] = []
        if bad_rows:
            plain = self._plain.get(name)
            if plain is None:
                obs.emit_event(
                    obs.RECOVERY_EXHAUSTED,
                    table=name,
                    rows=bad_rows,
                    reason="no retained plaintext",
                )
                raise RecoveryExhaustedError(
                    f"rows {bad_rows} of table {name!r} fail verification and "
                    f"no trusted plaintext is retained "
                    f"(RecoveryPolicy.retain_plaintext=False)"
                )
            obs.inc("recovery.repairs", len(bad_rows))
            obs.emit_event(obs.RECOVERY_REPAIR, table=name, rows=bad_rows)
            for row in bad_rows:
                residues[row] = plain[row].copy()
                repaired.append(row)
            self._after_repair(name, repaired)
        n_cols = self.device.stored(name).ciphertext.shape[1]
        if not rows:
            return np.zeros(n_cols, dtype=ring.dtype), repaired
        weights_ring = ring.encode(np.asarray(weights, dtype=np.int64))
        stacked = np.stack([residues[r] for r in rows])
        return ring.dot(weights_ring, stacked), repaired

    def _after_repair(self, name: str, repaired_rows: Sequence[int]) -> None:
        policy = self.recovery
        if policy.quarantine:
            self.recovery_log.quarantine_rows(name, repaired_rows)
        total = self.recovery_log.note_repairs(name, len(repaired_rows))
        if policy.reencrypt_after and total >= policy.reencrypt_after:
            self.reencrypt_table(name)

    def quarantined_rows(self, name: str) -> Set[int]:
        """Rows of ``name`` currently served trusted-side only."""
        return set(self.recovery_log.quarantined_rows(name))

    def load_quarantine_journal(self, path) -> int:
        """Reload quarantine/repair state from a JSONL security-event journal.

        ``path`` is a file produced by a previous process's
        ``obs.enable_events(path)`` sink (or the CLI ``--events PATH``
        flag).  Replays quarantine / repair / re-encryption events into
        this store's :class:`RecoveryLog` — a restarted store keeps
        serving known-bad rows trusted-side instead of re-learning the
        damage one verification failure at a time.  Replay never
        re-emits, so loading a journal does not append to it.  Events
        for tables this store does not hold are ignored.  Returns the
        number of state-bearing events applied.
        """
        events = [
            event
            for event in obs.read_events(path)
            if event.table in self._tables
        ]
        return self.recovery_log.replay_events(events)

    def reencrypt_table(self, name: str) -> None:
        """Rung 4: re-encrypt a table from trusted plaintext, bumped versions.

        The Sec. V-A version bump made operational: fresh data/checksum/
        tag versions are drawn from the processor's
        :class:`~repro.core.versions.VersionManager`, the region is
        re-encrypted wholesale into untrusted memory, and the table's
        quarantine is cleared - the persistent damage is gone.  Requires
        retained plaintext.
        """
        plain = self._plain.get(name)
        if plain is None:
            raise ConfigurationError(
                f"cannot re-encrypt table {name!r}: no trusted plaintext "
                f"retained (load it under a RecoveryPolicy with "
                f"retain_plaintext=True)"
            )
        old = self.device.stored(name)
        retired_data, retired_tag = old.version, old.tag_version
        obs.inc("recovery.reencryptions")
        with obs.span("recovery.reencrypt"):
            enc = self.processor.encrypt_matrix(
                plain, old.base_addr, f"emb/{name}", with_tags=self.verify
            )
        self.device.store(name, enc)
        self.recovery_log.clear_quarantine(name)
        self.recovery_log.note_reencryption(name)
        obs.emit_event(
            obs.REENCRYPT,
            table=name,
            version=enc.version,
            retired_version=retired_data,
            retired_tag_version=retired_tag,
        )
        if self._tiering is not None:
            # Invalidate prewarmed pads keyed by the retired versions:
            # they can never be served for the new ciphertext (cache keys
            # carry the version), but they waste capacity and the warm-set
            # bookkeeping must restart under the bumped versions.
            self._tiering.invalidate(
                name, data_version=retired_data, tag_version=retired_tag
            )
