"""High-level secure embedding store: quantized SLS over SecNDP.

This is the deployment-facing API the paper's DLRM use case implies: an
enclave owns a set of embedding tables, quantizes them with one of the
ciphertext-friendly schemes (table-wise or column-wise, Sec. VI-A),
encrypts them into untrusted memory, and serves verified
SparseLengthsWeightedSum queries whose affine correction happens on the
trusted side.

The store also enforces the overflow budget of footnote 1 /
Thm. A.2: at construction it computes the largest pooling factor for
which `PF * max(a) * max(q)` fits the ring, and rejects larger queries
up front rather than letting verification fail at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.params import SecNDPParams
from ..core.protocol import SecNDPProcessor, UntrustedNdpDevice
from ..errors import ConfigurationError
from .quantization import ColumnwiseQuantizer, TablewiseQuantizer

__all__ = ["SecureEmbeddingStore"]

_BLOCK_BYTES = 16


@dataclass
class _TableEntry:
    name: str
    scale: np.ndarray      # scalar (table-wise) or per-column vector
    bias: np.ndarray
    n_rows: int
    dim: int
    max_quant: int


class SecureEmbeddingStore:
    """Quantize, encrypt and serve embedding tables through SecNDP.

    Parameters
    ----------
    processor / device:
        The trusted and untrusted protocol parties.
    quantization:
        ``"table"`` (one scale/bias per table) or ``"column"`` (per
        column); both commute with pooling over ciphertext.
    bits:
        Quantized integer width (8 in the paper's evaluation).
    verify:
        Attach tags and verify every query (default True).
    base_addr:
        Start of the arena in untrusted memory where tables are placed.
    """

    def __init__(
        self,
        processor: SecNDPProcessor,
        device: UntrustedNdpDevice,
        quantization: str = "table",
        bits: int = 8,
        verify: bool = True,
        base_addr: int = 0x100000,
    ):
        if quantization not in ("table", "column"):
            raise ConfigurationError(
                f"quantization must be 'table' or 'column', got {quantization!r}"
            )
        self.processor = processor
        self.device = device
        self.quantization = quantization
        self.bits = bits
        self.verify = verify
        self._cursor = base_addr
        self._tables: Dict[str, _TableEntry] = {}

    # -- loading ---------------------------------------------------------------

    def add_table(self, name: str, values: np.ndarray) -> None:
        """Quantize + encrypt one float table into untrusted memory."""
        if name in self._tables:
            raise ConfigurationError(f"table {name!r} already loaded")
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ConfigurationError("embedding table must be 2-D")
        if self.quantization == "table":
            q, scale, bias = TablewiseQuantizer(self.bits).quantize(values)
            scale_arr = np.full(values.shape[1], scale)
            bias_arr = np.full(values.shape[1], bias)
        else:
            q, scales, biases = ColumnwiseQuantizer(self.bits).quantize(values)
            scale_arr, bias_arr = scales, biases

        # Pad columns so each row fills whole cipher blocks (Alg. 1 chunks
        # the matrix into w_c-bit blocks); padding columns are sliced off
        # at query time.
        elems_per_block = self.processor.params.elements_per_block
        pad_cols = (-q.shape[1]) % elems_per_block
        if pad_cols:
            q = np.concatenate(
                [q, np.zeros((q.shape[0], pad_cols), dtype=q.dtype)], axis=1
            )

        ring = self.processor.ring
        encoded = ring.encode(q.astype(np.int64))
        enc = self.processor.encrypt_matrix(
            encoded, self._cursor, f"emb/{name}", with_tags=self.verify
        )
        self.device.store(name, enc)
        footprint = encoded.size * self.processor.params.element_bytes
        self._cursor = -(-(self._cursor + footprint) // _BLOCK_BYTES) * _BLOCK_BYTES

        self._tables[name] = _TableEntry(
            name=name,
            scale=scale_arr,
            bias=bias_arr,
            n_rows=values.shape[0],
            dim=values.shape[1],
            max_quant=int(q.max()) if q.size else 0,
        )

    def tables(self) -> List[str]:
        return sorted(self._tables)

    # -- overflow budgeting ---------------------------------------------------------

    def max_pooling_factor(self, name: str, max_weight: int = 1) -> int:
        """Largest PF guaranteed not to overflow the ring for this table.

        Verification treats a column sum reaching ``2^w_e`` as a fault
        (Thm. A.2), so callers must stay under
        ``PF * max_weight * max(q) < 2^w_e``.
        """
        entry = self._tables[name]
        per_term = max(entry.max_quant, 1) * max(max_weight, 1)
        return max((self.processor.ring.modulus - 1) // per_term, 0)

    def _validate_query(
        self,
        name: str,
        rows: Sequence[int],
        weights: Optional[Sequence[int]],
    ) -> Tuple[List[int], List[int]]:
        """Shared per-query checks: weight sanity + overflow budget.

        Returns the normalised ``(rows, weights)`` lists.  Used by
        :meth:`sls`, :meth:`sls_many` and the sharded engine in
        ``repro.parallel`` so the overflow budget of Thm. A.2 is enforced
        identically on every serving path.
        """
        rows = [int(r) for r in rows]
        if weights is None:
            weights = [1] * len(rows)
        else:
            weights = [int(w) for w in weights]
        if any(w < 0 for w in weights):
            raise ConfigurationError("weights must be non-negative integers")
        if len(weights) != len(rows):
            raise ConfigurationError("rows and weights must have equal length")
        max_w = max(weights, default=1)
        if len(rows) > self.max_pooling_factor(name, max_w):
            raise ConfigurationError(
                f"pooling factor {len(rows)} with max weight {max_w} may "
                f"overflow Z(2^{self.processor.params.element_bits}) for "
                f"table {name!r}; split the query"
            )
        return rows, weights

    def _validate_batch(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]],
    ) -> Tuple[List[List[int]], List[List[int]]]:
        """:meth:`_validate_query` over a whole batch."""
        if batch_weights is not None and len(batch_weights) != len(batch_rows):
            raise ConfigurationError(
                "batch_rows and batch_weights must have equal length"
            )
        rows_list: List[List[int]] = []
        weights_list: List[List[int]] = []
        for i, rows in enumerate(batch_rows):
            weights = batch_weights[i] if batch_weights is not None else None
            rows, weights = self._validate_query(name, rows, weights)
            rows_list.append(rows)
            weights_list.append(weights)
        return rows_list, weights_list

    # -- queries -----------------------------------------------------------------------

    def sls(
        self,
        name: str,
        rows: Sequence[int],
        weights: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Verified SparseLengths(Weighted)Sum, returned as floats.

        The NDP side pools quantized ciphertext; the trusted side applies
        the affine correction ``res = resq * scale + bias * sum(a)``.
        Weights must be non-negative integers (the protocol operates on
        ring residues; Sec. IV-A).
        """
        entry = self._tables[name]
        rows, weights = self._validate_query(name, rows, weights)
        obs.inc("sls.queries")
        result = self.processor.weighted_row_sum(
            self.device, name, rows, weights, verify=self.verify
        )
        pooled_q = result.values.astype(np.float64)[: entry.dim]
        return pooled_q * entry.scale + entry.bias * float(sum(weights))

    def sls_split(
        self,
        name: str,
        rows: Sequence[int],
        weights: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Like :meth:`sls` but transparently splits oversized queries.

        A pooling factor beyond the ring's overflow budget is broken into
        chunks that each verify independently; the chunk results are
        summed in the (float) corrected domain.  This is how a deployment
        serves the analytics workload's PF=10,000 queries with an 8-bit
        element ring, at the cost of one extra verification per chunk.
        """
        if weights is None:
            weights = [1] * len(rows)
        if len(weights) != len(rows):
            raise ConfigurationError("rows and weights must have equal length")
        if not rows:
            raise ConfigurationError("empty query")
        max_w = max(int(w) for w in weights)
        budget = self.max_pooling_factor(name, max_w)
        if budget < 1:
            raise ConfigurationError(
                f"even a single row may overflow the ring for table {name!r}"
            )
        total = np.zeros(self._tables[name].dim)
        for start in range(0, len(rows), budget):
            total += self.sls(
                name,
                list(rows[start : start + budget]),
                list(weights[start : start + budget]),
            )
        return total

    def sls_many(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
    ) -> np.ndarray:
        """Batched verified SLS: pooled vectors for many queries at once.

        Semantically identical to calling :meth:`sls` per query (same
        overflow budgeting, same verification, same affine correction),
        but OTP and tag-pad regeneration is amortized over the union of
        rows the batch touches via
        :meth:`SecNDPProcessor.weighted_row_sum_batch` — the DLRM
        inference-batch hot path.
        """
        entry = self._tables[name]
        rows_list, weights_list = self._validate_batch(name, batch_rows, batch_weights)
        if obs.enabled():
            total_rows = sum(len(rows) for rows in rows_list)
            unique_rows = len({r for rows in rows_list for r in rows})
            obs.inc("sls.batch.calls")
            obs.inc("sls.batch.queries", len(rows_list))
            obs.inc("sls.batch.rows_total", total_rows)
            obs.inc("sls.batch.rows_unique", unique_rows)
        with obs.span("sls.batch"):
            results = self.processor.weighted_row_sum_batch(
                self.device, name, rows_list, weights_list, verify=self.verify
            )
        out = np.zeros((len(rows_list), entry.dim))
        for i, (result, weights) in enumerate(zip(results, weights_list)):
            pooled_q = result.values.astype(np.float64)[: entry.dim]
            out[i] = pooled_q * entry.scale + entry.bias * float(sum(weights))
        return out

    def sls_batch(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
    ) -> np.ndarray:
        """Pooled vectors for a batch of queries -> (batch, dim).

        Kept as the historical name; delegates to the amortized
        :meth:`sls_many` path.
        """
        return self.sls_many(name, batch_rows, batch_weights)

    # -- reference ---------------------------------------------------------------------

    def dequantized_table(self, name: str) -> np.ndarray:
        """Plaintext view of the quantized table (for accuracy analysis).

        Requires the trusted side: decrypts the stored ciphertext and
        applies the affine map - bit-identical to what :meth:`sls` pools.
        """
        entry = self._tables[name]
        enc = self.device.stored(name)
        q = self.processor.decrypt_matrix(enc).astype(np.float64)[:, : entry.dim]
        return q * entry.scale[None, :] + entry.bias[None, :]
