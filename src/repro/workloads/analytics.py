"""Medical data analytics workload (paper Sec. VI-A (2)).

A gene-expression database (patients x genes) is stored encrypted in
memory; researchers submit lists of patient IDs and the NDP units compute
group summations, from which the processor derives means and two-sample
t-statistics (Student's t-test [71]) - e.g. case vs. control expression
of a gene.

The secure path uses the exact SecNDP weighted-summation protocol: the
expression matrix is fixed-point-quantized into the ring, patient rows
are pooled with weight 1, and the t-test runs on the decrypted sums.
Sums of squares (needed for variances) reuse the same machinery over an
element-wise-squared copy of the matrix - a standard trick that keeps
every NDP operation linear.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.params import SecNDPParams
from ..core.protocol import SecNDPProcessor, UntrustedNdpDevice
from ..errors import ConfigurationError
from .datasets import GeneExpressionData
from .quantization import FixedPointCodec

__all__ = ["TTestResult", "welch_t_test", "SecureGeneDatabase"]


@dataclass(frozen=True)
class TTestResult:
    """Two-sample (Welch) t-test summary for one gene."""

    t_statistic: float
    dof: float
    mean_case: float
    mean_control: float

    @property
    def significant_at_3sigma(self) -> bool:
        return abs(self.t_statistic) > 3.0


def welch_t_test(
    sum_a: float, sumsq_a: float, n_a: int,
    sum_b: float, sumsq_b: float, n_b: int,
) -> TTestResult:
    """Welch's t-test from group sums and sums of squares.

    Using only (sum, sum of squares, count) is what makes the test
    computable from NDP summation results alone.
    """
    if n_a < 2 or n_b < 2:
        raise ConfigurationError("need at least two samples per group")
    mean_a = sum_a / n_a
    mean_b = sum_b / n_b
    var_a = max((sumsq_a - n_a * mean_a**2) / (n_a - 1), 0.0)
    var_b = max((sumsq_b - n_b * mean_b**2) / (n_b - 1), 0.0)
    se = math.sqrt(var_a / n_a + var_b / n_b)
    if se == 0.0:
        t = 0.0 if mean_a == mean_b else math.inf
        dof = float(n_a + n_b - 2)
    else:
        t = (mean_a - mean_b) / se
        num = (var_a / n_a + var_b / n_b) ** 2
        den = (var_a / n_a) ** 2 / (n_a - 1) + (var_b / n_b) ** 2 / (n_b - 1)
        dof = num / den if den > 0 else float(n_a + n_b - 2)
    return TTestResult(t, dof, mean_a, mean_b)


class SecureGeneDatabase:
    """Gene-expression DB queried through the SecNDP protocol.

    Stores two encrypted matrices - the fixed-point expression values and
    their element-wise squares - so both first and second moments are
    available as verified linear queries.
    """

    REGION = "gene-db"
    REGION_SQ = "gene-db-sq"

    def __init__(
        self,
        data: GeneExpressionData,
        processor: SecNDPProcessor,
        device: UntrustedNdpDevice,
        codec: Optional[FixedPointCodec] = None,
        base_addr: int = 0x100000,
        verify: bool = True,
    ):
        self.data = data
        self.processor = processor
        self.device = device
        self.verify = verify
        self.codec = codec or FixedPointCodec(frac_bits=8)
        ring = processor.ring

        fixed = self.codec.quantize(data.expression)
        # Squares are stored at half the fractional precision so their
        # integer range matches the same ring width.
        self.sq_codec = FixedPointCodec(
            frac_bits=self.codec.frac_bits, total_bits=self.codec.total_bits
        )
        fixed_sq = self.sq_codec.quantize(data.expression**2)

        if np.any(fixed < 0) or np.any(fixed_sq < 0):
            raise ConfigurationError("expression values must be non-negative")

        enc = processor.encrypt_matrix(
            ring.encode(fixed), base_addr, self.REGION, with_tags=verify
        )
        device.store(self.REGION, enc)
        sq_base = base_addr + 2 * fixed.size * processor.params.element_bytes
        sq_base = -(-sq_base // 16) * 16
        enc_sq = processor.encrypt_matrix(
            ring.encode(fixed_sq), sq_base, self.REGION_SQ, with_tags=verify
        )
        device.store(self.REGION_SQ, enc_sq)

    # -- queries --------------------------------------------------------------

    def group_sum(self, patient_ids: Sequence[int]) -> np.ndarray:
        """Verified NDP summation of the patients' expression vectors."""
        ones = [1] * len(patient_ids)
        res = self.processor.weighted_row_sum(
            self.device, self.REGION, list(patient_ids), ones, verify=self.verify
        )
        return self.codec.dequantize(res.values.astype(np.int64))

    def group_sum_squares(self, patient_ids: Sequence[int]) -> np.ndarray:
        ones = [1] * len(patient_ids)
        res = self.processor.weighted_row_sum(
            self.device, self.REGION_SQ, list(patient_ids), ones, verify=self.verify
        )
        return self.sq_codec.dequantize(res.values.astype(np.int64))

    def t_test(self, gene: int) -> TTestResult:
        """Case-vs-control Welch t-test for one gene, via secure sums."""
        case_ids = np.flatnonzero(self.data.is_case)
        ctrl_ids = np.flatnonzero(~self.data.is_case)
        sums_case = self.group_sum(case_ids)
        sums_ctrl = self.group_sum(ctrl_ids)
        sq_case = self.group_sum_squares(case_ids)
        sq_ctrl = self.group_sum_squares(ctrl_ids)
        return welch_t_test(
            float(sums_case[gene]), float(sq_case[gene]), len(case_ids),
            float(sums_ctrl[gene]), float(sq_ctrl[gene]), len(ctrl_ids),
        )
