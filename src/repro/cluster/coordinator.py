"""Trusted coordinator: shard, dispatch, blame, fail over, re-shard.

The cluster analogue of :class:`~repro.parallel.engine.ParallelSlsEngine`
with the trust boundary moved across TCP — and, unlike the in-process
pool (whose workers are trusted-side and share the key), the nodes on
the far side of that TCP link are the *untrusted memory party* of the
SecNDP threat model.  The coordinator owns the authoritative
:class:`~repro.workloads.secure_sls.SecureEmbeddingStore` (its local
device doubles as the trusted recompute path) and is the only party
that ever holds key material:

1. **Shard**: encrypted tables (ciphertext + encrypted tags, both
   attacker-visible by assumption) are replicated to every node;
   row-range ownership is logical (``np.linspace`` bounds over the row
   space, like the parallel engine), so re-sharding is a bounds update
   with no data movement.  The key never leaves this process.
2. **Dispatch**: each query batch is masked per owner range and fanned
   out as ``partial_sum`` frames under a deadline.  A node answers with
   ciphertext-domain sums only (``C_res`` / ``C_T_res``); the
   coordinator regenerates the pad halves (``E_res`` / ``E_T_res``)
   key-side and adds them to reconstruct the shard's share
   (:meth:`~repro.core.protocol.SecNDPProcessor.pad_share_batch` +
   :meth:`~repro.core.protocol.SecNDPProcessor.combine_device_sums`).
3. **Blame**: each reconstructed share is verified against its *own*
   restricted checksum
   (:meth:`~repro.core.protocol.SecNDPProcessor.failed_share_queries`)
   before any combining — since the pad half is computed honestly here,
   a mismatch is cryptographic evidence against exactly that node
   (publicly-identifiable abort), up to the scheme's forgery bound.
   Error frames and structurally malformed sums blame the node the same
   way; timeouts and dead connections blame it on liveness.
4. **Recover**: bounded same-node retries with deterministic
   backoff+jitter, then re-issue to a healthy replica, then trusted
   local recompute.  Every share that enters the final combine passed
   its per-shard check, and ring/field addition is exact, so answers
   stay bit-identical to the sequential single-host oracle.
5. **Quarantine**: blame strikes are weighted by evidence strength
   (:data:`~repro.cluster.health.BLAME_WEIGHTS`: forged share 3,
   dropped connection 2, deadline miss 1 — the same table the offline
   journal ranking uses); a node whose weighted count crosses the
   threshold is removed from the shard map and its rows re-owned by
   survivors.  Every step lands in the audit journal (``node_blame`` /
   ``node_quarantine`` / ``node_reshard`` / ``node_timeout`` /
   ``node_dead``), making the journal the cross-host shard-health
   record.

The final combine still runs the whole-query check
(:meth:`finalize_row_sum_batch` with ``verify=True``): per-shard
identities are exact over residues, but a whole-query ring overflow
(Thm. A.2) splits across shards and only the combined identity sees it.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.protocol import PartialSumShare
from ..errors import (
    ConfigurationError,
    PeerTimeoutError,
    RecoveryExhaustedError,
    SecNDPError,
    ServerClosedError,
    ShardVerificationError,
)
from ..faults.recovery import RecoveryPolicy
from ..serve.protocol import resolve_heartbeat_timeout
from .health import BLAME_WEIGHTS
from .node import NodeClient
from . import codec

__all__ = ["ClusterCoordinator", "ShardMap", "DEFAULT_BLAME_THRESHOLD"]

#: Weighted blame strikes before a node is quarantined.  1 = zero
#: tolerance: every failure kind carries weight >= 1
#: (:data:`~repro.cluster.health.BLAME_WEIGHTS`), so a single forged
#: share (cryptographic evidence) or missed deadline removes the node;
#: raise it when transient slowness is expected — then a forged share
#: (weight 3) still quarantines three times faster than deadline misses
#: (weight 1).
DEFAULT_BLAME_THRESHOLD = 1


@dataclass
class ShardMap:
    """Logical row-range ownership: ``bounds[name][i]`` = node i's ``[lo, hi)``."""

    nodes: List[str]
    bounds: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)

    @classmethod
    def build(cls, nodes: Sequence[str], table_rows: Dict[str, int]) -> "ShardMap":
        nodes = list(nodes)
        bounds: Dict[str, List[Tuple[int, int]]] = {}
        for name, n_rows in table_rows.items():
            edges = np.linspace(0, n_rows, len(nodes) + 1).astype(np.int64)
            bounds[name] = [
                (int(edges[i]), int(edges[i + 1])) for i in range(len(nodes))
            ]
        return cls(nodes=nodes, bounds=bounds)

    def owner_mask(
        self, name: str, node: str, rows: Sequence[int], weights: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        lo, hi = self.bounds[name][self.nodes.index(node)]
        sub_r, sub_w = [], []
        for r, w in zip(rows, weights):
            if lo <= r < hi:
                sub_r.append(r)
                sub_w.append(w)
        return sub_r, sub_w

    def ranges_for(self, node: str) -> Dict[str, Tuple[int, int]]:
        i = self.nodes.index(node)
        return {name: self.bounds[name][i] for name in sorted(self.bounds)}


class ClusterCoordinator:
    """Serve verified SLS queries across N NDP node processes.

    Parameters
    ----------
    store:
        The authoritative store; its tables define the shard map, its
        processor holds the key and performs pad regeneration, per-shard
        verification and final combining, and its (honest, local) device
        is the trusted recompute path of last resort.
    nodes:
        ``(name, host, port)`` triples or connected :class:`NodeClient`\\ s.
    policy:
        Retry/backoff knobs (``max_retries``, ``backoff_s``); a default
        :class:`~repro.faults.recovery.RecoveryPolicy` when omitted.
    task_timeout_s:
        Per-dispatch deadline; ``None`` resolves the heartbeat default
        (``SECNDP_HEARTBEAT_TIMEOUT``).
    blame_threshold:
        Weighted strikes before quarantine
        (:data:`DEFAULT_BLAME_THRESHOLD`; weights from
        :data:`~repro.cluster.health.BLAME_WEIGHTS`).
    fault_injector:
        Optional :class:`~repro.faults.plan.FaultInjector` whose
        :meth:`node_directive` draws ship with each dispatch (chaos
        only; all randomness stays in one seeded coordinator-side
        stream).
    """

    def __init__(
        self,
        store,
        nodes: Sequence,
        policy: Optional[RecoveryPolicy] = None,
        task_timeout_s: Optional[float] = None,
        blame_threshold: int = DEFAULT_BLAME_THRESHOLD,
        fault_injector=None,
    ):
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        if not store.verify:
            raise ConfigurationError(
                "cluster serving requires verify=True (per-shard blame "
                "is built on tag shares)"
            )
        self.store = store
        self.clients: Dict[str, NodeClient] = {}
        for node in nodes:
            client = (
                node if isinstance(node, NodeClient) else NodeClient(*node)
            )
            if client.name in self.clients:
                raise ConfigurationError(f"duplicate node name {client.name!r}")
            self.clients[client.name] = client
        self.policy = policy or RecoveryPolicy()
        self.task_timeout_s = resolve_heartbeat_timeout(task_timeout_s)
        self.blame_threshold = int(blame_threshold)
        self.fault_injector = fault_injector
        self.live: List[str] = list(self.clients)
        self.quarantined: List[str] = []
        # Weighted strikes (BLAME_WEIGHTS), not raw event counts.
        self.blame_counts: Dict[str, float] = {name: 0.0 for name in self.clients}
        self.shard_map: Optional[ShardMap] = None
        self._dispatch_seq = 0

    # -- lifecycle -------------------------------------------------------------

    async def setup(self) -> "ClusterCoordinator":
        """Connect every node and ship params and encrypted table replicas.

        Only public scheme params and already-encrypted tables travel —
        never key material; a node that stored them learns nothing
        beyond what the SecNDP threat model already concedes to the
        untrusted memory (ciphertext, tags, and access patterns).
        """
        params = self.store.processor.params
        tables = {
            name: codec.encode_table(self.store.device.stored(name))
            for name in self.store.tables()
        }
        self.shard_map = ShardMap.build(
            self.live,
            {
                name: self.store.device.stored(name).n_rows
                for name in self.store.tables()
            },
        )
        for name in list(self.live):
            client = self.clients[name]
            await client.connect()
            await client.request(
                "shard_assign",
                payload={
                    "params": codec.encode_params(params),
                    "tables": tables,
                    "ranges": {
                        t: list(r) for t, r in self.shard_map.ranges_for(name).items()
                    },
                },
                timeout=self.task_timeout_s,
            )
        obs.emit_event(
            obs.CLUSTER_START, nodes=list(self.live), tables=self.store.tables()
        )
        obs.inc("cluster.starts")
        return self

    async def close(self) -> None:
        for name, client in self.clients.items():
            try:
                if name in self.live:
                    await client.request("shutdown", timeout=self.task_timeout_s)
            except SecNDPError:
                pass
            await client.close()
        obs.emit_event(
            obs.CLUSTER_DRAIN,
            nodes=list(self.live),
            quarantined=list(self.quarantined),
        )

    async def __aenter__(self) -> "ClusterCoordinator":
        return await self.setup()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- liveness --------------------------------------------------------------

    async def check_liveness(self, timeout: Optional[float] = None) -> Dict[str, bool]:
        """Heartbeat every live node; quarantine the dead ones."""
        timeout = resolve_heartbeat_timeout(timeout)
        alive = {}
        for name in list(self.live):
            alive[name] = await self.clients[name].heartbeat(timeout=timeout)
            if not alive[name]:
                obs.emit_event(obs.NODE_DEAD, worker=name, probe="heartbeat")
                obs.inc("cluster.dispatch.dead")
                await self._blame(name, obs.NODE_DEAD, "heartbeat")
        return alive

    # -- serving ---------------------------------------------------------------

    async def sls_many(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
    ) -> np.ndarray:
        """Batched verified SLS across the cluster (bit-identical to
        :meth:`SecureEmbeddingStore.sls_many` on one host)."""
        entry = self.store._tables[name]
        rows_list, weights_list = self.store._validate_batch(
            name, batch_rows, batch_weights
        )
        if self.shard_map is None or not self.live:
            # Every node is quarantined: the coordinator's own honest
            # device serves the whole batch (still verified, still
            # bit-identical — it IS the oracle path).
            obs.inc("cluster.dispatch.local", len(rows_list))
            values = self.store.sls_many(name, rows_list, weights_list)
            obs.inc("cluster.queries", len(rows_list))
            return values
        # Snapshot ownership: a mid-batch quarantine rebuilds
        # ``self.shard_map`` for *future* batches, while this batch's
        # masks stay on the bounds its earlier dispatches used (the
        # failed node's sub-batch is re-served with the same mask, so
        # rows are never dropped or double-counted).
        smap = self.shard_map
        shares: List[PartialSumShare] = []
        for node in list(smap.nodes):
            masked = [
                smap.owner_mask(name, node, rows, weights)
                for rows, weights in zip(rows_list, weights_list)
            ]
            if not any(rows for rows, _ in masked):
                continue
            share, _served_by = await self._dispatch_with_recovery(
                name, node, [r for r, _ in masked], [w for _, w in masked]
            )
            shares.append(share)
        enc = self.store.device.stored(name)
        # Every share already passed its per-shard check during the
        # ladder; the combined check (per_shard=False) still runs for
        # the cross-shard overflow case.
        results = self.store.processor.finalize_row_sum_batch(
            enc, name, shares, verify=True, per_shard=False
        )
        out = np.zeros((len(rows_list), entry.dim))
        for i, (result, weights) in enumerate(zip(results, weights_list)):
            out[i] = self.store._affine(entry, result.values, weights)
        obs.inc("cluster.queries", len(rows_list))
        return out

    async def sls(self, name, rows, weights=None) -> np.ndarray:
        out = await self.sls_many(
            name, [rows], None if weights is None else [weights]
        )
        return out[0]

    # -- the node-level recovery ladder ----------------------------------------

    async def _dispatch_with_recovery(
        self,
        name: str,
        node: str,
        batch_rows: List[List[int]],
        batch_weights: List[List[int]],
    ) -> Tuple[PartialSumShare, str]:
        """Serve one node's sub-batch through the ladder.

        Returns ``(verified share, label of who served it)``.  Rungs:
        bounded same-node retry -> healthy replica -> trusted local
        recompute.  Raises :class:`RecoveryExhaustedError` only if even
        the local path fails (it cannot, short of a corrupted local
        device — which the store's own ladder handles).
        """
        self._dispatch_seq += 1
        dispatch = self._dispatch_seq
        # Stable per-node salt (not hash(): PYTHONHASHSEED would make the
        # jitter differ across runs; all chaos randomness stays seeded).
        salt = zlib.crc32(node.encode("utf-8")) & 0x7FFFFFFF
        tried: List[str] = []
        # A node quarantined earlier in this same batch skips straight to
        # a healthy replica (its mask is still this dispatch's row set).
        target: Optional[str] = (
            node if node in self.live else next(iter(self.live), None)
        )
        attempt = 0
        while True:
            if target is None:
                return self._local_share(name, node, batch_rows, batch_weights)
            try:
                share = await self._dispatch_once(
                    name, target, batch_rows, batch_weights, dispatch
                )
                obs.inc("cluster.dispatch.ok")
                if target != node:
                    obs.inc("cluster.failovers")
                    obs.inc("cluster.dispatch.failover")
                return share, target
            except ShardVerificationError as exc:
                obs.inc("cluster.blame")
                obs.inc("cluster.dispatch.blamed")
                obs.emit_event(
                    obs.NODE_BLAME,
                    table=name,
                    worker=target,
                    queries=list(exc.queries),
                    dispatch=dispatch,
                )
                await self._blame(target, obs.NODE_BLAME, f"dispatch:{dispatch}")
            except ConfigurationError as exc:
                # An error-status frame or a structurally malformed
                # payload from the node: not a cryptographic forgery,
                # but unambiguous misbehaviour of this node on a
                # well-formed request — blame it and re-serve the
                # sub-batch like any other bad answer.
                obs.inc("cluster.blame")
                obs.inc("cluster.dispatch.blamed")
                obs.emit_event(
                    obs.NODE_BLAME,
                    table=name,
                    worker=target,
                    dispatch=dispatch,
                    reason=str(exc),
                )
                await self._blame(target, obs.NODE_BLAME, f"dispatch:{dispatch}")
            except PeerTimeoutError:
                obs.inc("cluster.dispatch.timeout")
                obs.emit_event(
                    obs.NODE_TIMEOUT, table=name, worker=target, dispatch=dispatch
                )
                await self._blame(target, obs.NODE_TIMEOUT, f"dispatch:{dispatch}")
            except (ServerClosedError, ConnectionError, OSError):
                obs.inc("cluster.dispatch.dead")
                obs.emit_event(
                    obs.NODE_DEAD, table=name, worker=target, dispatch=dispatch
                )
                await self._blame(target, obs.NODE_DEAD, f"dispatch:{dispatch}")
            tried.append(target)
            # Rung 1: bounded retry against the same node (unless it was
            # just quarantined) with deterministic backoff+jitter.
            if target in self.live and attempt < self.policy.max_retries:
                await asyncio.sleep(self.policy.backoff_s(attempt, salt))
                attempt += 1
                obs.inc("cluster.dispatch.retry")
                continue
            # Rung 2: a healthy replica (full replication makes every
            # live node a replica for any row range).
            attempt = 0
            target = next(
                (n for n in self.live if n not in tried), None
            )

    async def _dispatch_once(
        self,
        name: str,
        node: str,
        batch_rows: List[List[int]],
        batch_weights: List[List[int]],
        dispatch: int,
    ) -> PartialSumShare:
        obs.inc("cluster.dispatches")
        payload = codec.encode_queries(batch_rows, batch_weights)
        if self.fault_injector is not None:
            directive = self.fault_injector.node_directive(f"node:{node}")
            if directive is not None:
                payload["directive"] = list(directive)
        response = await self.clients[node].request(
            "partial_sum", table=name, payload=payload,
            timeout=self.task_timeout_s,
        )
        enc = self.store.device.stored(name)
        n_q, n_cols = len(batch_rows), int(enc.ciphertext.shape[1])
        try:
            values, tag_sums = codec.decode_device_sums(
                response.payload.get("sums", {}), self.store.processor.params
            )
        except ConfigurationError as exc:
            raise ShardVerificationError(
                f"malformed device sums from node {node!r}: {exc}",
                shard=node,
                queries=range(n_q),
            ) from exc
        if values.shape != (n_q, n_cols) or tag_sums is None or len(tag_sums) != n_q:
            raise ShardVerificationError(
                f"malformed device sums from node {node!r}: shape "
                f"{values.shape} (want {(n_q, n_cols)})",
                shard=node,
                queries=range(n_q),
            )
        # The crypto core: the node only returned ciphertext-domain sums;
        # the pad halves are regenerated here, key-side, so the key never
        # crossed the wire — and the reconstructed share must satisfy its
        # own restricted checksum before it may enter the combine.  The
        # pad half is honest by construction, so a failure is evidence
        # against exactly this node.
        pad = self.store.processor.pad_share_batch(
            enc, name, batch_rows, batch_weights, with_tag_shares=True
        )
        share = self.store.processor.combine_device_sums(pad, values, tag_sums)
        self.store.processor.verify_partial_share(enc, name, share, shard=node)
        return share

    def _local_share(
        self,
        name: str,
        node: str,
        batch_rows: List[List[int]],
        batch_weights: List[List[int]],
    ) -> Tuple[PartialSumShare, str]:
        """Rung 3: trusted recompute on the coordinator's own device."""
        obs.inc("cluster.dispatch.local")
        obs.inc("cluster.failovers")
        obs.emit_event(
            obs.RECOVERY_FALLBACK,
            table=name,
            worker=node,
            scope="cluster",
            queries=len(batch_rows),
        )
        share = self.store.processor.partial_row_sum_batch(
            self.store.device, name, batch_rows, batch_weights,
            with_tag_shares=True,
        )
        try:
            self.store.processor.verify_partial_share(
                self.store.device.stored(name), name, share, shard="local"
            )
        except ShardVerificationError as exc:
            raise RecoveryExhaustedError(
                f"trusted local recompute failed verification for {name!r}: "
                f"{exc} (local device corrupted?)"
            ) from exc
        return share, "local"

    # -- blame / quarantine / re-shard -----------------------------------------

    async def _blame(self, node: str, kind: str, context: str) -> None:
        """Add ``kind``'s weighted strikes (shared with the journal view).

        Live quarantine and the offline :func:`~repro.cluster.health.
        blame_ranking` use the same :data:`~repro.cluster.health.
        BLAME_WEIGHTS` table, so replaying the journal reproduces the
        ordering the coordinator acted on.
        """
        weight = BLAME_WEIGHTS.get(kind, 1.0)
        self.blame_counts[node] = self.blame_counts.get(node, 0.0) + weight
        if node in self.live and self.blame_counts[node] >= self.blame_threshold:
            await self._quarantine(node, context)

    async def _quarantine(self, node: str, context: str) -> None:
        self.live.remove(node)
        self.quarantined.append(node)
        obs.inc("cluster.quarantines")
        obs.emit_event(
            obs.NODE_QUARANTINE,
            worker=node,
            strikes=self.blame_counts[node],
            context=context,
            remaining=list(self.live),
        )
        await self._reshard()

    async def _reshard(self) -> None:
        """Re-own quarantined rows: new bounds over the survivors only.

        Full replication means no ciphertext moves — each survivor just
        receives its new logical ranges (tables omitted = keep replica).
        """
        if not self.live:
            # Last node gone: the coordinator's local device serves
            # everything (rung 3) until nodes come back.
            self.shard_map = None
            obs.emit_event(obs.NODE_RESHARD, nodes=[], drained=True)
            return
        self.shard_map = ShardMap.build(
            self.live,
            {
                name: self.store.device.stored(name).n_rows
                for name in self.store.tables()
            },
        )
        params = self.store.processor.params
        for name in list(self.live):
            try:
                await self.clients[name].request(
                    "shard_assign",
                    payload={
                        "params": codec.encode_params(params),
                        "ranges": {
                            t: list(r)
                            for t, r in self.shard_map.ranges_for(name).items()
                        },
                    },
                    timeout=self.task_timeout_s,
                )
            except SecNDPError as exc:
                # A node that cannot take its new range is itself blamed;
                # recursion terminates because live shrinks each time.
                kind = (
                    obs.NODE_TIMEOUT
                    if isinstance(exc, PeerTimeoutError)
                    else obs.NODE_DEAD
                )
                obs.emit_event(kind, worker=name, context="reshard")
                await self._blame(name, kind, "reshard")
        obs.inc("cluster.reshards")
        obs.emit_event(
            obs.NODE_RESHARD,
            nodes=list(self.live),
            quarantined=list(self.quarantined),
        )

    # -- reporting -------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "live": list(self.live),
            "quarantined": list(self.quarantined),
            "blame_counts": dict(self.blame_counts),
        }
