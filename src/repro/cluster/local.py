"""Spawn local NDP node processes (the 3-node example / CI smoke path).

:class:`LocalCluster` forks N real OS processes (``spawn`` context — the
same discipline as the parallel engine's pool, so no inherited locks or
arenas), each running one :class:`~repro.cluster.node.NodeServer` on an
ephemeral port.  Ports travel back over a pipe, so callers never race a
bind.  For tests that want everything on one event loop, in-process
:class:`NodeServer`\\ s (``async with NodeServer(...)``) are the better
transport; this module is for the CLI and CI, where separate processes
are the point — killing one is a *real* node death.
"""

from __future__ import annotations

import asyncio
import multiprocessing as mp
from typing import List, Tuple

from ..errors import ConfigurationError

__all__ = ["LocalCluster", "run_node_process"]


def _node_main(name: str, host: str, conn) -> None:
    """Child entry: serve one node until the server stops."""

    async def _run() -> None:
        from .node import NodeServer

        server = NodeServer(name, host=host, port=0)
        await server.start()
        conn.send(server.port)
        conn.close()
        await server.wait_closed()
        await server.close()

    asyncio.run(_run())


def run_node_process(
    name: str, host: str = "127.0.0.1", port: int = 0
) -> None:
    """Blocking node entry for ``python -m repro node`` (foreground)."""

    async def _run() -> None:
        from .node import NodeServer

        server = NodeServer(name, host=host, port=port)
        await server.start()
        print(f"node {name} listening on {server.host}:{server.port}")
        await server.wait_closed()
        await server.close()

    asyncio.run(_run())


class LocalCluster:
    """N node processes on localhost; a context manager owning their lifetime.

    ::

        with LocalCluster(3) as nodes:        # [(name, host, port), ...]
            coordinator = ClusterCoordinator(store, nodes)
            ...

    ``kill(name)`` hard-kills one child (SIGKILL — a dead host, not a
    graceful drain), which is exactly what the CI smoke job does
    mid-run.
    """

    def __init__(self, n_nodes: int, host: str = "127.0.0.1"):
        if n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1")
        self.n_nodes = int(n_nodes)
        self.host = host
        self._procs: List[mp.process.BaseProcess] = []
        self.nodes: List[Tuple[str, str, int]] = []

    def start(self) -> List[Tuple[str, str, int]]:
        if self._procs:
            return self.nodes
        ctx = mp.get_context("spawn")
        for i in range(self.n_nodes):
            name = f"node{i}"
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_node_main, args=(name, self.host, child), daemon=True
            )
            proc.start()
            child.close()
            if not parent.poll(30.0):
                self.close()
                raise ConfigurationError(f"node {name} failed to report a port")
            port = int(parent.recv())
            parent.close()
            self._procs.append(proc)
            self.nodes.append((name, self.host, port))
        return self.nodes

    def kill(self, name: str) -> None:
        """SIGKILL one node process (simulated host death)."""
        for (node, _host, _port), proc in zip(self.nodes, self._procs):
            if node == name and proc.is_alive():
                proc.kill()
                proc.join(timeout=10.0)
                return

    def alive(self) -> List[str]:
        return [
            node
            for (node, _h, _p), proc in zip(self.nodes, self._procs)
            if proc.is_alive()
        ]

    def close(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover
                proc.kill()
                proc.join(timeout=5.0)
        self._procs = []
        self.nodes = []

    def __enter__(self) -> List[Tuple[str, str, int]]:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
