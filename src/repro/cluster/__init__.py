"""Multi-node sharded serving with per-shard blame and quarantine failover.

The single-host stack verifies one device's answer; this package splits
the same SLS protocol across N "NDP node" processes and verifies **each
shard's tag share independently** (per-shard checksum identity; see
DESIGN.md Sec. 16), so a wrong answer names its node before the ring
recombine ever runs.  The pieces:

* :mod:`~repro.cluster.node` — one node: a TCP server
  (:class:`NodeServer`) playing the *untrusted memory party* — it holds
  only ciphertext replicas (never key material) and returns
  ciphertext-domain sums — plus the coordinator-side
  :class:`NodeClient`.
* :mod:`~repro.cluster.coordinator` — :class:`ClusterCoordinator`:
  row-range sharding (:class:`ShardMap`), per-shard verification, and
  the recovery ladder (retry → replica failover / local recompute →
  blame, quarantine, re-shard), every step journaled as typed audit
  events.
* :mod:`~repro.cluster.health` — merge per-host JSONL journals into a
  blame-ranked :class:`ClusterHealth` view.
* :mod:`~repro.cluster.local` — :class:`LocalCluster`: spawn real node
  processes for the CLI / CI smoke path.
* :mod:`~repro.cluster.chaos` — :func:`run_cluster_chaos`: injected node
  faults vs. blame precision/recall and bit-identity to the single-host
  oracle.
"""

from .chaos import (
    ClusterChaosResult,
    ScriptedDirectives,
    run_cluster_chaos,
    run_process_cluster_smoke,
    smoke_script,
)
from .coordinator import ClusterCoordinator, ShardMap
from .health import (
    BLAME_WEIGHTS,
    ClusterHealth,
    blame_ranking,
    merge_event_streams,
)
from .local import LocalCluster, run_node_process
from .node import NodeClient, NodeServer

__all__ = [
    "BLAME_WEIGHTS",
    "ClusterChaosResult",
    "ClusterCoordinator",
    "ClusterHealth",
    "LocalCluster",
    "NodeClient",
    "NodeServer",
    "ScriptedDirectives",
    "ShardMap",
    "blame_ranking",
    "merge_event_streams",
    "run_cluster_chaos",
    "run_node_process",
    "run_process_cluster_smoke",
    "smoke_script",
]
