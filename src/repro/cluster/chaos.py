"""Cluster chaos: injected node faults vs. blame precision/recall.

The acceptance scenario of DESIGN.md Sec. 16: replay an SLS query
stream through a coordinator + N nodes while per-dispatch node faults
fire (byzantine tag shares, kills, partitions, slowness), then judge the
coordinator on three axes:

* **blame precision** — every node it blamed really had a fault
  injected against one of its dispatches;
* **blame recall** — every node with an injected fault got blamed;
* **bit-identity** — every pooled vector equals the sequential
  single-host oracle exactly (the coordinator's own store serves as the
  oracle: its local device is honest by construction).

Ground truth comes from the coordinator-side directive stream itself
(:meth:`~repro.faults.plan.FaultInjector.node_directive` records every
draw), blame from the typed ``node_blame`` / ``node_timeout`` /
``node_dead`` audit events — the same journal
:class:`~repro.cluster.health.ClusterHealth` merges, so the harness
exercises the cross-host shard-health record end to end.

Two drive modes share the machinery: a seeded :class:`FaultPlan`
(``chaos-cluster`` preset, rate 1e-3) for the statistical run, and a
*scripted* mode (kill node X at dispatch i, tamper node Y at dispatch j)
for the deterministic CI smoke job.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.params import SecNDPParams
from ..core.protocol import SecNDPProcessor, UntrustedNdpDevice
from ..faults import PRESET_PLANS, FaultInjector, FaultPlan
from ..faults.recovery import RecoveryPolicy
from ..workloads.secure_sls import SecureEmbeddingStore
from ..workloads.traces import random_trace
from .coordinator import ClusterCoordinator
from .health import ClusterHealth
from .node import NodeServer

__all__ = [
    "ClusterChaosResult",
    "ScriptedDirectives",
    "run_cluster_chaos",
    "run_process_cluster_smoke",
    "smoke_script",
]

_KEY = bytes(range(16))

#: Audit-event kinds that count as "the coordinator blamed this node".
_BLAME_KINDS = (obs.NODE_BLAME, obs.NODE_TIMEOUT, obs.NODE_DEAD)


class ScriptedDirectives:
    """Deterministic directive source for the CI smoke scenario.

    ``script`` maps a node name to a list of ``(dispatch_index,
    directive)`` pairs, where ``dispatch_index`` counts that node's own
    dispatches from 0.  Mimics the
    :meth:`~repro.faults.plan.FaultInjector.node_directive` interface
    and records every fired directive as ground truth.
    """

    def __init__(self, script: Dict[str, List[Tuple[int, Tuple]]]):
        self.script = {
            node: dict(entries) for node, entries in script.items()
        }
        self._seen: Dict[str, int] = {}
        self.fired: List[Tuple[str, Tuple]] = []

    def node_directive(self, site: str) -> Optional[Tuple]:
        node = site.split(":", 1)[1] if ":" in site else site
        i = self._seen.get(node, 0)
        self._seen[node] = i + 1
        directive = self.script.get(node, {}).get(i)
        if directive is not None:
            self.fired.append((node, tuple(directive)))
        return directive


class _RecordingInjector:
    """Wrap a seeded injector; remember which node each draw hit."""

    def __init__(self, injector: FaultInjector):
        self.injector = injector
        self.fired: List[Tuple[str, Tuple]] = []

    def node_directive(self, site: str) -> Optional[Tuple]:
        directive = self.injector.node_directive(site)
        if directive is not None:
            node = site.split(":", 1)[1] if ":" in site else site
            self.fired.append((node, tuple(directive)))
        return directive


@dataclass(frozen=True)
class ClusterChaosResult:
    """One cluster chaos run's verdict."""

    plan: str
    nodes: int
    queries: int
    batches: int
    mismatched: int
    faulted_nodes: List[str]
    blamed_nodes: List[str]
    quarantined_nodes: List[str]
    reshards: int
    injected: Dict[str, int]
    events: Dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def bit_identical(self) -> bool:
        return self.mismatched == 0

    @property
    def blame_precision(self) -> float:
        """Blamed nodes that really were faulted (1.0 = no false blame)."""
        if not self.blamed_nodes:
            return 1.0
        hits = sum(1 for n in self.blamed_nodes if n in self.faulted_nodes)
        return hits / len(self.blamed_nodes)

    @property
    def blame_recall(self) -> float:
        """Faulted nodes that got blamed (1.0 = nothing slipped through)."""
        if not self.faulted_nodes:
            return 1.0
        hits = sum(1 for n in self.faulted_nodes if n in self.blamed_nodes)
        return hits / len(self.faulted_nodes)

    @property
    def passed(self) -> bool:
        """The acceptance gate: exact answers, exact blame."""
        return (
            self.bit_identical
            and self.blame_precision == 1.0
            and self.blame_recall == 1.0
        )

    def render(self) -> str:
        inj = ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items())) or "none"
        evs = ", ".join(f"{k}={v}" for k, v in sorted(self.events.items())) or "none"
        lines = [
            f"plan {self.plan} | {self.nodes} nodes | "
            f"{self.batches} batches, {self.queries} queries "
            f"({self.elapsed_s * 1e3:.0f} ms)",
            f"injected: {inj}",
            f"audit events: {evs}",
            f"faulted nodes: {', '.join(self.faulted_nodes) or '-'}",
            f"blamed nodes: {', '.join(self.blamed_nodes) or '-'} "
            f"(precision {self.blame_precision:.3f}, "
            f"recall {self.blame_recall:.3f})",
            f"quarantined: {', '.join(self.quarantined_nodes) or '-'}, "
            f"reshards {self.reshards}",
            f"bit-identical to single-host oracle: {self.bit_identical}",
            f"verdict: {'PASS' if self.passed else 'FAIL'}",
        ]
        return "\n".join(lines)


def run_cluster_chaos(
    n_nodes: int = 3,
    plan: Optional[FaultPlan] = None,
    script: Optional[Dict[str, List[Tuple[int, Tuple]]]] = None,
    n_batches: int = 12,
    batch: int = 8,
    pooling_factor: int = 16,
    rows_per_table: int = 256,
    dim: int = 16,
    seed: int = 7,
    task_timeout_s: float = 2.0,
    blame_threshold: int = 1,
) -> ClusterChaosResult:
    """Run one coordinator + ``n_nodes`` in-process node servers under faults.

    Nodes are real asyncio TCP servers on localhost sharing the test's
    event loop (a ``dead`` directive abruptly stops one — the
    coordinator sees an actual dropped connection).  ``script`` switches
    to scripted directives (CI smoke); otherwise ``plan`` (default: the
    ``chaos-cluster`` preset) drives a seeded
    :class:`~repro.faults.plan.FaultInjector`, with slow-node delays
    stretched past ``task_timeout_s`` so every injected fault is
    observable and recall can reach 1.0.
    """
    if plan is None:
        plan = PRESET_PLANS["chaos-cluster"]
    if script is not None:
        source = ScriptedDirectives(script)
        plan_name = "scripted"
        injected: Dict[str, int] = {}
    else:
        stretched = FaultPlan(
            name=plan.name,
            seed=plan.seed,
            rates=dict(plan.rates),
            max_faults=plan.max_faults,
            delay_s=task_timeout_s * 2,
        )
        source = _RecordingInjector(FaultInjector(stretched))
        plan_name = plan.name
        injected = {}

    params = SecNDPParams()
    rng = np.random.default_rng(seed)
    table = rng.normal(size=(rows_per_table, dim))

    processor = SecNDPProcessor(_KEY, params)
    device = UntrustedNdpDevice(params)
    store = SecureEmbeddingStore(processor, device)
    store.add_table("emb", table)

    batches: List[Tuple[List[List[int]], List[List[int]]]] = []
    for i in range(n_batches):
        trace = random_trace(rows_per_table, batch, pooling_factor, seed=seed * 100 + i)
        batches.append(
            (
                [list(ix) for ix in trace.indices],
                [[int(w) for w in ws] for ws in trace.weights],
            )
        )
    # The sequential single-host oracle (the coordinator's store is
    # honest, so this is the ground-truth answer set).
    expected = [store.sls_many("emb", rows, ws) for rows, ws in batches]

    own_log = obs.event_log() is None
    if own_log:
        obs.enable_events()
    event_log = obs.event_log()
    ev_start = len(event_log)

    async def _run() -> int:
        servers = [NodeServer(f"node{i}") for i in range(n_nodes)]
        for server in servers:
            await server.start()
        coordinator = ClusterCoordinator(
            store,
            [(s.name, s.host, s.port) for s in servers],
            policy=RecoveryPolicy(backoff_base_s=1e-4, max_retries=1),
            task_timeout_s=task_timeout_s,
            blame_threshold=blame_threshold,
            fault_injector=source,
        )
        mismatched = 0
        try:
            await coordinator.setup()
            for (rows, ws), want in zip(batches, expected):
                got = await coordinator.sls_many("emb", rows, ws)
                for q in range(len(rows)):
                    if not np.array_equal(got[q], want[q]):
                        mismatched += 1
        finally:
            await coordinator.close()
            for server in servers:
                await server.close()
        return mismatched

    started = time.perf_counter()
    mismatched = asyncio.run(_run())
    elapsed = time.perf_counter() - started

    run_events = event_log.events()[ev_start:]
    if own_log:
        obs.disable_events()

    health = ClusterHealth.from_events(run_events)
    blamed = sorted(
        {
            str(ev.worker)
            for ev in run_events
            if ev.kind in _BLAME_KINDS and ev.worker is not None
        }
    )
    faulted = sorted({node for node, _ in source.fired})
    for _node, directive in source.fired:
        injected[directive[0]] = injected.get(directive[0], 0) + 1
    event_counts: Dict[str, int] = {}
    for ev in run_events:
        event_counts[ev.kind] = event_counts.get(ev.kind, 0) + 1

    result = ClusterChaosResult(
        plan=plan_name,
        nodes=n_nodes,
        queries=sum(len(rows) for rows, _ in batches),
        batches=len(batches),
        mismatched=mismatched,
        faulted_nodes=faulted,
        blamed_nodes=blamed,
        quarantined_nodes=list(health.quarantined),
        reshards=health.reshards,
        injected=injected,
        events=event_counts,
        elapsed_s=elapsed,
    )
    obs.gauge("cluster.chaos.blame_precision", result.blame_precision)
    obs.gauge("cluster.chaos.blame_recall", result.blame_recall)
    obs.gauge("cluster.chaos.bit_identical", 1.0 if result.bit_identical else 0.0)
    obs.inc("cluster.chaos.queries", result.queries)
    obs.inc("cluster.chaos.mismatched", mismatched)
    return result


def smoke_script(n_nodes: int = 3) -> Dict[str, List[Tuple[int, Tuple]]]:
    """The CI scenario: kill one node and tamper another mid-run."""
    if n_nodes < 3:
        raise ValueError("smoke script wants >= 3 nodes")
    return {
        "node1": [(2, ("dead",))],
        "node2": [(3, ("byzantine",))],
    }

def run_process_cluster_smoke(
    n_nodes: int = 3,
    n_batches: int = 8,
    batch: int = 4,
    pooling_factor: int = 8,
    rows_per_table: int = 128,
    dim: int = 8,
    seed: int = 11,
    task_timeout_s: float = 5.0,
    kill_at_batch: int = 2,
    tamper_at_dispatch: int = 4,
) -> ClusterChaosResult:
    """The CI smoke job over *real* node processes.

    Spawns ``n_nodes`` OS processes via :class:`~.local.LocalCluster`,
    SIGKILLs one mid-run (an actual host death, not a simulated one) and
    ships a ``byzantine`` directive to another, then holds the
    coordinator to the same gate as :func:`run_cluster_chaos`: exact
    blame, quarantine + re-shard on the journal, every answer
    bit-identical to the single-host oracle.
    """
    from .local import LocalCluster

    if n_nodes < 3:
        raise ValueError("process smoke wants >= 3 nodes")
    params = SecNDPParams()
    rng = np.random.default_rng(seed)
    table = rng.normal(size=(rows_per_table, dim))

    processor = SecNDPProcessor(_KEY, params)
    device = UntrustedNdpDevice(params)
    store = SecureEmbeddingStore(processor, device)
    store.add_table("emb", table)

    batches: List[Tuple[List[List[int]], List[List[int]]]] = []
    for i in range(n_batches):
        trace = random_trace(rows_per_table, batch, pooling_factor, seed=seed * 100 + i)
        batches.append(
            (
                [list(ix) for ix in trace.indices],
                [[int(w) for w in ws] for ws in trace.weights],
            )
        )
    expected = [store.sls_many("emb", rows, ws) for rows, ws in batches]

    # node1 dies for real (SIGKILL); node2 forges one dispatch's shares.
    killed, tampered = "node1", "node2"
    source = ScriptedDirectives({tampered: [(tamper_at_dispatch, ("byzantine",))]})

    own_log = obs.event_log() is None
    if own_log:
        obs.enable_events()
    event_log = obs.event_log()
    ev_start = len(event_log)

    cluster = LocalCluster(n_nodes)
    started = time.perf_counter()
    try:
        nodes = cluster.start()

        async def _run() -> int:
            coordinator = ClusterCoordinator(
                store,
                nodes,
                policy=RecoveryPolicy(backoff_base_s=1e-3, max_retries=1),
                task_timeout_s=task_timeout_s,
                fault_injector=source,
            )
            mismatched = 0
            try:
                await coordinator.setup()
                for i, ((rows, ws), want) in enumerate(zip(batches, expected)):
                    if i == kill_at_batch:
                        cluster.kill(killed)
                    got = await coordinator.sls_many("emb", rows, ws)
                    for q in range(len(rows)):
                        if not np.array_equal(got[q], want[q]):
                            mismatched += 1
            finally:
                await coordinator.close()
            return mismatched

        mismatched = asyncio.run(_run())
    finally:
        cluster.close()
    elapsed = time.perf_counter() - started

    run_events = event_log.events()[ev_start:]
    if own_log:
        obs.disable_events()

    health = ClusterHealth.from_events(run_events)
    blamed = sorted(
        {
            str(ev.worker)
            for ev in run_events
            if ev.kind in _BLAME_KINDS and ev.worker is not None
        }
    )
    # Ground truth: the SIGKILLed node plus every scripted directive.
    faulted = sorted({killed} | {node for node, _ in source.fired})
    injected: Dict[str, int] = {"sigkill": 1}
    for _node, directive in source.fired:
        injected[directive[0]] = injected.get(directive[0], 0) + 1
    event_counts: Dict[str, int] = {}
    for ev in run_events:
        event_counts[ev.kind] = event_counts.get(ev.kind, 0) + 1

    result = ClusterChaosResult(
        plan="process-smoke",
        nodes=n_nodes,
        queries=sum(len(rows) for rows, _ in batches),
        batches=len(batches),
        mismatched=mismatched,
        faulted_nodes=faulted,
        blamed_nodes=blamed,
        quarantined_nodes=list(health.quarantined),
        reshards=health.reshards,
        injected=injected,
        events=event_counts,
        elapsed_s=elapsed,
    )
    obs.gauge("cluster.smoke.blame_precision", result.blame_precision)
    obs.gauge("cluster.smoke.blame_recall", result.blame_recall)
    obs.gauge("cluster.smoke.bit_identical", 1.0 if result.bit_identical else 0.0)
    return result
