"""Cross-host shard health: merge journals, rank blame, track quarantine.

Every coordinator (and every node with auditing enabled) writes its own
JSONL journal via :mod:`repro.obs.events`.  This module turns any number
of those per-host streams into one blame-ranked view:

* :func:`merge_event_streams` — a deterministic merge of N journals
  (ordered by wall-clock ``ts``, then ``(pid, seq)`` to break ties),
  tolerant of torn tails like :func:`repro.obs.events.read_events`.
* :func:`blame_ranking` — per-node strike totals from the typed
  ``node_blame`` / ``node_timeout`` / ``node_dead`` events, weighted so
  cryptographic evidence (a forged tag share) outranks liveness
  circumstantial evidence.
* :class:`ClusterHealth` — the merged verdict: ranking, quarantined
  set, re-shard history, and a terminal-width report.

``store.load_quarantine_journal`` keeps handling the *row*-level state;
this is the *node*-level record layered on the same journal files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..obs.events import (
    NODE_BLAME,
    NODE_DEAD,
    NODE_QUARANTINE,
    NODE_RESHARD,
    NODE_TIMEOUT,
    SecurityEvent,
    read_events,
)

__all__ = [
    "merge_event_streams",
    "blame_ranking",
    "ClusterHealth",
    "BLAME_WEIGHTS",
]

#: Strike weight per event kind: a forged share is cryptographic proof
#: of misbehaviour; a missed deadline or dropped connection is
#: circumstantial (congestion, partition) and weighs less.
BLAME_WEIGHTS: Dict[str, float] = {
    NODE_BLAME: 3.0,
    NODE_DEAD: 2.0,
    NODE_TIMEOUT: 1.0,
}


def merge_event_streams(
    sources: Sequence[Union[str, Path, Iterable[SecurityEvent]]],
) -> List[SecurityEvent]:
    """Merge per-host journals into one deterministically ordered stream.

    Each source is a JSONL path (loaded leniently) or an already-loaded
    event iterable.  Events sort by ``ts`` first — cross-host ordering —
    with ``(pid, seq)`` breaking same-timestamp ties so the merge is
    stable and replayable.
    """
    merged: List[SecurityEvent] = []
    for source in sources:
        if isinstance(source, (str, Path)):
            merged.extend(read_events(source))
        else:
            merged.extend(source)
    merged.sort(key=lambda e: (e.ts, e.pid, e.seq))
    return merged


def blame_ranking(
    events: Iterable[SecurityEvent],
) -> List[Tuple[str, float]]:
    """``[(node, weighted strikes), ...]`` ranked worst-first.

    Ties break alphabetically so the ranking is deterministic across
    runs and merge orders.
    """
    scores: Dict[str, float] = {}
    for event in events:
        weight = BLAME_WEIGHTS.get(event.kind)
        if weight is None or event.worker is None:
            continue
        node = str(event.worker)
        scores[node] = scores.get(node, 0.0) + weight
    return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))


@dataclass
class ClusterHealth:
    """The node-level verdict reconstructed from merged journals."""

    ranking: List[Tuple[str, float]] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    reshards: int = 0
    counts_by_kind: Dict[str, int] = field(default_factory=dict)
    events: int = 0

    @classmethod
    def from_events(cls, events: Iterable[SecurityEvent]) -> "ClusterHealth":
        events = list(events)
        quarantined: List[str] = []
        reshards = 0
        counts: Dict[str, int] = {}
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
            if event.kind == NODE_QUARANTINE and event.worker is not None:
                node = str(event.worker)
                if node not in quarantined:
                    quarantined.append(node)
            elif event.kind == NODE_RESHARD:
                reshards += 1
        return cls(
            ranking=blame_ranking(events),
            quarantined=quarantined,
            reshards=reshards,
            counts_by_kind=dict(sorted(counts.items())),
            events=len(events),
        )

    @classmethod
    def from_journals(
        cls, paths: Sequence[Union[str, Path]]
    ) -> "ClusterHealth":
        return cls.from_events(merge_event_streams(paths))

    def render(self) -> str:
        lines = [
            "cluster health (merged journals)",
            f"  events: {self.events}  reshards: {self.reshards}",
            f"  quarantined: {', '.join(self.quarantined) or '-'}",
            "  blame ranking (weighted strikes):",
        ]
        if not self.ranking:
            lines.append("    (no blame events)")
        for node, score in self.ranking:
            mark = " [quarantined]" if node in self.quarantined else ""
            lines.append(f"    {node:<16} {score:8.1f}{mark}")
        return "\n".join(lines)
