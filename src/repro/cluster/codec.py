"""Wire codecs for the cluster tier's frame payloads.

Cluster frames reuse the :mod:`repro.serve.protocol` length-prefixed
container (JSON or msgpack), so everything here maps protocol objects to
plain JSON-able values:

* encrypted tables travel as the :mod:`repro.core.serialization` binary
  container, base64-armoured — ciphertext and encrypted tags are
  untrusted data and the container is already self-describing;
* :class:`~repro.core.protocol.PartialSumShare` values are ring residues
  (ints) and 127-bit field elements, which JSON handles natively as
  Python bigints;
* :class:`~repro.core.params.SecNDPParams` ships as its constructor
  fields (the counter-block layout is the default everywhere in this
  repo, so only widths and the tag modulus travel).

The processor key rides in ``shard_assign`` as base64: cluster NDP
nodes are *trusted-side* workers (exactly like the parallel engine's
pool workers receiving a ``_PoolSpec``), not the untrusted memory party.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.encryption import EncryptedMatrix
from ..core.params import SecNDPParams
from ..core.protocol import PartialSumShare
from ..core.serialization import deserialize_matrix, serialize_matrix
from ..errors import ConfigurationError

__all__ = [
    "encode_params",
    "decode_params",
    "encode_table",
    "decode_table",
    "encode_share",
    "decode_share",
    "encode_key",
    "decode_key",
    "encode_queries",
    "decode_queries",
]


def encode_params(params: SecNDPParams) -> Dict[str, Any]:
    return {
        "element_bits": int(params.element_bits),
        "tag_modulus": int(params.tag_modulus),
    }


def decode_params(payload: Dict[str, Any]) -> SecNDPParams:
    try:
        return SecNDPParams(
            element_bits=int(payload["element_bits"]),
            tag_modulus=int(payload["tag_modulus"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad params payload: {exc}") from exc


def encode_key(key: bytes) -> str:
    return base64.b64encode(key).decode("ascii")


def decode_key(payload: str) -> bytes:
    try:
        return base64.b64decode(payload)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad key payload: {exc}") from exc


def encode_table(enc: EncryptedMatrix) -> str:
    return base64.b64encode(serialize_matrix(enc)).decode("ascii")


def decode_table(payload: str, params: SecNDPParams) -> EncryptedMatrix:
    try:
        blob = base64.b64decode(payload)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad table payload: {exc}") from exc
    return deserialize_matrix(blob, params)


def encode_share(part: PartialSumShare) -> Dict[str, Any]:
    return {
        "values": [[int(v) for v in row] for row in np.asarray(part.values)],
        "tag_shares": (
            None
            if part.tag_shares is None
            else [int(t) for t in part.tag_shares]
        ),
    }


def decode_share(payload: Dict[str, Any], params: SecNDPParams) -> PartialSumShare:
    try:
        values = np.asarray(payload["values"], dtype=np.uint64).astype(
            params.ring().dtype
        )
        if values.ndim == 1:  # zero-query batch serializes as []
            values = values.reshape(0, 0)
        tags = payload.get("tag_shares")
        tag_shares: Optional[List[int]] = (
            None if tags is None else [int(t) for t in tags]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad share payload: {exc}") from exc
    return PartialSumShare(values=values, tag_shares=tag_shares)


def encode_queries(
    batch_rows: Sequence[Sequence[int]],
    batch_weights: Sequence[Sequence[int]],
) -> Dict[str, Any]:
    return {
        "batch_rows": [[int(r) for r in rows] for rows in batch_rows],
        "batch_weights": [[int(w) for w in ws] for ws in batch_weights],
    }


def decode_queries(payload: Dict[str, Any]):
    try:
        rows = [[int(r) for r in q] for q in payload["batch_rows"]]
        weights = [[int(w) for w in q] for q in payload["batch_weights"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad queries payload: {exc}") from exc
    if len(rows) != len(weights):
        raise ConfigurationError("batch_rows and batch_weights length mismatch")
    return rows, weights
