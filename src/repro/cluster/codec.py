"""Wire codecs for the cluster tier's frame payloads.

Cluster frames reuse the :mod:`repro.serve.protocol` length-prefixed
container (JSON or msgpack), so everything here maps protocol objects to
plain JSON-able values:

* encrypted tables travel as the :mod:`repro.core.serialization` binary
  container, base64-armoured — ciphertext and encrypted tags are
  untrusted data and the container is already self-describing;
* node answers are *ciphertext-domain* sums (``C_res`` ring residues and
  ``C_T_res`` 127-bit field elements, which JSON handles natively as
  Python bigints) — see :meth:`UntrustedNdpDevice.partial_sum_batch`;
* :class:`~repro.core.params.SecNDPParams` ships as its constructor
  fields (the counter-block layout is the default everywhere in this
  repo, so only widths and the tag modulus travel).

No key material ever crosses this wire: cluster NDP nodes are the
*untrusted* memory party of the SecNDP threat model, so ``shard_assign``
carries only public params and already-encrypted tables, and
``partial_sum`` responses carry only sums over that ciphertext.  The
trusted coordinator regenerates every pad share locally (the in-process
parallel engine's pool workers, by contrast, are trusted-side and do
receive the key via ``_PoolSpec``).

Every decoder treats its input as attacker-controlled: malformed
structure, non-integers, and out-of-range values (including the
``OverflowError`` a hostile bigint raises on the ``uint64`` cast) all
surface as :class:`~repro.errors.ConfigurationError`, which the
coordinator's recovery ladder converts into blame on the sending node.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.encryption import EncryptedMatrix
from ..core.params import SecNDPParams
from ..core.serialization import deserialize_matrix, serialize_matrix
from ..errors import ConfigurationError

__all__ = [
    "encode_params",
    "decode_params",
    "encode_table",
    "decode_table",
    "encode_device_sums",
    "decode_device_sums",
    "encode_queries",
    "decode_queries",
]


def encode_params(params: SecNDPParams) -> Dict[str, Any]:
    return {
        "element_bits": int(params.element_bits),
        "tag_modulus": int(params.tag_modulus),
    }


def decode_params(payload: Dict[str, Any]) -> SecNDPParams:
    try:
        return SecNDPParams(
            element_bits=int(payload["element_bits"]),
            tag_modulus=int(payload["tag_modulus"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad params payload: {exc}") from exc


def encode_table(enc: EncryptedMatrix) -> str:
    return base64.b64encode(serialize_matrix(enc)).decode("ascii")


def decode_table(payload: str, params: SecNDPParams) -> EncryptedMatrix:
    try:
        blob = base64.b64decode(payload)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad table payload: {exc}") from exc
    return deserialize_matrix(blob, params)


def encode_device_sums(
    values: np.ndarray, tag_sums: Optional[Sequence[int]]
) -> Dict[str, Any]:
    """Node → coordinator: ciphertext-domain sums, nothing decryptable."""
    return {
        "values": [[int(v) for v in row] for row in np.asarray(values)],
        "tag_sums": (
            None if tag_sums is None else [int(t) for t in tag_sums]
        ),
    }


def decode_device_sums(
    payload: Dict[str, Any], params: SecNDPParams
) -> Tuple[np.ndarray, Optional[List[int]]]:
    """Decode an untrusted node's sums defensively.

    A hostile node controls every byte here: values outside the ring
    dtype raise ``OverflowError`` on the cast and are mapped — like any
    other malformed structure — to :class:`ConfigurationError` so the
    dispatch ladder can blame the sender; tag sums are reduced into the
    field so later exact field arithmetic never sees unbounded bigints.
    """
    modulus = int(params.tag_modulus)
    try:
        values = np.asarray(payload["values"], dtype=np.uint64).astype(
            params.ring().dtype
        )
        if values.ndim == 1:  # zero-query batch serializes as []
            values = values.reshape(0, 0)
        tags = payload.get("tag_sums")
        tag_sums: Optional[List[int]] = (
            None if tags is None else [int(t) % modulus for t in tags]
        )
    except (KeyError, TypeError, ValueError, OverflowError) as exc:
        raise ConfigurationError(f"bad device sums payload: {exc}") from exc
    return values, tag_sums


def encode_queries(
    batch_rows: Sequence[Sequence[int]],
    batch_weights: Sequence[Sequence[int]],
) -> Dict[str, Any]:
    return {
        "batch_rows": [[int(r) for r in rows] for rows in batch_rows],
        "batch_weights": [[int(w) for w in ws] for ws in batch_weights],
    }


def decode_queries(payload: Dict[str, Any]):
    try:
        rows = [[int(r) for r in q] for q in payload["batch_rows"]]
        weights = [[int(w) for w in q] for q in payload["batch_weights"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad queries payload: {exc}") from exc
    if len(rows) != len(weights):
        raise ConfigurationError("batch_rows and batch_weights length mismatch")
    return rows, weights
