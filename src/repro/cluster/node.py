"""One "NDP node": a TCP server computing ciphertext sums over a replica.

A node is the *untrusted* memory party of the SecNDP threat model,
moved across TCP: it receives only public scheme params and the full
encrypted tables (ciphertext + encrypted tags — both already
attacker-visible by assumption) in one ``shard_assign`` frame, and
answers ``partial_sum`` requests by running
:meth:`~repro.core.protocol.UntrustedNdpDevice.partial_sum_batch` over
its local replica: the weighted ring sums ``C_res`` and field tag sums
``C_T_res`` an unprotected NDP PU would compute, nothing more.  No key
material ever reaches a node — the trusted coordinator regenerates the
pad halves itself and combines/verifies on its side, so a node can
neither decrypt the tables it stores nor forge a partial sum that
passes the per-shard check (except with the scheme's forgery
probability).  Row-range *ownership* is purely logical (the coordinator
masks each query to the owner's rows before dispatch), so re-sharding
after a quarantine moves no data — any live node can stand in for any
other.

Fault obedience: chaos runs ship a ``directive`` inside ``partial_sum``
payloads (decided coordinator-side by
:meth:`~repro.faults.plan.FaultInjector.node_directive`, keeping all
randomness in one seeded stream).  ``byzantine`` forges the tag shares,
``slow`` sleeps past the deadline, ``partition`` swallows the request,
``dead`` kills the node — each exercising one rung of the coordinator's
blame/failover ladder.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Set

from .. import obs
from ..core.protocol import UntrustedNdpDevice
from ..errors import ConfigurationError, PeerTimeoutError, SecNDPError, ServerClosedError
from ..serve.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    FrameError,
    NodeRequest,
    NodeResponse,
    read_frame,
    resolve_codec,
    write_frame,
)
from . import codec

__all__ = ["NodeServer", "NodeClient"]


class NodeServer:
    """Serve cluster frames for one NDP node (``port=0`` = ephemeral)."""

    def __init__(self, name: str, host: str = "127.0.0.1", port: int = 0):
        self.name = name
        self.host = host
        self.port = port
        self._codec = resolve_codec("json")
        self._server: Optional[asyncio.AbstractServer] = None
        self._device: Optional[UntrustedNdpDevice] = None
        self._range: Dict[str, Any] = {}
        self._closed = False
        self._stop = asyncio.Event()
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._conn_writers: Set[asyncio.StreamWriter] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "NodeServer":
        if self._server is not None:
            return self
        if self._closed:
            raise ConfigurationError("node server is closed")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        obs.inc("cluster.node.starts")
        return self

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Abort live connections so their handler tasks finish on their
        # own (cancelling them makes 3.11's streams callback log noise),
        # then wait for every handler except the one calling us.
        for writer in list(self._conn_writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        me = asyncio.current_task()
        pending = [t for t in self._conn_tasks if t is not me and not t.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def wait_closed(self) -> None:
        """Block until :meth:`close` (or a ``dead`` directive) fires."""
        await self._stop.wait()

    async def __aenter__(self) -> "NodeServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- frame handling --------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    obj = await read_frame(reader)
                except FrameError:
                    break
                if obj is None:
                    break
                try:
                    request = NodeRequest.from_wire(obj)
                except FrameError as exc:
                    rid = obj.get("id", 0) if isinstance(obj, dict) else 0
                    await self._write(
                        writer,
                        NodeResponse(
                            id=int(rid), status=STATUS_ERROR,
                            error=str(exc), kind="FrameError",
                        ),
                    )
                    continue
                response = await self._serve_one(request, writer)
                if response is None:  # partitioned / dead: no answer
                    continue
                await self._write(writer, response)
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _write(
        self, writer: asyncio.StreamWriter, response: NodeResponse
    ) -> None:
        try:
            await write_frame(writer, response.to_wire(), self._codec)
        except (ConnectionError, OSError):
            obs.inc("cluster.node.write_errors")

    async def _serve_one(
        self, request: NodeRequest, writer: asyncio.StreamWriter
    ) -> Optional[NodeResponse]:
        try:
            if request.op == "heartbeat":
                return NodeResponse(
                    id=request.id, status=STATUS_OK,
                    payload={"node": self.name, "tables": sorted(self._range)},
                )
            if request.op == "shard_assign":
                return self._assign(request)
            if request.op == "partial_sum":
                return await self._partial_sum(request, writer)
            if request.op == "shutdown":
                asyncio.get_running_loop().call_soon(self._stop.set)
                return NodeResponse(
                    id=request.id, status=STATUS_OK, payload={"node": self.name}
                )
            raise ConfigurationError(f"unhandled node op {request.op!r}")
        except SecNDPError as exc:
            return NodeResponse(
                id=request.id, status=STATUS_ERROR,
                error=str(exc), kind=type(exc).__name__,
            )

    def _assign(self, request: NodeRequest) -> NodeResponse:
        payload = request.payload
        params = codec.decode_params(payload.get("params", {}))
        # A fresh replica per table-bearing assignment; a re-assignment
        # (after re-shard) that only updates ranges sends no tables and
        # keeps the replica.  Only public params and ciphertext arrive —
        # this party never holds key material.
        tables = payload.get("tables") or {}
        if tables or self._device is None:
            self._device = UntrustedNdpDevice(params)
        for name, blob in tables.items():
            self._device.store(name, codec.decode_table(blob, params))
        self._range = dict(payload.get("ranges") or {})
        obs.inc("cluster.node.assigns")
        return NodeResponse(
            id=request.id,
            status=STATUS_OK,
            payload={"node": self.name, "tables": sorted(self._range)},
        )

    async def _partial_sum(
        self, request: NodeRequest, writer: asyncio.StreamWriter
    ) -> Optional[NodeResponse]:
        if self._device is None:
            raise ConfigurationError(
                f"node {self.name!r} has no shard assignment yet"
            )
        directive = request.payload.get("directive")
        if directive:
            kind = directive[0]
            if kind == "partition":
                obs.inc("cluster.node.partitioned")
                return None
            if kind == "dead":
                # Simulated host death: drop the connection mid-request
                # and stop serving; the coordinator sees a dead peer.
                obs.inc("cluster.node.died")
                writer.close()
                await self.close()
                self._stop.set()
                return None
            if kind == "slow":
                await asyncio.sleep(float(directive[1]))
        batch_rows, batch_weights = codec.decode_queries(request.payload)
        name = request.table or ""
        values, tag_sums = self._device.partial_sum_batch(
            name, batch_rows, batch_weights, with_tags=True
        )
        if directive and directive[0] == "byzantine":
            # Forge every served query's ciphertext tag sum; the
            # coordinator's per-shard check must blame exactly this node.
            obs.inc("cluster.node.byzantine")
            field = self._device.field
            tag_sums = [
                field.add(t, 1) if rows else t
                for t, rows in zip(tag_sums, batch_rows)
            ]
        obs.inc("cluster.node.partials")
        return NodeResponse(
            id=request.id,
            status=STATUS_OK,
            payload={
                "node": self.name,
                "sums": codec.encode_device_sums(values, tag_sums),
            },
        )


class NodeClient:
    """Coordinator-side handle for one node connection.

    Single in-flight request per node (the coordinator fans out across
    nodes, not within one), so the read path is a plain awaited frame —
    no pending-future machinery.  A missed deadline raises
    :class:`~repro.errors.PeerTimeoutError`; a dropped connection
    :class:`~repro.errors.ServerClosedError`.  The coordinator's ladder
    owns all retry/failover decisions, so this client never reconnects.
    """

    def __init__(self, name: str, host: str, port: int):
        self.name = name
        self.host = host
        self.port = port
        self._codec = resolve_codec("json")
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        self._next_id = 0

    async def connect(self) -> "NodeClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    async def request(
        self,
        op: str,
        table: Optional[str] = None,
        payload: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> NodeResponse:
        request = NodeRequest(
            id=self._new_id(), op=op, table=table, payload=payload or {}
        )
        async with self._lock:
            if self._writer is None:
                await self.connect()
            try:
                await write_frame(self._writer, request.to_wire(), self._codec)
                obj = await asyncio.wait_for(read_frame(self._reader), timeout)
            except asyncio.TimeoutError:
                # The stale response could still arrive and desync the
                # request/response pairing; drop the connection so the
                # next request starts on a fresh stream.
                await self.close()
                raise PeerTimeoutError(
                    f"node {self.name!r} missed its {timeout}s deadline for "
                    f"{op!r}"
                ) from None
            except (ConnectionError, OSError) as exc:
                await self.close()
                raise ServerClosedError(
                    f"node {self.name!r} connection lost: {exc}"
                ) from exc
        if obj is None:
            raise ServerClosedError(
                f"node {self.name!r} closed the connection before answering"
            )
        response = NodeResponse.from_wire(obj)
        if response.status != STATUS_OK:
            exc_cls = ConfigurationError
            raise exc_cls(
                f"node {self.name!r} error ({response.kind}): {response.error}"
            )
        return response

    async def heartbeat(self, timeout: Optional[float] = None) -> bool:
        try:
            await self.request("heartbeat", timeout=timeout)
        except SecNDPError:
            return False
        return True
