"""Analytic bandwidth-matching model for AES-engine provisioning.

Section VII-A reasons about how many AES engines the SecNDP engine needs
to keep up with NDP memory throughput ("when NDP_rank=8, we need ten AES
engines to match the memory throughput in the burst mode").  This module
derives those numbers analytically from the timing parameters, giving a
closed-form cross-check for the simulator-measured bottleneck curves of
Figures 8/10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..memsim.timing import DDR4Timing, DramGeometry
from ..ndp.aes_engine import AES_BLOCK_NS

__all__ = ["BandwidthModel"]


@dataclass(frozen=True)
class BandwidthModel:
    """Peak-bandwidth bookkeeping for one channel + NDP configuration."""

    timing: DDR4Timing = DDR4Timing()
    geometry: DramGeometry = DramGeometry()

    # -- memory-side rates (bytes per nanosecond == GB/s) ----------------------

    @property
    def channel_peak_gbps(self) -> float:
        """External bus: one line per tBL cycles."""
        return self.geometry.line_bytes / self.timing.cycles_to_ns(self.timing.tBL)

    def rank_burst_gbps(self, same_bank_group: bool = False) -> float:
        """One rank's internal data path: one line per tCCD."""
        ccd = self.timing.tCCD_L if same_bank_group else self.timing.tCCD_S
        return self.geometry.line_bytes / self.timing.cycles_to_ns(ccd)

    def ndp_aggregate_gbps(
        self, ndp_ranks: int, bank_group_locality: float = 0.25
    ) -> float:
        """Aggregate NDP read bandwidth across ranks.

        ``bank_group_locality`` is the fraction of consecutive column
        commands hitting the same bank group (paced by tCCD_L instead of
        tCCD_S); 0.25 corresponds to random placement over 4 groups.
        """
        ccd = (
            bank_group_locality * self.timing.tCCD_L
            + (1 - bank_group_locality) * self.timing.tCCD_S
        )
        per_rank = self.geometry.line_bytes / self.timing.cycles_to_ns(ccd)
        return ndp_ranks * per_rank

    # -- AES-engine provisioning ----------------------------------------------------

    @property
    def engine_gbps(self) -> float:
        """One pipelined AES engine: 16 bytes per 1.15 ns [22]."""
        return 16.0 / AES_BLOCK_NS

    def engines_for_burst_mode(self, ndp_ranks: int) -> int:
        """Engines to match peak (tCCD_S-paced) NDP throughput.

        This is the paper's "burst mode" figure: ~10 engines at 8 ranks.
        """
        return math.ceil(
            ndp_ranks * self.rank_burst_gbps(same_bank_group=False)
            / self.engine_gbps
        )

    def engines_for_sustained(
        self, ndp_ranks: int, achieved_fraction: float = 0.6
    ) -> int:
        """Engines to match *achieved* NDP bandwidth.

        Real packets fall short of burst mode (row misses, load imbalance);
        ``achieved_fraction`` is the sustained/peak ratio, which the
        simulator measures directly (Fig. 8's observation that eight
        engines cover ~70% of packets at 8 ranks corresponds to ~0.6-0.8).
        """
        if not 0 < achieved_fraction <= 1:
            raise ValueError("achieved_fraction must be in (0, 1]")
        return math.ceil(
            self.ndp_aggregate_gbps(ndp_ranks) * achieved_fraction
            / self.engine_gbps
        )

    def engines_for_tee(self) -> int:
        """Engines a conventional (non-NDP) TEE needs: match the channel."""
        return math.ceil(self.channel_peak_gbps / self.engine_gbps)

    def quantization_engine_ratio(self, full_bytes: int, quant_bytes: int) -> float:
        """Relative engine demand after quantization (OTP blocks scale
        with ciphertext bytes): the paper's 'about one third'."""
        full_blocks = -(-full_bytes // 16)
        quant_blocks = -(-quant_bytes // 16)
        return quant_blocks / full_blocks
