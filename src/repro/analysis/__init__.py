"""Energy, area and accuracy analyses behind Tables IV and V."""

from .accuracy import AccuracyReport, quantization_accuracy
from .bandwidth import BandwidthModel
from .area import PAPER_AES_ENGINES, PAPER_TOTAL_MM2, AreaModel
from .energy import (
    DimmEnergyParams,
    EnergyRow,
    EngineEnergyParams,
    TABLE5_SCENARIOS,
    normalized_table5,
    table5_rows,
)

__all__ = [
    "AccuracyReport",
    "quantization_accuracy",
    "BandwidthModel",
    "PAPER_AES_ENGINES",
    "PAPER_TOTAL_MM2",
    "AreaModel",
    "DimmEnergyParams",
    "EnergyRow",
    "EngineEnergyParams",
    "TABLE5_SCENARIOS",
    "normalized_table5",
    "table5_rows",
]
