"""Quantization-accuracy experiment - reproduces Table IV.

Table IV reports LogLoss on a production recommendation model under four
embedding precisions: fp32, 32-bit fixed point, 8-bit table-wise, and
8-bit column-wise quantization.  The production model and dataset are not
available, so (per the substitution policy in DESIGN.md) we train a
small-scale DLRM on a planted-signal synthetic CTR dataset and evaluate
the same four precision settings on a held-out split, isolating the
precision change by overriding only the pooled-embedding inputs.

Expected shape (the paper's finding): fixed-32 is bit-near fp32;
both 8-bit schemes degrade LogLoss by well under 0.1%, with column-wise
at or below table-wise degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..parallel import parallel_map
from ..workloads.datasets import ClickDataset, click_dataset
from ..workloads.dlrm import DlrmConfig, DlrmModel
from ..workloads.quantization import (
    ColumnwiseQuantizer,
    FixedPointCodec,
    RowwiseQuantizer,
    TablewiseQuantizer,
)

__all__ = ["AccuracyReport", "quantization_accuracy"]

SCHEMES = [
    "32-bit floating point",
    "32-bit fixed point",
    "table-wise quantization (8-bit)",
    "column-wise quantization (8-bit)",
    "row-wise quantization (8-bit)",
]


@dataclass(frozen=True)
class AccuracyReport:
    """LogLoss per precision scheme plus degradations vs fp32."""

    logloss: Dict[str, float]

    def degradation(self, scheme: str) -> float:
        base = self.logloss["32-bit floating point"]
        return self.logloss[scheme] - base

    def degradation_pct(self, scheme: str) -> float:
        base = self.logloss["32-bit floating point"]
        return 100.0 * (self.logloss[scheme] - base) / base

    def rows(self) -> List[tuple]:
        return [
            (name, self.logloss[name], self.degradation(name))
            for name in SCHEMES
            if name in self.logloss
        ]


def _pooled_from_tables(
    model: DlrmModel, tables: List[np.ndarray], sparse_rows
) -> np.ndarray:
    """Pool per-sample embeddings from externally supplied table values."""
    cfg = model.config
    batch = len(sparse_rows)
    out = np.zeros((batch, cfg.n_tables, cfg.embedding_dim), dtype=np.float64)
    for s in range(batch):
        for t in range(cfg.n_tables):
            rows = np.asarray(sparse_rows[s][t], dtype=np.int64)
            out[s, t] = tables[t][rows].sum(axis=0)
    return out


def _scheme_logloss(item):
    """Evaluate one precision scheme; must stay picklable.

    Each cell re-quantizes the (small) fp32 tables itself so the items
    stay light: shipping the trained model once per scheme is cheaper
    than shipping five sets of dequantized tables.
    """
    scheme, model, fp32_tables, dense_eval, rows_eval, labels_eval = item
    if scheme == "32-bit floating point":
        return scheme, model.logloss(dense_eval, rows_eval, labels_eval)
    if scheme == "32-bit fixed point":
        codec = FixedPointCodec(frac_bits=16)
        tables = [codec.dequantize(codec.quantize(t)) for t in fp32_tables]
    elif scheme == "table-wise quantization (8-bit)":
        tw = TablewiseQuantizer()
        tables = [tw.dequantize(*tw.quantize(t)) for t in fp32_tables]
    elif scheme == "column-wise quantization (8-bit)":
        cw = ColumnwiseQuantizer()
        tables = [cw.dequantize(*cw.quantize(t)) for t in fp32_tables]
    else:
        rw = RowwiseQuantizer()
        tables = [rw.dequantize(*rw.quantize(t)) for t in fp32_tables]
    loss = model.logloss(
        dense_eval,
        rows_eval,
        labels_eval,
        pooled_override=_pooled_from_tables(model, tables, rows_eval),
    )
    return scheme, loss


def quantization_accuracy(
    n_tables: int = 4,
    rows_per_table: int = 512,
    n_train: int = 4000,
    n_eval: int = 2000,
    epochs: int = 15,
    lr: float = 0.1,
    seed: int = 7,
    include_rowwise: bool = True,
    workers: Optional[int] = None,
) -> AccuracyReport:
    """Train a small DLRM and measure LogLoss under each precision scheme."""
    config = DlrmConfig(
        name="accuracy-dlrm",
        bottom_mlp=(16, 32, 8),  # chain output must equal embedding_dim
        top_mlp=(64, 32, 1),
        n_tables=n_tables,
        rows_per_table=rows_per_table,
        embedding_dim=8,
    )
    data = click_dataset(
        n_train + n_eval, n_tables, rows_per_table, dense_dim=16, seed=seed
    )
    model = DlrmModel(config, seed=seed)
    model.train(
        data.dense[:n_train],
        data.sparse_rows[:n_train],
        data.labels[:n_train],
        epochs=epochs,
        lr=lr,
        seed=seed,
    )

    dense_eval = data.dense[n_train:]
    rows_eval = data.sparse_rows[n_train:]
    labels_eval = data.labels[n_train:]

    fp32_tables = [t.values.astype(np.float64) for t in model.tables]
    schemes = [s for s in SCHEMES if include_rowwise or "row-wise" not in s]
    cells = parallel_map(
        _scheme_logloss,
        [
            (scheme, model, fp32_tables, dense_eval, rows_eval, labels_eval)
            for scheme in schemes
        ],
        workers=workers,
    )
    return AccuracyReport(logloss=dict(cells))
