"""Memory-system energy analysis - reproduces Table V.

Table V reports per-bit energy coefficients (pJ per bit of pooled input,
``PF`` input bits per result bit) for five configurations::

    row                DIMM       DIMM IO   SecNDP engine       Normalised (PF=80)
    unprotected nonNDP 27.42*PF   7.3*PF    0                   100%
    unprotected NDP    27.42*PF   7.3       0                   79.2%
    non-NDP Enc        27.42*PF   7.3*PF    0.5*PF              101.5%
    SecNDP Enc         27.42*PF   7.3       0.9*PF              81.83%
    SecNDP Enc+ver     30.85*PF   8.2       1.01*PF+1.72        92.09%

We rebuild the same table from *counted* quantities: the DIMM coefficient
comes from the DRAM/IO event counters of an actual simulation run (or the
paper's published coefficient as the default), the IO term from which
bursts cross the channel bus, and the engine term from per-block AES /
OTP-PU / checksum energies.  The normalised column is then recomputed -
so the bench verifies the *relationships* (NDP saves ~20% of memory
energy; encryption adds ~2%; verification gives back ~10%) rather than
pinning magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["EngineEnergyParams", "EnergyRow", "table5_rows", "TABLE5_SCENARIOS"]


@dataclass(frozen=True)
class EngineEnergyParams:
    """Per-event energies of the SecNDP engine blocks (45 nm, from [22]/[66]).

    Values are chosen so the derived per-bit coefficients land on the
    paper's Table V: 0.5 pJ/bit for bare counter-mode decryption (AES pad
    + XOR), 0.9 pJ/bit when the OTP PU also multiplies-accumulates the
    pad (SecNDP), plus checksum/tag terms for verification.
    """

    #: AES pad generation + XOR, per 128-bit block (non-NDP Enc decrypt)
    aes_block_pj: float = 64.0
    #: additional OTP-PU MAC work per block under SecNDP
    otp_pu_block_pj: float = 51.2
    #: verification-engine energy per data element folded into a checksum
    checksum_elem_pj: float = 0.43
    #: tag decrypt + field MAC per row tag
    tag_pj: float = 115.0

    @property
    def enc_pj_per_bit(self) -> float:
        """non-NDP Enc engine coefficient (pJ per input bit)."""
        return self.aes_block_pj / 128.0

    @property
    def secndp_pj_per_bit(self) -> float:
        """SecNDP Enc engine coefficient (pJ per input bit)."""
        return (self.aes_block_pj + self.otp_pu_block_pj) / 128.0


@dataclass(frozen=True)
class DimmEnergyParams:
    """Per-bit DIMM coefficients (DRAMPower/CACTI-IO equivalents)."""

    #: DRAM-chip + buffer energy per bit read inside the DIMM
    dimm_pj_per_bit: float = 27.42
    #: external channel IO per bit
    io_pj_per_bit: float = 7.3
    #: relative traffic overhead of fetching 128-bit tags with the data
    #: (Ver-ECC fetches tag bits alongside each row: 16B per 128B row)
    tag_traffic_overhead: float = 0.125


@dataclass(frozen=True)
class EnergyRow:
    """One Table V row: per-result-bit energy terms as functions of PF."""

    name: str
    dimm_pj_per_bit: float       #: coefficient multiplying PF
    io_pj_per_bit_pf: float      #: IO coefficient multiplying PF (0 if flat)
    io_pj_per_bit_flat: float    #: PF-independent IO term
    engine_pj_per_bit_pf: float  #: engine coefficient multiplying PF
    engine_pj_per_bit_flat: float

    def total_pj_per_bit(self, pf: int) -> float:
        return (
            self.dimm_pj_per_bit * pf
            + self.io_pj_per_bit_pf * pf
            + self.io_pj_per_bit_flat
            + self.engine_pj_per_bit_pf * pf
            + self.engine_pj_per_bit_flat
        )


#: The five Table V configurations.
TABLE5_SCENARIOS = [
    "unprotected non-NDP",
    "unprotected NDP",
    "non-NDP Enc",
    "SecNDP Enc",
    "SecNDP Enc+ver",
]


def table5_rows(
    engine: EngineEnergyParams = EngineEnergyParams(),
    dimm: DimmEnergyParams = DimmEnergyParams(),
    pf: int = 80,
    row_bits: int = 32 * 32,
) -> List[EnergyRow]:
    """Construct the five rows of Table V from the component models.

    ``row_bits`` is the size of one pooled row (m * w_e); it sets the
    relative weight of per-row terms (tags) against per-bit terms.
    """
    d = dimm.dimm_pj_per_bit
    io = dimm.io_pj_per_bit

    # Verification (Ver-ECC): tags ride with the data, inflating DIMM and
    # IO traffic by the tag/row ratio, and the engine decrypts/folds tags.
    tag_factor = 1.0 + dimm.tag_traffic_overhead
    tag_pj_per_result_bit = engine.tag_pj / row_bits  # one tag per pooled row
    checksum_flat = engine.checksum_elem_pj * 4  # result checksum, amortised

    return [
        EnergyRow("unprotected non-NDP", d, io, 0.0, 0.0, 0.0),
        EnergyRow("unprotected NDP", d, 0.0, io, 0.0, 0.0),
        EnergyRow("non-NDP Enc", d, io, 0.0, engine.enc_pj_per_bit, 0.0),
        EnergyRow("SecNDP Enc", d, 0.0, io, engine.secndp_pj_per_bit, 0.0),
        EnergyRow(
            "SecNDP Enc+ver",
            d * tag_factor,
            0.0,
            io * tag_factor,
            engine.secndp_pj_per_bit + tag_pj_per_result_bit,
            checksum_flat,
        ),
    ]


def normalized_table5(pf: int = 80, **kwargs) -> Dict[str, float]:
    """Normalised total energy per scenario (unprotected non-NDP = 100%)."""
    rows = table5_rows(pf=pf, **kwargs)
    base = rows[0].total_pj_per_bit(pf)
    return {row.name: 100.0 * row.total_pj_per_bit(pf) / base for row in rows}
