"""SecNDP engine area model (paper Sec. VII-C).

The paper estimates the SecNDP engine at **1.625 mm^2 at 45 nm with ten
AES engines** matching the OTP-PU and verification-engine throughput.
Component areas come from the cited 45 nm AES design [22] and
Aladdin-style modelling [66] of the OTP PU and verification engine; we
parameterise those components so the total reproduces the paper's
estimate and scales with the AES-engine count (the knob Figs. 7-10
sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["AreaModel", "PAPER_TOTAL_MM2", "PAPER_AES_ENGINES"]

#: Sec. VII-C: "1.625 mm^2 at 45 nm node if we use 10 AES engines".
PAPER_TOTAL_MM2 = 1.625
PAPER_AES_ENGINES = 10


@dataclass(frozen=True)
class AreaModel:
    """Component areas (mm^2, 45 nm)."""

    #: one fully pipelined AES-128 engine [22]
    aes_engine_mm2: float = 0.1375
    #: the OTP PU (integer MAC datapath + registers, mirrors an NDP PU)
    otp_pu_mm2: float = 0.10
    #: verification engine (checksum datapath over GF(2^127-1))
    verification_mm2: float = 0.12
    #: buffers + control (dec./resp. buffers, command steering)
    control_mm2: float = 0.03

    def total_mm2(self, n_aes_engines: int = PAPER_AES_ENGINES) -> float:
        """Total SecNDP engine area for a given AES-engine count."""
        if n_aes_engines < 1:
            raise ConfigurationError("need at least one AES engine")
        return (
            n_aes_engines * self.aes_engine_mm2
            + self.otp_pu_mm2
            + self.verification_mm2
            + self.control_mm2
        )

    def scaled_to_node(self, total_mm2: float, from_nm: int = 45, to_nm: int = 7) -> float:
        """First-order area scaling to a newer process node.

        The paper notes overheads "can be further reduced with more
        advanced process nodes"; classic area scaling goes with the
        square of the feature-size ratio.
        """
        if from_nm <= 0 or to_nm <= 0:
            raise ConfigurationError("process nodes must be positive")
        return total_mm2 * (to_nm / from_nm) ** 2
