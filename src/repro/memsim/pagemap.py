"""OS page-table emulation (paper Sec. VI-B).

The evaluation "applies a standard page mapping method to generate the
physical addresses ... by assuming that the OS randomly selects free
physical pages for each logical page frame".  :class:`PageMapper` does
exactly that: 4 KB pages, a shuffled free list, and a stable
logical-to-physical translation so repeated accesses to the same logical
page stay in the same physical row neighbourhood.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..errors import ConfigurationError

__all__ = ["PageMapper", "PAGE_BYTES"]

PAGE_BYTES = 4096


class PageMapper:
    """Random logical-to-physical page mapping.

    Parameters
    ----------
    physical_bytes:
        Size of the physical memory pool to allocate from.
    seed:
        RNG seed; experiments fix it so traces are reproducible.
    identity:
        When ``True``, map pages 1:1 (used by NDP-partitioned layouts
        where the runtime places shards contiguously in rank-local space).
    """

    def __init__(
        self,
        physical_bytes: int,
        seed: int = 0,
        identity: bool = False,
    ):
        if physical_bytes < PAGE_BYTES:
            raise ConfigurationError("physical memory smaller than one page")
        self.physical_pages = physical_bytes // PAGE_BYTES
        self.identity = identity
        self._table: Dict[int, int] = {}
        self._rng = random.Random(seed)
        self._used: set = set()

    def _next_free_page(self) -> int:
        # Rejection-sample a free physical page.  Memory pools are huge
        # relative to mapped footprints, so collisions are rare; the loop
        # is bounded defensively for near-full pools.
        if len(self._used) >= self.physical_pages:
            raise ConfigurationError("out of physical pages")
        for _ in range(64):
            page = self._rng.randrange(self.physical_pages)
            if page not in self._used:
                self._used.add(page)
                return page
        # Dense pool: fall back to a linear scan from a random start.
        start = self._rng.randrange(self.physical_pages)
        for offset in range(self.physical_pages):
            page = (start + offset) % self.physical_pages
            if page not in self._used:
                self._used.add(page)
                return page
        raise ConfigurationError("out of physical pages")

    def translate(self, logical_addr: int) -> int:
        """Translate a logical byte address to a physical byte address."""
        if logical_addr < 0:
            raise ConfigurationError("negative address")
        if self.identity:
            return logical_addr
        lpage, offset = divmod(logical_addr, PAGE_BYTES)
        ppage = self._table.get(lpage)
        if ppage is None:
            ppage = self._next_free_page()
            self._table[lpage] = ppage
        return ppage * PAGE_BYTES + offset

    @property
    def mapped_pages(self) -> int:
        return len(self._table)
