"""Physical-address decoding (the paper's "physical addresses mapping module").

Splits a flat physical byte address into (channel, rank, bank group, bank,
row, column) coordinates.  The default interleaving is row : bank : bank
group : rank : column : channel : line-offset from MSB to LSB - i.e.
consecutive cache lines walk columns within a rank first, which is the
layout that gives rank-level NDP units contiguous vector rows (Sec. V,
RecNMP-style rank partitioning [36]).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .timing import DramGeometry

__all__ = ["DecodedAddress", "AddressMapper"]


@dataclass(frozen=True)
class DecodedAddress:
    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int

    def flat_bank(self, banks_per_group: int) -> int:
        """Flat bank index within the rank."""
        return self.bank_group * banks_per_group + self.bank


@dataclass(frozen=True)
class AddressMapper:
    """Bit-slicing decoder for a :class:`DramGeometry`."""

    geometry: DramGeometry = DramGeometry()

    def decode(self, addr: int) -> DecodedAddress:
        """Decode a physical byte address into DRAM coordinates."""
        g = self.geometry
        if addr < 0:
            raise ConfigurationError("address must be non-negative")
        line = addr // g.line_bytes
        channel = line % g.channels
        line //= g.channels
        column = line % g.columns_per_row
        line //= g.columns_per_row
        rank = line % g.ranks
        line //= g.ranks
        bank_group = line % g.bank_groups
        line //= g.bank_groups
        bank = line % g.banks_per_group
        line //= g.banks_per_group
        row = line % g.rows_per_bank
        return DecodedAddress(channel, rank, bank_group, bank, row, column)

    def rank_of(self, addr: int) -> int:
        return self.decode(addr).rank

    def rank_local_decode(self, addr: int) -> DecodedAddress:
        """Decode an address known to be rank-local (see :class:`RankAddressMapper`)."""
        return self.decode(addr)


@dataclass(frozen=True)
class RankAddressMapper:
    """Decoder for NDP-partitioned layouts: the rank is chosen explicitly.

    Rank-level NDP systems partition data so one PU owns a table shard; the
    shard's addresses then interleave only across the rank's own banks.
    Address bits (LSB to MSB): line offset, column, bank group, bank, row.
    Interleaving bank group below bank maximises tCCD_S/tRRD_S-friendly
    group alternation for streaming reads.
    """

    geometry: DramGeometry = DramGeometry()

    def decode(self, rank: int, rank_addr: int) -> DecodedAddress:
        g = self.geometry
        if not 0 <= rank < g.ranks:
            raise ConfigurationError(f"rank {rank} out of range [0, {g.ranks})")
        if rank_addr < 0:
            raise ConfigurationError("address must be non-negative")
        line = rank_addr // g.line_bytes
        column = line % g.columns_per_row
        line //= g.columns_per_row
        bank_group = line % g.bank_groups
        line //= g.bank_groups
        bank = line % g.banks_per_group
        line //= g.banks_per_group
        row = line % g.rows_per_bank
        return DecodedAddress(0, rank, bank_group, bank, row, column)
