"""Cycle-level DRAM substrate (the Ramulator replacement).

Event-driven DDR4 timing model honouring the paper's Table II
constraints, plus address decoding, OS page mapping and DRAMPower-style
energy counting.
"""

from .address import AddressMapper, DecodedAddress, RankAddressMapper
from .bank import Bank
from .channel import ChannelBus
from .controller import AccessResult, MemoryController
from .dram import DramSystem
from .energy import DDR4_ENERGY, EnergyCounters, EnergyParams
from .pagemap import PAGE_BYTES, PageMapper
from .rank import Rank
from .timing import DDR4_2400, DDR4_GEOMETRY, DDR4Timing, DramGeometry
from .trace import DramCommand, TraceEntry, TraceViolation, validate_trace

__all__ = [
    "AddressMapper",
    "DecodedAddress",
    "RankAddressMapper",
    "Bank",
    "ChannelBus",
    "AccessResult",
    "MemoryController",
    "DramSystem",
    "DDR4_ENERGY",
    "EnergyCounters",
    "EnergyParams",
    "PAGE_BYTES",
    "PageMapper",
    "Rank",
    "DDR4_2400",
    "DDR4_GEOMETRY",
    "DDR4Timing",
    "DramGeometry",
    "DramCommand",
    "TraceEntry",
    "TraceViolation",
    "validate_trace",
]
