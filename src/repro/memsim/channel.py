"""Shared channel data-bus occupancy.

All ranks on a channel share one external DQ bus to the memory
controller.  Every CPU-bound burst occupies the bus for tBL cycles; a
rank-to-rank turnaround bubble is added when consecutive bursts come from
different ranks.  NDP accesses bypass this bus entirely (the data is
consumed inside the DIMM), which is precisely the bandwidth NDP reclaims.
"""

from __future__ import annotations

from dataclasses import dataclass

from .timing import DDR4Timing

__all__ = ["ChannelBus"]

#: Cycles lost when the bus switches between ranks (DQ turnaround).
RANK_TO_RANK_PENALTY = 2


@dataclass
class ChannelBus:
    """Occupancy tracker for one channel's external data bus."""

    timing: DDR4Timing
    free_at: int = 0
    last_rank: int = -1
    busy_cycles: int = 0

    def earliest_data(self, at: int, rank: int) -> int:
        """Earliest cycle a burst from ``rank`` may start on the bus."""
        t = max(at, self.free_at)
        if self.last_rank >= 0 and self.last_rank != rank:
            t = max(t, self.free_at + RANK_TO_RANK_PENALTY)
        return t

    def occupy(self, start: int, rank: int) -> int:
        """Claim the bus for one burst starting at ``start``; returns the end."""
        end = start + self.timing.tBL
        self.free_at = end
        self.last_rank = rank
        self.busy_cycles += self.timing.tBL
        return end
