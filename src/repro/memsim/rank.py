"""Per-rank timing state: ACT pacing (tRRD, tFAW) and the rank data path.

Two classes of constraint live at rank scope:

* **ACT pacing** - consecutive activates to the same rank must be spaced
  tRRD_S (different bank group) or tRRD_L (same group) apart, and no more
  than four ACTs may issue within any tFAW window.
* **Data-path pacing** - column commands share the rank's internal DQ
  bus: consecutive RD/WR bursts are spaced tCCD_S / tCCD_L apart
  depending on bank-group locality.

The rank data path is what bounds *NDP* bandwidth (the NDP PU sits at the
rank's buffer), while the shared channel bus (see
:mod:`repro.memsim.channel`) additionally bounds *CPU* bandwidth - this
split is the architectural source of the paper's NDP speedups.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from .bank import Bank
from .timing import DDR4Timing, DramGeometry

__all__ = ["Rank"]


@dataclass
class Rank:
    """Timing state for one rank and its banks."""

    timing: DDR4Timing
    geometry: DramGeometry
    banks: List[Bank] = field(default_factory=list)
    #: rolling window of the last four ACT cycles (tFAW)
    act_window: Deque[int] = field(default_factory=lambda: deque(maxlen=4))
    last_act_cycle: int = -(10**9)
    last_act_group: int = -1
    last_col_cycle: int = -(10**9)
    last_col_group: int = -1
    #: refresh staggering offset in cycles (set by the controller per rank)
    refresh_offset: int = 0
    #: index of the last refresh window this rank has completed
    refreshes_done: int = 0

    def __post_init__(self) -> None:
        if not self.banks:
            self.banks = [
                Bank(self.timing) for _ in range(self.geometry.banks_per_rank)
            ]

    # -- refresh (all-bank REFab) -----------------------------------------------

    def refresh_adjust(self, at: int) -> int:
        """Earliest cycle >= ``at`` at which a command may issue, given the
        rank's refresh schedule (one all-bank refresh of tRFC cycles every
        tREFI, staggered by ``refresh_offset``).

        Crossing a refresh boundary closes every row buffer (REFab
        precharges all banks), which the model applies lazily here.
        """
        t = at
        while True:
            # Index of the refresh window t falls into (or just after).
            k = (t - self.refresh_offset) // self.timing.tREFI
            window_start = self.refresh_offset + k * self.timing.tREFI
            window_end = window_start + self.timing.tRFC
            if k >= 1 and self.refreshes_done < k:
                # Catch up on refreshes that elapsed before t: rows closed.
                self.refreshes_done = k
                for bank in self.banks:
                    bank.open_row = None
            if window_start <= t < window_end and k >= 1:
                t = window_end
                continue
            return t

    def bank(self, bank_group: int, bank: int) -> Bank:
        return self.banks[bank_group * self.geometry.banks_per_group + bank]

    # -- ACT pacing -----------------------------------------------------------

    def earliest_act(self, at: int, bank_group: int) -> int:
        t = at
        if self.last_act_cycle > -(10**8):
            rrd = (
                self.timing.tRRD_L
                if bank_group == self.last_act_group
                else self.timing.tRRD_S
            )
            t = max(t, self.last_act_cycle + rrd)
        if len(self.act_window) == 4:
            t = max(t, self.act_window[0] + self.timing.tFAW)
        return t

    def note_act(self, cycle: int, bank_group: int) -> None:
        self.act_window.append(cycle)
        self.last_act_cycle = cycle
        self.last_act_group = bank_group

    # -- column-command pacing --------------------------------------------------

    def earliest_col(self, at: int, bank_group: int) -> int:
        if self.last_col_cycle <= -(10**8):
            return at
        ccd = (
            self.timing.tCCD_L
            if bank_group == self.last_col_group
            else self.timing.tCCD_S
        )
        return max(at, self.last_col_cycle + ccd)

    def note_col(self, cycle: int, bank_group: int) -> None:
        self.last_col_cycle = cycle
        self.last_col_group = bank_group
