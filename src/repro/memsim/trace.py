"""DRAM command tracing and timing-constraint validation.

The controller can optionally record every command it schedules
(ACT/PRE/RD/WR with full coordinates and cycle).  The validator then
re-checks the *entire* JEDEC constraint set against the recorded trace -
independently of the scheduler's own bookkeeping - which is how the test
suite proves the event-driven model never violates a timing parameter on
arbitrary request streams (the same methodology Ramulator's validation
used against vendor Verilog models).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .timing import DDR4Timing

__all__ = ["DramCommand", "TraceEntry", "validate_trace", "TraceViolation"]


class DramCommand(enum.Enum):
    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"


@dataclass(frozen=True)
class TraceEntry:
    cycle: int
    command: DramCommand
    rank: int
    bank_group: int
    bank: int
    row: int


@dataclass(frozen=True)
class TraceViolation:
    constraint: str
    first: TraceEntry
    second: TraceEntry
    required: int
    actual: int

    def __str__(self) -> str:  # pragma: no cover - diagnostic aid
        return (
            f"{self.constraint}: {self.second.command.value}@{self.second.cycle} "
            f"only {self.actual} cycles after {self.first.command.value}"
            f"@{self.first.cycle} (need {self.required})"
        )


def validate_trace(
    trace: List[TraceEntry], timing: DDR4Timing
) -> List[TraceViolation]:
    """Re-check every pairwise JEDEC constraint on a recorded trace.

    Checks per bank: tRC (ACT->ACT), tRCD (ACT->RD/WR), tRAS (ACT->PRE),
    tRP (PRE->ACT); per rank: tRRD_S/L (ACT->ACT), tCCD_S/L (col->col),
    tFAW (4-ACT window).  Returns all violations (empty list = clean).
    """
    violations: List[TraceViolation] = []
    entries = sorted(trace, key=lambda e: e.cycle)

    def bank_key(e: TraceEntry) -> Tuple[int, int, int]:
        return (e.rank, e.bank_group, e.bank)

    # -- per-bank constraints ---------------------------------------------------
    last_act: Dict[Tuple, TraceEntry] = {}
    last_pre: Dict[Tuple, TraceEntry] = {}
    for e in entries:
        key = bank_key(e)
        if e.command is DramCommand.ACT:
            if key in last_act:
                gap = e.cycle - last_act[key].cycle
                if gap < timing.tRC:
                    violations.append(
                        TraceViolation("tRC", last_act[key], e, timing.tRC, gap)
                    )
            if key in last_pre:
                gap = e.cycle - last_pre[key].cycle
                if gap < timing.tRP:
                    violations.append(
                        TraceViolation("tRP", last_pre[key], e, timing.tRP, gap)
                    )
            last_act[key] = e
        elif e.command in (DramCommand.RD, DramCommand.WR):
            if key in last_act:
                gap = e.cycle - last_act[key].cycle
                if gap < timing.tRCD:
                    violations.append(
                        TraceViolation("tRCD", last_act[key], e, timing.tRCD, gap)
                    )
        elif e.command is DramCommand.PRE:
            if key in last_act:
                gap = e.cycle - last_act[key].cycle
                if gap < timing.tRAS:
                    violations.append(
                        TraceViolation("tRAS", last_act[key], e, timing.tRAS, gap)
                    )
            last_pre[key] = e

    # -- per-rank constraints ------------------------------------------------------
    rank_acts: Dict[int, List[TraceEntry]] = {}
    rank_cols: Dict[int, TraceEntry] = {}
    for e in entries:
        if e.command is DramCommand.ACT:
            acts = rank_acts.setdefault(e.rank, [])
            if acts:
                prev = acts[-1]
                rrd = (
                    timing.tRRD_L
                    if prev.bank_group == e.bank_group
                    else timing.tRRD_S
                )
                gap = e.cycle - prev.cycle
                if gap < rrd:
                    violations.append(
                        TraceViolation(
                            "tRRD_L" if prev.bank_group == e.bank_group else "tRRD_S",
                            prev, e, rrd, gap,
                        )
                    )
            acts.append(e)
            if len(acts) >= 5:
                window = e.cycle - acts[-5].cycle
                if window < timing.tFAW:
                    violations.append(
                        TraceViolation("tFAW", acts[-5], e, timing.tFAW, window)
                    )
        elif e.command in (DramCommand.RD, DramCommand.WR):
            prev = rank_cols.get(e.rank)
            if prev is not None:
                ccd = (
                    timing.tCCD_L
                    if prev.bank_group == e.bank_group
                    else timing.tCCD_S
                )
                gap = e.cycle - prev.cycle
                if gap < ccd:
                    violations.append(
                        TraceViolation(
                            "tCCD_L" if prev.bank_group == e.bank_group else "tCCD_S",
                            prev, e, ccd, gap,
                        )
                    )
            rank_cols[e.rank] = e
    return violations
