"""DRAM system facade: mapper + controller + energy in one object.

This is the component the NDP simulator and the baselines instantiate;
it corresponds to "(1) a physical addresses mapping module ... and (4) an
NDP DIMM consisting of DRAM devices" of the paper's simulation framework
(Sec. VI-B), with Ramulator's role played by
:class:`~repro.memsim.controller.MemoryController`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from .address import AddressMapper, DecodedAddress, RankAddressMapper
from .controller import AccessResult, MemoryController
from .energy import DDR4_ENERGY, EnergyCounters, EnergyParams
from .pagemap import PageMapper
from .timing import DDR4_2400, DDR4_GEOMETRY, DDR4Timing, DramGeometry

__all__ = ["DramSystem"]


class DramSystem:
    """One memory channel with page mapping and energy accounting."""

    def __init__(
        self,
        timing: DDR4Timing = DDR4_2400,
        geometry: DramGeometry = DDR4_GEOMETRY,
        energy_params: EnergyParams = DDR4_ENERGY,
        page_seed: int = 0,
        identity_pages: bool = False,
        enable_refresh: bool = True,
    ):
        self.timing = timing
        self.geometry = geometry
        self.energy_params = energy_params
        self.mapper = AddressMapper(geometry)
        self.rank_mapper = RankAddressMapper(geometry)
        self.pages = PageMapper(
            geometry.total_bytes, seed=page_seed, identity=identity_pages
        )
        # One controller (command scheduler + data bus) per channel; the
        # paper's configuration is single-channel (Table II), but the
        # facade scales for channel-count studies.
        self.controllers = [
            MemoryController(timing, geometry, enable_refresh)
            for _ in range(geometry.channels)
        ]
        self.controller = self.controllers[0]

    # -- request issue ------------------------------------------------------------

    def access_physical(
        self, phys_addr: int, at: int = 0, is_write: bool = False,
        use_channel_bus: bool = True,
    ) -> AccessResult:
        decoded = self.mapper.decode(phys_addr)
        return self.controllers[decoded.channel].access(
            decoded, at, is_write, use_channel_bus
        )

    def access_logical(
        self, logical_addr: int, at: int = 0, is_write: bool = False,
        use_channel_bus: bool = True,
    ) -> AccessResult:
        return self.access_physical(
            self.pages.translate(logical_addr), at, is_write, use_channel_bus
        )

    def access_rank_local(
        self, rank: int, rank_addr: int, at: int = 0, is_write: bool = False,
        use_channel_bus: bool = False,
    ) -> AccessResult:
        """Access an address inside one rank's NDP-partitioned shard."""
        return self.controller.access(
            self.rank_mapper.decode(rank, rank_addr), at, is_write, use_channel_bus
        )

    def stream_logical(
        self, logical_addrs: Sequence[int], start: int = 0,
        is_write: bool = False, use_channel_bus: bool = True,
    ) -> int:
        completion = start
        for addr in logical_addrs:
            res = self.access_logical(addr, start, is_write, use_channel_bus)
            completion = max(completion, res.completion_cycle)
        return completion

    # -- results --------------------------------------------------------------------

    @property
    def counters(self) -> EnergyCounters:
        """Aggregate event counters across all channels.

        Single-channel systems (the paper's configuration) alias the one
        controller's counters; multi-channel systems get a merged copy.
        """
        if len(self.controllers) == 1:
            return self.controller.counters
        merged = EnergyCounters(ranks=self.geometry.ranks * self.geometry.channels)
        for ctrl in self.controllers:
            merged.merge(ctrl.counters)
        return merged

    def energy_nj(self) -> dict:
        return self.counters.energy_nj(
            self.energy_params, self.geometry.line_bytes
        )

    def elapsed_ns(self) -> float:
        last = max(ctrl.last_completion for ctrl in self.controllers)
        return self.timing.cycles_to_ns(last)
