"""Event-driven memory controller with open-page FR-FCFS-style scheduling.

The controller schedules one request at a time against the bank / rank /
channel timing state, producing the cycle at which the request's data
burst completes.  Within a request the command sequence is the standard
open-page policy:

* row hit   -> RD (paced by tCCD and data-bus availability)
* row miss  -> PRE (if a row is open), ACT (paced by tRRD/tFAW/tRC), RD
* row empty -> ACT, RD

Requests are issued in the order given per rank - a faithful model for
the streaming access patterns of NDP packets and CPU vector reads, where
FR-FCFS reordering has little extra to exploit; bank-level parallelism
still overlaps because each bank's state advances independently.

``use_channel_bus`` selects who consumes the data: ``True`` models a CPU
access whose burst crosses the shared external bus, ``False`` models an
NDP access consumed at the rank buffer (no channel occupancy) - the
central bandwidth asymmetry of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .address import DecodedAddress
from .channel import ChannelBus
from .energy import EnergyCounters
from .rank import Rank
from .timing import DDR4Timing, DramGeometry
from .trace import DramCommand, TraceEntry

__all__ = ["AccessResult", "MemoryController"]


@dataclass(frozen=True)
class AccessResult:
    """Timing of one serviced request."""

    issue_cycle: int       #: when the column command (RD/WR) issued
    data_start: int        #: first data-beat cycle
    completion_cycle: int  #: last data-beat cycle (data fully transferred)
    row_hit: bool


class MemoryController:
    """Schedules line-granularity requests over one channel."""

    def __init__(
        self,
        timing: DDR4Timing = DDR4Timing(),
        geometry: DramGeometry = DramGeometry(),
        enable_refresh: bool = True,
        enable_trace: bool = False,
    ):
        self.timing = timing
        self.geometry = geometry
        self.enable_refresh = enable_refresh
        #: when enabled, every scheduled command is appended here and the
        #: trace can be re-validated against the full JEDEC constraint set
        #: (see repro.memsim.trace.validate_trace)
        self.enable_trace = enable_trace
        self.trace: List = []
        self.ranks: List[Rank] = [
            Rank(timing, geometry) for _ in range(geometry.ranks)
        ]
        # Stagger per-rank refreshes across the tREFI window so the ranks
        # do not all go dark simultaneously (standard controller practice).
        for index, rank in enumerate(self.ranks):
            rank.refresh_offset = (index * timing.tREFI) // max(geometry.ranks, 1)
        self.bus = ChannelBus(timing)
        self.counters = EnergyCounters(ranks=geometry.ranks)
        self._last_completion = 0

    # -- main entry -------------------------------------------------------------

    def access(
        self,
        decoded: DecodedAddress,
        at: int,
        is_write: bool = False,
        use_channel_bus: bool = True,
    ) -> AccessResult:
        """Schedule one 64-byte access; returns its timing."""
        timing = self.timing
        rank = self.ranks[decoded.rank]
        bank = rank.bank(decoded.bank_group, decoded.bank)

        t = at
        if self.enable_refresh:
            # Refresh first: it may close the row this request would hit.
            t = rank.refresh_adjust(t)
        row_hit = bank.open_row == decoded.row
        if row_hit:
            self.counters.row_hits += 1
        else:
            self.counters.row_misses += 1

        if not row_hit:
            if bank.open_row is not None:
                t = bank.precharge(t)
                # PRE itself is instantaneous on the command bus in this model.
                self._record(DramCommand.PRE, decoded, t)
            act_ready = rank.earliest_act(max(t, bank.next_act), decoded.bank_group)
            act_cycle = bank.activate(decoded.row, act_ready)
            rank.note_act(act_cycle, decoded.bank_group)
            self.counters.activates += 1
            self._record(DramCommand.ACT, decoded, act_cycle)

        # Column command: paced by tRCD (bank), tCCD (rank data path), and -
        # for CPU accesses - the shared channel bus.
        col_ready = rank.earliest_col(max(t, bank.next_rdwr), decoded.bank_group)
        if self.enable_refresh:
            col_ready = rank.refresh_adjust(col_ready)
        if use_channel_bus:
            # The burst must find the external bus free at col + tCL.
            bus_ready = self.bus.earliest_data(col_ready + timing.tCL, decoded.rank)
            col_ready = max(col_ready, bus_ready - timing.tCL)

        col_cycle = col_ready
        rank.note_col(col_cycle, decoded.bank_group)
        self._record(
            DramCommand.WR if is_write else DramCommand.RD, decoded, col_cycle
        )
        data_start = col_cycle + timing.tCL
        if use_channel_bus:
            self.bus.occupy(data_start, decoded.rank)
            self.counters.bus_bursts += 1
        completion = data_start + timing.tBL

        if is_write:
            bank.note_write(col_cycle)
            self.counters.writes += 1
        else:
            bank.note_read(col_cycle)
            self.counters.reads += 1

        self._last_completion = max(self._last_completion, completion)
        self.counters.cycles = self._last_completion
        return AccessResult(col_cycle, data_start, completion, row_hit)

    # -- bulk helpers -------------------------------------------------------------

    def stream(
        self,
        decoded_addrs: List[DecodedAddress],
        start: int = 0,
        is_write: bool = False,
        use_channel_bus: bool = True,
    ) -> int:
        """Issue a request stream back-to-back; returns the final completion cycle.

        Models an open request queue: every request is *available* at
        ``start`` and the controller packs them as densely as timing
        allows (requests to different banks overlap naturally because
        only the shared structures serialise them).
        """
        completion = start
        for d in decoded_addrs:
            result = self.access(d, start, is_write, use_channel_bus)
            completion = max(completion, result.completion_cycle)
        return completion

    def _record(self, command, decoded: DecodedAddress, cycle: int) -> None:
        if self.enable_trace:
            self.trace.append(
                TraceEntry(
                    cycle=cycle,
                    command=command,
                    rank=decoded.rank,
                    bank_group=decoded.bank_group,
                    bank=decoded.bank,
                    row=decoded.row,
                )
            )

    @property
    def last_completion(self) -> int:
        return self._last_completion
