"""DRAM + IO energy accounting (DRAMPower / CACTI-IO substitute).

The paper derives Table V from DRAMPower (DRAM-chip energy) and CACTI-IO
(DIMM IO energy).  We reproduce the same structure from first-principles
event counting: the controller reports ACT/PRE pairs, RD/WR bursts and
elapsed cycles, and this module converts them to energy using per-event
coefficients representative of 8 Gb DDR4-2400 x8 devices (derived from
vendor IDD specifications the DRAMPower model itself is parameterised by).

Table V additionally reports *per-bit* coefficients: 27.42 pJ/bit inside
the DIMM per pooled bit and 7.3 pJ/bit of DIMM IO; :mod:`repro.analysis.energy`
recomputes the table from these plus counted events.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs

__all__ = ["EnergyParams", "EnergyCounters", "DDR4_ENERGY"]


@dataclass(frozen=True)
class EnergyParams:
    """Per-event and per-cycle DRAM energy coefficients.

    Defaults are representative DDR4-2400 values computed from IDD0/IDD4
    currents at 1.2 V for a x8 device, times 8 devices per rank (the same
    derivation DRAMPower performs from a vendor datasheet).
    """

    act_pre_nj: float = 2.2        #: one ACT+PRE pair (row activation energy)
    rd_burst_nj: float = 1.6       #: one 64-byte read burst (all devices)
    wr_burst_nj: float = 1.7       #: one 64-byte write burst
    background_nw_per_cycle: float = 0.12  #: standby power per rank per cycle (nJ)
    io_pj_per_bit: float = 7.3     #: DIMM IO energy per bit crossing the bus
    ndp_internal_pj_per_bit: float = 1.2   #: buffer-chip-internal transfer per bit

    def burst_bits(self, line_bytes: int = 64) -> int:
        return 8 * line_bytes


@dataclass
class EnergyCounters:
    """Event counters accumulated by the controller during simulation."""

    activates: int = 0
    reads: int = 0
    writes: int = 0
    bus_bursts: int = 0            #: bursts that crossed the external channel bus
    cycles: int = 0
    ranks: int = 1
    row_hits: int = 0              #: column commands that found the row open
    row_misses: int = 0            #: column commands that needed (PRE+)ACT

    def merge(self, other: "EnergyCounters") -> None:
        self.activates += other.activates
        self.reads += other.reads
        self.writes += other.writes
        self.bus_bursts += other.bus_bursts
        self.row_hits += other.row_hits
        self.row_misses += other.row_misses
        self.cycles = max(self.cycles, other.cycles)

    def publish(self, prefix: str = "memsim") -> None:
        """Report the accumulated events into the metrics registry.

        Called once per simulation run (not per access), so instrumented
        runs pay no per-command overhead; see DESIGN.md Sec. 9.
        """
        if not obs.enabled():
            return
        obs.inc(f"{prefix}.activates", self.activates)
        obs.inc(f"{prefix}.reads", self.reads)
        obs.inc(f"{prefix}.writes", self.writes)
        obs.inc(f"{prefix}.bus_bursts", self.bus_bursts)
        obs.inc(f"{prefix}.row_hits", self.row_hits)
        obs.inc(f"{prefix}.row_misses", self.row_misses)

    def energy_nj(self, params: EnergyParams, line_bytes: int = 64) -> dict:
        """Break total energy into DRAM-core, IO and background components."""
        bits = params.burst_bits(line_bytes)
        core = (
            self.activates * params.act_pre_nj
            + self.reads * params.rd_burst_nj
            + self.writes * params.wr_burst_nj
        )
        io = self.bus_bursts * bits * params.io_pj_per_bit / 1000.0
        ndp_internal = (
            (self.reads + self.writes - self.bus_bursts)
            * bits
            * params.ndp_internal_pj_per_bit
            / 1000.0
        )
        background = self.cycles * self.ranks * params.background_nw_per_cycle
        return {
            "dram_core_nj": core,
            "io_nj": io,
            "ndp_internal_nj": max(ndp_internal, 0.0),
            "background_nj": background,
            "total_nj": core + io + max(ndp_internal, 0.0) + background,
        }


#: Default coefficient set.
DDR4_ENERGY = EnergyParams()
