"""Per-bank row-buffer state machine.

Each DRAM bank tracks its open row and the earliest cycles at which the
next ACT / RD / PRE may legally issue, derived from tRC / tRCD / tRAS /
tRP / tWR.  The controller consults and advances this state as it
schedules commands; keeping it event-driven (timestamps instead of a
tick loop) is what makes the Python simulator fast while honouring the
same constraints cycle-for-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .timing import DDR4Timing

__all__ = ["Bank"]


@dataclass
class Bank:
    """State of one bank: open row plus earliest-legal-command times."""

    timing: DDR4Timing
    open_row: Optional[int] = None
    #: earliest cycle the next ACT may issue (tRC from previous ACT, tRP from PRE)
    next_act: int = 0
    #: earliest cycle a RD/WR to the open row may issue (tRCD from ACT)
    next_rdwr: int = 0
    #: earliest cycle a PRE may issue (tRAS from ACT, tWR after writes)
    next_pre: int = 0

    def activate(self, row: int, at: int) -> int:
        """Issue ACT at ``max(at, next_act)``; returns the ACT cycle."""
        t = max(at, self.next_act)
        self.open_row = row
        self.next_act = t + self.timing.tRC
        self.next_rdwr = t + self.timing.tRCD
        self.next_pre = t + self.timing.tRAS
        return t

    def precharge(self, at: int) -> int:
        """Issue PRE at ``max(at, next_pre)``; returns the PRE cycle."""
        t = max(at, self.next_pre)
        self.open_row = None
        # ACT may follow tRP after PRE (and still respects tRC from last ACT).
        self.next_act = max(self.next_act, t + self.timing.tRP)
        return t

    def note_read(self, rd_cycle: int) -> None:
        """Record a RD; reads do not extend tRAS/tWR windows in this model."""
        # Burst must complete before PRE: RD + tCL + tBL.
        self.next_pre = max(
            self.next_pre, rd_cycle + self.timing.tCL + self.timing.tBL
        )

    def note_write(self, wr_cycle: int) -> None:
        """Record a WR; PRE must wait for write recovery (tWR)."""
        data_end = wr_cycle + self.timing.tCL + self.timing.tBL
        self.next_pre = max(self.next_pre, data_end + self.timing.tWR)
