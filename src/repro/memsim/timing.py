"""DDR4 timing and geometry parameters (paper Table II).

The evaluation simulates DDR4-2400 with::

    tRC=55 tRCD=16 tCL=16 tRP=16 tBL=4
    tCCD_S=4 tCCD_L=6 tRRD_S=4 tRRD_L=6 tFAW=26
    rank_size = 8 GB

All values are in memory-controller clock cycles; DDR4-2400 transfers
2400 MT/s on a 1200 MHz clock, so one cycle is 1/1.2 ns and a tBL=4-cycle
burst moves 64 bytes on a 64-bit channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["DDR4Timing", "DramGeometry", "DDR4_2400", "DDR4_GEOMETRY"]


@dataclass(frozen=True)
class DDR4Timing:
    """DRAM timing constraints in controller clock cycles."""

    clock_mhz: float = 1200.0
    tRC: int = 55    #: ACT -> ACT, same bank (row cycle)
    tRCD: int = 16   #: ACT -> RD/WR, same bank
    tCL: int = 16    #: RD -> first data
    tRP: int = 16    #: PRE -> ACT, same bank
    tBL: int = 4     #: burst length on the data bus (cycles)
    tCCD_S: int = 4  #: RD -> RD, different bank group
    tCCD_L: int = 6  #: RD -> RD, same bank group
    tRRD_S: int = 4  #: ACT -> ACT, different bank group
    tRRD_L: int = 6  #: ACT -> ACT, same bank group
    tFAW: int = 26   #: four-ACT window per rank
    tRAS: int = 39   #: ACT -> PRE, same bank (tRC - tRP)
    tWR: int = 18    #: end of write burst -> PRE
    tREFI: int = 9360  #: average refresh interval (7.8 us at 1200 MHz)
    tRFC: int = 420    #: refresh cycle time (350 ns for an 8 Gb device)

    def __post_init__(self) -> None:
        if self.tRC < self.tRAS:
            raise ConfigurationError("tRC must cover tRAS")
        if min(self.tRCD, self.tCL, self.tRP, self.tBL) <= 0:
            raise ConfigurationError("timing parameters must be positive")

    @property
    def ns_per_cycle(self) -> float:
        return 1000.0 / self.clock_mhz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.ns_per_cycle

    @property
    def row_miss_latency(self) -> int:
        """PRE + ACT + RD + data for a closed-row access."""
        return self.tRP + self.tRCD + self.tCL + self.tBL

    @property
    def row_hit_latency(self) -> int:
        """RD + data for an open-row access."""
        return self.tCL + self.tBL


@dataclass(frozen=True)
class DramGeometry:
    """Channel/rank/bank organisation.

    Defaults model one DDR4 channel of 8 GB ranks: 4 bank groups x 4 banks,
    64 K rows per bank, 8 KB row buffer (128 columns of 64-byte lines).
    """

    channels: int = 1
    ranks: int = 8
    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 65536
    columns_per_row: int = 128   #: cache-line-sized columns per row
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "ranks",
            "bank_groups",
            "banks_per_group",
            "rows_per_bank",
            "columns_per_row",
            "line_bytes",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")

    @property
    def banks_per_rank(self) -> int:
        return self.bank_groups * self.banks_per_group

    @property
    def row_bytes(self) -> int:
        return self.columns_per_row * self.line_bytes

    @property
    def rank_bytes(self) -> int:
        return self.banks_per_rank * self.rows_per_bank * self.row_bytes

    @property
    def total_bytes(self) -> int:
        return self.channels * self.ranks * self.rank_bytes


#: Table II configuration.
DDR4_2400 = DDR4Timing()

#: Default geometry: 8 ranks per channel so NDP_rank can sweep 1..8.
DDR4_GEOMETRY = DramGeometry()
