"""Sign / verification oracles and security-game harnesses (Appendix C).

Algorithms 6 and 7 package the weighted-summation protocol as MAC
oracles so the standard forgery game of Definition A.4 can be played
against them:

* ``ws-MAC_K(P, Addr)`` - the *sign oracle*: encrypt + tag a matrix, run
  the honest protocol, and emit the NDP-visible transcript
  ``(C_res_0 .. C_res_{m-1}, C_T_res)``.
* ``ws-Verify_K(C, Addr)`` - the *verification oracle*: accept a candidate
  transcript and answer pass/fail by running Alg. 5 with the candidate
  values substituted for the NDP's messages.

These are used by the test suite to demonstrate Theorems 1 and 2
empirically: honest transcripts verify; modified transcripts forge only
with probability ~``m/q`` (measurable once ``q`` is made small).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .params import SecNDPParams
from .protocol import SecNDPProcessor, UntrustedNdpDevice

__all__ = ["SignedTranscript", "WeightedSummationOracles"]


@dataclass(frozen=True)
class SignedTranscript:
    """The ``C`` bit string of Definition A.4: per-column results + tag."""

    c_res: Tuple[int, ...]
    c_t_res: int
    addr: int

    def with_c_res(self, index: int, value: int) -> "SignedTranscript":
        mutated = list(self.c_res)
        mutated[index] = value
        return SignedTranscript(tuple(mutated), self.c_t_res, self.addr)

    def with_tag(self, value: int) -> "SignedTranscript":
        return SignedTranscript(self.c_res, value, self.addr)


class WeightedSummationOracles:
    """``ws-MAC`` and ``ws-Verify`` for a fixed index/weight pattern.

    The appendix fixes the sequences ``[i_0..i_{PF-1}]`` and
    ``[a_0..a_{PF-1}]`` as protocol constants; they are constructor
    arguments here.
    """

    def __init__(
        self,
        key: bytes,
        rows: Sequence[int],
        weights: Sequence[int],
        params: SecNDPParams | None = None,
    ):
        self.processor = SecNDPProcessor(key, params)
        self.params = self.processor.params
        self.rows = [int(i) for i in rows]
        self.weights = [int(a) for a in weights]
        self._sign_count = 0

    # -- Alg. 6 ----------------------------------------------------------------

    def sign(self, plaintext: np.ndarray, addr: int) -> SignedTranscript:
        """``ws-MAC_K(P, Addr)``: honest protocol run, NDP messages returned."""
        device = UntrustedNdpDevice(self.params)
        region = f"oracle-sign-{self._sign_count}"
        self._sign_count += 1
        enc = self.processor.encrypt_matrix(plaintext, addr, region, with_tags=True)
        device.store(region, enc)
        self._last_region = region
        self._last_device = device
        self._last_enc = enc

        ring = self.processor.ring
        weights_ring = ring.encode(np.asarray(self.weights))
        c_res = device.weighted_row_sum(region, self.rows, weights_ring)
        c_t_res = device.weighted_tag_sum(
            region, self.rows, [int(w) for w in weights_ring]
        )
        return SignedTranscript(tuple(int(x) for x in c_res), c_t_res, addr)

    # -- Alg. 7 ----------------------------------------------------------------

    def verify(self, transcript: SignedTranscript) -> bool:
        """``ws-Verify_K(C, Addr)``: Alg. 5 with adversary-chosen messages.

        Verifies against the keys/versions of the most recent sign for the
        same address (the game fixes the signed matrix; the adversary
        forges transcripts, not matrices).
        """
        enc = self._last_enc
        if transcript.addr != enc.base_addr:
            return False
        processor = self.processor
        ring = processor.ring
        field = processor.field

        weights_ring = ring.encode(np.asarray(self.weights))
        weights_int = [int(w) for w in weights_ring]

        # Processor shares (honest, key-derived).
        pads = processor.encryptor.pads_for_rows(enc, self.rows)
        e_res = ring.dot(weights_ring, pads)
        tag_pads = processor.mac.tag_pads_for_rows(enc, self.rows)
        e_t_res = field.dot(weights_int, tag_pads)

        # Adversary-controlled shares.
        c_res = np.array(transcript.c_res, dtype=ring.dtype)
        res = ring.add(c_res, e_res)

        key = processor.checksum.key_for(enc.base_addr, enc.checksum_version)
        t_res = processor.checksum.result_tag([int(x) for x in res], key)
        retrieved = field.add(transcript.c_t_res, e_t_res)
        return retrieved == t_res
