"""Scheme-wide parameters for SecNDP (paper Table VI).

One :class:`SecNDPParams` instance fixes every width and modulus the
algorithms share: the element ring ``Z(2^w_e)``, the cipher block width
``w_c`` (128 for AES), the tag width ``w_t`` and tag modulus ``q``
(default the Mersenne prime ``2^127 - 1``), and the counter-block layout
(address/version widths).  All core components are constructed from the
same instance so their pads, tags and moduli agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.aes import BLOCK_BYTES
from ..crypto.prime_field import MERSENNE_127, PrimeField
from ..crypto.ring import Ring
from ..crypto.tweaked import CounterBlockLayout, TweakedCipher
from ..errors import ConfigurationError

__all__ = ["SecNDPParams"]


@dataclass(frozen=True)
class SecNDPParams:
    """Widths and moduli shared by every SecNDP algorithm.

    Parameters
    ----------
    element_bits:
        ``w_e`` - bit width of matrix elements (8 for quantized tables,
        32 for full precision in the paper's evaluation).
    tag_modulus:
        The prime ``q`` for tag arithmetic; defaults to ``2^127 - 1``.
        Tests use small primes to make forgery probabilities measurable.
    layout:
        Counter-block bit layout (address and version widths).
    """

    element_bits: int = 32
    tag_modulus: int = MERSENNE_127
    layout: CounterBlockLayout = field(default_factory=CounterBlockLayout)

    def __post_init__(self) -> None:
        if self.element_bits & (self.element_bits - 1):
            raise ConfigurationError(
                f"w_e must be a power of two, got {self.element_bits}"
            )
        if self.element_bits > self.block_bits:
            raise ConfigurationError(
                f"w_e ({self.element_bits}) must not exceed w_c ({self.block_bits})"
            )

    # -- derived quantities --------------------------------------------------

    @property
    def block_bits(self) -> int:
        """``w_c`` - the block-cipher width (128 for AES)."""
        return 8 * BLOCK_BYTES

    @property
    def elements_per_block(self) -> int:
        """``l = w_c / w_e`` (Alg. 1 / Fig. 3)."""
        return self.block_bits // self.element_bits

    @property
    def element_bytes(self) -> int:
        return self.element_bits // 8

    @property
    def tag_bits(self) -> int:
        """``w_t`` - the bit width of a verification tag."""
        return self.tag_modulus.bit_length()

    @property
    def tag_bytes(self) -> int:
        return -(-self.tag_bits // 8)

    def ring(self) -> Ring:
        """The element ring ``Z(2^w_e)``."""
        return Ring(self.element_bits)

    def field(self) -> PrimeField:
        """The tag field ``GF(q)``."""
        return PrimeField(self.tag_modulus)

    def cipher(self, key: bytes) -> TweakedCipher:
        """A tweaked cipher bound to ``key`` under this layout."""
        return TweakedCipher(key, self.layout)
