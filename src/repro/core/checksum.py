"""Linear Modular Hashing checksums - Algorithms 2 and 8.

The verification tag of a row ``P_i`` is ``T_i = sum_j P_{i,j} * s^(m-j)
mod q`` where the secret evaluation point ``s`` is derived from the block
cipher (``E_01`` domain) using the matrix base address and a version.
Linearity is the whole point: ``h(a x P) = a x h(P)`` lets the NDP compute
the tag of the *result* from the per-row tags alone (Sec. IV-F).

Alg. 8 is the appendix variant that extracts ``cnt_s = w_c / w_t``
evaluation points from one cipher block, lowering the forgery bound from
``m/q`` to ``m/(cnt_s * q)``.

Hot-path note: per-row ``row_tag`` is the scalar *reference oracle*
(interpreted Python big-int Horner).  Whole-matrix tagging goes through
:meth:`row_tags`, which rewrites the hash as one dot product per row
against a precomputed power-weight vector and — for the paper's default
modulus ``q = 2^127 - 1`` — evaluates all rows in a single
limb-vectorized sweep (:mod:`repro.crypto.limb_field`).  Both paths are
bit-identical; the equivalence tests pin this.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..crypto import limb_field
from ..crypto.prime_field import PrimeField
from ..crypto.tweaked import DOMAIN_CHECKSUM, TweakedCipher
from .params import SecNDPParams

__all__ = ["LinearChecksum", "MultiPointChecksum"]

#: Power-weight vectors are cached per (key, row length); a handful of
#: matrices are typically live at once, so a small FIFO cap suffices.
_WEIGHT_CACHE_CAP = 32


def _vectorizable(field: PrimeField, matrix: np.ndarray) -> bool:
    """True when the limb kernels can consume ``matrix`` directly.

    Requires the Mersenne-127 modulus and non-negative integer residues
    that fit a uint64 lane; anything else (test primes, signed values,
    object dtypes) falls back to the scalar oracle.
    """
    if not limb_field.supports_field(field):
        return False
    if matrix.size == 0 or not np.issubdtype(matrix.dtype, np.integer):
        return False
    if np.issubdtype(matrix.dtype, np.unsignedinteger):
        return True
    return int(matrix.min()) >= 0


class LinearChecksum:
    """Alg. 2: single-point Linear Modular Hash keyed by ``(K, addr, v)``.

    The secret ``s`` is the first ``w_t`` bits of
    ``E(K, 01 || paddr(P) || v)``; one ``s`` covers the whole matrix, so
    tags of different rows are compatible under linear combination.
    """

    def __init__(self, cipher: TweakedCipher, params: SecNDPParams):
        self.cipher = cipher
        self.params = params
        self.field: PrimeField = params.field()
        self._weight_cache: dict = {}

    def secret_point(self, matrix_addr: int, version: int) -> int:
        """Derive ``s`` (Alg. 2 line 4) for the matrix at ``matrix_addr``."""
        pad = self.cipher.encrypt_counter_int(DOMAIN_CHECKSUM, matrix_addr, version)
        # "first w_t bits" of the cipher output, reduced into the field.
        s = pad >> (self.params.block_bits - self.params.tag_bits)
        return self.field.reduce(s)

    def row_tag(self, row: Sequence[int], s: int) -> int:
        """``T_i = sum_j row[j] * s^(m-j) mod q`` (Alg. 2 line 5).

        Scalar reference path; the batched sweep is :meth:`row_tags`.
        """
        return self.field.checksum([int(x) for x in row], s)

    def _weights(self, s: int, m: int) -> np.ndarray:
        """Cached limb decomposition of ``[s^m, ..., s^1]``."""
        key = (s, m)
        w = self._weight_cache.get(key)
        if w is None:
            if len(self._weight_cache) >= _WEIGHT_CACHE_CAP:
                self._weight_cache.pop(next(iter(self._weight_cache)))
            w = limb_field.power_weights(self.field, s, m)
            self._weight_cache[key] = w
        return w

    def row_tags(self, matrix: np.ndarray, s: int) -> list:
        """All row tags under one secret point, in one vectorized sweep.

        ``sum_j P_{i,j} * s^(m-j)`` is a dot of row ``i`` against the
        fixed power vector ``[s^m, ..., s^1]``; the ``m`` scalar
        multiplications to build that vector amortize over all ``n``
        rows.  Bit-identical to per-row :meth:`row_tag`.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("row_tags expects a 2-D matrix")
        if _vectorizable(self.field, matrix):
            return limb_field.weighted_row_tags(
                matrix.astype(np.uint64, copy=False), self._weights(s, matrix.shape[1])
            )
        return [self.row_tag(row, s) for row in matrix]

    def matrix_tags(self, matrix: np.ndarray, matrix_addr: int, version: int) -> list:
        """Per-row tags for a whole matrix under one secret point."""
        s = self.secret_point(matrix_addr, version)
        return self.row_tags(np.asarray(matrix), s)

    def result_tag(self, result: Sequence[int], s: int) -> int:
        """Checksum of a reconstructed result vector (Alg. 5 line 10).

        Must use the same exponent convention as :meth:`row_tag` so the
        linearity identity ``h(a x P) = a x h(P)`` holds exactly.
        """
        arr = np.asarray(result)
        if arr.ndim == 1 and _vectorizable(self.field, arr):
            return self.row_tags(arr[None, :], s)[0]
        return self.row_tag(result, s)

    # Uniform interface shared with :class:`MultiPointChecksum` so the
    # MAC/protocol layers can swap schemes: the "key" of the single-point
    # scheme is just ``s``.
    def key_for(self, matrix_addr: int, version: int) -> int:
        return self.secret_point(matrix_addr, version)


class MultiPointChecksum:
    """Alg. 8: checksum using all ``w_c`` cipher bits as ``cnt_s`` points.

    Element ``j`` (of ``m``) is weighted by
    ``s_{(m-j) mod cnt_s} ^ floor((m-j)/cnt_s)``; with ``cnt_s`` points the
    forgery bound improves to ``m / (cnt_s * q)`` (appendix D).
    """

    def __init__(self, cipher: TweakedCipher, params: SecNDPParams):
        self.cipher = cipher
        self.params = params
        self.field: PrimeField = params.field()
        # cnt_s = w_c / w_t; with w_t = 127 and w_c = 128 this is 1 in the
        # strict integer sense, so the paper's interesting case arises for
        # smaller tag moduli.  We follow Alg. 8 line 5 with floor division,
        # clamped to at least one point.
        self.cnt_s = max(1, self.params.block_bits // self.params.tag_bits)
        self._weight_cache: dict = {}

    def secret_points(self, matrix_addr: int, version: int) -> list:
        """The ``s_k`` substrings of ``E(K, 01 || paddr(P) || v)`` (line 8)."""
        pad = self.cipher.encrypt_counter_int(DOMAIN_CHECKSUM, matrix_addr, version)
        points = []
        w_t = self.params.tag_bits
        for k in range(self.cnt_s):
            start = self.params.block_bits - (k + 1) * w_t
            s_k = (pad >> max(start, 0)) & ((1 << w_t) - 1)
            points.append(self.field.reduce(s_k))
        return points

    def row_tag(self, row: Sequence[int], points: Sequence[int]) -> int:
        """``T_i = sum_j P_{i,j} * s_{(m-j) mod cnt_s}^floor((m-j)/cnt_s)``.

        Scalar reference path; the batched sweep is :meth:`row_tags`.
        """
        m = len(row)
        acc = 0
        for j, value in enumerate(row):
            e = m - j
            s_k = points[e % self.cnt_s]
            acc += int(value) * self.field.pow(s_k, e // self.cnt_s)
        return self.field.reduce(acc)

    def weight_vector(self, m: int, points: Sequence[int]) -> list:
        """Alg. 8 column weights ``w_j = s_{(m-j) mod cnt_s}^floor((m-j)/cnt_s)``.

        Computed once per (key, row length) — every row's tag is then a
        plain dot against this vector, which is what makes the
        multi-point variant batchable exactly like Alg. 2.
        """
        key = (tuple(int(p) for p in points), m)
        cached = self._weight_cache.get(key)
        if cached is None:
            if len(self._weight_cache) >= _WEIGHT_CACHE_CAP:
                self._weight_cache.pop(next(iter(self._weight_cache)))
            cached = [
                self.field.pow(points[(m - j) % self.cnt_s], (m - j) // self.cnt_s)
                for j in range(m)
            ]
            self._weight_cache[key] = cached
        return cached

    def row_tags(self, matrix: np.ndarray, points: Sequence[int]) -> list:
        """All row tags in one sweep against the precomputed weight vector."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("row_tags expects a 2-D matrix")
        weights = self.weight_vector(matrix.shape[1], points)
        if _vectorizable(self.field, matrix):
            return limb_field.weighted_row_tags(
                matrix.astype(np.uint64, copy=False), limb_field.to_limbs(weights)
            )
        return [
            self.field.dot(weights, [int(x) for x in row]) for row in matrix
        ]

    def matrix_tags(self, matrix: np.ndarray, matrix_addr: int, version: int) -> list:
        points = self.secret_points(matrix_addr, version)
        return self.row_tags(np.asarray(matrix), points)

    def result_tag(self, result: Sequence[int], points: Sequence[int]) -> int:
        arr = np.asarray(result)
        if arr.ndim == 1 and _vectorizable(self.field, arr):
            return self.row_tags(arr[None, :], points)[0]
        return self.row_tag(result, points)

    # Uniform interface (see :meth:`LinearChecksum.key_for`): the key of
    # the multi-point scheme is the tuple of evaluation points.
    def key_for(self, matrix_addr: int, version: int):
        return self.secret_points(matrix_addr, version)
