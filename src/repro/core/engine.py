"""Functional model of the SecNDP engine (paper Sec. V-C, Fig. 5).

The architectural SecNDP engine sits next to the memory controller and
contains three blocks:

* the **encryption engine** - AES pipelines that turn (address, version)
  pairs into OTP blocks;
* the **OTP PU** - a mirror of the NDP PU that runs the same commands over
  the OTP share, with the same number of registers;
* the **verification engine** - computes linear checksums of results.

This module models the *functional* behaviour (registers, buffers, the
final adder of ``SecNDPLd``); the *timing* behaviour (throughput limits,
packet bottleneck attribution) lives in :mod:`repro.ndp.secndp_engine`.
Keeping the two separate mirrors the paper's split between scheme
correctness (Sec. IV) and architectural performance (Sec. V-VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, VerificationError
from .encryption import ArithmeticEncryptor, EncryptedMatrix
from .mac import EncryptedLinearMac
from .params import SecNDPParams

__all__ = ["OtpPu", "SecNDPEngine"]


class OtpPu:
    """The OTP processing unit: same registers and ALU as an NDP PU.

    Registers accumulate the processor-side share during ``SecNDPInst``
    streams; ``NDP_reg``-style register pressure therefore applies to the
    OTP side exactly as to the NDP side (Sec. V-C2).
    """

    def __init__(self, params: SecNDPParams, n_registers: int = 8):
        if n_registers < 1:
            raise ConfigurationError("OTP PU needs at least one register")
        self.params = params
        self.ring = params.ring()
        self.field = params.field()
        self.n_registers = n_registers
        self._data_regs: List[Optional[np.ndarray]] = [None] * n_registers
        self._tag_regs: List[int] = [0] * n_registers

    def _check_reg(self, reg: int) -> None:
        if not 0 <= reg < self.n_registers:
            raise ConfigurationError(
                f"register {reg} out of range [0, {self.n_registers})"
            )

    def clear(self, reg: int) -> None:
        self._check_reg(reg)
        self._data_regs[reg] = None
        self._tag_regs[reg] = 0

    def accumulate(self, reg: int, weight: int, pads: np.ndarray) -> None:
        """Multiply-accumulate one row of pads into a register."""
        self._check_reg(reg)
        contribution = self.ring.mul(
            np.full(pads.shape, weight, dtype=self.ring.dtype), pads
        )
        if self._data_regs[reg] is None:
            self._data_regs[reg] = contribution
        else:
            self._data_regs[reg] = self.ring.add(self._data_regs[reg], contribution)

    def accumulate_tag(self, reg: int, weight: int, tag_pad: int) -> None:
        self._check_reg(reg)
        self._tag_regs[reg] = self.field.add(
            self._tag_regs[reg], self.field.mul(weight, tag_pad)
        )

    def read(self, reg: int) -> np.ndarray:
        self._check_reg(reg)
        if self._data_regs[reg] is None:
            raise ConfigurationError(f"register {reg} read before any accumulate")
        return self._data_regs[reg]

    def read_tag(self, reg: int) -> int:
        self._check_reg(reg)
        return self._tag_regs[reg]


class SecNDPEngine:
    """Functional engine: encryption engine + OTP PU + verification engine.

    Drives a full ``SecNDPInst`` / ``SecNDPLd`` sequence for one query:
    ``begin_query`` clears a register pair, ``issue`` streams one
    (row, weight) command to the OTP PU, and ``load_and_verify`` performs
    the final share addition and optional tag check, raising
    :class:`~repro.errors.VerificationError` on mismatch (the interrupt of
    Sec. V-E3).
    """

    def __init__(
        self,
        encryptor: ArithmeticEncryptor,
        mac: EncryptedLinearMac,
        n_registers: int = 8,
    ):
        self.encryptor = encryptor
        self.mac = mac
        self.params = encryptor.params
        self.ring = encryptor.ring
        self.field = mac.field
        self.otp_pu = OtpPu(self.params, n_registers)
        self.checksum = mac.checksum

    def begin_query(self, reg: int) -> None:
        self.otp_pu.clear(reg)

    def issue(
        self, reg: int, encrypted: EncryptedMatrix, row: int, weight: int
    ) -> None:
        """One ``SecNDPInst``: replicate the NDP command on the OTP share."""
        pads = self.encryptor.pads_for_rows(encrypted, [row])[0]
        w = int(self.ring.encode(np.asarray(weight)))
        self.otp_pu.accumulate(reg, w, pads)
        if encrypted.tags is not None:
            tag_pad = self.mac.tag_pads_for_rows(encrypted, [row])[0]
            self.otp_pu.accumulate_tag(reg, w, tag_pad)

    def load_and_verify(
        self,
        reg: int,
        encrypted: EncryptedMatrix,
        ndp_result: np.ndarray,
        ndp_tag: Optional[int] = None,
    ) -> np.ndarray:
        """One ``SecNDPLd``: add shares; verify when a tag is supplied."""
        e_res = self.otp_pu.read(reg)
        res = self.ring.add(np.asarray(ndp_result, dtype=self.ring.dtype), e_res)
        if ndp_tag is not None:
            if encrypted.checksum_version is None:
                raise VerificationError("matrix has no checksum version")
            key = self.checksum.key_for(
                encrypted.base_addr, encrypted.checksum_version
            )
            # res is a vector of ring residues; result_tag dispatches to
            # the limb-vectorized checksum for the default tag field.
            t_res = self.checksum.result_tag(res, key)
            retrieved = self.field.add(ndp_tag, self.otp_pu.read_tag(reg))
            if retrieved != t_res:
                raise VerificationError(
                    "SecNDPLd verification failed: tag mismatch "
                    f"(computed {t_res:#x}, retrieved {retrieved:#x})"
                )
        return res
