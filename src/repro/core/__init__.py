"""The paper's primary contribution: SecNDP encryption, MAC, and protocols.

Public surface:

* :class:`SecNDPParams` - shared widths and moduli (Table VI).
* :class:`ArithmeticEncryptor` / :class:`EncryptedMatrix` - Alg. 1.
* :class:`LinearChecksum` / :class:`MultiPointChecksum` - Alg. 2 / Alg. 8.
* :class:`EncryptedLinearMac` - Alg. 3.
* :class:`SecNDPProcessor` / :class:`UntrustedNdpDevice` - Alg. 4 / 5.
* :class:`WeightedSummationOracles` - Alg. 6 / 7 security-game oracles.
* :class:`SecNDPEngine` / :class:`OtpPu` - functional engine model (Sec. V).
* :class:`VersionManager` - software version management (Sec. V-A).
"""

from .checksum import LinearChecksum, MultiPointChecksum
from .encryption import ArithmeticEncryptor, EncryptedMatrix
from .engine import OtpPu, SecNDPEngine
from .mac import EncryptedLinearMac
from .oracles import SignedTranscript, WeightedSummationOracles
from .params import SecNDPParams
from .serialization import deserialize_matrix, serialize_matrix
from .protocol import SecNDPProcessor, UntrustedNdpDevice, WeightedSumResult
from .versions import DEFAULT_VERSION_BUDGET, VersionManager

__all__ = [
    "LinearChecksum",
    "MultiPointChecksum",
    "ArithmeticEncryptor",
    "EncryptedMatrix",
    "OtpPu",
    "SecNDPEngine",
    "EncryptedLinearMac",
    "SignedTranscript",
    "WeightedSummationOracles",
    "SecNDPParams",
    "serialize_matrix",
    "deserialize_matrix",
    "SecNDPProcessor",
    "UntrustedNdpDevice",
    "WeightedSumResult",
    "DEFAULT_VERSION_BUDGET",
    "VersionManager",
]
