"""SecNDP arithmetic encryption - Algorithm 1, ``Arith-E(K, P, Addr)``.

The plaintext matrix is split into ``w_c``-bit chunks; each chunk's
physical address (and the region version) seeds the block cipher to
produce an OTP block; each ``w_e``-bit element is encrypted by *ring
subtraction* ``c_j = p_j - e_j mod 2^w_e``.  Ciphertext and OTP then form
a two-party arithmetic sharing of the plaintext (Fig. 2(d), Fig. 3):
``C + E = P``, which is what lets the untrusted NDP compute on ``C``
while the processor computes on ``E``.

The inverse operation (ring addition of the regenerated pad) is what the
paper calls decryption; in hardware it is the single adder on the
``SecNDPLd`` critical path (Sec. V-E3).

Tiering note: query-path pad regeneration (:meth:`ArithmeticEncryptor.
pads_for_rows`) assembles each row from ``row_bytes / 16`` cached cipher
blocks — ~16 LRU operations per row even when every block is resident.
An optional *row-level* pad LRU (off by default; sized by
:mod:`repro.tiering` from the hot-set footprint) short-circuits that to
one lookup per row, which is what makes prewarmed hot rows nearly free
to serve.  Same contract as every pad cache here: keys carry
``(version, address)``, so entries are pure-function values and stale
versions are unreachable by construction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .. import obs
from ..crypto.aes import BLOCK_BYTES
from ..crypto.otp import OtpCacheInfo, OtpGenerator
from ..crypto.tweaked import TweakedCipher
from ..errors import ConfigurationError
from .params import SecNDPParams

__all__ = ["EncryptedMatrix", "ArithmeticEncryptor"]


@dataclass
class EncryptedMatrix:
    """Ciphertext of a 2-D matrix plus the metadata needed to operate on it.

    ``ciphertext`` is an ``(n, m)`` array of ring residues living (in the
    architectural model) in untrusted memory at byte address ``base_addr``.
    ``tags``, when present, is the list of per-row encrypted tags
    ``C_{T_i}`` produced by Alg. 3 - also untrusted data.
    """

    ciphertext: np.ndarray
    base_addr: int
    version: int
    params: SecNDPParams
    tags: Optional[list] = None
    checksum_version: Optional[int] = None
    tag_version: Optional[int] = None

    @property
    def n_rows(self) -> int:
        return self.ciphertext.shape[0]

    @property
    def n_cols(self) -> int:
        return self.ciphertext.shape[1]

    @property
    def row_bytes(self) -> int:
        return self.n_cols * self.params.element_bytes

    def row_addr(self, i: int) -> int:
        """Physical byte address of row ``i`` (``paddr(P_i)``)."""
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {i} out of range [0, {self.n_rows})")
        return self.base_addr + i * self.row_bytes

    def element_addr(self, i: int, j: int) -> int:
        """Physical byte address of element ``P_{i,j}``."""
        if not 0 <= j < self.n_cols:
            raise IndexError(f"column {j} out of range [0, {self.n_cols})")
        return self.row_addr(i) + j * self.params.element_bytes


class ArithmeticEncryptor:
    """Implements Alg. 1 (and its inverse) for matrices of ring elements.

    Parameters
    ----------
    cipher:
        The processor's tweaked cipher (holds the secret key ``K``).
    params:
        Shared scheme parameters; fixes ``w_e`` and the chunk geometry.
    """

    def __init__(self, cipher: TweakedCipher, params: SecNDPParams):
        self.cipher = cipher
        self.params = params
        self.ring = params.ring()
        self.otp = OtpGenerator(cipher, self.ring)
        # Row-level pad LRU, keyed (version, row_addr) -> pad row.  Off
        # (capacity 0) until the tiering layer sizes it to the hot set;
        # see the module docstring.  Concurrency contract matches
        # OtpGenerator: single C-level OrderedDict ops under the GIL,
        # KeyError-tolerant move_to_end/popitem.
        self.row_cache_rows = 0
        self._row_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.row_cache_hits = 0
        self.row_cache_misses = 0
        self.row_cache_evictions = 0

    def encrypt(
        self, plaintext: np.ndarray, base_addr: int, version: int
    ) -> EncryptedMatrix:
        """Encrypt a matrix of ring residues placed at ``base_addr``.

        ``plaintext`` must already be ring residues (use
        :meth:`~repro.crypto.ring.Ring.encode` for signed values).  The
        total size must divide into whole cipher blocks and ``base_addr``
        must be block aligned, exactly as Alg. 1 assumes when it walks the
        matrix chunk by chunk.
        """
        plaintext = np.asarray(plaintext, dtype=self.ring.dtype)
        if plaintext.ndim != 2:
            raise ConfigurationError("plaintext must be 2-D (n rows x m columns)")
        n, m = plaintext.shape
        total_bits = n * m * self.params.element_bits
        if total_bits % self.params.block_bits:
            raise ConfigurationError(
                f"matrix of {n}x{m} {self.params.element_bits}-bit elements does "
                f"not divide into {self.params.block_bits}-bit cipher chunks"
            )
        if base_addr % BLOCK_BYTES:
            raise ConfigurationError(
                f"base address {base_addr:#x} must be {BLOCK_BYTES}-byte aligned"
            )
        pads = self.otp.pad_elements(base_addr, n * m, version).reshape(n, m)
        ciphertext = self.ring.sub(plaintext, pads)
        return EncryptedMatrix(
            ciphertext=ciphertext,
            base_addr=base_addr,
            version=version,
            params=self.params,
        )

    def decrypt(self, encrypted: EncryptedMatrix) -> np.ndarray:
        """Recover the plaintext residues: ``P = C + E mod 2^w_e``."""
        n, m = encrypted.ciphertext.shape
        pads = self.otp.pad_elements(
            encrypted.base_addr, n * m, encrypted.version
        ).reshape(n, m)
        return self.ring.add(encrypted.ciphertext, pads)

    def pads_for_rows(
        self, encrypted: EncryptedMatrix, rows: Sequence[int]
    ) -> np.ndarray:
        """Regenerate OTP elements for a set of rows (the ``E_i`` of Fig. 4).

        This is the processor-side share used during computation; it never
        touches memory - the pads are derived purely from addresses and the
        version (the property that makes SecNDP bandwidth-free on the OTP
        side).  With a non-zero ``row_cache_rows`` capacity, whole row
        pads are served from the row-level LRU (one lookup per row); only
        the missing rows fall through to the block-assembly path.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if not self.row_cache_rows:
            return self._pads_for_rows_blocks(encrypted, rows)
        cache = self._row_cache
        m = encrypted.n_cols
        out = np.empty((len(rows), m), dtype=self.ring.dtype)
        version = encrypted.version
        base = encrypted.base_addr
        row_bytes = encrypted.row_bytes
        missing: list = []
        missing_pos: list = []
        for pos, r in enumerate(rows.tolist()):
            key = (version, base + r * row_bytes)
            pad = cache.get(key)
            if pad is None:
                missing.append(r)
                missing_pos.append(pos)
            else:
                try:
                    cache.move_to_end(key)
                except KeyError:  # concurrent prewarmer eviction
                    pass
                out[pos] = pad
        hits = len(rows) - len(missing)
        self.row_cache_hits += hits
        self.row_cache_misses += len(missing)
        if obs.enabled():
            obs.inc("otp.row_cache.hit", hits)
            obs.inc("otp.row_cache.miss", len(missing))
        if missing:
            uniq = sorted(set(missing))
            pads = self._pads_for_rows_blocks(
                encrypted, np.asarray(uniq, dtype=np.int64)
            )
            lookup = {r: pads[i] for i, r in enumerate(uniq)}
            for r, pos in zip(missing, missing_pos):
                out[pos] = lookup[r]
            for r in uniq:
                cache[(version, base + r * row_bytes)] = lookup[r].copy()
            self._evict_row_cache()
        return out

    def _pads_for_rows_blocks(
        self, encrypted: EncryptedMatrix, rows: np.ndarray
    ) -> np.ndarray:
        """Row pads assembled from the block-level generator (the old path)."""
        m = encrypted.n_cols
        elem_bytes = self.params.element_bytes
        addrs = (
            encrypted.base_addr
            + rows[:, None].astype(np.uint64) * np.uint64(encrypted.row_bytes)
            + np.arange(m, dtype=np.uint64)[None, :] * np.uint64(elem_bytes)
        )
        flat = self.otp.pad_elements_at(addrs.reshape(-1), encrypted.version)
        return flat.reshape(len(rows), m)

    def _evict_row_cache(self) -> None:
        """Shrink the row-pad LRU to capacity in one accounted pass."""
        cache = self._row_cache
        excess = len(cache) - self.row_cache_rows
        if excess > 0:
            for _ in range(excess):
                try:
                    cache.popitem(last=False)
                except KeyError:
                    break
            self.row_cache_evictions += excess
            obs.inc("otp.row_cache.eviction", excess)

    def resize_row_cache(self, rows: int) -> None:
        """Set the row-pad LRU capacity (0 disables and drops everything)."""
        if rows < 0:
            raise ValueError("row cache capacity must be non-negative")
        self.row_cache_rows = rows
        if rows == 0:
            self._row_cache.clear()
        else:
            self._evict_row_cache()
        if obs.enabled():
            obs.gauge("otp.row_cache.capacity_rows", rows)

    def purge_row_version(self, version: int) -> int:
        """Drop cached row pads of a retired data version (re-encryption)."""
        stale = [key for key in list(self._row_cache) if key[0] == version]
        dropped = 0
        for key in stale:
            try:
                del self._row_cache[key]
            except KeyError:
                continue
            dropped += 1
        if dropped:
            obs.inc("otp.row_cache.purged", dropped)
        return dropped

    def row_cache_info(self) -> OtpCacheInfo:
        """Row-pad LRU statistics (same tuple shape as the block cache)."""
        return OtpCacheInfo(
            hits=self.row_cache_hits,
            misses=self.row_cache_misses,
            evictions=self.row_cache_evictions,
            currsize=len(self._row_cache),
            maxsize=self.row_cache_rows,
        )

    def pad_for_element(
        self, encrypted: EncryptedMatrix, i: int, j: int
    ) -> int:
        """Single-element pad ``E_{i,j}`` (Alg. 4 lines 9-11)."""
        return self.otp.pad_element_at(
            encrypted.element_addr(i, j), encrypted.version
        )
