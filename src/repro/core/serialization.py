"""Binary serialization of encrypted matrices.

An :class:`~repro.core.encryption.EncryptedMatrix` is untrusted data: in
a real deployment it lives in DRAM or on disk next to the NDP device.
This module defines a compact, versioned, self-describing container so
ciphertext + tags can be written out (e.g. persisted to near-storage NDP,
shipped to another host) and reloaded without the trusted party - only
decryption requires the key.

Layout (little-endian)::

    magic      4s   b"SNDP"
    version    u16  format version (1)
    elem_bits  u16  w_e
    n_rows     u32
    n_cols     u32
    base_addr  u64
    data_ver   u64  counter-mode version of the data
    flags      u32  bit0: tags present
    cs_ver     u64  checksum version (if tags)
    tag_ver    u64  tag version (if tags)
    tag_bytes  u32  bytes per serialized tag (if tags)
    ciphertext n_rows*n_cols elements, little-endian
    tags       n_rows * tag_bytes (if tags)
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .encryption import EncryptedMatrix
from .params import SecNDPParams

__all__ = ["serialize_matrix", "deserialize_matrix", "FORMAT_VERSION", "MAGIC"]

MAGIC = b"SNDP"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sHHIIQQI")
_TAG_HEADER = struct.Struct("<QQI")
_FLAG_TAGS = 1


def serialize_matrix(matrix: EncryptedMatrix) -> bytes:
    """Serialize ciphertext (and tags, when present) to bytes."""
    ct = np.ascontiguousarray(
        matrix.ciphertext, dtype=matrix.params.ring().dtype
    )
    flags = 0
    tag_block = b""
    tag_header = b""
    if matrix.tags is not None:
        if matrix.checksum_version is None or matrix.tag_version is None:
            raise ConfigurationError("tagged matrix missing tag versions")
        flags |= _FLAG_TAGS
        tag_bytes = matrix.params.tag_bytes
        tag_header = _TAG_HEADER.pack(
            matrix.checksum_version, matrix.tag_version, tag_bytes
        )
        tag_block = b"".join(
            int(t).to_bytes(tag_bytes, "little") for t in matrix.tags
        )
    header = _HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        matrix.params.element_bits,
        matrix.n_rows,
        matrix.n_cols,
        matrix.base_addr,
        matrix.version,
        flags,
    )
    return header + tag_header + ct.astype("<" + ct.dtype.str[1:]).tobytes() + tag_block


def deserialize_matrix(
    data: bytes, params: Optional[SecNDPParams] = None
) -> EncryptedMatrix:
    """Reconstruct an :class:`EncryptedMatrix` from :func:`serialize_matrix` output.

    ``params`` must match the serialized element width and (for tagged
    matrices) have a tag modulus of the same byte width; a default
    :class:`SecNDPParams` with the serialized element width is built when
    omitted.
    """
    if len(data) < _HEADER.size:
        raise ConfigurationError("truncated SecNDP container (header)")
    magic, fmt, elem_bits, n_rows, n_cols, base_addr, version, flags = _HEADER.unpack(
        data[: _HEADER.size]
    )
    if magic != MAGIC:
        raise ConfigurationError(f"bad magic {magic!r}; not a SecNDP container")
    if fmt != FORMAT_VERSION:
        raise ConfigurationError(f"unsupported format version {fmt}")
    if params is None:
        params = SecNDPParams(element_bits=elem_bits)
    elif params.element_bits != elem_bits:
        raise ConfigurationError(
            f"params element width {params.element_bits} != serialized {elem_bits}"
        )
    offset = _HEADER.size

    checksum_version = tag_version = None
    tag_bytes = 0
    if flags & _FLAG_TAGS:
        if len(data) < offset + _TAG_HEADER.size:
            raise ConfigurationError("truncated SecNDP container (tag header)")
        checksum_version, tag_version, tag_bytes = _TAG_HEADER.unpack(
            data[offset : offset + _TAG_HEADER.size]
        )
        if tag_bytes != params.tag_bytes:
            raise ConfigurationError(
                f"tag width {tag_bytes} does not match params ({params.tag_bytes})"
            )
        offset += _TAG_HEADER.size

    ring = params.ring()
    ct_bytes = n_rows * n_cols * params.element_bytes
    if len(data) < offset + ct_bytes:
        raise ConfigurationError("truncated SecNDP container (ciphertext)")
    ct = np.frombuffer(
        data, dtype="<" + np.dtype(ring.dtype).str[1:], count=n_rows * n_cols,
        offset=offset,
    ).astype(ring.dtype).reshape(n_rows, n_cols)
    offset += ct_bytes

    tags = None
    if flags & _FLAG_TAGS:
        expected = n_rows * tag_bytes
        if len(data) < offset + expected:
            raise ConfigurationError("truncated SecNDP container (tags)")
        tags = [
            int.from_bytes(data[offset + i * tag_bytes : offset + (i + 1) * tag_bytes],
                           "little")
            for i in range(n_rows)
        ]
        offset += expected

    return EncryptedMatrix(
        ciphertext=ct,
        base_addr=base_addr,
        version=version,
        params=params,
        tags=tags,
        checksum_version=checksum_version,
        tag_version=tag_version,
    )
