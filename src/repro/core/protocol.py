"""The SecNDP computation protocols - Algorithms 4 and 5.

Two roles cooperate over a bus, exactly as in the appendix protocol
listings:

* :class:`UntrustedNdpDevice` - the memory-side party.  It only ever sees
  ciphertext ``C`` and encrypted tags ``C_T``; its operations (weighted
  summation in the ring, weighted tag summation in the field) are
  *identical* to what an unprotected NDP PU would execute, which is the
  paper's key deployment claim (Sec. IV-D: "there is no modification in
  the NDP implementation needed").
* :class:`SecNDPProcessor` - the trusted party.  It regenerates OTPs from
  addresses and versions (no memory traffic), runs the same weighted
  summation over its pad share, adds the two shares to decrypt, and
  verifies the result against the tag reconstruction of Alg. 5.

Overflow semantics (paper footnote 1 / Thm. A.2): ring arithmetic wraps
silently, but any column whose *integer* weighted sum of residues reaches
``2^w_e`` breaks the tag identity by a multiple of ``2^w_e``, so
verification detects it.  Applications are expected to budget
``PF * max(a) * max(P) < 2^w_e`` (the DLRM and analytics workloads do).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..crypto import limb_field
from ..crypto.tweaked import TweakedCipher
from ..errors import ConfigurationError, ShardVerificationError, VerificationError
from ..faults import hooks as fault_hooks
from .checksum import LinearChecksum, MultiPointChecksum
from .encryption import ArithmeticEncryptor, EncryptedMatrix
from .mac import EncryptedLinearMac
from .params import SecNDPParams
from .versions import VersionManager

__all__ = [
    "UntrustedNdpDevice",
    "SecNDPProcessor",
    "WeightedSumResult",
    "PartialSumShare",
]


@dataclass
class WeightedSumResult:
    """What comes back from a verified weighted-summation query.

    ``values`` are plaintext ring residues; ``verified`` records whether a
    tag check was performed (and passed - a failed check raises instead).
    """

    values: np.ndarray
    verified: bool


@dataclass
class PartialSumShare:
    """One shard's contribution to a batch of weighted-summation queries.

    Produced by :meth:`SecNDPProcessor.partial_row_sum_batch` over the
    subset of each query's rows a worker owns, and combined on the
    trusted side by :meth:`SecNDPProcessor.finalize_row_sum_batch`.

    ``values`` has shape ``(n_queries, m)``: row ``q`` is this shard's
    already-decrypted share ``sum_k a_k * P_{i_k, j}`` restricted to the
    shard's rows (zeros when the query touches none of them).
    ``tag_shares`` holds the matching per-query field elements
    ``C_T_res + E_T_res`` restricted the same way, or ``None`` when the
    partial was computed without verification material.

    Both components live in exact modular structures (the ring
    ``Z(2^w_e)`` and the tag field), so summing shards in any order and
    any grouping reproduces the sequential result bit for bit.
    """

    values: np.ndarray
    tag_shares: Optional[List[int]]


class UntrustedNdpDevice:
    """Memory-side party: stores ciphertext, computes over it on request.

    Everything this class holds (ciphertext, encrypted tags) and computes
    is considered attacker-visible and attacker-controllable in the threat
    model (Sec. II).  The ``tamper_*`` hooks let tests and examples inject
    exactly the misbehaviours the verification scheme must catch.
    """

    def __init__(self, params: SecNDPParams):
        self.params = params
        self.ring = params.ring()
        self.field = params.field()
        self._store: dict = {}
        # Fault-injection state (None = honest device).
        self._result_delta: Optional[int] = None
        self._tag_delta: Optional[int] = None

    # -- storage --------------------------------------------------------------

    def store(self, name: str, encrypted: EncryptedMatrix) -> None:
        """Receive ciphertext (the T0 initialisation arrow of Fig. 4)."""
        self._store[name] = encrypted

    def stored(self, name: str) -> EncryptedMatrix:
        return self._store[name]

    # -- honest NDP operations (identical to unprotected NDP) -----------------

    def weighted_row_sum(
        self, name: str, rows: Sequence[int], weights: Sequence[int]
    ) -> np.ndarray:
        """``C_res_j = sum_k a_k * C_{i_k, j} mod 2^w_e`` (Alg. 5 line 5)."""
        enc = self._store[name]
        rows = np.asarray(rows, dtype=np.int64)
        c_rows = enc.ciphertext[rows]
        result = self.ring.dot(np.asarray(weights), c_rows)
        if self._result_delta is not None:
            result = result.copy()
            result[0] = self.ring.add(result[0], self._result_delta)
        inj = fault_hooks.armed_injector()
        if inj is not None:
            result = inj.perturb_result(self.ring, result, "device.row_sum")
        return result

    def weighted_element_sum(
        self,
        name: str,
        rows: Sequence[int],
        cols: Sequence[int],
        weights: Sequence[int],
    ) -> int:
        """``C_res = sum_k a_k * C_{i_k, j_k} mod 2^w_e`` (Alg. 4 line 7)."""
        enc = self._store[name]
        elems = enc.ciphertext[np.asarray(rows), np.asarray(cols)]
        total = self.ring.dot(np.asarray(weights), elems[:, None])[0]
        if self._result_delta is not None:
            total = self.ring.add(total, self._result_delta)
        inj = fault_hooks.armed_injector()
        if inj is not None:
            total = inj.perturb_scalar_result(self.ring, int(total), "device.element_sum")
        return int(total)

    def weighted_tag_sum(
        self, name: str, rows: Sequence[int], weights: Sequence[int]
    ) -> int:
        """``C_{T_res} = sum_k a_k * C_{T_k} mod q`` (Alg. 5 line 15)."""
        enc = self._store[name]
        if enc.tags is None:
            raise ConfigurationError(f"matrix {name!r} stored without tags")
        tag_values = [enc.tags[int(i)] for i in rows]
        # Identical math to an unprotected NDP PU; the limb-vectorized
        # dot only changes how fast the functional model computes it.
        result = limb_field.field_dot(
            self.field, [int(w) for w in weights], tag_values
        )
        if self._tag_delta is not None:
            result = self.field.add(result, self._tag_delta)
        inj = fault_hooks.armed_injector()
        if inj is not None:
            result = inj.perturb_tag(self.field, result, "device.tag_sum")
        return result

    def partial_sum_batch(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
        with_tags: bool = True,
    ) -> Tuple[np.ndarray, Optional[List[int]]]:
        """Ciphertext-domain halves of a sharded batch (Alg. 5 lines 5/15).

        For each query ``q``: ``C_res[q] = sum_k a_k * C_{i_k}`` over the
        stored ciphertext and, when ``with_tags``, ``C_T_res[q] = sum_k
        a_k * C_{T_k}`` over the encrypted tags — computed entirely from
        attacker-visible state, with no key material.  The trusted side
        adds its pad halves (:meth:`SecNDPProcessor.pad_share_batch` via
        :meth:`SecNDPProcessor.combine_device_sums`) to reconstruct the
        shard's :class:`PartialSumShare`.  This is the whole wire
        contract of a cluster NDP node: ciphertext sums go out, nothing
        decryptable comes back.
        """
        if batch_weights is None:
            batch_weights = [[1] * len(rows) for rows in batch_rows]
        if len(batch_weights) != len(batch_rows):
            raise ConfigurationError(
                "batch_rows and batch_weights must have equal length"
            )
        if name not in self._store:
            raise ConfigurationError(f"no matrix {name!r} stored on this device")
        enc = self._store[name]
        n_cols = int(enc.ciphertext.shape[1])
        values = np.zeros((len(batch_rows), n_cols), dtype=self.ring.dtype)
        tag_sums: Optional[List[int]] = [0] * len(batch_rows) if with_tags else None
        for q, (rows, weights) in enumerate(zip(batch_rows, batch_weights)):
            if not len(rows):
                continue
            weights_ring = self.ring.encode(np.asarray(weights))
            values[q] = self.weighted_row_sum(name, rows, weights_ring)
            if with_tags:
                tag_sums[q] = self.weighted_tag_sum(
                    name, rows, [int(w) for w in weights_ring]
                )
        return values, tag_sums

    # -- adversarial hooks -----------------------------------------------------

    def tamper_results(self, delta: int) -> None:
        """Make the device add ``delta`` to every returned data result."""
        self._result_delta = delta

    def tamper_tags(self, delta: int) -> None:
        """Make the device add ``delta`` to every returned tag result."""
        self._tag_delta = delta

    def behave_honestly(self) -> None:
        self._result_delta = None
        self._tag_delta = None

    def corrupt_stored_ciphertext(self, name: str, i: int, j: int, delta: int) -> None:
        """Flip stored ciphertext in place (memory tampering / bit flips)."""
        enc = self._store[name]
        enc.ciphertext[i, j] = self.ring.add(enc.ciphertext[i, j], delta)

    def replay_stored_tag(self, name: str, i: int, stale_tag: int) -> None:
        """Replace a stored tag with a stale value (replay attack)."""
        enc = self._store[name]
        if enc.tags is None:
            raise ConfigurationError("no tags to replay")
        enc.tags[i] = stale_tag


class SecNDPProcessor:
    """Trusted party: encrypts, regenerates pads, decrypts, verifies.

    Parameters
    ----------
    key:
        The processor secret key ``K`` (16 bytes).
    params:
        Shared scheme parameters.
    versions:
        Version manager; a default (64-region budget) is created if absent.
    """

    def __init__(
        self,
        key: bytes,
        params: Optional[SecNDPParams] = None,
        versions: Optional[VersionManager] = None,
        multipoint_checksum: bool = False,
    ):
        self.params = params or SecNDPParams()
        self.cipher: TweakedCipher = self.params.cipher(key)
        self.ring = self.params.ring()
        self.field = self.params.field()
        self.encryptor = ArithmeticEncryptor(self.cipher, self.params)
        # multipoint_checksum selects the Alg. 8 variant (appendix D),
        # which extracts cnt_s = w_c/w_t evaluation points per cipher
        # block and tightens the forgery bound to m/(cnt_s * q).
        checksum = (
            MultiPointChecksum(self.cipher, self.params)
            if multipoint_checksum
            else None
        )
        self.mac = EncryptedLinearMac(self.cipher, self.params, checksum=checksum)
        self.checksum = self.mac.checksum
        self.versions = versions or VersionManager(
            version_bits=self.params.layout.version_bits
        )

    # -- initialisation (T0 in Fig. 4) ----------------------------------------

    def encrypt_matrix(
        self,
        plaintext: np.ndarray,
        base_addr: int,
        region: str,
        with_tags: bool = True,
    ) -> EncryptedMatrix:
        """Run ``ArithEnc``: encrypt and (optionally) tag a matrix.

        ``plaintext`` holds ring residues.  Three independent versions are
        drawn for the three cipher domains, matching Alg. 1/2/3 each
        calling ``V()`` separately.
        """
        obs.inc("protocol.matrices_encrypted")
        data_version = self.versions.fresh(f"{region}/data")
        with obs.span("protocol.encrypt"):
            encrypted = self.encryptor.encrypt(plaintext, base_addr, data_version)
        if with_tags:
            checksum_version = self.versions.fresh(f"{region}/checksum")
            tag_version = self.versions.fresh(f"{region}/tag")
            with obs.span("protocol.tag_attach"):
                self.mac.attach_tags(
                    encrypted, plaintext, checksum_version, tag_version
                )
        return encrypted

    # -- fault-injection view ---------------------------------------------------

    @staticmethod
    def _pad_source(enc: EncryptedMatrix) -> EncryptedMatrix:
        """The matrix view pads are regenerated from.

        Normally ``enc`` itself; under an armed fault injector the OTP
        counter version may be flipped (a version-management fault,
        Sec. V-A) so the regenerated pads no longer match the ciphertext
        and verification must trip.  One ``is None`` check when faults
        are off.
        """
        inj = fault_hooks.armed_injector()
        if inj is None:
            return enc
        version = inj.perturb_version(enc.version, "protocol.otp_version")
        if version == enc.version:
            return enc
        return replace(enc, version=version)

    # -- queries (T1 in Fig. 4) -------------------------------------------------

    def weighted_row_sum(
        self,
        device: UntrustedNdpDevice,
        name: str,
        rows: Sequence[int],
        weights: Sequence[int],
        verify: bool = True,
    ) -> WeightedSumResult:
        """Full Alg. 4 + Alg. 5 for a row-vector weighted summation.

        Computes ``res_j = sum_k a_k * P_{i_k, j} mod 2^w_e`` for every
        column ``j``, with optional tag verification.  This is exactly the
        SLS / pooling primitive the evaluation offloads to NDP.
        """
        obs.inc("protocol.queries")
        weights_ring = self.ring.encode(np.asarray(weights))
        enc = device.stored(name)

        # NDP share: computed remotely over ciphertext.
        with obs.span("protocol.offload"):
            c_res = device.weighted_row_sum(name, rows, weights_ring)

        # Processor share: same operation over regenerated pads (OTP PU).
        with obs.span("protocol.otp"):
            pads = self.encryptor.pads_for_rows(self._pad_source(enc), rows)

        # The one adder on the critical path (Sec. V-E3).
        with obs.span("protocol.combine"):
            e_res = self.ring.dot(weights_ring, pads)
            res = self.ring.add(c_res, e_res)

        if verify:
            with obs.span("protocol.verify"):
                self._verify_row_sum(device, enc, name, rows, weights_ring, res)
        return WeightedSumResult(values=res, verified=verify)

    def weighted_row_sum_batch(
        self,
        device: UntrustedNdpDevice,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
        verify: bool = True,
    ) -> List[WeightedSumResult]:
        """Alg. 4 + Alg. 5 for a whole batch of weighted-summation queries.

        Functionally identical to calling :meth:`weighted_row_sum` per
        query, but the processor-side pad regeneration — data OTPs *and*
        tag pads — is amortized: pads are generated once for the union
        of queried rows, then each query's share is a cheap gather + dot.
        This is the shape of a DLRM inference batch, where consecutive
        SLS queries hit overlapping hot rows.
        """
        if batch_weights is None:
            batch_weights = [[1] * len(rows) for rows in batch_rows]
        if len(batch_weights) != len(batch_rows):
            raise ConfigurationError("batch_rows and batch_weights must have equal length")
        if not batch_rows:
            return []
        enc = device.stored(name)
        n_cols = int(enc.ciphertext.shape[1])

        batch_arrs = [
            np.asarray(rows, dtype=np.int64).reshape(-1) for rows in batch_rows
        ]
        touched = [rows for rows in batch_arrs if rows.size]
        if not touched:
            # Every query is empty: the pooled sums are identically zero
            # and nothing untrusted contributes, so nothing to verify.
            return [
                WeightedSumResult(
                    values=np.zeros(n_cols, dtype=self.ring.dtype),
                    verified=verify,
                )
                for _ in batch_rows
            ]
        all_rows = np.unique(np.concatenate(touched))
        if obs.enabled():
            obs.inc("protocol.batch.queries", len(batch_rows))
            obs.inc(
                "protocol.batch.rows_total",
                int(sum(len(rows) for rows in batch_rows)),
            )
            obs.inc("protocol.batch.rows_unique", int(all_rows.size))
        row_pos = {int(r): k for k, r in enumerate(all_rows)}
        # One pad sweep for the union of rows (the AES hot path).
        with obs.span("protocol.otp"):
            pads = self.encryptor.pads_for_rows(self._pad_source(enc), all_rows)
        tag_pads = None
        key = None
        if verify:
            if enc.tags is None or enc.checksum_version is None:
                raise VerificationError(
                    f"matrix {name!r} was encrypted without verification tags"
                )
            with obs.span("protocol.otp"):
                tag_pads = self.mac.tag_pads_for_rows(enc, all_rows)
            key = self.checksum.key_for(enc.base_addr, enc.checksum_version)

        results: List[WeightedSumResult] = []
        for rows, weights in zip(batch_arrs, batch_weights):
            obs.inc("protocol.queries")
            if not rows.size:
                results.append(
                    WeightedSumResult(
                        values=np.zeros(n_cols, dtype=self.ring.dtype),
                        verified=verify,
                    )
                )
                continue
            weights_ring = self.ring.encode(np.asarray(weights))
            with obs.span("protocol.offload"):
                c_res = device.weighted_row_sum(name, rows, weights_ring)
            idx = [row_pos[int(i)] for i in rows]
            with obs.span("protocol.combine"):
                e_res = self.ring.dot(weights_ring, pads[idx])
                res = self.ring.add(c_res, e_res)
            if verify:
                with obs.span("protocol.verify"):
                    self._verify_row_sum(
                        device,
                        enc,
                        name,
                        rows,
                        weights_ring,
                        res,
                        key=key,
                        tag_pads=[tag_pads[k] for k in idx],
                    )
            results.append(WeightedSumResult(values=res, verified=verify))
        return results

    def partial_row_sum_batch(
        self,
        device: UntrustedNdpDevice,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
        with_tag_shares: bool = True,
    ) -> PartialSumShare:
        """One shard's half of :meth:`weighted_row_sum_batch`.

        ``batch_rows[q]`` lists only the rows of query ``q`` that this
        shard owns (possibly none); the returned share holds the
        decrypted partial sums and, when ``with_tag_shares``, the
        combined tag shares ``C_T_res + E_T_res`` for those rows.  No
        verification happens here — a partial sum has no meaningful tag
        identity on its own; :meth:`finalize_row_sum_batch` checks the
        recombined totals.

        Pad regeneration (data and tag OTPs) is amortized over the union
        of this shard's rows, exactly like the sequential batch path.
        """
        if batch_weights is None:
            batch_weights = [[1] * len(rows) for rows in batch_rows]
        if len(batch_weights) != len(batch_rows):
            raise ConfigurationError("batch_rows and batch_weights must have equal length")
        enc = device.stored(name)
        n_cols = int(enc.ciphertext.shape[1])
        values = np.zeros((len(batch_rows), n_cols), dtype=self.ring.dtype)
        tag_shares: Optional[List[int]] = [0] * len(batch_rows) if with_tag_shares else None
        if not batch_rows:
            return PartialSumShare(values=values, tag_shares=tag_shares)

        nonempty = [
            np.asarray(rows, dtype=np.int64).reshape(-1) for rows in batch_rows
        ]
        touched = [rows for rows in nonempty if rows.size]
        if not touched:
            return PartialSumShare(values=values, tag_shares=tag_shares)
        all_rows = np.unique(np.concatenate(touched))
        if obs.enabled():
            obs.inc("protocol.partial.queries", len(batch_rows))
            obs.inc("protocol.partial.rows_unique", int(all_rows.size))
        row_pos = {int(r): k for k, r in enumerate(all_rows)}
        with obs.span("protocol.otp"):
            pads = self.encryptor.pads_for_rows(self._pad_source(enc), all_rows)
        tag_pads = None
        if with_tag_shares:
            if enc.tags is None or enc.checksum_version is None:
                raise VerificationError(
                    f"matrix {name!r} was encrypted without verification tags"
                )
            with obs.span("protocol.otp"):
                tag_pads = self.mac.tag_pads_for_rows(enc, all_rows)

        for q, (rows, weights) in enumerate(zip(nonempty, batch_weights)):
            if not rows.size:
                continue
            weights_ring = self.ring.encode(np.asarray(weights))
            with obs.span("protocol.offload"):
                c_res = device.weighted_row_sum(name, rows, weights_ring)
            idx = [row_pos[int(i)] for i in rows]
            with obs.span("protocol.combine"):
                e_res = self.ring.dot(weights_ring, pads[idx])
                values[q] = self.ring.add(c_res, e_res)
            if with_tag_shares:
                weights_int = [int(w) for w in weights_ring]
                with obs.span("protocol.verify"):
                    e_t_res = limb_field.field_dot(
                        self.field, weights_int, [tag_pads[k] for k in idx]
                    )
                    c_t_res = device.weighted_tag_sum(name, rows, weights_int)
                    tag_shares[q] = self.field.add(c_t_res, e_t_res)
        return PartialSumShare(values=values, tag_shares=tag_shares)

    def pad_share_batch(
        self,
        enc: EncryptedMatrix,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
        with_tag_shares: bool = True,
    ) -> PartialSumShare:
        """The trusted-side half of :meth:`partial_row_sum_batch`.

        ``E_res[q] = sum_k a_k * pad_{i_k}`` per query (and, when
        ``with_tag_shares``, the tag-pad sums ``E_T_res[q]``) — computed
        entirely key-side, with no device interaction.  Adding an
        untrusted device's ciphertext-domain sums
        (:meth:`UntrustedNdpDevice.partial_sum_batch`) via
        :meth:`combine_device_sums` reconstructs the shard's
        :class:`PartialSumShare` bit-identically to running
        :meth:`partial_row_sum_batch` against an honest device, while
        the key never leaves the trusted side: a remote shard only ever
        receives ciphertext and returns ciphertext sums.
        """
        if batch_weights is None:
            batch_weights = [[1] * len(rows) for rows in batch_rows]
        if len(batch_weights) != len(batch_rows):
            raise ConfigurationError(
                "batch_rows and batch_weights must have equal length"
            )
        n_cols = int(enc.ciphertext.shape[1])
        values = np.zeros((len(batch_rows), n_cols), dtype=self.ring.dtype)
        tag_shares: Optional[List[int]] = (
            [0] * len(batch_rows) if with_tag_shares else None
        )
        nonempty = [
            np.asarray(rows, dtype=np.int64).reshape(-1) for rows in batch_rows
        ]
        touched = [rows for rows in nonempty if rows.size]
        if not touched:
            return PartialSumShare(values=values, tag_shares=tag_shares)
        all_rows = np.unique(np.concatenate(touched))
        row_pos = {int(r): k for k, r in enumerate(all_rows)}
        with obs.span("protocol.otp"):
            pads = self.encryptor.pads_for_rows(self._pad_source(enc), all_rows)
        tag_pads = None
        if with_tag_shares:
            if enc.tags is None or enc.checksum_version is None:
                raise VerificationError(
                    f"matrix {name!r} was encrypted without verification tags"
                )
            with obs.span("protocol.otp"):
                tag_pads = self.mac.tag_pads_for_rows(enc, all_rows)
        for q, (rows, weights) in enumerate(zip(nonempty, batch_weights)):
            if not rows.size:
                continue
            weights_ring = self.ring.encode(np.asarray(weights))
            idx = [row_pos[int(i)] for i in rows]
            with obs.span("protocol.combine"):
                values[q] = self.ring.dot(weights_ring, pads[idx])
            if with_tag_shares:
                with obs.span("protocol.verify"):
                    tag_shares[q] = limb_field.field_dot(
                        self.field,
                        [int(w) for w in weights_ring],
                        [tag_pads[k] for k in idx],
                    )
        return PartialSumShare(values=values, tag_shares=tag_shares)

    def combine_device_sums(
        self,
        pad: PartialSumShare,
        device_values: np.ndarray,
        device_tag_sums: Optional[Sequence[int]] = None,
    ) -> PartialSumShare:
        """Add a device's ciphertext-domain sums onto the trusted pad half.

        ``values = C_res + E_res`` in the ring and ``tag_shares =
        C_T_res + E_T_res`` in the field: the decrypt-and-reconstruct
        step of Alg. 5 with the two halves computed by different
        parties.  The device inputs are untrusted — shape mismatches
        raise :class:`ConfigurationError` so callers can blame the
        shard that produced them; forged sums pass through and are
        caught by :meth:`verify_partial_share`.
        """
        values = np.asarray(device_values, dtype=self.ring.dtype)
        if values.shape != pad.values.shape:
            raise ConfigurationError(
                f"device sums shape {values.shape} does not match the "
                f"pad share shape {pad.values.shape}"
            )
        tag_shares: Optional[List[int]] = None
        if pad.tag_shares is not None:
            if device_tag_sums is None or len(device_tag_sums) != len(
                pad.tag_shares
            ):
                raise ConfigurationError(
                    "device tag sums missing or mismatched against the "
                    "pad share's tag shares"
                )
            tag_shares = [
                self.field.add(int(c), int(e))
                for c, e in zip(device_tag_sums, pad.tag_shares)
            ]
        return PartialSumShare(
            values=self.ring.add(values, pad.values), tag_shares=tag_shares
        )

    def failed_share_queries(
        self,
        enc: EncryptedMatrix,
        name: str,
        part: PartialSumShare,
        key=None,
    ) -> List[int]:
        """Batch-local query indices whose tag share fails *this* shard.

        The checksum is linear with no affine term (``T = sum_j P_j *
        s^(m-j)``), so its restriction to one shard's row partition is
        an exact identity of its own: shard ``s``'s combined tag share
        ``C_T_res + E_T_res`` over the rows it served must equal
        ``result_tag`` of its decrypted partial values.  A mismatch
        therefore blames this shard specifically — no other shard's
        share enters the check.  Subject to the same per-query forgery
        bound (``m/q``) and ring-overflow caveat as the combined check;
        a *whole-query* overflow splits across shards and is only
        visible to the combined identity, which is why
        :meth:`finalize_row_sum_batch` keeps checking totals even when
        per-shard checks ran.
        """
        if part.tag_shares is None:
            raise VerificationError(
                "partial share carries no tag shares; recompute with "
                "with_tag_shares=True to verify"
            )
        if enc.tags is None or enc.checksum_version is None:
            raise VerificationError(
                f"matrix {name!r} was encrypted without verification tags"
            )
        if key is None:
            key = self.checksum.key_for(enc.base_addr, enc.checksum_version)
        failed: List[int] = []
        with obs.span("protocol.shard_verify"):
            for q in range(part.values.shape[0]):
                if part.tag_shares[q] != self.checksum.result_tag(
                    part.values[q], key
                ):
                    failed.append(q)
        if failed:
            obs.inc("protocol.shard_verify.failures", len(failed))
        return failed

    def verify_partial_share(
        self,
        enc: EncryptedMatrix,
        name: str,
        part: PartialSumShare,
        key=None,
        shard=None,
    ) -> None:
        """Raise :class:`ShardVerificationError` if ``part`` fails its check.

        The raising twin of :meth:`failed_share_queries` for callers that
        want the Alg. 5 abort semantics with blame attached.
        """
        failed = self.failed_share_queries(enc, name, part, key=key)
        if failed:
            raise ShardVerificationError(
                f"tag share mismatch for shard {shard!r} on {name!r}: "
                f"queries {failed} (tampering, replay, or a forged share)",
                shard=shard,
                queries=failed,
            )

    def finalize_row_sum_batch(
        self,
        enc: EncryptedMatrix,
        name: str,
        partials: Sequence[PartialSumShare],
        verify: bool = True,
        per_shard: bool = False,
        shard_labels: Optional[Sequence] = None,
    ) -> List[WeightedSumResult]:
        """Combine shard shares into verified results (trusted side).

        Ring-adds the value shares and field-adds the tag shares across
        shards, then runs the Alg. 5 check on each recombined total:
        because every shard partitions the query's rows and both
        structures are exact modular arithmetic, the totals — and hence
        the verification outcome — are bit-identical to
        :meth:`weighted_row_sum_batch` on the unsharded queries.

        With ``per_shard=True`` every share is first verified against
        its *own* restricted checksum (see :meth:`failed_share_queries`),
        raising :class:`ShardVerificationError` naming the offending
        shard (``shard_labels[i]`` when given, else the shard's index).
        The combined check still runs afterwards: per-shard identities
        are exact over residues, but a whole-query integer overflow of
        ``2^w_e`` (Thm. A.2) splits across shards and only breaks the
        recombined identity.
        """
        partials = list(partials)
        if not partials:
            return []
        key = None
        if verify:
            if enc.tags is None or enc.checksum_version is None:
                raise VerificationError(
                    f"matrix {name!r} was encrypted without verification tags"
                )
            key = self.checksum.key_for(enc.base_addr, enc.checksum_version)
            if per_shard:
                for s, part in enumerate(partials):
                    label = shard_labels[s] if shard_labels is not None else s
                    self.verify_partial_share(
                        enc, name, part, key=key, shard=label
                    )
        res = partials[0].values
        for part in partials[1:]:
            res = self.ring.add(res, part.values)
        results: List[WeightedSumResult] = []
        for q in range(res.shape[0]):
            values = res[q]
            if verify:
                with obs.span("protocol.verify"):
                    retrieved = 0
                    for part in partials:
                        if part.tag_shares is None:
                            raise VerificationError(
                                "partial share carries no tag shares; recompute "
                                "with with_tag_shares=True to verify"
                            )
                        retrieved = self.field.add(retrieved, part.tag_shares[q])
                    t_res = self.checksum.result_tag(values, key)
                    if retrieved != t_res:
                        obs.inc("protocol.verify.failures")
                        raise VerificationError(
                            f"tag mismatch for query on {name!r}: computed "
                            f"{t_res:#x}, retrieved {retrieved:#x} "
                            f"(tampering, replay, or ring overflow)"
                        )
            results.append(WeightedSumResult(values=values, verified=verify))
        return results

    def weighted_element_sum(
        self,
        device: UntrustedNdpDevice,
        name: str,
        rows: Sequence[int],
        cols: Sequence[int],
        weights: Sequence[int],
    ) -> int:
        """Scalar Alg. 4: ``res = sum_k a_k * P_{i_k, j_k} mod 2^w_e``.

        Element-granular queries cannot be tag-verified (tags cover whole
        rows), matching the paper where verification is defined for the
        vector weighted summation (Alg. 5).
        """
        weights_ring = self.ring.encode(np.asarray(weights))
        enc = device.stored(name)
        c_res = device.weighted_element_sum(name, rows, cols, weights_ring)
        elem_addrs = np.array(
            [enc.element_addr(int(i), int(j)) for i, j in zip(rows, cols)],
            dtype=np.uint64,
        )
        pads = self.encryptor.otp.pad_elements_at(elem_addrs, enc.version)
        e_res = self.ring.dot(weights_ring, pads[:, None])[0]
        return int(self.ring.add(self.ring.dtype(c_res), e_res))

    # -- verification (Alg. 5) ---------------------------------------------------

    def _verify_row_sum(
        self,
        device: UntrustedNdpDevice,
        enc: EncryptedMatrix,
        name: str,
        rows: Sequence[int],
        weights_ring: np.ndarray,
        res: np.ndarray,
        key=None,
        tag_pads: Optional[list] = None,
    ) -> None:
        if enc.tags is None or enc.checksum_version is None:
            raise VerificationError(
                f"matrix {name!r} was encrypted without verification tags"
            )
        # Checksum of the reconstructed result (verification engine);
        # the limb-vectorized path evaluates the whole Horner dot at once.
        if key is None:
            key = self.checksum.key_for(enc.base_addr, enc.checksum_version)
        t_res = self.checksum.result_tag(res, key)

        # Tag pads for the queried rows (OTP side, E_{T_res}); batch
        # callers pass them pre-generated for the union of rows.
        if tag_pads is None:
            tag_pads = self.mac.tag_pads_for_rows(enc, rows)
        weights_int = [int(w) for w in weights_ring]
        e_t_res = limb_field.field_dot(self.field, weights_int, tag_pads)

        # NDP tag share (C_{T_res}).
        c_t_res = device.weighted_tag_sum(name, rows, weights_int)

        retrieved = self.field.add(c_t_res, e_t_res)
        if retrieved != t_res:
            obs.inc("protocol.verify.failures")
            raise VerificationError(
                f"tag mismatch for query on {name!r}: computed {t_res:#x}, "
                f"retrieved {retrieved:#x} (tampering, replay, or ring overflow)"
            )

    # -- convenience --------------------------------------------------------------

    def decrypt_matrix(self, encrypted: EncryptedMatrix) -> np.ndarray:
        return self.encryptor.decrypt(encrypted)
