"""Software-managed version numbers (paper Sec. V-A).

SecNDP lets trusted enclave software manage counter-mode version numbers
instead of dedicating hardware counter storage: a whole memory region
(e.g. an embedding table) shares one version, versions are bumped when a
region is rewritten, and the enclave guarantees no (address, version)
reuse.  The evaluation assumes the enclave manages at most 64 live
versions (Sec. VI-A).

:class:`VersionManager` models that software component, including the
failure modes the scheme must reject: reusing a version for the same
region, and exceeding the version budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import VersionBudgetError, VersionReuseError

__all__ = ["VersionManager", "DEFAULT_VERSION_BUDGET"]

#: Paper Sec. VI-A: "the enclave software manages at most 64 version numbers".
DEFAULT_VERSION_BUDGET = 64


@dataclass
class VersionManager:
    """Allocates unique version numbers per memory region.

    Each named region (an embedding table, the analytics matrix, ...)
    gets a monotonically increasing version.  The manager refuses to hand
    out a version that was already used for the same region, and enforces
    the configured budget of simultaneously-tracked regions.

    Parameters
    ----------
    version_bits:
        ``w_v`` - width of the version field in the counter block; the
        manager raises once a region's counter would no longer fit.
    budget:
        Maximum number of regions tracked at once.
    """

    version_bits: int = 64
    budget: int = DEFAULT_VERSION_BUDGET
    _current: Dict[str, int] = field(default_factory=dict)
    _tombstones: Dict[str, int] = field(default_factory=dict)

    def fresh(self, region: str) -> int:
        """Draw a fresh version for ``region`` (the paper's ``v <- V()``)."""
        if region not in self._current and len(self._current) >= self.budget:
            raise VersionBudgetError(
                f"version budget of {self.budget} regions exhausted; "
                f"cannot track new region {region!r}"
            )
        last = self._current.get(region, self._tombstones.pop(region, -1))
        version = last + 1
        if version >= (1 << self.version_bits):
            raise VersionReuseError(
                f"version counter for region {region!r} exhausted "
                f"({self.version_bits} bits); re-key required"
            )
        self._current[region] = version
        return version

    def current(self, region: str) -> int:
        """The live version for ``region`` (for pad regeneration)."""
        try:
            return self._current[region]
        except KeyError:
            raise VersionReuseError(f"region {region!r} has no version yet") from None

    def assert_unused(self, region: str, version: int) -> None:
        """Reject an explicit attempt to encrypt under an already-used version."""
        if region in self._current and version <= self._current[region]:
            raise VersionReuseError(
                f"version {version} already used for region {region!r} "
                f"(current={self._current[region]})"
            )

    def retire(self, region: str) -> None:
        """Stop tracking a region, freeing one slot of the budget.

        The retired region's versions remain burned: re-registering the
        region continues from the next version rather than restarting at 0,
        because pads derived from old (address, version) pairs may still
        exist in an attacker's transcript.
        """
        # Keep the counter but mark the slot free by moving it to a tombstone.
        if region not in self._current:
            return
        self._tombstones[region] = self._current.pop(region)

    @property
    def live_regions(self) -> int:
        return len(self._current)
