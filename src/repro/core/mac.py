"""Encrypted linear MAC - Algorithm 3, ``el-MAC(K, P_i, Addr_i)``.

MAC-then-encrypt: the per-row checksum ``T_i`` from Alg. 2 is itself
arithmetically encrypted in the tag field, ``C_{T_i} = T_i - E_{T_i} mod
q`` with the tag pad ``E_{T_i}`` derived from the *row* address in the
``E_10`` cipher domain.  The encrypted tags are stored next to (or apart
from) the data in untrusted memory; because encryption is linear in
``GF(q)``, the NDP can combine tags exactly like data
(``C_{T_res} = a x C_T``) and the processor can combine tag pads
(``E_{T_res} = a x E_T``) without fetching anything.

Hot-path note: :meth:`tag_pad` (one scalar AES call per row) is the
reference; :meth:`attach_tags` and :meth:`tag_pads_for_rows` batch all
row addresses through the vectorized AES sweep and compute row tags with
the limb-vectorized checksum, so tagging an ``n x m`` matrix costs one
cipher sweep + one field sweep instead of ``n`` scalar AES calls and
``n * m`` interpreted field operations.

Tiering note: like the data-pad LRU in :class:`~repro.crypto.otp.
OtpGenerator`, query-path tag pads are a pure function of
``(K, tag_version, row address)``, so an optional per-(version, address)
LRU (off by default — sized by :mod:`repro.tiering` from the observed
hot-set footprint) makes repeated verified queries over hot rows skip
the tag-domain AES sweep entirely.  Bulk tagging (:meth:`attach_tags`)
always bypasses the cache: a whole-matrix sweep would only evict the hot
query rows.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from .. import obs
from ..crypto.aes import BLOCK_BYTES
from ..crypto.otp import OtpCacheInfo
from ..crypto.prime_field import PrimeField
from ..crypto.tweaked import DOMAIN_TAG, TweakedCipher
from .checksum import LinearChecksum, MultiPointChecksum
from .encryption import EncryptedMatrix
from .params import SecNDPParams

__all__ = ["EncryptedLinearMac"]


class EncryptedLinearMac:
    """Generates and encrypts per-row verification tags (Alg. 2 + Alg. 3)."""

    def __init__(
        self,
        cipher: TweakedCipher,
        params: SecNDPParams,
        checksum: "LinearChecksum | MultiPointChecksum | None" = None,
    ):
        self.cipher = cipher
        self.params = params
        self.field: PrimeField = params.field()
        # Either the single-point hash of Alg. 2 (default) or the
        # multi-point variant of Alg. 8; both expose key_for/row_tags.
        self.checksum = checksum or LinearChecksum(cipher, params)
        # Query-path tag-pad LRU, keyed (version, row_addr) -> pad.  Off
        # (capacity 0) until the tiering layer sizes it; every entry is a
        # plain int, so the cache is semantically invisible and cheap.
        self.tag_cache_rows = 0
        self._tag_cache: "OrderedDict[tuple, int]" = OrderedDict()
        self.tag_cache_hits = 0
        self.tag_cache_misses = 0
        self.tag_cache_evictions = 0

    def tag_pad(self, row_addr: int, version: int) -> int:
        """``E_{T_i}`` - first ``w_t`` bits of ``E(K, 10 || paddr(P_i) || v)``."""
        pad = self.cipher.encrypt_counter_int(DOMAIN_TAG, row_addr, version)
        return self.field.reduce(pad >> (self.params.block_bits - self.params.tag_bits))

    def _tag_pads_raw(self, addrs: np.ndarray, version: int) -> list:
        """Uncached vectorized sweep over ``uint64`` row addresses."""
        obs.inc("mac.tag_pads", int(addrs.size))
        blocks = self.cipher.encrypt_counters(DOMAIN_TAG, addrs, version)
        shift = self.params.block_bits - self.params.tag_bits
        buf = blocks.tobytes()
        reduce = self.field.reduce
        return [
            reduce(int.from_bytes(buf[BLOCK_BYTES * i : BLOCK_BYTES * (i + 1)], "big") >> shift)
            for i in range(addrs.size)
        ]

    def tag_pads(self, row_addrs: Sequence[int], version: int) -> list:
        """Batched :meth:`tag_pad`: one vectorized AES sweep for all rows.

        With a non-zero ``tag_cache_rows`` capacity, resident pads are
        served from the LRU and only the missing addresses reach the
        cipher (same contract as the OTP block cache: pads are pure
        functions of ``(K, version, address)``).
        """
        addrs = np.asarray(row_addrs, dtype=np.uint64)
        if addrs.size == 0:
            return []
        if not self.tag_cache_rows:
            return self._tag_pads_raw(addrs, version)
        cache = self._tag_cache
        out: list = [None] * addrs.size
        missing: list = []
        missing_pos: list = []
        for pos, addr in enumerate(addrs.tolist()):
            key = (version, addr)
            pad = cache.get(key)
            if pad is None:
                missing.append(addr)
                missing_pos.append(pos)
            else:
                try:
                    cache.move_to_end(key)
                except KeyError:  # concurrent prewarmer eviction
                    pass
                out[pos] = pad
        hits = addrs.size - len(missing)
        self.tag_cache_hits += hits
        self.tag_cache_misses += len(missing)
        if obs.enabled():
            obs.inc("mac.tag_cache.hit", hits)
            obs.inc("mac.tag_cache.miss", len(missing))
        if missing:
            pads = self._tag_pads_raw(np.asarray(missing, dtype=np.uint64), version)
            for k, pos in enumerate(missing_pos):
                out[pos] = pads[k]
                cache[(version, missing[k])] = pads[k]
            self._evict_tag_cache()
        return out

    def _evict_tag_cache(self) -> None:
        """Shrink the tag-pad LRU to capacity in one accounted pass."""
        cache = self._tag_cache
        excess = len(cache) - self.tag_cache_rows
        if excess > 0:
            for _ in range(excess):
                try:
                    cache.popitem(last=False)
                except KeyError:
                    break
            self.tag_cache_evictions += excess
            obs.inc("mac.tag_cache.eviction", excess)

    def resize_tag_cache(self, rows: int) -> None:
        """Set the tag-pad LRU capacity (0 disables and drops everything)."""
        if rows < 0:
            raise ValueError("tag cache capacity must be non-negative")
        self.tag_cache_rows = rows
        if rows == 0:
            self._tag_cache.clear()
        else:
            self._evict_tag_cache()
        if obs.enabled():
            obs.gauge("mac.tag_cache.capacity_rows", rows)

    def purge_tag_version(self, version: int) -> int:
        """Drop cached tag pads of a retired ``tag_version`` (re-encryption)."""
        stale = [key for key in list(self._tag_cache) if key[0] == version]
        dropped = 0
        for key in stale:
            try:
                del self._tag_cache[key]
            except KeyError:
                continue
            dropped += 1
        if dropped:
            obs.inc("mac.tag_cache.purged", dropped)
        return dropped

    def tag_cache_info(self) -> OtpCacheInfo:
        """Tag-pad LRU statistics (same tuple shape as the OTP cache)."""
        return OtpCacheInfo(
            hits=self.tag_cache_hits,
            misses=self.tag_cache_misses,
            evictions=self.tag_cache_evictions,
            currsize=len(self._tag_cache),
            maxsize=self.tag_cache_rows,
        )

    def encrypt_tag(self, tag: int, row_addr: int, version: int) -> int:
        """``C_{T_i} = T_i - E_{T_i} mod q`` (Alg. 3 line 5)."""
        return self.field.sub(tag, self.tag_pad(row_addr, version))

    def decrypt_tag(self, encrypted_tag: int, row_addr: int, version: int) -> int:
        """Inverse of :meth:`encrypt_tag`: ``T_i = C_{T_i} + E_{T_i} mod q``."""
        return self.field.add(encrypted_tag, self.tag_pad(row_addr, version))

    def attach_tags(
        self,
        encrypted: EncryptedMatrix,
        plaintext: np.ndarray,
        checksum_version: int,
        tag_version: int,
    ) -> None:
        """Compute and attach ``C_{T_i}`` for every row of ``encrypted``.

        ``plaintext`` is needed because tags authenticate the plaintext
        (the MAC is computed before encryption); in hardware this is the
        `ArithEnc` instruction path where the verification engine sees the
        data as it is being encrypted (Sec. V-E1).
        """
        plaintext = np.asarray(plaintext)
        if plaintext.shape != encrypted.ciphertext.shape:
            raise ValueError("plaintext/ciphertext shape mismatch")
        key = self.checksum.key_for(encrypted.base_addr, checksum_version)
        obs.inc("mac.rows_tagged", int(encrypted.n_rows))
        with obs.span("mac.tag_sweep"):
            tags = self.checksum.row_tags(plaintext, key)
        row_addrs = encrypted.base_addr + np.arange(
            encrypted.n_rows, dtype=np.uint64
        ) * np.uint64(encrypted.row_bytes)
        with obs.span("mac.pad_sweep"):
            # Bulk sweep bypasses the tag-pad LRU: a whole-matrix pass
            # would evict exactly the hot query rows worth keeping.
            pads = self._tag_pads_raw(np.asarray(row_addrs, dtype=np.uint64), tag_version)
        sub = self.field.sub
        encrypted.tags = [sub(t, p) for t, p in zip(tags, pads)]
        encrypted.checksum_version = checksum_version
        encrypted.tag_version = tag_version

    def tag_pads_for_rows(
        self, encrypted: EncryptedMatrix, rows: Sequence[int]
    ) -> list:
        """Regenerate ``E_{T_k}`` for the rows of a query (Alg. 5 lines 11-13)."""
        if encrypted.tag_version is None:
            raise ValueError("matrix has no attached tags")
        addrs = [encrypted.row_addr(int(i)) for i in rows]
        return self.tag_pads(addrs, encrypted.tag_version)
