"""Exception hierarchy for the SecNDP reproduction."""

from __future__ import annotations

__all__ = [
    "SecNDPError",
    "VerificationError",
    "ShardVerificationError",
    "VersionReuseError",
    "VersionBudgetError",
    "ConfigurationError",
    "RecoveryExhaustedError",
    "OverloadedError",
    "ServerClosedError",
    "PeerTimeoutError",
]


class SecNDPError(Exception):
    """Base class for all errors raised by this package."""


class VerificationError(SecNDPError):
    """An NDP result failed tag verification.

    Raised when the reconstructed checksum of a weighted-summation result
    does not match the retrieved (decrypted) tag - caused by a corrupted or
    forged NDP result, tampered ciphertext/tags in memory, a replayed stale
    value, or an arithmetic overflow in the ring (paper Sec. IV-F, footnote 1).
    In the hardware design this corresponds to the verification-failure
    interrupt of Sec. V-E3.
    """


class ShardVerificationError(VerificationError):
    """A single shard's tag share failed its per-shard checksum.

    The linear checksum restricted to one shard's row partition is itself
    an exact identity, so checking every :class:`PartialSumShare` before
    ring-combining localises a failure to the shard that produced it —
    the publicly-identifiable-abort property the cluster tier's blame
    assignment builds on.  ``shard`` names the offending shard (a worker
    id or node name) and ``queries`` lists the batch-local query indices
    whose shares failed.
    """

    def __init__(self, message: str, shard=None, queries=()):
        super().__init__(message)
        self.shard = shard
        self.queries = tuple(queries)


class VersionReuseError(SecNDPError):
    """A version number would be reused for the same address.

    Counter-mode security collapses if one (address, version) pair encrypts
    two different plaintexts (Sec. III-B); the software version manager
    refuses to do so.
    """


class VersionBudgetError(SecNDPError):
    """The enclave exceeded its configured version-number budget.

    The evaluation assumes enclave software manages at most 64 version
    numbers (Sec. VI-A); exceeding the budget means re-encryption under a
    fresh key is required.
    """


class ConfigurationError(SecNDPError, ValueError):
    """Invalid or inconsistent simulation/scheme configuration.

    Also a :class:`ValueError`: misconfiguration and shape errors were
    historically raised bare, so callers that catch ``ValueError`` keep
    working while new callers can catch the :class:`SecNDPError`
    hierarchy.
    """


class OverloadedError(SecNDPError):
    """The serving front-end shed this request (admission control).

    Raised client-side when a query receives a typed ``overloaded``
    response: the scheduler's pending queue is at capacity or the
    SLO-burn admission gate is rejecting new work (DESIGN.md Sec. 15).
    The request was never admitted, so retrying after backoff is safe.
    """


class ServerClosedError(SecNDPError):
    """The serving front-end is draining or closed.

    Raised client-side for a typed ``shutting_down`` response (the
    server accepted the connection but is completing in-flight batches
    and rejecting new work) or when the connection drops before a
    response arrives.
    """


class PeerTimeoutError(SecNDPError):
    """A peer (server or cluster node) missed its liveness deadline.

    Raised client-side when a request or heartbeat gets no response frame
    within the configured timeout (``SECNDP_HEARTBEAT_TIMEOUT`` /
    ``SECNDP_TASK_TIMEOUT``-style config).  The peer may be slow, dead or
    partitioned; the cluster tier treats it as a blameable liveness fault
    and fails over to a replica or the trusted recompute path.
    """


class RecoveryExhaustedError(SecNDPError):
    """Every rung of the recovery ladder failed for a query.

    A verification failure persisted through retries and the trusted
    non-NDP recompute could not repair the corrupted rows (no retained
    plaintext).  Recovering requires restoring the region from a trusted
    source and re-encrypting it (paper Sec. V-A / V-E3).
    """
