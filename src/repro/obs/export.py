"""Prometheus text exposition + human-readable telemetry reports.

:func:`to_prometheus` renders a metrics snapshot (and optionally the
security-event counts) in the Prometheus text exposition format v0.0.4:
counters become ``secndp_<name>_total``, gauges ``secndp_<name>``, and
timer histograms full ``_bucket{le=...}`` / ``_sum`` / ``_count``
families in **seconds** (Prometheus base-unit convention; the registry
records nanoseconds).  The ``le`` bounds come straight from the
log-histogram bucket edges, so a scraper sees the same bounded-error
distribution the in-process percentiles use.

:func:`validate_prometheus_text` is the strict line-level checker the CI
exporter smoke job runs — it accepts exactly the grammar we emit (HELP /
TYPE comments, sample lines with optional labels) and raises
``ValueError`` with a line number on the first violation.

:func:`format_report` is the human summary behind
``python -m repro obs report``: percentile tables, counter/gauge dumps,
SLO budget status and security-event counts in one terminal-width text
block.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence

from .hist import LogHistogram

__all__ = ["to_prometheus", "validate_prometheus_text", "format_report"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_VALUE_OK = re.compile(r"^[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf|NaN)$")


def _sanitize(name: str) -> str:
    """Dotted registry name -> Prometheus metric name component."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(out):
        out = "_" + out
    return out


def _timer_histogram(name: str, stats: dict) -> LogHistogram:
    return LogHistogram.from_dict(
        {
            "count": stats.get("count", 0),
            "total": stats.get("total_ns", 0),
            "min": stats.get("min_ns", 0),
            "max": stats.get("max_ns", 0),
            "buckets": stats.get("buckets", {}),
        }
    )


def to_prometheus(
    snap: dict,
    event_counts: Optional[Dict[str, int]] = None,
    prefix: str = "secndp",
) -> str:
    """Render a :func:`repro.obs.snapshot` as Prometheus exposition text.

    Timer histograms need the snapshot captured with
    ``include_samples=True``; without buckets only the ``_sum`` /
    ``_count`` series are emitted for that timer.
    """
    lines: List[str] = []

    # ``serve.response.<status>`` / ``cluster.dispatch.<outcome>``
    # counters collapse into labeled families so dashboards can sum/rate
    # over statuses without knowing the vocabulary up front.
    responses: Dict[str, int] = {}
    dispatches: Dict[str, int] = {}
    for name, value in snap.get("counters", {}).items():
        if name.startswith("serve.response."):
            responses[name[len("serve.response."):]] = int(value)
            continue
        if name.startswith("cluster.dispatch."):
            dispatches[name[len("cluster.dispatch."):]] = int(value)
            continue
        metric = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# HELP {metric} Counter {name} from the repro.obs registry.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {int(value)}")

    if responses:
        metric = f"{prefix}_serve_responses_total"
        lines.append(
            f"# HELP {metric} Serving front-end responses by status "
            f"(serve.response.* counters)."
        )
        lines.append(f"# TYPE {metric} counter")
        for status, count in sorted(responses.items()):
            lines.append(f'{metric}{{status="{_sanitize(status)}"}} {count}')

    if dispatches:
        metric = f"{prefix}_cluster_dispatches_total"
        lines.append(
            f"# HELP {metric} Cluster shard dispatches by outcome "
            f"(cluster.dispatch.* counters)."
        )
        lines.append(f"# TYPE {metric} counter")
        for outcome, count in sorted(dispatches.items()):
            lines.append(f'{metric}{{outcome="{_sanitize(outcome)}"}} {count}')

    for name, value in snap.get("gauges", {}).items():
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# HELP {metric} Gauge {name} from the repro.obs registry.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(value):g}")

    for name, stats in snap.get("timers", {}).items():
        base = name[:-3] if name.endswith(".ns") else name
        metric = f"{prefix}_{_sanitize(base)}_seconds"
        lines.append(
            f"# HELP {metric} Duration histogram {name} (log-bucketed, "
            f"bounded relative error)."
        )
        lines.append(f"# TYPE {metric} histogram")
        count = int(stats.get("count", 0))
        total_s = int(stats.get("total_ns", 0)) / 1e9
        if stats.get("buckets"):
            hist = _timer_histogram(name, stats)
            for upper_ns, cum in hist.cumulative_buckets():
                lines.append(
                    f'{metric}_bucket{{le="{upper_ns / 1e9:.9g}"}} {cum}'
                )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{metric}_sum {total_s:.9g}")
        lines.append(f"{metric}_count {count}")

    if event_counts:
        metric = f"{prefix}_security_events_total"
        lines.append(
            f"# HELP {metric} Security audit events by kind (repro.obs.events)."
        )
        lines.append(f"# TYPE {metric} counter")
        for kind, count in sorted(event_counts.items()):
            lines.append(f'{metric}{{kind="{_sanitize(kind)}"}} {int(count)}')

    return "\n".join(lines) + "\n"


def validate_prometheus_text(text: str) -> int:
    """Strictly validate exposition text; return the number of samples.

    Raises ``ValueError`` naming the first offending line.  Checks:
    metric/label name grammar, label quoting, numeric sample values,
    ``# TYPE`` declared at most once per metric and before its samples,
    and histogram ``_bucket`` series carrying an ``le`` label.
    """
    samples = 0
    typed: Dict[str, str] = {}
    seen_samples: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment: {line!r}")
            name = parts[2]
            if not _NAME_OK.match(name):
                raise ValueError(f"line {lineno}: bad metric name {name!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped",
                ):
                    raise ValueError(f"line {lineno}: bad TYPE: {line!r}")
                if name in typed:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
                if name in seen_samples:
                    raise ValueError(f"line {lineno}: TYPE after samples of {name}")
                typed[name] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels = match.group("labels")
        label_names = []
        if labels:
            for pair in _split_labels(labels, lineno):
                if not _LABEL_PAIR.match(pair):
                    raise ValueError(f"line {lineno}: bad label {pair!r}")
                label_names.append(pair.split("=", 1)[0])
        if not _VALUE_OK.match(match.group("value")):
            raise ValueError(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            )
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base in typed and typed[base] == "histogram":
            if name == base + "_bucket" and "le" not in label_names:
                raise ValueError(f"line {lineno}: histogram bucket without le")
        seen_samples.add(base)
        seen_samples.add(name)
        samples += 1
    return samples


def _split_labels(labels: str, lineno: int) -> List[str]:
    """Split a label body on commas outside quoted values."""
    out, buf, in_quote, escaped = [], [], False, False
    for ch in labels:
        if escaped:
            buf.append(ch)
            escaped = False
            continue
        if ch == "\\" and in_quote:
            buf.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quote = not in_quote
            buf.append(ch)
            continue
        if ch == "," and not in_quote:
            out.append("".join(buf).strip())
            buf = []
            continue
        buf.append(ch)
    if in_quote:
        raise ValueError(f"line {lineno}: unterminated label quote")
    if buf:
        out.append("".join(buf).strip())
    return [part for part in out if part]


# -- human report --------------------------------------------------------------

def _fmt_us(ns: float) -> str:
    return f"{ns / 1e3:,.1f}"


def format_report(
    snap: dict,
    statuses: Optional[Sequence] = None,
    event_counts: Optional[Dict[str, int]] = None,
) -> str:
    """Terminal summary: percentile tables + SLO budgets + event counts.

    ``statuses`` is a list of :class:`repro.obs.slo.SloStatus`;
    ``event_counts`` a ``{kind: count}`` dict from
    :meth:`repro.obs.events.EventLog.counts_by_kind`.
    """
    lines: List[str] = ["== telemetry report =="]

    timers = snap.get("timers", {})
    if timers:
        lines.append("")
        lines.append("latency (us):")
        width = max(len(n) for n in timers)
        header = (
            f"  {'timer'.ljust(width)}  {'count':>8}  {'mean':>10}  "
            f"{'p50':>10}  {'p95':>10}  {'p99':>10}  {'max':>10}"
        )
        lines.append(header)
        for name, t in timers.items():
            lines.append(
                f"  {name.ljust(width)}  {t['count']:>8}  "
                f"{_fmt_us(t.get('mean_ns', 0)):>10}  "
                f"{_fmt_us(t['p50_ns']):>10}  {_fmt_us(t['p95_ns']):>10}  "
                f"{_fmt_us(t.get('p99_ns', t['p95_ns'])):>10}  "
                f"{_fmt_us(t['max_ns']):>10}"
            )

    counters = snap.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name, value in counters.items():
            lines.append(f"  {name.ljust(width)}  {value}")

    gauges = snap.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name.ljust(width)}  {value:g}")

    if statuses is not None:
        lines.append("")
        lines.append("slo:")
        if statuses:
            for status in statuses:
                lines.append(f"  {status.describe()}")
            worst = max(s.state for s in statuses)
            verdict = {0: "healthy", 1: "DEGRADED", 2: "CRITICAL"}[worst]
            lines.append(f"  overall: {verdict} (slo.degraded={worst})")
        else:
            lines.append("  (no objectives configured)")

    if event_counts is not None:
        lines.append("")
        lines.append("security events:")
        if event_counts:
            width = max(len(k) for k in event_counts)
            for kind, count in sorted(event_counts.items()):
                lines.append(f"  {kind.ljust(width)}  {count}")
        else:
            lines.append("  (none recorded)")

    if len(lines) == 1:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)
