"""Observability layer: metrics registry + phase tracing.

One import point for every instrumented layer::

    from .. import obs

    obs.inc("otp.cache.hit", hits)          # counter (no-op when disabled)
    with obs.span("protocol.verify"):       # timer + optional trace event
        ...

Enable with :func:`enable` (metrics), :func:`enable_tracing` (Chrome
trace events), the CLI ``--stats`` / ``--trace`` flags, or
``SECNDP_METRICS=1`` in the environment.  DESIGN.md Sec. 9 documents
the metric naming scheme and the trace-reading workflow.
"""

from .metrics import (
    MetricsRegistry,
    disable,
    enable,
    enabled,
    format_snapshot,
    gauge,
    get_registry,
    inc,
    merge,
    observe_ns,
    reset,
    snapshot,
)
from .tracing import (
    MAX_TRACE_EVENTS,
    clear_trace,
    disable_tracing,
    enable_tracing,
    ingest_events,
    set_worker_label,
    span,
    trace_events,
    traced,
    tracing_enabled,
    worker_label,
    write_trace,
)

__all__ = [
    "MetricsRegistry",
    "enable",
    "disable",
    "enabled",
    "get_registry",
    "reset",
    "inc",
    "gauge",
    "observe_ns",
    "snapshot",
    "merge",
    "format_snapshot",
    "span",
    "set_worker_label",
    "worker_label",
    "ingest_events",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "trace_events",
    "clear_trace",
    "write_trace",
    "MAX_TRACE_EVENTS",
]
