"""Observability layer: metrics, tracing, SLOs, and security auditing.

One import point for every instrumented layer::

    from .. import obs

    obs.inc("otp.cache.hit", hits)          # counter (no-op when disabled)
    with obs.span("protocol.verify"):       # timer + optional trace event
        ...
    obs.emit_event(obs.QUARANTINE, table="t", rows=[3])  # audit record

Four sub-layers, each independently gated and each a no-op by default:

* :mod:`.metrics` — counters/gauges + log-bucketed timer histograms
  (:mod:`.hist`) that merge exactly across worker processes.
* :mod:`.tracing` — hierarchical phase spans with Chrome trace export.
* :mod:`.events` — typed JSONL security-event audit log (verification
  failures, recovery-ladder steps, quarantines, re-encryptions, pool
  lifecycle) with row/version/worker attribution.
* :mod:`.slo` / :mod:`.export` — objectives with error budgets and burn
  rates over snapshots, a Prometheus text exporter, and the human
  report behind ``python -m repro obs report``.

Enable with :func:`enable` (metrics), :func:`enable_tracing`,
:func:`enable_events`, the CLI ``--stats`` / ``--trace`` / ``--events``
flags, or ``SECNDP_METRICS=1`` / ``SECNDP_EVENTS=...`` in the
environment.  DESIGN.md Sec. 9 documents metric naming; Sec. 13 the
histogram/SLO/event architecture.
"""

from . import events as _events_mod
from .events import (
    CLUSTER_DRAIN,
    CLUSTER_START,
    EVENT_KINDS,
    NODE_BLAME,
    NODE_DEAD,
    NODE_QUARANTINE,
    NODE_RESHARD,
    NODE_TIMEOUT,
    POOL_DEGRADE,
    POOL_RESPAWN,
    QUARANTINE,
    QUARANTINE_HIT,
    RECOVERY_DELEGATION,
    RECOVERY_EXHAUSTED,
    RECOVERY_FALLBACK,
    RECOVERY_REPAIR,
    RECOVERY_RETRY,
    REENCRYPT,
    SERVE_DRAIN,
    SERVE_OVERLOAD,
    SERVE_START,
    STALE_ARENA,
    TASK_FAILURE,
    VERIFY_FAILURE,
    EventLog,
    SecurityEvent,
    disable_events,
    enable_events,
    event_log,
    events_enabled,
    read_events,
)
from .export import format_report, to_prometheus, validate_prometheus_text
from .hist import PRECISION_BITS, RELATIVE_ERROR, LogHistogram
from .metrics import (
    MetricsRegistry,
    disable,
    enable,
    enabled,
    format_snapshot,
    gauge,
    get_registry,
    inc,
    merge,
    observe_ns,
    reset,
    snapshot,
)
from .slo import SloSpec, SloStatus, SloTracker, parse_slo_specs
from .tracing import (
    MAX_TRACE_EVENTS,
    clear_trace,
    disable_tracing,
    enable_tracing,
    ingest_events,
    set_worker_label,
    span,
    trace_dropped,
    trace_events,
    traced,
    tracing_enabled,
    worker_label,
    write_trace,
)

#: Alias so call sites read ``obs.emit_event(...)`` without shadowing
#: other modules' ``emit`` helpers.
emit_event = _events_mod.emit

__all__ = [
    # metrics
    "MetricsRegistry",
    "enable",
    "disable",
    "enabled",
    "get_registry",
    "reset",
    "inc",
    "gauge",
    "observe_ns",
    "snapshot",
    "merge",
    "format_snapshot",
    # histograms
    "LogHistogram",
    "PRECISION_BITS",
    "RELATIVE_ERROR",
    # tracing
    "span",
    "set_worker_label",
    "worker_label",
    "ingest_events",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "trace_events",
    "trace_dropped",
    "clear_trace",
    "write_trace",
    "MAX_TRACE_EVENTS",
    # events
    "SecurityEvent",
    "EventLog",
    "emit_event",
    "enable_events",
    "disable_events",
    "events_enabled",
    "event_log",
    "read_events",
    "EVENT_KINDS",
    "VERIFY_FAILURE",
    "RECOVERY_RETRY",
    "RECOVERY_FALLBACK",
    "RECOVERY_REPAIR",
    "RECOVERY_EXHAUSTED",
    "RECOVERY_DELEGATION",
    "QUARANTINE",
    "QUARANTINE_HIT",
    "REENCRYPT",
    "POOL_RESPAWN",
    "POOL_DEGRADE",
    "STALE_ARENA",
    "TASK_FAILURE",
    "SERVE_START",
    "SERVE_DRAIN",
    "SERVE_OVERLOAD",
    "NODE_BLAME",
    "NODE_QUARANTINE",
    "NODE_RESHARD",
    "NODE_TIMEOUT",
    "NODE_DEAD",
    "CLUSTER_START",
    "CLUSTER_DRAIN",
    # slo + export
    "SloSpec",
    "SloStatus",
    "SloTracker",
    "parse_slo_specs",
    "to_prometheus",
    "validate_prometheus_text",
    "format_report",
]
