"""Process-wide metrics registry: counters, gauges, timer histograms.

Every instrumented layer of the reproduction (OTP cache, limb kernels,
protocol phases, NDP/memsim traffic, harness experiments) reports into
one :class:`MetricsRegistry` addressed by dotted metric names
(``otp.cache.hit``, ``limb.dot.tier2``, ``protocol.verify.ns`` — the
full naming scheme is DESIGN.md Sec. 9).

The module-level :data:`ENABLED` flag makes the whole layer opt-in:
every public recording helper (:func:`inc`, :func:`gauge`,
:func:`observe_ns`) checks the flag first and returns immediately when
metrics are off, so instrumented call sites cost one predictable branch
on the hot paths.  Enable via :func:`enable`, the CLI ``--stats`` /
``--trace`` flags, or the ``SECNDP_METRICS=1`` environment variable.

Timer metrics are log-bucketed histograms (:mod:`repro.obs.hist`):
exact count/total/min/max plus sparse buckets with bounded relative
error, so percentiles stay correct on arbitrarily long runs and merge
*exactly* across worker processes (DESIGN.md Sec. 13).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Union

from .hist import RELATIVE_ERROR, LogHistogram

__all__ = [
    "MetricsRegistry",
    "ENABLED",
    "enable",
    "disable",
    "enabled",
    "get_registry",
    "reset",
    "inc",
    "gauge",
    "observe_ns",
    "snapshot",
    "merge",
    "format_snapshot",
    "RELATIVE_ERROR",
]


class _Timer:
    """One ns-resolution duration series over a mergeable log histogram."""

    __slots__ = ("hist",)

    def __init__(self) -> None:
        self.hist = LogHistogram()

    def observe(self, ns: int) -> None:
        self.hist.observe(ns)

    def stats(self, include_dist: bool = False) -> Dict[str, Union[int, float, dict]]:
        h = self.hist
        out: Dict[str, Union[int, float, dict]] = {
            "count": h.count,
            "total_ns": h.total,
            "mean_ns": h.mean,
            "p50_ns": h.percentile(0.50),
            "p95_ns": h.percentile(0.95),
            "p99_ns": h.percentile(0.99),
            "max_ns": h.max,
        }
        if include_dist:
            out["min_ns"] = h.min
            out["buckets"] = {str(i): n for i, n in sorted(h.buckets.items())}
        return out

    def absorb(self, stats: dict) -> None:
        """Fold another timer's snapshot into this one (cross-process merge).

        When the snapshot carries the histogram ``buckets``
        (``snapshot(include_samples=True)``), the merge is *exact*: the
        result is bit-identical to a single histogram that saw every
        observation.  Aggregate-only snapshots still merge their exact
        count/total/max (their distribution cannot contribute to
        percentiles).  Legacy ``samples`` payloads (pre-histogram
        snapshots) are re-observed individually.
        """
        h = self.hist
        buckets = stats.get("buckets")
        if buckets is not None:
            h.merge_dict(
                {
                    "count": stats.get("count", 0),
                    "total": stats.get("total_ns", 0),
                    "min": stats.get("min_ns", stats.get("max_ns", 0)),
                    "max": stats.get("max_ns", 0),
                    "buckets": buckets,
                }
            )
            return
        samples = stats.get("samples")
        if samples is not None:
            for ns in samples:
                h.observe(int(ns))
            extra = int(stats.get("count", 0)) - len(samples)
            if extra > 0:
                h.count += extra
            h.total += int(stats.get("total_ns", 0)) - sum(int(s) for s in samples)
            if int(stats.get("max_ns", 0)) > h.max:
                h.max = int(stats.get("max_ns", 0))
            return
        h.count += int(stats.get("count", 0))
        h.total += int(stats.get("total_ns", 0))
        if int(stats.get("max_ns", 0)) > h.max:
            h.max = int(stats.get("max_ns", 0))


class MetricsRegistry:
    """Thread-safe store of dotted-name counters, gauges and timers.

    The registry itself is always willing to record; the cheap global
    on/off gate lives in the module-level helpers so disabled call sites
    never reach these methods.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, _Timer] = {}

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe_ns(self, name: str, ns: int) -> None:
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = _Timer()
            timer.observe(int(ns))

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self, include_samples: bool = False) -> dict:
        """Plain-dict view: ``{"counters": ..., "gauges": ..., "timers": ...}``.

        Timer entries expose ``count / total_ns / mean_ns / p50_ns /
        p95_ns / p99_ns / max_ns``.  The result is JSON-serialisable
        (and picklable) as-is, which is what lets worker processes ship
        their registries back to the parent.  ``include_samples``
        additionally attaches each timer's histogram buckets (and exact
        ``min_ns``) so :meth:`merge` reconstructs the distribution
        *exactly* across the process boundary — the parameter keeps its
        historical name; since the ring-sampled timers were replaced by
        log-bucketed histograms it ships bucket counts, not raw samples.
        """
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "timers": {
                    name: timer.stats(include_dist=include_samples)
                    for name, timer in sorted(self._timers.items())
                },
            }

    def merge(self, snap: dict) -> None:
        """Aggregate a :meth:`snapshot` from another registry into this one.

        Counters add, gauges take the incoming value (last write wins),
        timers fold exact aggregates and merge histogram buckets when
        the snapshot carries them.  This is how per-worker registries
        drain into the parent process instead of vanishing with the
        worker (`repro.parallel` calls it on every task return).
        """
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in snap.get("gauges", {}).items():
                self._gauges[name] = value
            for name, stats in snap.get("timers", {}).items():
                timer = self._timers.get(name)
                if timer is None:
                    timer = self._timers[name] = _Timer()
                timer.absorb(stats)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


#: Global on/off gate, checked by every recording helper before touching
#: the registry.  Keep reads as ``metrics.ENABLED`` (module attribute) so
#: toggling at runtime is seen by all call sites.
ENABLED = os.environ.get("SECNDP_METRICS", "").lower() in ("1", "true", "yes", "on")

_REGISTRY = MetricsRegistry()


def enable() -> None:
    """Turn metric recording on (idempotent)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn metric recording off; existing data is kept until :func:`reset`."""
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    return ENABLED


def get_registry() -> MetricsRegistry:
    """The process-wide registry all instrumented layers report into."""
    return _REGISTRY


def reset() -> None:
    _REGISTRY.reset()


def inc(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` (no-op while metrics are disabled)."""
    if ENABLED:
        _REGISTRY.inc(name, n)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op while metrics are disabled)."""
    if ENABLED:
        _REGISTRY.gauge(name, value)


def observe_ns(name: str, ns: int) -> None:
    """Record one duration sample (no-op while metrics are disabled)."""
    if ENABLED:
        _REGISTRY.observe_ns(name, ns)


def snapshot(include_samples: bool = False) -> dict:
    return _REGISTRY.snapshot(include_samples=include_samples)


def merge(snap: dict) -> None:
    """Merge a snapshot (e.g. from a worker process) into the global registry.

    Unlike the recording helpers this is *not* gated on :data:`ENABLED`:
    a drain happens once per parallel task, not on a hot path, and the
    caller typically captured the snapshot while metrics were enabled in
    the worker even if the parent toggled them since.
    """
    _REGISTRY.merge(snap)


def format_snapshot(snap: dict) -> str:
    """Human-readable rendering of a :meth:`MetricsRegistry.snapshot`."""
    lines: list = []
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    timers = snap.get("timers", {})
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for name, value in counters.items():
            lines.append(f"  {name.ljust(width)}  {value}")
    if gauges:
        lines.append("gauges:")
        width = max(len(k) for k in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name.ljust(width)}  {value:g}")
    if timers:
        lines.append("timers (us):")
        width = max(len(k) for k in timers)
        for name, t in timers.items():
            lines.append(
                f"  {name.ljust(width)}  count={t['count']}"
                f"  total={t['total_ns'] / 1e3:.1f}"
                f"  p50={t['p50_ns'] / 1e3:.1f}"
                f"  p95={t['p95_ns'] / 1e3:.1f}"
                f"  p99={t.get('p99_ns', t['p95_ns']) / 1e3:.1f}"
                f"  max={t['max_ns'] / 1e3:.1f}"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
