"""Service-level objectives over metric snapshots: budgets and burn rates.

The ROADMAP's admission-control direction needs one signal: *is the
recovery ladder pushing tail latency (or the verification failure rate)
past what we promised*.  This module turns metric snapshots
(:func:`repro.obs.snapshot`) into that signal.

An objective is a one-line spec string::

    sls.batch.p99 < 5ms            # latency: p99 of the sls.batch.ns timer
    sls.batch.p99 < 5ms @ 0.05     # ... allowing 5% of requests over 5ms
    verify.failure_rate < 0.001    # ratio: detections per served query
    recovery.detections/sls.queries < 0.01   # explicit counter ratio

Two kinds of objective:

* **Latency** (``<timer>.p<Q> < <duration>``): evaluated against the
  named timer's log-bucketed histogram.  The *error budget* is the
  fraction of observations allowed above the threshold (default
  ``0.01``); the **burn rate** is ``bad_fraction / budget`` — 1.0 means
  the budget is being consumed exactly as provisioned, above 1.0 the
  objective is degrading, and sustained burn ≥ ``BURN_CRITICAL`` is the
  page-worthy fast burn.
* **Ratio** (``<numerator>/<denominator> < <bound>`` or a named alias
  from :data:`RATIO_ALIASES`): counters summed with ``+`` on either
  side; the bound doubles as the budget, so burn rate is simply
  ``value / bound``.

:class:`SloTracker` evaluates a set of objectives against one snapshot
and publishes the worst state as the ``slo.degraded`` gauge
(0 = healthy, 1 = burning budget faster than provisioned,
2 = fast burn ≥ ``BURN_CRITICAL``) — the hook a future admission
controller keys off (DESIGN.md Sec. 13).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from . import metrics
from .hist import LogHistogram

__all__ = [
    "SloSpec",
    "SloStatus",
    "SloTracker",
    "parse_slo_specs",
    "RATIO_ALIASES",
    "DEFAULT_LATENCY_BUDGET",
    "BURN_CRITICAL",
]

#: Default latency error budget: fraction of observations allowed above
#: the threshold when the spec gives no ``@ budget`` clause.
DEFAULT_LATENCY_BUDGET = 0.01

#: Burn rate at which an objective is *critically* degraded (fast burn:
#: the budget is being consumed at >= 4x the provisioned rate, the
#: classic multi-window paging threshold).
BURN_CRITICAL = 4.0

#: Named counter ratios so operators can write ``verify.failure_rate``
#: instead of spelling the counter arithmetic.  Each maps to
#: (numerator counters, denominator counters); sums on both sides.
RATIO_ALIASES: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    # Verified-read rejections per served SLS query (single + batch).
    "verify.failure_rate": (
        ("recovery.detections",),
        ("sls.queries", "sls.batch.queries"),
    ),
    # Ladder escalations past the cheap retry rung, per served query.
    "recovery.fallback_rate": (
        ("recovery.fallbacks",),
        ("sls.queries", "sls.batch.queries"),
    ),
    # Chaos-harness ground truth: corrupted results that reached a caller.
    "chaos.exposure_rate": (
        ("chaos.exposed",),
        ("chaos.queries",),
    ),
    # Serving front-end: requests shed by admission control (queue cap
    # or SLO burn) per arriving request.
    "serve.shed_rate": (
        ("serve.shed",),
        ("serve.requests",),
    ),
    # Serving front-end: admitted requests that resolved to a typed
    # error (verification failure, exhausted recovery) per arrival.
    "serve.error_rate": (
        ("serve.errors",),
        ("serve.requests",),
    ),
    # Cluster tier: shard dispatches whose tag share failed its own
    # per-shard check (blame assigned to a node), per dispatch.
    "cluster.blame_rate": (
        ("cluster.blame",),
        ("cluster.dispatches",),
    ),
    # Cluster tier: dispatches answered by a replica or the trusted
    # recompute path instead of the assigned node, per dispatch.
    "cluster.failover_rate": (
        ("cluster.failovers",),
        ("cluster.dispatches",),
    ),
    # Cluster tier: nodes quarantined per dispatch (sustained nonzero
    # means the cluster is shrinking under byzantine pressure).
    "cluster.quarantine_rate": (
        ("cluster.quarantines",),
        ("cluster.dispatches",),
    ),
}

_UNIT_NS = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000}

_LATENCY_TARGET = re.compile(r"^(?P<metric>[\w.]+)\.p(?P<q>\d{1,2}(?:\.\d+)?)$")
_THRESHOLD = re.compile(r"^(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>ns|us|ms|s|%)?$")


@dataclass(frozen=True)
class SloSpec:
    """One parsed objective.  Build via :meth:`parse`."""

    raw: str
    kind: str                       # "latency" | "ratio"
    name: str                       # display name, e.g. "sls.batch.p99"
    threshold: float                # ns for latency, plain ratio otherwise
    budget: float                   # allowed bad fraction / allowed ratio
    timer: Optional[str] = None     # latency: timer metric name (".ns")
    quantile: float = 0.0           # latency: e.g. 0.99
    numerator: Tuple[str, ...] = ()     # ratio: counters summed
    denominator: Tuple[str, ...] = ()   # ratio: counters summed

    @classmethod
    def parse(cls, spec: str) -> "SloSpec":
        """Parse ``target < threshold [@ budget]`` (see module docstring)."""
        raw = spec.strip()
        body, budget_part = raw, None
        if "@" in raw:
            body, budget_part = (part.strip() for part in raw.split("@", 1))
        for op in ("<=", "<"):
            if op in body:
                target, bound = (part.strip() for part in body.split(op, 1))
                break
        else:
            raise ValueError(f"SLO spec {raw!r}: expected 'target < threshold'")
        if not target or not bound:
            raise ValueError(f"SLO spec {raw!r}: empty target or threshold")

        match = _THRESHOLD.match(bound)
        if match is None:
            raise ValueError(f"SLO spec {raw!r}: bad threshold {bound!r}")
        value = float(match.group("num"))
        unit = match.group("unit")

        latency = _LATENCY_TARGET.match(target)
        if latency is not None:
            quantile = float(latency.group("q")) / 100.0
            if not 0.0 < quantile < 1.0:
                raise ValueError(f"SLO spec {raw!r}: quantile out of range")
            if unit == "%":
                raise ValueError(f"SLO spec {raw!r}: '%' is not a duration")
            threshold_ns = value * _UNIT_NS[unit or "ns"]
            budget = DEFAULT_LATENCY_BUDGET
            if budget_part is not None:
                budget = _parse_fraction(raw, budget_part)
            return cls(
                raw=raw,
                kind="latency",
                name=target,
                threshold=threshold_ns,
                budget=budget,
                timer=f"{latency.group('metric')}.ns",
                quantile=quantile,
            )

        # Ratio objective: alias or explicit num/den counter expression.
        if unit == "%":
            value /= 100.0
        elif unit is not None:
            raise ValueError(f"SLO spec {raw!r}: duration unit on a ratio")
        if budget_part is not None:
            raise ValueError(f"SLO spec {raw!r}: ratio bound is its own budget")
        if target in RATIO_ALIASES:
            num, den = RATIO_ALIASES[target]
        elif "/" in target:
            num_part, den_part = (part.strip() for part in target.split("/", 1))
            num = tuple(c.strip() for c in num_part.split("+") if c.strip())
            den = tuple(c.strip() for c in den_part.split("+") if c.strip())
            if not num or not den:
                raise ValueError(f"SLO spec {raw!r}: empty ratio side")
        else:
            raise ValueError(
                f"SLO spec {raw!r}: unknown ratio {target!r} "
                f"(aliases: {', '.join(sorted(RATIO_ALIASES))}; "
                f"or use 'counter/counter', or '<timer>.pNN' for latency)"
            )
        return cls(
            raw=raw,
            kind="ratio",
            name=target,
            threshold=value,
            budget=value,
            numerator=num,
            denominator=den,
        )


def _parse_fraction(raw: str, text: str) -> float:
    match = _THRESHOLD.match(text.strip())
    if match is None or match.group("unit") not in (None, "%"):
        raise ValueError(f"SLO spec {raw!r}: bad budget {text!r}")
    value = float(match.group("num"))
    if match.group("unit") == "%":
        value /= 100.0
    if not 0.0 < value <= 1.0:
        raise ValueError(f"SLO spec {raw!r}: budget must be in (0, 1]")
    return value


@dataclass
class SloStatus:
    """Evaluation of one objective against one snapshot."""

    spec: SloSpec
    value: float            # observed percentile (ns) or ratio
    bad_fraction: float     # fraction of budget-relevant bad events
    burn_rate: float        # bad_fraction / budget (>=1: degrading)
    count: int              # observations (latency) / denominator (ratio)
    met: bool               # burn_rate <= 1
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def state(self) -> int:
        """0 healthy, 1 degraded (burn > 1), 2 critical (fast burn)."""
        if self.burn_rate > BURN_CRITICAL:
            return 2
        if not self.met:
            return 1
        return 0

    def describe(self) -> str:
        spec = self.spec
        if spec.kind == "latency":
            observed = _fmt_ns(self.value)
            bound = _fmt_ns(spec.threshold)
            return (
                f"{spec.name} = {observed} (target < {bound}, "
                f"{self.bad_fraction:.3%} over, budget {spec.budget:.2%}, "
                f"burn {self.burn_rate:.2f}x) "
                f"[{_STATE_NAMES[self.state]}]"
            )
        return (
            f"{spec.name} = {self.value:.5f} (target < {spec.threshold:g}, "
            f"burn {self.burn_rate:.2f}x, n={self.count}) "
            f"[{_STATE_NAMES[self.state]}]"
        )


_STATE_NAMES = {0: "ok", 1: "degraded", 2: "critical"}


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


class SloTracker:
    """Evaluate a set of objectives and publish the degradation gauge."""

    def __init__(self, specs: Sequence[Union[SloSpec, str]]):
        self.specs: List[SloSpec] = [
            spec if isinstance(spec, SloSpec) else SloSpec.parse(spec)
            for spec in specs
        ]

    def evaluate(self, snap: dict, publish: bool = True) -> List[SloStatus]:
        """Evaluate every objective against a metrics snapshot.

        ``snap`` is a :func:`repro.obs.snapshot` dict; latency
        objectives want it captured with ``include_samples=True`` so the
        histogram buckets are present (without them the bad fraction
        falls back to the coarse "is the reported percentile over the
        threshold" 0/1 signal).  ``publish`` writes the worst state to
        the ``slo.degraded`` gauge — directly to the registry, bypassing
        the on/off gate, because the evaluation result *is* the product
        here, not optional instrumentation.
        """
        statuses = [self._evaluate_one(spec, snap) for spec in self.specs]
        if publish:
            worst = max((s.state for s in statuses), default=0)
            metrics.get_registry().gauge("slo.degraded", float(worst))
        return statuses

    def _evaluate_one(self, spec: SloSpec, snap: dict) -> SloStatus:
        if spec.kind == "latency":
            return self._evaluate_latency(spec, snap)
        return self._evaluate_ratio(spec, snap)

    @staticmethod
    def _evaluate_latency(spec: SloSpec, snap: dict) -> SloStatus:
        stats = snap.get("timers", {}).get(spec.timer)
        if not stats or not stats.get("count"):
            return SloStatus(
                spec=spec, value=0.0, bad_fraction=0.0, burn_rate=0.0,
                count=0, met=True, detail={"no_data": 1.0},
            )
        buckets = stats.get("buckets")
        if buckets is not None:
            hist = LogHistogram.from_dict(
                {
                    "count": stats.get("count", 0),
                    "total": stats.get("total_ns", 0),
                    "min": stats.get("min_ns", 0),
                    "max": stats.get("max_ns", 0),
                    "buckets": buckets,
                }
            )
            value = float(hist.percentile(spec.quantile))
            bad = hist.fraction_above(spec.threshold)
        else:
            key = f"p{spec.quantile * 100:g}_ns"
            value = float(stats.get(key, stats.get("p99_ns", stats["max_ns"])))
            bad = spec.budget if value > spec.threshold else 0.0
        burn = bad / spec.budget if spec.budget else 0.0
        return SloStatus(
            spec=spec,
            value=value,
            bad_fraction=bad,
            burn_rate=burn,
            count=int(stats["count"]),
            met=burn <= 1.0,
            detail={"threshold_ns": spec.threshold, "mean_ns": stats.get("mean_ns", 0.0)},
        )

    @staticmethod
    def _evaluate_ratio(spec: SloSpec, snap: dict) -> SloStatus:
        counters = snap.get("counters", {})
        num = sum(int(counters.get(name, 0)) for name in spec.numerator)
        den = sum(int(counters.get(name, 0)) for name in spec.denominator)
        value = num / den if den else 0.0
        burn = value / spec.threshold if spec.threshold else 0.0
        return SloStatus(
            spec=spec,
            value=value,
            bad_fraction=value,
            burn_rate=burn,
            count=den,
            met=burn <= 1.0,
            detail={"numerator": float(num), "denominator": float(den)},
        )


def parse_slo_specs(values: Sequence[str]) -> List[SloSpec]:
    """Parse CLI ``--slo`` values (each may be comma-separated)."""
    specs: List[SloSpec] = []
    for value in values:
        for part in value.split(","):
            part = part.strip()
            if part:
                specs.append(SloSpec.parse(part))
    return specs
