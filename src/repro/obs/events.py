"""Structured security-event audit log (JSONL), off by default.

The paper's verification-failure interrupt (Sec. V-E3) and the recovery
ladder built on it (DESIGN.md Sec. 11) are *security events*: evidence
that untrusted memory misbehaved and a record of what the enclave did
about it.  This module gives every such step a typed, attributable
audit record:

* :class:`SecurityEvent` — one frozen record: monotonically increasing
  ``seq``, wall-clock ``ts``, a ``kind`` from the constants below, the
  affected ``table`` / ``rows`` / ciphertext ``version``, the emitting
  ``worker`` (the `repro.obs.tracing` worker label) and ``pid``, plus a
  free-form ``details`` dict.
* :class:`EventLog` — a thread-safe bounded in-memory ring with an
  optional append-only JSONL sink.  Every emitted event is written (and
  flushed) as one JSON line, so the file doubles as a durable journal:
  :func:`read_events` loads it back and
  :meth:`repro.faults.recovery.RecoveryLog.replay_events` rebuilds
  quarantine/repair state from it on restart.

Like metrics and tracing, the layer is opt-in: the module-level
:func:`emit` helper checks one module attribute and returns immediately
when no log is installed, so instrumented call sites (all of which sit
on failure/recovery paths, never on the healthy hot path) cost one
branch when auditing is off.  Enable with :func:`enable_events`, the
CLI ``--events PATH`` flag, or ``SECNDP_EVENTS`` in the environment
(``1`` for in-memory only, anything else is treated as a sink path).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from . import tracing

__all__ = [
    "SecurityEvent",
    "EventLog",
    "enable_events",
    "disable_events",
    "events_enabled",
    "event_log",
    "emit",
    "read_events",
    "ENV_EVENTS",
    # event kinds
    "VERIFY_FAILURE",
    "RECOVERY_RETRY",
    "RECOVERY_FALLBACK",
    "RECOVERY_REPAIR",
    "RECOVERY_EXHAUSTED",
    "RECOVERY_DELEGATION",
    "QUARANTINE",
    "QUARANTINE_HIT",
    "REENCRYPT",
    "POOL_RESPAWN",
    "POOL_DEGRADE",
    "STALE_ARENA",
    "TASK_FAILURE",
    "SERVE_START",
    "SERVE_DRAIN",
    "SERVE_OVERLOAD",
    "NODE_BLAME",
    "NODE_QUARANTINE",
    "NODE_RESHARD",
    "NODE_TIMEOUT",
    "NODE_DEAD",
    "CLUSTER_START",
    "CLUSTER_DRAIN",
    "EVENT_KINDS",
]

ENV_EVENTS = "SECNDP_EVENTS"

# -- event kinds (the typed vocabulary; DESIGN.md Sec. 13) ---------------------

VERIFY_FAILURE = "verify_failure"          #: a tag check rejected a result
RECOVERY_RETRY = "recovery_retry"          #: ladder rung 1: re-offload
RECOVERY_FALLBACK = "recovery_fallback"    #: rung 2: trusted non-NDP recompute
RECOVERY_REPAIR = "recovery_repair"        #: rung 3: plaintext repair
RECOVERY_EXHAUSTED = "recovery_exhausted"  #: ladder failed; error propagated
RECOVERY_DELEGATION = "recovery_delegation"  #: engine handed a batch to the store ladder
QUARANTINE = "quarantine"                  #: rows marked served-trusted-only
QUARANTINE_HIT = "quarantine_hit"          #: query short-circuited by quarantine
REENCRYPT = "reencrypt"                    #: rung 4: region re-keyed, versions bumped
POOL_RESPAWN = "pool_respawn"              #: parallel pool torn down + rebuilt
POOL_DEGRADE = "pool_degrade"              #: engine gave up on the pool for good
STALE_ARENA = "stale_arena"                #: shared arena behind the live version
TASK_FAILURE = "task_failure"              #: worker crash/hang/raise failed a dispatch
SERVE_START = "serve_start"                #: serving front-end began accepting
SERVE_DRAIN = "serve_drain"                #: serving front-end drained and stopped
SERVE_OVERLOAD = "serve_overload"          #: admission gate entered/left shedding
NODE_BLAME = "node_blame"                  #: a shard's tag share failed its own check
NODE_QUARANTINE = "node_quarantine"        #: a node crossed the blame threshold
NODE_RESHARD = "node_reshard"              #: a quarantined node's rows reassigned
NODE_TIMEOUT = "node_timeout"              #: a node missed its dispatch deadline
NODE_DEAD = "node_dead"                    #: a node's connection is gone for good
CLUSTER_START = "cluster_start"            #: coordinator began serving a shard map
CLUSTER_DRAIN = "cluster_drain"            #: coordinator drained and stopped

EVENT_KINDS = (
    VERIFY_FAILURE,
    RECOVERY_RETRY,
    RECOVERY_FALLBACK,
    RECOVERY_REPAIR,
    RECOVERY_EXHAUSTED,
    RECOVERY_DELEGATION,
    QUARANTINE,
    QUARANTINE_HIT,
    REENCRYPT,
    POOL_RESPAWN,
    POOL_DEGRADE,
    STALE_ARENA,
    TASK_FAILURE,
    SERVE_START,
    SERVE_DRAIN,
    SERVE_OVERLOAD,
    NODE_BLAME,
    NODE_QUARANTINE,
    NODE_RESHARD,
    NODE_TIMEOUT,
    NODE_DEAD,
    CLUSTER_START,
    CLUSTER_DRAIN,
)


@dataclass(frozen=True)
class SecurityEvent:
    """One audit record.  ``rows`` is the row-address attribution the
    multi-node blame-assignment direction (ROADMAP) builds on."""

    seq: int
    ts: float
    kind: str
    table: Optional[str] = None
    rows: Tuple[int, ...] = ()
    worker: Optional[Union[int, str]] = None
    version: Optional[int] = None
    pid: int = 0
    details: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload: Dict[str, Any] = {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
        }
        if self.table is not None:
            payload["table"] = self.table
        if self.rows:
            payload["rows"] = list(self.rows)
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.version is not None:
            payload["version"] = self.version
        if self.pid:
            payload["pid"] = self.pid
        if self.details:
            payload["details"] = self.details
        return json.dumps(payload, sort_keys=True, default=str)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SecurityEvent":
        return cls(
            seq=int(data.get("seq", 0)),
            ts=float(data.get("ts", 0.0)),
            kind=str(data.get("kind", "")),
            table=data.get("table"),
            rows=tuple(int(r) for r in data.get("rows", ())),
            worker=data.get("worker"),
            version=data.get("version"),
            pid=int(data.get("pid", 0)),
            details=dict(data.get("details", {})),
        )


class EventLog:
    """Bounded in-memory event ring with an optional JSONL sink.

    Every :meth:`emit` appends to the ring (oldest events fall off past
    ``capacity``; ``total`` and the per-kind counts keep the exact
    tally) and, when a ``path`` was given, writes one flushed JSON line
    — security events are rare and each one is evidence, so durability
    beats batching here.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None, capacity: int = 100_000):
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=int(capacity))
        self._counts: Dict[str, int] = {}
        self._seq = 0
        self.total = 0
        self.path: Optional[Path] = Path(path) if path is not None else None
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")

    # -- recording -------------------------------------------------------------

    def emit(
        self,
        kind: str,
        table: Optional[str] = None,
        rows: Any = (),
        worker: Optional[Union[int, str]] = None,
        version: Optional[int] = None,
        **details: Any,
    ) -> SecurityEvent:
        if worker is None:
            worker = tracing.worker_label()
        event = SecurityEvent(
            seq=0,  # replaced under the lock below
            ts=time.time(),
            kind=str(kind),
            table=table,
            rows=tuple(int(r) for r in rows),
            worker=worker,
            version=version,
            pid=os.getpid(),
            details=details,
        )
        with self._lock:
            self._seq += 1
            object.__setattr__(event, "seq", self._seq)
            self._ring.append(event)
            self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
            self.total += 1
            if self._file is not None:
                self._file.write(event.to_json() + "\n")
                self._file.flush()
        return event

    # -- reading ---------------------------------------------------------------

    def events(self) -> List[SecurityEvent]:
        with self._lock:
            return list(self._ring)

    def counts_by_kind(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._counts.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # -- lifecycle -------------------------------------------------------------

    def clear(self) -> None:
        """Drop the in-memory ring and counts (the sink file is kept)."""
        with self._lock:
            self._ring.clear()
            self._counts.clear()
            self.total = 0

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


#: The installed log, or None.  The gated :func:`emit` helper reads this
#: attribute directly; keep it a plain module global so the disabled
#: path stays one load + one is-check (pinned by check_overhead).
_LOG: Optional[EventLog] = None


def enable_events(
    path: Optional[Union[str, Path]] = None, capacity: int = 100_000
) -> EventLog:
    """Install a fresh :class:`EventLog` (closing any previous one).

    ``path=None`` keeps events in memory only; with a path every event
    is also journalled as one JSON line.
    """
    global _LOG
    if _LOG is not None:
        _LOG.close()
    _LOG = EventLog(path, capacity=capacity)
    return _LOG


def disable_events() -> None:
    """Close and uninstall the event log; emit sites return to one branch."""
    global _LOG
    if _LOG is not None:
        _LOG.close()
    _LOG = None


def events_enabled() -> bool:
    return _LOG is not None


def event_log() -> Optional[EventLog]:
    """The installed log (for draining/inspection), or ``None``."""
    return _LOG


def emit(
    kind: str,
    table: Optional[str] = None,
    rows: Any = (),
    worker: Optional[Union[int, str]] = None,
    version: Optional[int] = None,
    **details: Any,
) -> Optional[SecurityEvent]:
    """Record one security event (no-op while auditing is disabled)."""
    log = _LOG
    if log is None:
        return None
    return log.emit(
        kind, table=table, rows=rows, worker=worker, version=version, **details
    )


def read_events(path: Union[str, Path]) -> List[SecurityEvent]:
    """Load a JSONL journal back into :class:`SecurityEvent` records.

    Malformed lines (e.g. a torn final write after a crash) are skipped
    — a journal that loads partially still quarantines every row it
    records, which is strictly safer than refusing to load.
    """
    out: List[SecurityEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(SecurityEvent.from_dict(json.loads(line)))
            except (ValueError, TypeError):
                continue
    return out


# Ambient activation: SECNDP_EVENTS=1 keeps an in-memory log; any other
# non-empty value is an append-sink path.  Mirrors SECNDP_METRICS.
_raw = os.environ.get(ENV_EVENTS, "").strip()
if _raw:
    enable_events(None if _raw.lower() in ("1", "true", "yes", "on") else _raw)
del _raw
