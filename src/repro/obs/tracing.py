"""Hierarchical phase spans with Chrome/Perfetto trace-event export.

:func:`span` opens a named phase; on exit it records the duration into
the metrics registry as a ``<name>.ns`` timer and, when tracing is
enabled, appends a Chrome trace-event ``"X"`` (complete) record.  Spans
nest naturally — the per-thread depth is carried into the event args so
a Perfetto/``chrome://tracing`` load shows the phase hierarchy (e.g.
``experiment.table3`` containing ``harness.run_ndp`` containing the
protocol phases).

When neither metrics nor tracing is enabled, :func:`span` returns a
shared no-op context manager and :func:`traced`-wrapped functions call
straight through, keeping disabled overhead at one branch + one call.

The event buffer is bounded (:data:`MAX_TRACE_EVENTS`); overflow drops
new events and counts them — in the module-level tally exposed by
:func:`trace_dropped` *and* in the ``obs.trace.dropped`` registry
counter, which is written through to the registry directly (bypassing
the metrics on/off gate) so drop accounting works identically in
tracing-only mode.  :func:`clear_trace` resets the tally along with the
buffer.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from . import metrics

__all__ = [
    "span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "trace_events",
    "clear_trace",
    "write_trace",
    "set_worker_label",
    "worker_label",
    "ingest_events",
    "trace_dropped",
    "MAX_TRACE_EVENTS",
]

#: Hard cap on buffered trace events (a table3 smoke run emits a few
#: hundred; the cap only matters for very long instrumented sessions).
MAX_TRACE_EVENTS = 200_000

TRACING = False

_events: List[Dict[str, Any]] = []
_events_lock = threading.Lock()
_epoch_ns = time.perf_counter_ns()
_local = threading.local()

#: Events dropped since the last :func:`clear_trace` (buffer overflow).
_dropped = 0


def _note_drop(n: int = 1) -> None:
    """Record ``n`` dropped events.  Caller must hold ``_events_lock``.

    Writes the registry counter directly (not through the gated
    :func:`metrics.inc` helper) so the count is kept even when only
    tracing is enabled — a drop is a fact about the trace being
    exported, not an optional metric.
    """
    global _dropped
    _dropped += n
    metrics.get_registry().inc("obs.trace.dropped", n)


def trace_dropped() -> int:
    """Events dropped on buffer overflow since the last :func:`clear_trace`."""
    with _events_lock:
        return _dropped


def enable_tracing() -> None:
    """Start buffering trace events (implies nothing about metrics)."""
    global TRACING
    TRACING = True


def disable_tracing() -> None:
    global TRACING
    TRACING = False


def tracing_enabled() -> bool:
    return TRACING


#: Worker identity stamped into every span's args (None in the parent).
#: `repro.parallel` sets this in each pool worker so a merged trace shows
#: which shard produced which phase.
_WORKER_LABEL = None


def set_worker_label(label) -> None:
    """Tag all subsequently recorded spans with a worker id.

    Call once from a worker-process initializer; ``None`` clears it.
    """
    global _WORKER_LABEL
    _WORKER_LABEL = label


def worker_label():
    return _WORKER_LABEL


def ingest_events(events: List[Dict[str, Any]]) -> None:
    """Append trace events recorded in another process to this buffer.

    Used by the parallel execution engine to drain worker-side spans into
    the parent's trace; respects :data:`MAX_TRACE_EVENTS` (overflow is
    counted in ``obs.trace.dropped`` like locally recorded events).
    """
    with _events_lock:
        for event in events:
            if len(_events) < MAX_TRACE_EVENTS:
                _events.append(event)
            else:
                _note_drop()


def clear_trace() -> None:
    global _dropped
    with _events_lock:
        _events.clear()
        _dropped = 0


def trace_events() -> List[Dict[str, Any]]:
    """A copy of the buffered Chrome trace events."""
    with _events_lock:
        return list(_events)


class _Span:
    """Active phase: times itself, reports a timer metric + trace event."""

    __slots__ = ("name", "cat", "_start_ns")

    def __init__(self, name: str, cat: str):
        self.name = name
        self.cat = cat
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        depth = getattr(_local, "depth", 0)
        _local.depth = depth + 1
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_ns = time.perf_counter_ns()
        _local.depth = depth = getattr(_local, "depth", 1) - 1
        dur_ns = end_ns - self._start_ns
        metrics.observe_ns(f"{self.name}.ns", dur_ns)
        if TRACING:
            args: Dict[str, Any] = {"depth": depth}
            if _WORKER_LABEL is not None:
                args["worker"] = _WORKER_LABEL
            event = {
                "name": self.name,
                "cat": self.cat,
                "ph": "X",
                "ts": (self._start_ns - _epoch_ns) / 1000.0,  # microseconds
                "dur": dur_ns / 1000.0,
                "pid": os.getpid(),
                "tid": threading.get_ident() % 0xFFFF,
                "args": args,
            }
            with _events_lock:
                if len(_events) < MAX_TRACE_EVENTS:
                    _events.append(event)
                else:
                    _note_drop()


class _NoopSpan:
    """Shared do-nothing context manager for disabled runs."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopSpan()


def span(name: str, cat: str = "repro") -> Union[_Span, _NoopSpan]:
    """Context manager timing one named phase.

    Records a ``<name>.ns`` timer metric when metrics are enabled and a
    Chrome trace event when tracing is enabled; returns a shared no-op
    object when both are off.
    """
    if metrics.ENABLED or TRACING:
        return _Span(name, cat)
    return _NOOP


def traced(
    name: Optional[str] = None, cat: str = "repro"
) -> Callable[[Callable], Callable]:
    """Decorator form of :func:`span`; the flag is checked per call."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not (metrics.ENABLED or TRACING):
                return fn(*args, **kwargs)
            with span(label, cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def write_trace(path: Union[str, Path]) -> Path:
    """Write the buffered events as Chrome trace-event JSON.

    The output loads directly in ``ui.perfetto.dev`` or
    ``chrome://tracing`` (see DESIGN.md Sec. 9 for a reading guide).
    """
    payload = {
        "traceEvents": trace_events(),
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.obs (SecNDP reproduction)"},
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1))
    return path
