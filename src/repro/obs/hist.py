"""Mergeable log-bucketed histograms (HDR-style, bounded relative error).

:class:`LogHistogram` is the distribution primitive behind every timer
metric.  Values (non-negative integers, typically nanoseconds) are
binned into log-linear buckets: each power-of-two range is split into
``2**PRECISION_BITS`` linear sub-buckets, so the bucket that holds a
value is never wider than ``2**-PRECISION_BITS`` of the value itself.
Percentiles reported from bucket midpoints therefore carry a bounded
*relative* error of at most ``RELATIVE_ERROR`` (about 3.1 % at the
default precision of 5 bits), regardless of how long the run is or how
skewed the distribution — unlike a sample ring, which silently degrades
into "percentiles of the last N observations".

The exact aggregates (``count`` / ``total`` / ``min`` / ``max``) are
kept alongside the buckets, and merging two histograms adds bucket
counts elementwise.  Merge is therefore **exact**: a histogram built
from observations split across any number of worker processes and then
merged is bit-identical to the histogram of a single process that saw
every observation — the property ``repro.parallel`` relies on for its
fleet view (DESIGN.md Sec. 13), and what ``tests/test_obs_telemetry.py``
pins with associativity/commutativity property tests.

Values below ``2**(PRECISION_BITS + 1)`` are recorded exactly (one
integer per bucket); negative inputs clamp to zero.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Tuple, Union

__all__ = ["LogHistogram", "PRECISION_BITS", "RELATIVE_ERROR"]

#: Sub-bucket bits per power-of-two range.  Bucket width / bucket value
#: <= 2**-PRECISION_BITS, which bounds the percentile error.
PRECISION_BITS = 5

#: Documented relative error bound on reported percentiles.  Midpoint
#: representatives actually halve this; the conservative bound is what
#: callers (SLO evaluation, merge equivalence tests) should assume.
RELATIVE_ERROR = 2.0 ** -PRECISION_BITS

_SUB = 1 << PRECISION_BITS           # sub-buckets per power-of-two range
_EXACT_LIMIT = _SUB << 1             # values below this index exactly


def bucket_index(value: int) -> int:
    """Monotone value -> bucket index map (exact below ``_EXACT_LIMIT``)."""
    if value < 0:
        value = 0
    if value < _EXACT_LIMIT:
        return value
    shift = value.bit_length() - 1 - PRECISION_BITS
    return (shift << PRECISION_BITS) + (value >> shift)


def bucket_bounds(index: int) -> Tuple[int, int]:
    """Inclusive ``(low, high)`` value range covered by bucket ``index``."""
    if index < _EXACT_LIMIT:
        return index, index
    shift = (index >> PRECISION_BITS) - 1
    low = (index - (shift << PRECISION_BITS)) << shift
    return low, low + (1 << shift) - 1


def bucket_value(index: int) -> int:
    """Representative (midpoint) value for bucket ``index``."""
    low, high = bucket_bounds(index)
    return (low + high + 1) >> 1


class LogHistogram:
    """Sparse log-bucketed histogram with exact count/total/min/max.

    Thread-unsafe by design — the owning :class:`MetricsRegistry` holds
    the lock.  Buckets live in a plain ``dict`` keyed by bucket index,
    so an idle histogram costs nothing and merge is a dict-add.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0
        self.buckets: Dict[int, int] = {}

    # -- recording -------------------------------------------------------------

    def observe(self, value: int, n: int = 1) -> None:
        value = int(value)
        if value < 0:
            value = 0
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += n
        self.total += value * n
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + n

    # -- merging ---------------------------------------------------------------

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this histogram; exact for all aggregates."""
        if other.count:
            if self.count == 0 or other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        self.count += other.count
        self.total += other.total
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    def merge_dict(self, data: Mapping) -> None:
        """Fold a :meth:`to_dict` payload (possibly JSON round-tripped,
        so bucket keys may be strings) into this histogram."""
        count = int(data.get("count", 0))
        if count:
            dmin = int(data.get("min", 0))
            dmax = int(data.get("max", 0))
            if self.count == 0 or dmin < self.min:
                self.min = dmin
            if dmax > self.max:
                self.max = dmax
        self.count += count
        self.total += int(data.get("total", 0))
        for key, n in data.get("buckets", {}).items():
            idx = int(key)
            self.buckets[idx] = self.buckets.get(idx, 0) + int(n)

    # -- reading ---------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> int:
        """Value at quantile ``q`` in [0, 1], within ``RELATIVE_ERROR``.

        The exact ``min``/``max`` clamp the ends, so ``percentile(0)``
        and ``percentile(1)`` are always exact.
        """
        if not self.count:
            return 0
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= rank:
                return max(self.min, min(self.max, bucket_value(idx)))
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of observations whose bucket midpoint exceeds
        ``threshold`` — the SLO error-budget numerator."""
        if not self.count:
            return 0.0
        above = sum(
            n for idx, n in self.buckets.items() if bucket_value(idx) > threshold
        )
        return above / self.count

    def cumulative_buckets(self) -> List[Tuple[int, int]]:
        """``(upper_bound, cumulative_count)`` pairs, sorted ascending —
        the shape a Prometheus histogram's ``le`` buckets want."""
        out: List[Tuple[int, int]] = []
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            out.append((bucket_bounds(idx)[1], cum))
        return out

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Union[int, Dict[str, int]]]:
        """JSON-safe payload (string bucket keys survive a round trip)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(idx): n for idx, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LogHistogram":
        hist = cls()
        hist.merge_dict(data)
        return hist

    @classmethod
    def of(cls, values: Iterable[int]) -> "LogHistogram":
        hist = cls()
        for v in values:
            hist.observe(v)
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(count={self.count}, mean={self.mean:.1f}, "
            f"p50={self.percentile(0.5)}, max={self.max})"
        )
