"""Background pad precomputation for hot rows.

The serving-side half of hot-row tiering: counter-mode pads depend only
on ``(K, version, address)`` (PAPER Sec. IV), so a background thread can
generate the OTP blocks and tag pads of the hot set *before* queries
arrive, turning the 18x warm-vs-cold OTP gap into the common case.

Two pieces:

* :class:`PadPrewarmer` — a daemon thread that, on each tick, warms a
  bounded chunk of not-yet-warm hot rows through the store's own
  pad-generation paths (so the work lands in the exact LRUs the serving
  path reads);
* :class:`HotRowTiering` — the facade a store owns: it holds the
  :class:`~repro.tiering.stats.AccessTracker`, computes sizing plans,
  applies them to the OTP/tag caches, tracks what has been warmed under
  which versions, and invalidates on re-encryption.

Invalidation protocol: caches are keyed by ``(version, address)``, so a
version bump makes every stale entry *unreachable* — correctness never
depends on invalidation.  :meth:`HotRowTiering.invalidate` exists for
capacity hygiene (purge unreachable entries immediately) and coverage
truth (forget the warmed-set bookkeeping so the prewarmer re-warms under
the new versions).  The store calls it from ``reencrypt_table`` with the
*old* versions it captured before re-encrypting.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .. import obs
from .stats import AccessTracker, TieringConfig, TieringPlan, plan_for

__all__ = ["HotRowTiering", "PadPrewarmer"]


class HotRowTiering:
    """Per-store tiering state: tracker + sizing + warm-set bookkeeping.

    Attach to a :class:`~repro.workloads.secure_sls.SecureEmbeddingStore`
    via ``store.attach_tiering(...)`` — the store then feeds every
    validated query into :meth:`observe` and reports re-encryptions via
    :meth:`invalidate`.
    """

    def __init__(
        self,
        store,
        config: Optional[TieringConfig] = None,
        tracker: Optional[AccessTracker] = None,
    ):
        self.store = store
        self.config = config or TieringConfig()
        self.tracker = tracker or AccessTracker(
            window=self.config.window, decay=self.config.decay
        )
        self._lock = threading.Lock()
        # table -> ((data_version, tag_version), warmed row ids)
        self._warmed: Dict[str, Tuple[Tuple[int, Optional[int]], Set[int]]] = {}
        self._plans: Dict[str, TieringPlan] = {}
        self._dirty: Set[str] = set()
        self._prewarmer: Optional[PadPrewarmer] = None
        self.prewarmed_rows = 0
        self.invalidations = 0

    # -- observation (serving path; must stay cheap) ---------------------------

    def observe(self, table: str, rows) -> None:
        """Feed one validated query's rows into the frequency sketch."""
        self.tracker.observe(table, rows)
        self._dirty.add(table)

    def seed_from_trace(self, table: str, trace) -> None:
        """Warm-start the sketch from an offline trace replay."""
        self.tracker.observe_trace(table, trace)
        self._dirty.add(table)

    # -- planning and sizing ---------------------------------------------------

    def plan(self, table: str) -> TieringPlan:
        """(Re)compute the sizing plan for one table from current stats."""
        entry = self.store._tables[table]
        enc = self.store.device.stored(table)
        plan = plan_for(
            self.tracker,
            table,
            n_rows=entry.n_rows,
            row_bytes=enc.row_bytes,
            config=self.config,
        )
        self._plans[table] = plan
        self._dirty.discard(table)
        return plan

    def hot_rows(self, table: str) -> np.ndarray:
        """Current hot set for ``table`` (computing the plan if stale)."""
        if table in self._dirty or table not in self._plans:
            self.plan(table)
        return np.asarray(self._plans[table].hot_rows, dtype=np.int64)

    def apply_sizing(self) -> Tuple[int, int]:
        """Size the OTP and tag-pad LRUs to the fleet-wide hot footprint.

        Capacities are summed across tables (the caches are shared), with
        the config's headroom already folded into each plan.  Returns the
        applied ``(cache_blocks, tag_cache_rows)``.
        """
        for table in list(self._dirty):
            self.plan(table)
        cache_blocks = sum(p.cache_blocks for p in self._plans.values())
        tag_rows = sum(p.tag_cache_rows for p in self._plans.values())
        cache_blocks = min(
            max(cache_blocks, self.config.min_cache_blocks),
            self.config.max_cache_blocks,
        )
        tag_rows = min(
            max(tag_rows, self.config.min_tag_cache_rows),
            self.config.max_tag_cache_rows,
        )
        encryptor = self.store.processor.encryptor
        if encryptor.otp.cache_blocks != cache_blocks:
            encryptor.otp.resize_cache(cache_blocks)
        # Row-pad LRU gets the same row budget as the tag cache: one
        # entry per hot row (see core/encryption.py tiering note).
        if encryptor.row_cache_rows != tag_rows:
            encryptor.resize_row_cache(tag_rows)
        mac = self.store.processor.mac
        if self.config.prewarm_tags and mac.tag_cache_rows != tag_rows:
            mac.resize_tag_cache(tag_rows)
        if obs.enabled():
            obs.gauge("tiering.cache_blocks", cache_blocks)
            obs.gauge("tiering.tag_cache_rows", tag_rows)
        return cache_blocks, tag_rows

    # -- warming ---------------------------------------------------------------

    def _current_versions(self, table: str) -> Tuple[int, Optional[int]]:
        enc = self.store.device.stored(table)
        return (enc.version, enc.tag_version)

    def _pending_rows(self, table: str, limit: Optional[int] = None) -> List[int]:
        """Hot rows not yet warmed under the table's current versions."""
        versions = self._current_versions(table)
        with self._lock:
            state = self._warmed.get(table)
            if state is None or state[0] != versions:
                warmed: Set[int] = set()
                self._warmed[table] = (versions, warmed)
            else:
                warmed = state[1]
            pending = [int(r) for r in self.hot_rows(table) if int(r) not in warmed]
        if limit is not None:
            pending = pending[:limit]
        return pending

    def prewarm_now(self, table: Optional[str] = None, limit: Optional[int] = None) -> int:
        """Synchronously warm pending hot rows; returns rows warmed.

        Generates OTP pads (and tag pads, when the store verifies) for
        hot rows through the same code paths the serving side uses, so
        the results land in the shared LRUs under the current versions.
        """
        tables = [table] if table is not None else sorted(self.store._tables)
        warmed_total = 0
        for name in tables:
            pending = self._pending_rows(name, limit)
            if not pending:
                continue
            enc = self.store.device.stored(name)
            versions = (enc.version, enc.tag_version)
            with obs.span("tiering.prewarm"):
                self.store.processor.encryptor.pads_for_rows(enc, pending)
                if (
                    self.config.prewarm_tags
                    and self.store.verify
                    and enc.tag_version is not None
                ):
                    self.store.processor.mac.tag_pads_for_rows(enc, pending)
            with self._lock:
                state = self._warmed.get(name)
                # Drop the work if a re-encryption raced the warm: the
                # pads we generated are keyed by retired versions and can
                # never be served, so they must not count as coverage.
                if state is not None and state[0] == versions:
                    state[1].update(pending)
                    warmed_total += len(pending)
            if limit is not None:
                limit -= len(pending)
                if limit <= 0:
                    break
        if warmed_total:
            self.prewarmed_rows += warmed_total
            obs.inc("tiering.prewarm.rows", warmed_total)
        self.publish_gauges()
        return warmed_total

    def coverage(self, table: str) -> float:
        """Fraction of the table's hot set warmed under current versions."""
        hot = self.hot_rows(table)
        if hot.size == 0:
            return 1.0
        versions = self._current_versions(table)
        with self._lock:
            state = self._warmed.get(table)
            if state is None or state[0] != versions:
                return 0.0
            warmed = state[1]
            return sum(1 for r in hot if int(r) in warmed) / hot.size

    # -- invalidation (re-encryption / version bump) ---------------------------

    def invalidate(
        self,
        table: str,
        data_version: Optional[int] = None,
        tag_version: Optional[int] = None,
    ) -> None:
        """A table was re-encrypted: purge stale pads, reset warm state.

        ``data_version`` / ``tag_version`` are the *retired* versions (as
        captured before the re-encryption).  Stale entries are already
        unreachable — keys carry the version — so this is capacity
        hygiene plus coverage bookkeeping, never a correctness hook.
        """
        self.invalidations += 1
        obs.inc("tiering.invalidations")
        if data_version is not None:
            self.store.processor.encryptor.otp.purge_version(data_version)
            self.store.processor.encryptor.purge_row_version(data_version)
        if tag_version is not None:
            self.store.processor.mac.purge_tag_version(tag_version)
        with self._lock:
            self._warmed.pop(table, None)
        # Wake the prewarmer so re-warming under the new versions starts
        # on the next tick rather than after a full interval.
        if self._prewarmer is not None:
            self._prewarmer.wake()

    # -- background thread -----------------------------------------------------

    def start(self) -> "PadPrewarmer":
        """Start (or return) the background prewarmer thread."""
        if self._prewarmer is None or not self._prewarmer.is_alive():
            self._prewarmer = PadPrewarmer(self, interval_s=self.config.interval_s)
            self._prewarmer.start()
        return self._prewarmer

    def stop(self) -> None:
        if self._prewarmer is not None:
            self._prewarmer.stop()
            self._prewarmer = None

    # -- reporting -------------------------------------------------------------

    def publish_gauges(self) -> None:
        """Export hit-rate / coverage gauges through :mod:`repro.obs`."""
        if not obs.enabled():
            return
        otp_info = self.store.processor.encryptor.otp.cache_info()
        row_info = self.store.processor.encryptor.row_cache_info()
        tag_info = self.store.processor.mac.tag_cache_info()
        served = otp_info.hits + otp_info.misses
        if served:
            obs.gauge("otp.cache.hit_rate", otp_info.hits / served)
        row_served = row_info.hits + row_info.misses
        if row_served:
            obs.gauge("otp.row_cache.hit_rate", row_info.hits / row_served)
        tag_served = tag_info.hits + tag_info.misses
        if tag_served:
            obs.gauge("mac.tag_cache.hit_rate", tag_info.hits / tag_served)
        for table in sorted(self._plans):
            obs.gauge(f"tiering.{table}.hot_rows", self._plans[table].hot_set_size)
            obs.gauge(f"tiering.{table}.coverage", self.coverage(table))

    def snapshot(self) -> Dict[str, object]:
        """One dict of tiering state for benches and ``--stats`` output."""
        out: Dict[str, object] = {
            "prewarmed_rows": self.prewarmed_rows,
            "invalidations": self.invalidations,
        }
        for table in sorted(self.store._tables):
            plan = self._plans.get(table)
            out[table] = {
                "hot_rows": plan.hot_set_size if plan else 0,
                "hot_mass": plan.hot_mass if plan else 0.0,
                "coverage": self.coverage(table),
            }
        return out


class PadPrewarmer(threading.Thread):
    """Daemon thread that drains pending hot rows in bounded ticks.

    Each tick re-applies sizing (when ``auto_size``) and warms at most
    ``chunk_rows`` rows, then sleeps ``interval_s`` — a cooperative slice
    that models Sec. V's "generate pads during idle cycles" without
    starving the serving thread of the GIL.
    """

    def __init__(self, tiering: HotRowTiering, interval_s: float = 0.02):
        super().__init__(name="secndp-prewarmer", daemon=True)
        self.tiering = tiering
        self.interval_s = interval_s
        self._stop_event = threading.Event()
        self._wake_event = threading.Event()
        self.ticks = 0

    def wake(self) -> None:
        """Skip the current sleep (called after invalidation)."""
        self._wake_event.set()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        self._wake_event.set()
        self.join(timeout=timeout)

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        cfg = self.tiering.config
        while not self._stop_event.is_set():
            self.ticks += 1
            try:
                if cfg.auto_size:
                    self.tiering.apply_sizing()
                self.tiering.prewarm_now(limit=cfg.chunk_rows)
            except Exception:
                # The prewarmer is a pure optimization: a failed tick
                # (e.g. a table being re-encrypted mid-warm) must never
                # take the serving path down.  The next tick retries.
                obs.inc("tiering.prewarm.errors")
            self._wake_event.wait(self.interval_s)
            self._wake_event.clear()
