"""Trace-driven hot-row tiering with background pad precomputation.

SecNDP's pads are data-independent (counter mode over addresses and
versions), and real embedding traffic is Zipf-skewed; this package
exploits both: track per-row access frequency, classify a hot set, size
the OTP/tag-pad LRUs to its footprint, and pre-generate hot-row pads on
a background thread so the serving path finds them warm.  See DESIGN.md
Sec. 12.
"""

from .prewarm import HotRowTiering, PadPrewarmer
from .stats import AccessTracker, TieringConfig, TieringPlan, plan_for

__all__ = [
    "AccessTracker",
    "HotRowTiering",
    "PadPrewarmer",
    "TieringConfig",
    "TieringPlan",
    "plan_for",
]
