"""Access statistics for trace-driven hot-row tiering.

Counter-mode encryption makes SecNDP's expensive AES work
*data-independent* (Sec. IV): one-time pads and tag pads depend only on
``(K, version, address)``, so they can be generated before the query
arrives.  Real embedding traffic is heavily Zipf-skewed (LazyDP, ASPLOS
2024: a small hot set dominates RecSys table accesses), which turns that
property into a serving optimization — know the hot rows, pre-generate
their pads off the critical path, and size the pad caches to the hot-set
footprint instead of a fixed default.

This module provides the *knowing* half:

* :class:`AccessTracker` — a windowed per-row frequency sketch fed by
  every serving path (``SecureEmbeddingStore.sls/sls_many`` and the
  sharded engine all funnel through ``_validate_query``) or seeded
  offline from an :class:`~repro.workloads.traces.SlsTrace`;
* :class:`TieringPlan` / :func:`plan_for` — the skew-aware sizing
  policy: hot rows by coverage mass, OTP ``cache_blocks`` and tag-pad
  LRU capacity derived from the measured footprint with headroom.

Everything here is deterministic: same observations → same hot set, with
ties broken by row id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["AccessTracker", "TieringConfig", "TieringPlan", "plan_for"]


@dataclass(frozen=True)
class TieringConfig:
    """Policy knobs for the hot/cold split and the prewarmer.

    Parameters
    ----------
    coverage:
        Fraction of observed reference mass the hot set must capture
        (rows are added hottest-first until the running mass reaches it).
    hot_fraction:
        Optional hard cap on the hot set as a fraction of the table's
        rows; ``None`` lets coverage alone decide.  This is what the CLI
        ``--hot-fraction`` flag sets.
    headroom:
        Multiplier applied to the measured footprint when sizing caches,
        absorbing window-to-window churn in the hot set.
    min_cache_blocks / max_cache_blocks:
        Clamp on the skew-derived OTP LRU capacity (blocks of 16 B).
    min_tag_cache_rows / max_tag_cache_rows:
        Clamp on the tag-pad LRU capacity (one int per row).
    window:
        Row-observations per tracker window; on roll-over, counts decay.
    decay:
        Multiplier applied to all counts at each window roll (0 forgets
        everything, 1 never forgets).
    interval_s:
        Background prewarmer tick period.
    chunk_rows:
        Upper bound on rows warmed per prewarmer tick, keeping each tick
        a bounded, interruptible slice of work.
    prewarm_tags:
        Also pre-generate tag pads (requires the store to verify).
    auto_size:
        Let the prewarmer re-apply :func:`plan_for` sizing each tick.
    """

    coverage: float = 0.9
    hot_fraction: Optional[float] = None
    headroom: float = 1.25
    min_cache_blocks: int = 1024
    max_cache_blocks: int = 1 << 18
    min_tag_cache_rows: int = 256
    max_tag_cache_rows: int = 1 << 16
    window: int = 65536
    decay: float = 0.5
    interval_s: float = 0.02
    chunk_rows: int = 1024
    prewarm_tags: bool = True
    auto_size: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage <= 1.0:
            raise ConfigurationError("coverage must be in (0, 1]")
        if self.hot_fraction is not None and not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in (0, 1]")
        if self.headroom < 1.0:
            raise ConfigurationError("headroom must be >= 1")
        if not 0.0 <= self.decay <= 1.0:
            raise ConfigurationError("decay must be in [0, 1]")
        if self.window < 1 or self.chunk_rows < 1:
            raise ConfigurationError("window and chunk_rows must be >= 1")


class AccessTracker:
    """Windowed per-row reference counts, per table.

    ``observe`` is called on the serving path, so it is deliberately
    cheap: one ``np.bincount``-style pass per query plus dict updates for
    the touched rows only.  After every ``window`` row observations the
    counts decay by ``decay`` (a cheap exponential window that keeps the
    sketch responsive to phase changes) and rows whose count falls below
    a drop threshold are forgotten, bounding memory by the live working
    set rather than table size.
    """

    _DROP_BELOW = 0.5  # decayed counts under half a reference are noise

    def __init__(self, window: int = 65536, decay: float = 0.5):
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if not 0.0 <= decay <= 1.0:
            raise ConfigurationError("decay must be in [0, 1]")
        self.window = window
        self.decay = decay
        self._counts: Dict[str, Dict[int, float]] = {}
        self._window_fill: Dict[str, int] = {}
        self._observed: Dict[str, int] = {}

    # -- feeding ---------------------------------------------------------------

    def observe(self, table: str, rows: Iterable[int]) -> None:
        """Record one query's row references against ``table``."""
        counts = self._counts.setdefault(table, {})
        n = 0
        for row in rows:
            row = int(row)
            counts[row] = counts.get(row, 0.0) + 1.0
            n += 1
        if not n:
            return
        self._observed[table] = self._observed.get(table, 0) + n
        fill = self._window_fill.get(table, 0) + n
        if fill >= self.window:
            self._roll(table)
            fill = 0
        self._window_fill[table] = fill

    def observe_trace(self, table: str, trace) -> None:
        """Seed the sketch offline from an :class:`SlsTrace` replay."""
        for query in trace.indices:
            self.observe(table, query)

    def _roll(self, table: str) -> None:
        counts = self._counts.get(table)
        if not counts:
            return
        if self.decay == 0.0:
            counts.clear()
            return
        drop = [row for row in counts if counts[row] * self.decay < self._DROP_BELOW]
        for row in drop:
            del counts[row]
        for row in counts:
            counts[row] *= self.decay

    # -- reading ---------------------------------------------------------------

    def tables(self) -> List[str]:
        return sorted(self._counts)

    def observed(self, table: str) -> int:
        """Total row references ever recorded for ``table``."""
        return self._observed.get(table, 0)

    def tracked_rows(self, table: str) -> int:
        return len(self._counts.get(table, ()))

    def frequencies(self, table: str) -> Dict[int, float]:
        """Current (decayed) per-row reference mass."""
        return dict(self._counts.get(table, ()))

    def hot_rows(
        self,
        table: str,
        coverage: float = 0.9,
        max_rows: Optional[int] = None,
    ) -> np.ndarray:
        """Smallest hottest-first prefix capturing ``coverage`` of the mass.

        Rows are ordered by descending count with ties broken by
        ascending row id, so the hot set is deterministic for a given
        observation history.  ``max_rows`` caps the prefix (the
        ``hot_fraction`` policy).
        """
        counts = self._counts.get(table)
        if not counts:
            return np.empty(0, dtype=np.int64)
        items = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        total = sum(c for _, c in items)
        target = coverage * total
        picked: List[int] = []
        mass = 0.0
        for row, count in items:
            picked.append(row)
            mass += count
            if mass >= target:
                break
            if max_rows is not None and len(picked) >= max_rows:
                break
        if max_rows is not None and len(picked) > max_rows:
            picked = picked[:max_rows]
        return np.asarray(picked, dtype=np.int64)

    def hot_mass(self, table: str, hot_rows: Iterable[int]) -> float:
        """Fraction of the current mass the given rows capture."""
        counts = self._counts.get(table)
        if not counts:
            return 0.0
        total = sum(counts.values())
        if total <= 0:
            return 0.0
        hot = sum(counts.get(int(r), 0.0) for r in hot_rows)
        return hot / total

    def reset(self, table: Optional[str] = None) -> None:
        if table is None:
            self._counts.clear()
            self._window_fill.clear()
            self._observed.clear()
        else:
            self._counts.pop(table, None)
            self._window_fill.pop(table, None)
            self._observed.pop(table, None)


@dataclass(frozen=True)
class TieringPlan:
    """One table's hot set and the cache capacities it implies."""

    table: str
    hot_rows: Tuple[int, ...] = ()
    #: fraction of observed mass the hot set captures
    hot_mass: float = 0.0
    #: OTP pad LRU capacity (16-B blocks) for this table's footprint
    cache_blocks: int = 0
    #: tag-pad LRU capacity (rows)
    tag_cache_rows: int = 0
    #: cipher blocks per table row (footprint conversion factor)
    blocks_per_row: int = field(default=0, compare=False)

    @property
    def hot_set_size(self) -> int:
        return len(self.hot_rows)


def plan_for(
    tracker: AccessTracker,
    table: str,
    n_rows: int,
    row_bytes: int,
    config: TieringConfig = TieringConfig(),
) -> TieringPlan:
    """Skew-aware sizing: hot set by coverage, capacities by footprint.

    ``cache_blocks`` is the hot rows' OTP block footprint times headroom
    (clamped to the config bounds); ``tag_cache_rows`` likewise for the
    per-row tag pads.  With no observations the plan is empty and callers
    should leave the default capacities alone.
    """
    max_rows = None
    if config.hot_fraction is not None:
        max_rows = max(1, int(n_rows * config.hot_fraction))
    hot = tracker.hot_rows(table, coverage=config.coverage, max_rows=max_rows)
    if hot.size == 0:
        return TieringPlan(table=table)
    blocks_per_row = max(1, -(-row_bytes // 16))
    cache_blocks = int(hot.size * blocks_per_row * config.headroom)
    cache_blocks = min(max(cache_blocks, config.min_cache_blocks), config.max_cache_blocks)
    tag_rows = int(hot.size * config.headroom)
    tag_rows = min(max(tag_rows, config.min_tag_cache_rows), config.max_tag_cache_rows)
    return TieringPlan(
        table=table,
        hot_rows=tuple(int(r) for r in hot),
        hot_mass=tracker.hot_mass(table, hot),
        cache_blocks=cache_blocks,
        tag_cache_rows=tag_rows,
        blocks_per_row=blocks_per_row,
    )
