"""Compiled kernel tier for the limb-field and AES hot paths.

The limb-vectorized NumPy kernels (:mod:`repro.crypto.limb_field`,
:func:`repro.crypto.aes.aes128_encrypt_blocks`) are the serving floor:
every tag sweep, verification dot and OTP pad generation funnels through
them.  This package adds an *optional* compiled tier behind the existing
dispatch — same inputs, bit-identical outputs, another order of
magnitude of throughput when a backend is available:

* ``numba`` — ``@njit(cache=True)`` nopython kernels (the ``native``
  extra: ``pip install repro[native]``); preferred when importable.
* ``cc``    — a small C translation unit compiled once with the host C
  compiler into a content-addressed shared library under
  ``~/.cache/secndp-kernels`` (override with ``SECNDP_KERNEL_CACHE``)
  and loaded via :mod:`ctypes`.  No third-party dependency; JIT cost is
  paid once per source hash, workers just ``dlopen`` the cached object.

Tier policy
-----------
``SECNDP_KERNEL_TIER`` (or :func:`set_tier` / the CLI ``--kernel-tier``)
selects one of:

* ``auto``   (default) — ``native`` when a backend loads, else ``numpy``;
  a failed probe bumps the ``kernel.native_unavailable`` counter exactly
  once and never warns.
* ``native`` — require a compiled backend; raise
  :class:`~repro.errors.ConfigurationError` when none is available.
* ``numpy``  — force the always-available NumPy limb kernels.
* ``scalar`` — force the bit-exact :class:`~repro.crypto.prime_field.PrimeField`
  oracle for all field work (``limb_field.supports_field`` reports
  ``False``); AES stays on the NumPy path (there is no practical scalar
  bulk-AES tier).

Invalid values raise :class:`~repro.errors.ConfigurationError` naming
the allowed tiers — misconfiguration fails fast instead of silently
serving from an unexpected tier.

The scalar :class:`PrimeField` remains the correctness oracle and the
NumPy tier the always-available fallback; the property suite in
``tests/test_kernels.py`` pins scalar == numpy == native on random limb
vectors, Horner sweeps and AES test-vector blocks.  DESIGN.md Sec. 14
documents the dispatch order and the worker-broadcast protocol
(``ParallelSlsEngine`` ships the resolved tier in its pool spec and
workers :func:`warmup` at spawn, so no task ever pays a JIT).
"""

from __future__ import annotations

import contextlib
import importlib
import os
import time
from typing import Optional

from .. import obs
from ..errors import ConfigurationError

__all__ = [
    "TIERS",
    "ENV_KERNEL_TIER",
    "ENV_KERNEL_CACHE",
    "NativeUnavailable",
    "resolve_policy",
    "policy",
    "set_tier",
    "use_tier",
    "active_tier",
    "active_native",
    "native_available",
    "backend_name",
    "unavailable_reason",
    "warmup",
    "last_warmup_ns",
    "tier_code",
    "publish",
]

#: Accepted values for the tier policy (env, CLI and :func:`set_tier`).
TIERS = ("auto", "scalar", "numpy", "native")

ENV_KERNEL_TIER = "SECNDP_KERNEL_TIER"
ENV_KERNEL_CACHE = "SECNDP_KERNEL_CACHE"

#: Backend modules probed in order for the ``native`` tier.  Tests
#: monkeypatch this tuple to simulate an absent/broken backend.
_BACKEND_MODULES = ("_numba", "_cc")

#: ``kernel.tier`` gauge encoding (documented in DESIGN.md Sec. 14).
_TIER_CODES = {"scalar": 0, "numpy": 1, "native": 2}


class NativeUnavailable(RuntimeError):
    """A compiled backend cannot be built or loaded on this host.

    Raised by backend modules at import (no compiler, compile failure,
    failed self-test); under the ``auto`` policy it degrades the tier to
    ``numpy``, under an explicit ``native`` request it surfaces as a
    :class:`ConfigurationError`.
    """


# Resolution state: policy is what was requested, active is the concrete
# tier serving kernels.  Both resolve lazily on first use so importing
# the package never compiles anything.
_policy: Optional[str] = None
_active: Optional[str] = None
_backend = None
_probed = False
_probe_error: Optional[str] = None
_last_warmup_ns: Optional[int] = None


def resolve_policy(value: Optional[str] = None) -> str:
    """Validate a tier request (explicit value, else the environment).

    Returns one of :data:`TIERS`; raises :class:`ConfigurationError` on
    anything else so a typo in ``SECNDP_KERNEL_TIER`` or ``--kernel-tier``
    fails fast instead of silently falling back to another tier.
    """
    raw = value if value is not None else os.environ.get(ENV_KERNEL_TIER, "")
    tier = str(raw).strip().lower() or "auto"
    if tier not in TIERS:
        source = "--kernel-tier" if value is not None else ENV_KERNEL_TIER
        raise ConfigurationError(
            f"invalid kernel tier {raw!r} from {source} "
            f"(choose from: {', '.join(TIERS)})"
        )
    return tier


def policy() -> str:
    """The requested tier policy (resolving the environment lazily)."""
    global _policy
    if _policy is None:
        _policy = resolve_policy()
    return _policy


def _probe():
    """One-shot native backend probe (numba first, then the C backend).

    Failure is the *expected* state on hosts without the ``native`` extra
    or a C compiler: it is recorded once as the
    ``kernel.native_unavailable`` counter plus :func:`unavailable_reason`
    — no warnings, no retries, no log spam.
    """
    global _probed, _backend, _probe_error
    if _probed:
        return _backend
    _probed = True
    reasons = []
    for name in _BACKEND_MODULES:
        try:
            _backend = importlib.import_module(f".{name}", __package__)
            return _backend
        except (ImportError, NativeUnavailable, OSError) as exc:
            reasons.append(f"{name.lstrip('_')}: {exc}")
    _probe_error = "; ".join(reasons) or "no backend modules configured"
    obs.inc("kernel.native_unavailable")
    return None


def _resolve() -> str:
    """Map the policy onto a concrete serving tier (probing if needed)."""
    global _active
    requested = policy()
    if requested in ("scalar", "numpy"):
        _active = requested
    elif requested == "native":
        if _probe() is None:
            raise ConfigurationError(
                "kernel tier 'native' requested but no compiled backend is "
                f"available ({_probe_error}); install the 'native' extra "
                f"(pip install repro[native]) or set {ENV_KERNEL_TIER} to "
                f"one of: {', '.join(TIERS)}"
            )
        _active = "native"
    else:  # auto
        _active = "native" if _probe() is not None else "numpy"
    publish()
    return _active


def active_tier() -> str:
    """The concrete tier in effect: ``scalar`` | ``numpy`` | ``native``."""
    return _active if _active is not None else _resolve()


def active_native():
    """The loaded native backend module, or ``None`` off the native tier.

    This is the hot-path accessor: after the first resolution it is one
    global read + comparison, so the dispatch sites in
    ``crypto/limb_field.py`` and ``crypto/aes.py`` stay ~free on the
    NumPy tier.
    """
    tier = _active if _active is not None else _resolve()
    return _backend if tier == "native" else None


def set_tier(value: Optional[str] = None) -> str:
    """Set (and immediately resolve) the tier policy.

    ``None`` re-reads ``SECNDP_KERNEL_TIER``.  Returns the concrete
    active tier; raises :class:`ConfigurationError` on invalid values or
    an unsatisfiable ``native`` request.
    """
    global _policy, _active
    _policy = resolve_policy(value) if value is not None else resolve_policy()
    _active = None
    return _resolve()


@contextlib.contextmanager
def use_tier(value: str):
    """Context manager pinning the tier policy inside a block.

    Used by the benchmarks to measure the NumPy and native tiers against
    each other in one process, and by tests to force specific paths.
    """
    global _policy, _active
    saved = (_policy, _active)
    try:
        set_tier(value)
        yield active_tier()
    finally:
        _policy, _active = saved


def native_available() -> bool:
    """True when a compiled backend loads on this host (probes once)."""
    return _probe() is not None


def backend_name() -> Optional[str]:
    """``"numba"`` / ``"cc"`` when a backend is loaded, else ``None``."""
    return getattr(_backend, "NAME", None) if _probe() is not None else None


def unavailable_reason() -> Optional[str]:
    """Why the native probe failed (``None`` before probing / on success)."""
    return _probe_error


def warmup() -> int:
    """Resolve the tier and run every kernel once on tiny inputs.

    This is where all one-time JIT cost lives: the C backend compiles or
    ``dlopen``s its cached shared object, numba compiles its
    ``cache=True`` dispatchers.  Benchmarks and ``check_overhead`` call
    this *before* their timed regions so steady-state numbers never
    carry compile latency, and pool workers call it at spawn (via the
    ``_PoolSpec`` broadcast) so no task ever JITs.  Returns the elapsed
    nanoseconds and publishes them as ``kernel.jit_warmup_ns``.
    """
    global _last_warmup_ns
    t0 = time.perf_counter_ns()
    tier = active_tier()
    if tier == "native" and _backend is not None:
        _backend.warmup()
    ns = time.perf_counter_ns() - t0
    _last_warmup_ns = ns
    if obs.enabled():
        obs.gauge("kernel.jit_warmup_ns", ns)
    return ns


def last_warmup_ns() -> Optional[int]:
    """Duration of the most recent :func:`warmup` (``None`` if never run)."""
    return _last_warmup_ns


def tier_code(tier: Optional[str] = None) -> int:
    """Numeric encoding of a tier for the ``kernel.tier`` gauge."""
    return _TIER_CODES[tier if tier is not None else active_tier()]


def publish() -> None:
    """Publish ``kernel.tier`` (and warmup, when known) as gauges."""
    if not obs.enabled() or _active is None:
        return
    obs.gauge("kernel.tier", _TIER_CODES[_active])
    if _last_warmup_ns is not None:
        obs.gauge("kernel.jit_warmup_ns", _last_warmup_ns)


def _reset_for_tests() -> None:
    """Forget all resolution state (tests only)."""
    global _policy, _active, _backend, _probed, _probe_error, _last_warmup_ns
    _policy = None
    _active = None
    _backend = None
    _probed = False
    _probe_error = None
    _last_warmup_ns = None
