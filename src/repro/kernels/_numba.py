"""numba backend for the native kernel tier (nopython + parallel).

Installed via the ``native`` extra (``pip install repro[native]``); the
import raises :class:`ImportError` when numba is absent and the probe
falls through to the C backend, then to the NumPy tier.

The kernels transliterate the NumPy tier's limb algorithm — 32-bit
limbs in uint64 lanes, carry-normalize, shift-add Mersenne folds,
``q -> 0`` canonicalization — into per-element ``@njit`` loops with
``prange`` across rows.  numba has no 128-bit integers, so products
stay split into 32-bit halves exactly as the vectorized tier does;
outputs are bit-identical by construction and pinned by the property
suite.  ``cache=True`` persists compiled dispatchers on disk, so only
the first process on a machine pays the JIT; everyone else (including
spawn-pool workers) loads from cache during :func:`warmup`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np
from numba import njit, prange, uint64

NAME = "numba"

_M32 = np.uint64(0xFFFFFFFF)
_TOP = np.uint64(0x7FFFFFFF)
_U1 = np.uint64(1)
_U31 = np.uint64(31)
_U32 = np.uint64(32)
_U0 = np.uint64(0)

_JIT = dict(cache=True, nogil=True)


@njit(**_JIT)
def _canon_into(cols, k, out, o):  # pragma: no cover - numba-compiled
    """Canonicalize ``sum_i cols[i] * 2^(32i)`` (columns < 2^63) into
    ``out[o:o+4]``; the scalar mirror of ``_reduce_columns``."""
    l = np.zeros(14, dtype=uint64)
    carry = _U0
    for i in range(k):
        t = cols[i] + carry
        l[i] = t & _M32
        carry = t >> _U32
    l[k] = carry & _M32
    l[k + 1] = carry >> _U32
    n = k + 2
    while True:
        while n > 4 and l[n - 1] == _U0:
            n -= 1
        if n <= 4 and l[3] <= _TOP:
            break
        t0, t1, t2 = l[0], l[1], l[2]
        t3 = l[3] & _TOP
        nh = n - 3
        if nh < 1:
            nh = 1
        hi = np.zeros(12, dtype=uint64)
        for kk in range(nh):
            h = _U0
            if 3 + kk < n:
                h |= l[3 + kk] >> _U31
            if 4 + kk < n:
                h |= (l[4 + kk] << _U1) & _M32
            hi[kk] = h
        width = 4 if nh < 4 else nh
        carry = _U0
        for kk in range(width):
            v = carry
            if kk == 0:
                v += t0
            elif kk == 1:
                v += t1
            elif kk == 2:
                v += t2
            elif kk == 3:
                v += t3
            if kk < nh:
                v += hi[kk]
            l[kk] = v & _M32
            carry = v >> _U32
        l[width] = carry & _M32
        l[width + 1] = carry >> _U32
        for kk in range(width + 2, 14):
            l[kk] = _U0
        n = width + 2
    if l[0] == _M32 and l[1] == _M32 and l[2] == _M32 and l[3] == _TOP:
        out[o] = _U0
        out[o + 1] = _U0
        out[o + 2] = _U0
        out[o + 3] = _U0
    else:
        out[o] = l[0]
        out[o + 1] = l[1]
        out[o + 2] = l[2]
        out[o + 3] = l[3]


@njit(parallel=True, **_JIT)
def _dot_kernel(coeffs, wl, small, out):  # pragma: no cover
    n, m = coeffs.shape
    for i in prange(n):
        cols = np.zeros(10, dtype=uint64)
        if small:
            for j in range(m):
                c = coeffs[i, j]
                cols[0] += c * wl[j, 0]
                cols[1] += c * wl[j, 1]
                cols[2] += c * wl[j, 2]
                cols[3] += c * wl[j, 3]
            _canon_into(cols, 4, out, 4 * i)
        else:
            for j in range(m):
                c_lo = coeffs[i, j] & _M32
                c_hi = coeffs[i, j] >> _U32
                for k in range(4):
                    p = c_lo * wl[j, k]
                    cols[k] += p & _M32
                    cols[k + 1] += p >> _U32
                    p = c_hi * wl[j, k]
                    cols[k + 1] += p & _M32
                    cols[k + 2] += p >> _U32
            _canon_into(cols, 7, out, 4 * i)


@njit(parallel=True, **_JIT)
def _mul_kernel(a, b, b_scalar, out):  # pragma: no cover
    n = a.shape[0]
    for i in prange(n):
        cols = np.zeros(10, dtype=uint64)
        bi = 0 if b_scalar else i
        for x in range(4):
            ax = a[i, x]
            for y in range(4):
                p = ax * b[bi, y]
                cols[x + y] += p & _M32
                cols[x + y + 1] += p >> _U32
        _canon_into(cols, 8, out, 4 * i)


@njit(parallel=True, **_JIT)
def _fold_kernel(cols_in, out):  # pragma: no cover
    n, k = cols_in.shape
    for i in prange(n):
        cols = np.zeros(12, dtype=uint64)
        for j in range(k):
            cols[j] = cols_in[i, j]
        _canon_into(cols, k, out, 4 * i)


@njit(parallel=True, **_JIT)
def _horner_kernel(matrix, s, out):  # pragma: no cover
    n, m = matrix.shape
    for i in prange(n):
        acc = np.zeros(4, dtype=uint64)
        cols = np.zeros(10, dtype=uint64)
        for j in range(m):
            for kk in range(10):
                cols[kk] = _U0
            for x in range(4):
                ax = acc[x]
                for y in range(4):
                    p = ax * s[y]
                    cols[x + y] += p & _M32
                    cols[x + y + 1] += p >> _U32
            cols[0] += matrix[i, j] & _M32
            cols[1] += matrix[i, j] >> _U32
            _canon_into(cols, 8, acc, 0)
        out[4 * i] = acc[0]
        out[4 * i + 1] = acc[1]
        out[4 * i + 2] = acc[2]
        out[4 * i + 3] = acc[3]


@njit(parallel=True, **_JIT)
def _aes_kernel(rk, sbox, mul2, mul3, shift, blocks, out):  # pragma: no cover
    n = blocks.shape[0]
    for b in prange(n):
        s = np.empty(16, dtype=np.uint8)
        t = np.empty(16, dtype=np.uint8)
        for i in range(16):
            s[i] = blocks[b, i] ^ rk[i]
        for r in range(1, 10):
            for i in range(16):
                t[i] = sbox[s[shift[i]]]
            for c in range(4):
                a0, a1, a2, a3 = t[4 * c], t[4 * c + 1], t[4 * c + 2], t[4 * c + 3]
                k = rk[16 * r + 4 * c :]
                s[4 * c + 0] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3 ^ k[0]
                s[4 * c + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3 ^ k[1]
                s[4 * c + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3] ^ k[2]
                s[4 * c + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3] ^ k[3]
        for i in range(16):
            out[b, i] = sbox[s[shift[i]]] ^ rk[160 + i]


# ---------------------------------------------------------------------------
# Wrappers (same contract as the C backend: None -> NumPy fallback).
# ---------------------------------------------------------------------------

_M32_INT = 0xFFFFFFFF
_TOP_INT = 0x7FFFFFFF


def _canonical_limbs(arr: np.ndarray) -> bool:
    if arr.size == 0:
        return True
    return bool(
        int(arr[..., :3].max()) <= _M32_INT and int(arr[..., 3].max()) <= _TOP_INT
    )


def dot(coeffs: np.ndarray, weight_limbs: np.ndarray) -> Optional[np.ndarray]:
    c = np.ascontiguousarray(coeffs, dtype=np.uint64)
    w = np.ascontiguousarray(weight_limbs, dtype=np.uint64)
    if w.ndim != 2 or w.shape[1] != 4 or c.shape[-1] != w.shape[0]:
        return None
    if not _canonical_limbs(w):
        return None
    m = w.shape[0]
    flat = c.reshape(-1, m)
    out = np.empty((flat.shape[0], 4), dtype=np.uint64)
    if flat.shape[0] == 0 or m == 0:
        out[:] = 0
    else:
        # 2^63, not 2^64: _canon_into's carry-normalize adds columns in
        # wrapping u64, so column sums must honor its < 2^63 contract.
        small = int(flat.max()) * _M32_INT * m < (1 << 63)
        _dot_kernel(flat, w, small, out.reshape(-1))
    return out.reshape(c.shape[:-1] + (4,))


def mul(a: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
    a = np.ascontiguousarray(a, dtype=np.uint64)
    b = np.ascontiguousarray(b, dtype=np.uint64)
    if a.shape[-1:] != (4,) or b.shape[-1:] != (4,):
        return None
    if not (_canonical_limbs(a) and _canonical_limbs(b)):
        return None
    if b.ndim == 1:
        shape, flat, other, b_scalar = a.shape, a.reshape(-1, 4), b.reshape(1, 4), 1
    elif a.ndim == 1:
        shape, flat, other, b_scalar = b.shape, b.reshape(-1, 4), a.reshape(1, 4), 1
    elif a.shape == b.shape:
        shape, flat, other, b_scalar = a.shape, a.reshape(-1, 4), b.reshape(-1, 4), 0
    else:
        return None
    out = np.empty_like(flat)
    if flat.shape[0]:
        _mul_kernel(flat, other, b_scalar, out.reshape(-1))
    return out.reshape(shape)


def fold(values: np.ndarray) -> Optional[np.ndarray]:
    v = np.ascontiguousarray(values, dtype=np.uint64)
    if v.ndim == 0 or not 2 <= v.shape[-1] <= 10:
        return None
    flat = v.reshape(-1, v.shape[-1])
    out = np.empty((flat.shape[0], 4), dtype=np.uint64)
    if flat.shape[0]:
        _fold_kernel(flat, out.reshape(-1))
    return out.reshape(v.shape[:-1] + (4,))


def horner(matrix: np.ndarray, s_limbs: np.ndarray) -> Optional[np.ndarray]:
    m_arr = np.ascontiguousarray(matrix, dtype=np.uint64)
    s = np.ascontiguousarray(s_limbs, dtype=np.uint64)
    if m_arr.ndim != 2 or s.shape != (4,) or not _canonical_limbs(s):
        return None
    out = np.zeros((m_arr.shape[0], 4), dtype=np.uint64)
    if m_arr.shape[0] and m_arr.shape[1]:
        _horner_kernel(m_arr, s, out.reshape(-1))
    return out


@lru_cache(maxsize=64)
def _round_key_bytes(key: bytes) -> np.ndarray:
    from ..crypto.aes import _expand_key

    return np.frombuffer(b"".join(_expand_key(key)), dtype=np.uint8)


@lru_cache(maxsize=1)
def _aes_tables() -> tuple:
    from ..crypto import aes as _aes

    return (
        np.frombuffer(_aes.SBOX, dtype=np.uint8),
        np.frombuffer(_aes._MUL2, dtype=np.uint8),
        np.frombuffer(_aes._MUL3, dtype=np.uint8),
        np.array(_aes._SHIFT_ROWS_PERM, dtype=np.uint8),
    )


def aes_blocks(key: bytes, blocks: np.ndarray) -> Optional[np.ndarray]:
    blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        return None
    sbox, mul2, mul3, shift = _aes_tables()
    out = np.empty_like(blocks)
    if blocks.shape[0]:
        _aes_kernel(_round_key_bytes(bytes(key)), sbox, mul2, mul3, shift, blocks, out)
    return out


def warmup() -> None:
    """Compile (or load from numba's disk cache) every dispatcher."""
    w = np.array([[3, 0, 0, 0], [5, 0, 0, 0]], dtype=np.uint64)
    dot(np.array([[1, 2]], dtype=np.uint64), w)
    dot(np.array([[1 << 40, 2]], dtype=np.uint64), w)
    a = np.array([[9, 0, 0, 0]], dtype=np.uint64)
    mul(a, np.array([7, 0, 0, 0], dtype=np.uint64))
    fold(np.array([[1, 2, 3, 4, 5]], dtype=np.uint64))
    horner(
        np.array([[1, 2, 3]], dtype=np.uint64),
        np.array([2, 0, 0, 0], dtype=np.uint64),
    )
    aes_blocks(bytes(16), np.zeros((1, 16), dtype=np.uint8))


# Load-time sanity: one known answer per kernel family, so a broken
# numba install degrades to the next backend instead of serving wrong
# bits.  (The full property suite cross-checks all three tiers.)
def _self_test() -> None:
    from . import NativeUnavailable

    p = (1 << 127) - 1
    ws = [7, p - 1]
    w = np.zeros((2, 4), dtype=np.uint64)
    for i, v in enumerate(ws):
        for k in range(4):
            w[i, k] = (v >> (32 * k)) & _M32_INT
    c = np.array([[(1 << 64) - 1, 3]], dtype=np.uint64)
    got = dot(c, w)
    want = (int(c[0, 0]) * ws[0] + int(c[0, 1]) * ws[1]) % p
    got_int = int(got[0, 0]) | int(got[0, 1]) << 32 | int(got[0, 2]) << 64 | int(got[0, 3]) << 96
    if got_int != want:
        raise NativeUnavailable("numba self-test failed: dot")
    key = bytes(range(16))
    pt = np.frombuffer(
        bytes.fromhex("00112233445566778899aabbccddeeff"), dtype=np.uint8
    ).reshape(1, 16)
    if aes_blocks(key, pt).tobytes().hex() != "69c4e0d86a7b0430d8cdb78070b4c55a":
        raise NativeUnavailable("numba self-test failed: AES-128 FIPS vector")


_self_test()
