"""C backend for the native kernel tier (host compiler + ctypes).

A single small C translation unit implements the limb-field primitives
(127-bit Mersenne arithmetic on 64-bit words with ``unsigned __int128``
intermediates) and a T-table AES-128 block sweep.  It is compiled once
per source hash with the host C compiler into a content-addressed
shared library under ``SECNDP_KERNEL_CACHE`` (default
``~/.cache/secndp-kernels``) and loaded via :mod:`ctypes` — no
third-party dependency, and spawn-pool workers just ``dlopen`` the
cached object instead of recompiling.

Importing this module raises :class:`~repro.kernels.NativeUnavailable`
when no compiler is found, compilation fails, or the compiled library
fails its load-time self-test (FIPS-197 AES vector plus big-int
cross-checks of every field kernel) — the tier dispatcher treats that
exactly like numba being absent and falls back to NumPy.

Every wrapper returns ``None`` for shapes/dtypes outside its fast-path
contract; the dispatch sites in ``crypto/limb_field.py`` and
``crypto/aes.py`` then fall through to the NumPy tier, so outputs are
bit-identical by construction and verified by the property suite.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from functools import lru_cache
from typing import List, Optional

import numpy as np

from . import ENV_KERNEL_CACHE, NativeUnavailable

NAME = "cc"

_P = (1 << 127) - 1
_M32 = 0xFFFFFFFF
_TOP = 0x7FFFFFFF

# ---------------------------------------------------------------------------
# C source.  Tables are interpolated from the from-scratch AES module so
# the compiled cipher shares its single source of truth (and its
# FIPS-197 derivation) with the scalar oracle.  @TOKENS@ are substituted
# rather than str.format because C is brace-dense.
# ---------------------------------------------------------------------------

_C_SOURCE_TEMPLATE = r"""
#include <stdint.h>
#include <string.h>

typedef unsigned __int128 u128;
typedef uint64_t u64;
typedef uint32_t u32;
typedef uint8_t u8;

#define MASK32 0xFFFFFFFFull
#define P0 0xFFFFFFFFFFFFFFFFull
#define P1 0x7FFFFFFFFFFFFFFFull

/* ----- GF(2^127 - 1): shift-add Mersenne folding on 64-bit words ----- */

/* Reduce a 256-bit value w0..w3 (little-endian 64-bit words, requires
 * w3 < 2^63) into canonical words r0 (low) / r1 (high, < 2^63).
 * Two folds v -> (v mod 2^127) + (v >> 127), then one conditional
 * subtract of p; maps v == p to 0 like the NumPy canonicalizer. */
static inline void red256(u64 w0, u64 w1, u64 w2, u64 w3, u64 *r0, u64 *r1) {
    u64 lo0 = w0, lo1 = w1 & P1;
    u64 h0 = (w1 >> 63) | (w2 << 1);
    u64 h1 = (w2 >> 63) | (w3 << 1);
    u128 s = (u128)lo0 + h0;
    u64 s0 = (u64)s;
    u128 c = (s >> 64) + lo1 + h1;   /* value = s0 + c*2^64, c < 2^65 */
    u64 hi2 = (u64)(c >> 63);        /* value >> 127, <= 3 */
    u64 lo2_1 = (u64)c & P1;
    u128 t = (u128)s0 + hi2;
    u64 t0 = (u64)t;
    u64 t1 = lo2_1 + (u64)(t >> 64); /* value now <= p + 4 */
    if (t1 > P1 || (t1 == P1 && t0 == P0)) {
        u128 v = ((u128)t1 << 64) | t0;
        v -= ((u128)P1 << 64) | P0;
        t0 = (u64)v;
        t1 = (u64)(v >> 64);
    }
    *r0 = t0;
    *r1 = t1;
}

/* a * b mod p for canonical 127-bit operands given as 64-bit word
 * pairs (a1, b1 < 2^63): four partial products recombined into a
 * 256-bit value (w3 < 2^62), then red256. */
static inline void mul_red127(u64 a0, u64 a1, u64 b0, u64 b1,
                              u64 *r0, u64 *r1) {
    u128 p00 = (u128)a0 * b0;
    u128 p01 = (u128)a0 * b1;
    u128 p10 = (u128)a1 * b0;
    u128 p11 = (u128)a1 * b1;
    u64 w0 = (u64)p00;
    u128 mid = (p00 >> 64) + p01 + p10;  /* < 2^128 - 2^65 + 1: exact */
    u64 w1 = (u64)mid;
    u128 hi = (mid >> 64) + p11;
    u64 w2 = (u64)hi;
    u64 w3 = (u64)(hi >> 64);
    red256(w0, w1, w2, w3, r0, r1);
}

/* Canonicalize up to eight 32-bit limbs (value < 2^256, top word of
 * the packed 256-bit form < 2^63) into four canonical output limbs. */
static inline void limbs8_canon(const u64 *l, u64 *out) {
    u64 w0 = l[0] | (l[1] << 32);
    u64 w1 = l[2] | (l[3] << 32);
    u64 w2 = l[4] | (l[5] << 32);
    u64 w3 = l[6] | (l[7] << 32);
    u64 r0, r1;
    red256(w0, w1, w2, w3, &r0, &r1);
    out[0] = r0 & MASK32;
    out[1] = r0 >> 32;
    out[2] = r1 & MASK32;
    out[3] = r1 >> 32;
}

/* Canonicalize four u128 accumulator columns (limb k weighted by
 * 2^(32k), each column < 2^124 so the total is < 2^221). */
static inline void cols4_canon(u128 a0, u128 a1, u128 a2, u128 a3,
                               u64 *out) {
    u128 cols[4];
    u64 l[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    u128 carry = 0;
    int i;
    cols[0] = a0; cols[1] = a1; cols[2] = a2; cols[3] = a3;
    for (i = 0; i < 4; i++) {
        carry += cols[i];
        l[i] = (u64)carry & MASK32;
        carry >>= 32;
    }
    for (; i < 8 && carry; i++) {
        l[i] = (u64)carry & MASK32;
        carry >>= 32;
    }
    limbs8_canon(l, out);
}

/* dot: coeffs are uint64 ring residues, wl is (m, 4) canonical limb
 * rows and wt the same weights transposed to four contiguous u32
 * columns.  An OR-scan bounds the coefficient magnitude (vectorizable,
 * and an upper bound is all the path choice needs — both paths are
 * exact): when every coefficient fits in u32 (the (u32) cast below is
 * value-preserving) and bound * (2^32-1) * m < 2^64 whole products
 * accumulate in u64 lanes as vectorizable 32x32 multiplies, otherwise
 * coeff * limb < 2^96 with m < 2^28 keeps u128 column accumulators
 * exact (< 2^124). */
void secndp_dot(const u64 *coeffs, long long n, long long m,
                const u64 *wl, const u32 *wt, u64 *out) {
    long long total = n * m, i, j;
    u64 orv = 0;
    for (i = 0; i < total; i++)
        orv |= coeffs[i];
    if (orv <= MASK32 && (u128)orv * MASK32 * (u128)m < ((u128)1 << 64)) {
        const u32 *w0 = wt, *w1 = wt + m, *w2 = wt + 2 * m, *w3 = wt + 3 * m;
        for (i = 0; i < n; i++) {
            const u64 *c = coeffs + i * m;
            u64 a0 = 0, a1 = 0, a2 = 0, a3 = 0;
            for (j = 0; j < m; j++) {
                u64 cj = (u32)c[j];
                a0 += cj * w0[j];
                a1 += cj * w1[j];
                a2 += cj * w2[j];
                a3 += cj * w3[j];
            }
            cols4_canon((u128)a0, (u128)a1, (u128)a2, (u128)a3, out + 4 * i);
        }
        return;
    }
    for (i = 0; i < n; i++) {
        const u64 *c = coeffs + i * m;
        u128 a0 = 0, a1 = 0, a2 = 0, a3 = 0;
        for (j = 0; j < m; j++) {
            u128 cj = c[j];
            const u64 *w = wl + 4 * j;
            a0 += cj * w[0];
            a1 += cj * w[1];
            a2 += cj * w[2];
            a3 += cj * w[3];
        }
        cols4_canon(a0, a1, a2, a3, out + 4 * i);
    }
}

/* Elementwise (or scalar-broadcast) canonical-limb multiply. */
void secndp_mul(const u64 *a, const u64 *b, long long n, int b_scalar,
                u64 *out) {
    u64 sb0 = 0, sb1 = 0;
    long long i;
    if (b_scalar) {
        sb0 = b[0] | (b[1] << 32);
        sb1 = b[2] | (b[3] << 32);
    }
    for (i = 0; i < n; i++) {
        const u64 *ai = a + 4 * i;
        u64 a0 = ai[0] | (ai[1] << 32), a1 = ai[2] | (ai[3] << 32);
        u64 b0, b1, r0, r1;
        u64 *o = out + 4 * i;
        if (b_scalar) {
            b0 = sb0;
            b1 = sb1;
        } else {
            const u64 *bi = b + 4 * i;
            b0 = bi[0] | (bi[1] << 32);
            b1 = bi[2] | (bi[3] << 32);
        }
        mul_red127(a0, a1, b0, b1, &r0, &r1);
        o[0] = r0 & MASK32;
        o[1] = r0 >> 32;
        o[2] = r1 & MASK32;
        o[3] = r1 >> 32;
    }
}

/* Reduce unnormalized limb columns (k <= 6, each column < 2^63, so the
 * packed value stays < 2^224) to canonical limbs. */
void secndp_fold(const u64 *cols, long long n, int k, u64 *out) {
    long long i;
    int j;
    for (i = 0; i < n; i++) {
        const u64 *c = cols + i * k;
        u64 l[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        u128 carry = 0;
        for (j = 0; j < k; j++) {
            carry += c[j];
            l[j] = (u64)carry & MASK32;
            carry >>= 32;
        }
        for (; j < 8 && carry; j++) {
            l[j] = (u64)carry & MASK32;
            carry >>= 32;
        }
        limbs8_canon(l, out + 4 * i);
    }
}

/* Row-wise Horner: acc = acc * s + M[i, j] mod p, canonical per step
 * (bit-identical to the NumPy tier, which also reduces per column). */
void secndp_horner(const u64 *matrix, long long n, long long m,
                   u64 s0, u64 s1, u64 *out) {
    long long i, j;
    for (i = 0; i < n; i++) {
        const u64 *row = matrix + i * m;
        u64 acc0 = 0, acc1 = 0;
        u64 *o = out + 4 * i;
        for (j = 0; j < m; j++) {
            u64 r0, r1, v0, v1;
            u128 t;
            mul_red127(acc0, acc1, s0, s1, &r0, &r1);
            t = (u128)r0 + row[j];
            v0 = (u64)t;
            v1 = r1 + (u64)(t >> 64);   /* <= 2^63: one subtract settles */
            if (v1 > P1 || (v1 == P1 && v0 == P0)) {
                u128 v = ((u128)v1 << 64) | v0;
                v -= ((u128)P1 << 64) | P0;
                v0 = (u64)v;
                v1 = (u64)(v >> 64);
            }
            acc0 = v0;
            acc1 = v1;
        }
        o[0] = acc0 & MASK32;
        o[1] = acc0 >> 32;
        o[2] = acc1 & MASK32;
        o[3] = acc1 >> 32;
    }
}

/* ----- AES-128 (FIPS-197), T-table formulation ----- */

static const u8 AES_SBOX[256] = { @SBOX@ };
static const u8 AES_MUL2[256] = { @MUL2@ };
static const u8 AES_MUL3[256] = { @MUL3@ };
static const u8 AES_SHIFT[16] = { @SHIFT@ };

/* T-tables fold SubBytes + MixColumns into four 32-bit lookups per
 * column; built once from the byte tables above.  Words are assembled
 * byte-wise, so the only endianness assumption is the little-endian
 * memcpy between the u32 column words and the byte state below —
 * covered by the load-time FIPS vector self-test. */
static u32 T0[256], T1[256], T2[256], T3[256];
static int t_ready = 0;

static void build_tables(void) {
    int x;
    for (x = 0; x < 256; x++) {
        u32 s = AES_SBOX[x], s2 = AES_MUL2[s], s3 = AES_MUL3[s];
        T0[x] = s2 | (s << 8) | (s << 16) | (s3 << 24);
        T1[x] = s3 | (s2 << 8) | (s << 16) | (s << 24);
        T2[x] = s | (s3 << 8) | (s2 << 16) | (s << 24);
        T3[x] = s | (s << 8) | (s3 << 16) | (s2 << 24);
    }
    t_ready = 1;
}

/* Encrypt n 16-byte blocks under pre-expanded round keys (176 bytes). */
void secndp_aes128_blocks(const u8 *rk, const u8 *in, long long n,
                          u8 *out) {
    u32 rk32[44];
    long long b;
    int r, c, i;
    if (!t_ready)
        build_tables();
    memcpy(rk32, rk, 176);
    for (b = 0; b < n; b++) {
        const u8 *x = in + 16 * b;
        u8 *o = out + 16 * b;
        u8 s[16];
        u32 w[4];
        for (i = 0; i < 16; i++)
            s[i] = x[i] ^ rk[i];
        for (r = 1; r < 10; r++) {
            for (c = 0; c < 4; c++)
                w[c] = T0[s[AES_SHIFT[4 * c]]]
                     ^ T1[s[AES_SHIFT[4 * c + 1]]]
                     ^ T2[s[AES_SHIFT[4 * c + 2]]]
                     ^ T3[s[AES_SHIFT[4 * c + 3]]]
                     ^ rk32[4 * r + c];
            memcpy(s, w, 16);
        }
        for (i = 0; i < 16; i++)
            o[i] = AES_SBOX[s[AES_SHIFT[i]]] ^ rk[160 + i];
    }
}
"""


def _render_source() -> str:
    from ..crypto import aes as _aes

    def fmt(seq) -> str:
        return ", ".join(str(int(v)) for v in seq)

    return (
        _C_SOURCE_TEMPLATE.replace("@SBOX@", fmt(_aes.SBOX))
        .replace("@MUL2@", fmt(_aes._MUL2))
        .replace("@MUL3@", fmt(_aes._MUL3))
        .replace("@SHIFT@", fmt(_aes._SHIFT_ROWS_PERM))
    )


# ---------------------------------------------------------------------------
# Build and load.
# ---------------------------------------------------------------------------


def _cache_dir() -> str:
    override = os.environ.get(ENV_KERNEL_CACHE, "").strip()
    candidates = [override] if override else []
    candidates.append(os.path.join(os.path.expanduser("~"), ".cache", "secndp-kernels"))
    candidates.append(os.path.join(tempfile.gettempdir(), "secndp-kernels"))
    for path in candidates:
        try:
            os.makedirs(path, exist_ok=True)
            return path
        except OSError:
            continue
    raise NativeUnavailable("no writable kernel cache directory")


def _find_compiler() -> str:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    raise NativeUnavailable("no C compiler found (set CC or install gcc/clang)")


def _build() -> str:
    """Compile (or reuse) the shared library; returns its path.

    The filename is content-addressed by the rendered source, so any
    kernel change compiles to a fresh object and stale caches are
    simply never hit.  The compile lands under a temp name and is
    os.replace'd in, which keeps concurrent spawn-pool workers safe:
    they either see the finished .so or compile their own and race
    benignly on the rename.
    """
    source = _render_source()
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"secndp_{digest}.so")
    if os.path.exists(so_path):
        return so_path
    cc = _find_compiler()
    c_path = os.path.join(cache, f"secndp_{digest}.c")
    fd, tmp_c = tempfile.mkstemp(suffix=".c", dir=cache)
    with os.fdopen(fd, "w") as fh:
        fh.write(source)
    os.replace(tmp_c, c_path)
    tmp_so = os.path.join(cache, f".build_{digest}_{os.getpid()}.so")
    last_err = ""
    # -march=native unlocks vectorized 32x32 multiplies for the small
    # dot path but is not universally accepted; plain -O3 is the retry.
    for extra in (["-march=native"], []):
        cmd = [cc, "-O3", "-fPIC", "-shared", *extra, "-o", tmp_so, c_path]
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            last_err = str(exc)
            continue
        if proc.returncode == 0:
            os.replace(tmp_so, so_path)
            return so_path
        last_err = (proc.stderr or proc.stdout or "").strip()[-500:]
    if os.path.exists(tmp_so):
        try:
            os.remove(tmp_so)
        except OSError:
            pass
    raise NativeUnavailable(f"kernel compile failed with {cc}: {last_err}")


_U64P = ctypes.POINTER(ctypes.c_uint64)
_U32P = ctypes.POINTER(ctypes.c_uint32)
_U8P = ctypes.POINTER(ctypes.c_uint8)
_LL = ctypes.c_longlong


def _load() -> ctypes.CDLL:
    try:
        lib = ctypes.CDLL(_build())
    except OSError as exc:
        raise NativeUnavailable(f"kernel library failed to load: {exc}") from exc
    lib.secndp_dot.argtypes = [_U64P, _LL, _LL, _U64P, _U32P, _U64P]
    lib.secndp_dot.restype = None
    lib.secndp_mul.argtypes = [_U64P, _U64P, _LL, ctypes.c_int, _U64P]
    lib.secndp_mul.restype = None
    lib.secndp_fold.argtypes = [_U64P, _LL, ctypes.c_int, _U64P]
    lib.secndp_fold.restype = None
    lib.secndp_horner.argtypes = [_U64P, _LL, _LL, ctypes.c_uint64, ctypes.c_uint64, _U64P]
    lib.secndp_horner.restype = None
    lib.secndp_aes128_blocks.argtypes = [_U8P, _U8P, _LL, _U8P]
    lib.secndp_aes128_blocks.restype = None
    return lib


def _u64p(arr: np.ndarray):
    return arr.ctypes.data_as(_U64P)


def _u32p(arr: np.ndarray):
    return arr.ctypes.data_as(_U32P)


def _u8p(arr: np.ndarray):
    return arr.ctypes.data_as(_U8P)


# ---------------------------------------------------------------------------
# Wrappers.  Each returns None outside its contract so the dispatch
# sites fall through to the NumPy tier.
# ---------------------------------------------------------------------------


def _canonical_limbs(arr: np.ndarray) -> bool:
    """Limb-bound check so 64-bit word packing is value-faithful."""
    if arr.size == 0:
        return True
    return bool(
        int(arr[..., :3].max()) <= _M32 and int(arr[..., 3].max()) <= _TOP
    )


def dot(coeffs: np.ndarray, weight_limbs: np.ndarray) -> Optional[np.ndarray]:
    """``sum_j coeffs[..., j] * W[j] mod q`` -> canonical ``(..., 4)`` limbs."""
    c = np.ascontiguousarray(coeffs, dtype=np.uint64)
    w = np.ascontiguousarray(weight_limbs, dtype=np.uint64)
    if w.ndim != 2 or w.shape[1] != 4 or c.shape[-1] != w.shape[0]:
        return None
    if not _canonical_limbs(w):
        return None
    m = w.shape[0]
    flat = c.reshape(-1, m)
    n = flat.shape[0]
    out = np.empty((n, 4), dtype=np.uint64)
    if n == 0 or m == 0:
        out[:] = 0
    else:
        # Transposed u32 weight columns for the vectorized small path;
        # (m, 4) -> (4, m) is tiny next to the (n, m) sweep.
        wt = np.ascontiguousarray(w.T & np.uint64(_M32), dtype=np.uint32)
        _lib.secndp_dot(_u64p(flat), n, m, _u64p(w), _u32p(wt), _u64p(out))
    return out.reshape(c.shape[:-1] + (4,))


def mul(a: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
    """Elementwise / scalar-broadcast canonical-limb product."""
    a = np.ascontiguousarray(a, dtype=np.uint64)
    b = np.ascontiguousarray(b, dtype=np.uint64)
    if a.shape[-1:] != (4,) or b.shape[-1:] != (4,):
        return None
    if not (_canonical_limbs(a) and _canonical_limbs(b)):
        return None
    if b.ndim == 1:
        shape, flat, other, b_scalar = a.shape, a.reshape(-1, 4), b, 1
    elif a.ndim == 1:
        # Commutative: broadcast a over b instead.
        shape, flat, other, b_scalar = b.shape, b.reshape(-1, 4), a, 1
    elif a.shape == b.shape:
        shape, flat, other, b_scalar = a.shape, a.reshape(-1, 4), b.reshape(-1, 4), 0
    else:
        return None
    out = np.empty_like(flat)
    if flat.shape[0]:
        _lib.secndp_mul(_u64p(flat), _u64p(other), flat.shape[0], b_scalar, _u64p(out))
    return out.reshape(shape)


def fold(values: np.ndarray) -> Optional[np.ndarray]:
    """Reduce ``(..., K)`` columns (2 <= K <= 6, columns < 2^63) to limbs."""
    v = np.ascontiguousarray(values, dtype=np.uint64)
    if v.ndim == 0 or not 2 <= v.shape[-1] <= 6:
        return None
    k = v.shape[-1]
    flat = v.reshape(-1, k)
    out = np.empty((flat.shape[0], 4), dtype=np.uint64)
    if flat.shape[0]:
        _lib.secndp_fold(_u64p(flat), flat.shape[0], k, _u64p(out))
    return out.reshape(v.shape[:-1] + (4,))


def horner(matrix: np.ndarray, s_limbs: np.ndarray) -> Optional[np.ndarray]:
    """Row-wise Horner sweep for a single canonical evaluation point."""
    m_arr = np.ascontiguousarray(matrix, dtype=np.uint64)
    s = np.ascontiguousarray(s_limbs, dtype=np.uint64)
    if m_arr.ndim != 2 or s.shape != (4,) or not _canonical_limbs(s):
        return None
    n, m = m_arr.shape
    s0 = int(s[0]) | (int(s[1]) << 32)
    s1 = int(s[2]) | (int(s[3]) << 32)
    out = np.zeros((n, 4), dtype=np.uint64)
    if n and m:
        _lib.secndp_horner(_u64p(m_arr), n, m, s0, s1, _u64p(out))
    return out


@lru_cache(maxsize=64)
def _round_key_bytes(key: bytes) -> np.ndarray:
    from ..crypto.aes import _expand_key

    return np.frombuffer(b"".join(_expand_key(key)), dtype=np.uint8)


def aes_blocks(key: bytes, blocks: np.ndarray) -> Optional[np.ndarray]:
    """Encrypt validated ``(n, 16)`` uint8 blocks under an AES-128 key."""
    blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        return None
    rk = _round_key_bytes(bytes(key))
    out = np.empty_like(blocks)
    if blocks.shape[0]:
        _lib.secndp_aes128_blocks(
            _u8p(rk), _u8p(blocks), blocks.shape[0], _u8p(out)
        )
    return out


def warmup() -> None:
    """Touch every kernel once on tiny inputs (builds the AES T-tables)."""
    w = np.array([[3, 0, 0, 0], [5, 0, 0, 0]], dtype=np.uint64)
    dot(np.array([[1, 2]], dtype=np.uint64), w)
    dot(np.array([[1 << 40, 2]], dtype=np.uint64), w)
    a = np.array([[9, 0, 0, 0]], dtype=np.uint64)
    mul(a, np.array([7, 0, 0, 0], dtype=np.uint64))
    fold(np.array([[1, 2, 3, 4, 5]], dtype=np.uint64))
    horner(np.array([[1, 2, 3]], dtype=np.uint64), np.array([2, 0, 0, 0], dtype=np.uint64))
    aes_blocks(bytes(16), np.zeros((1, 16), dtype=np.uint8))


# ---------------------------------------------------------------------------
# Load-time self-test: big-int cross-checks of every field kernel plus
# the FIPS-197 Appendix B vector.  Any mismatch (including an
# endianness surprise in the T-table memcpy) raises NativeUnavailable
# so dispatch falls back to the NumPy tier instead of serving wrong
# bits.
# ---------------------------------------------------------------------------


def _limbs_of(values: List[int]) -> np.ndarray:
    out = np.zeros((len(values), 4), dtype=np.uint64)
    for i, v in enumerate(values):
        v %= _P
        for k in range(4):
            out[i, k] = (v >> (32 * k)) & _M32
    return out


def _ints_of(limbs: np.ndarray) -> List[int]:
    arr = np.asarray(limbs, dtype=np.uint64).reshape(-1, 4)
    return [
        int(r[0]) | (int(r[1]) << 32) | (int(r[2]) << 64) | (int(r[3]) << 96)
        for r in arr
    ]


def _self_test() -> None:
    ws = [3, _P - 1, (1 << 100) + 17, 5]
    wl = _limbs_of(ws)
    coeffs = np.array(
        [[1, (1 << 64) - 1, 12345, (1 << 63) - 7], [9, 8, 7, 6], [0, 0, 0, 0]],
        dtype=np.uint64,
    )
    got = _ints_of(dot(coeffs, wl))
    want = [sum(int(c) * w for c, w in zip(row, ws)) % _P for row in coeffs]
    if got != want:
        raise NativeUnavailable("self-test failed: dot (general path)")
    small = np.array([[250, 3, 0, 199]], dtype=np.uint64)
    got = _ints_of(dot(small, wl))
    want = [sum(int(c) * w for c, w in zip(small[0], ws)) % _P]
    if got != want:
        raise NativeUnavailable("self-test failed: dot (small path)")

    av, bv = [_P - 2, 123, _P], [(1 << 126) + 3, _P - 1, 7]
    got = _ints_of(mul(_limbs_of(av), _limbs_of(bv)))
    if got != [(x % _P) * (y % _P) % _P for x, y in zip(av, bv)]:
        raise NativeUnavailable("self-test failed: mul")

    cols = [1 << 62, 3, 0, (1 << 62) + 5, 11]
    got = _ints_of(fold(np.array([cols], dtype=np.uint64)))
    if got != [sum(c << (32 * k) for k, c in enumerate(cols)) % _P]:
        raise NativeUnavailable("self-test failed: fold")

    s = (1 << 101) + 9
    hm = np.array([[5, (1 << 64) - 1, 7], [0, 1, 2]], dtype=np.uint64)
    got = _ints_of(horner(hm, _limbs_of([s])[0]))
    want = []
    for row in hm:
        acc = 0
        for v in row:
            acc = (acc * s + int(v)) % _P
        want.append(acc)
    if got != want:
        raise NativeUnavailable("self-test failed: horner")

    key = bytes(range(16))
    pt = np.frombuffer(bytes.fromhex("00112233445566778899aabbccddeeff"), dtype=np.uint8)
    ct = aes_blocks(key, pt.reshape(1, 16))
    if ct.tobytes().hex() != "69c4e0d86a7b0430d8cdb78070b4c55a":
        raise NativeUnavailable("self-test failed: AES-128 FIPS-197 vector")


_lib = _load()
_self_test()
