"""TEE (non-NDP, encrypted memory) baseline - "non-NDP Enc" of Table V.

A conventional secure processor without NDP: every fetched line is
counter-mode decrypted (OTP XOR - latency hidden by parallel pad
generation, but *throughput*-limited by the AES engines) and integrity-
checked against a MAC fetched from memory (one 8-byte MAC per line;
eight MACs share a line, so MAC traffic adds ~12.5%).

Execution time is ``max(memory time, AES pad-generation time)``; energy
adds the encryption-engine work to the memory totals, which is how Table
V's "non-NDP Enc" row gets its small premium over the unprotected
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memsim.timing import DDR4Timing, DramGeometry
from ..ndp.aes_engine import AesEngineModel
from ..ndp.packets import NdpWorkload
from ..ndp.verification import LINE_BYTES
from .non_ndp import NonNdpResult, run_non_ndp

__all__ = ["TeeResult", "run_tee"]

#: 8-byte SGX-style MAC per 64-byte line -> one extra line per 8 data lines.
MAC_BYTES_PER_LINE = 8


@dataclass(frozen=True)
class TeeResult:
    """Timing/traffic of the encrypted non-NDP baseline."""

    total_ns: float
    memory_ns: float
    otp_ns: float
    total_lines: int
    otp_blocks: int
    inner: NonNdpResult

    @property
    def decryption_bound(self) -> bool:
        return self.otp_ns > self.memory_ns


def run_tee(
    workload: NdpWorkload,
    aes: Optional[AesEngineModel] = None,
    timing: Optional[DDR4Timing] = None,
    geometry: Optional[DramGeometry] = None,
    with_integrity: bool = True,
    page_seed: int = 0,
) -> TeeResult:
    """Replay the workload under conventional TEE memory protection."""
    aes = aes or AesEngineModel(n_engines=2)
    # MAC traffic: amortised extra bytes per row.
    extra = 0
    if with_integrity:
        # one MAC per line of row data
        extra = MAC_BYTES_PER_LINE
    inner = run_non_ndp(
        workload,
        timing=timing,
        geometry=geometry,
        extra_bytes_per_row=extra,
        page_seed=page_seed,
    )
    otp_blocks = inner.total_bytes_on_bus // 16
    otp_ns = aes.otp_time_ns(otp_blocks)
    total_ns = max(inner.total_ns, otp_ns)
    return TeeResult(
        total_ns=total_ns,
        memory_ns=inner.total_ns,
        otp_ns=otp_ns,
        total_lines=inner.total_lines,
        otp_blocks=otp_blocks,
        inner=inner,
    )
