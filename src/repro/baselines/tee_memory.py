"""Functional conventional-TEE protected memory (Fig. 2 (a)/(b)).

The classic secure-processor memory path the paper builds on - and the
reason it needs a *new* encryption: each line is XORed with an encrypted
counter (counter-mode, Fig. 2(a)) and authenticated by a per-line MAC
bound to (address, version) (Fig. 2(b)), with versions protected by a
counter integrity tree.

Two facts the test suite demonstrates with this class:

* it provides exactly the confidentiality/integrity/anti-replay the
  threat model demands for a *non-computing* memory;
* XOR ciphertext is useless to an NDP unit - summing ciphertext lines
  does not commute with decryption, while SecNDP's ring-subtraction
  ciphertext does.  That contrast is the paper's core motivation
  (Sec. I: "current encryption schemes do not support computation over
  encrypted data").
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..crypto.aes import AES128, BLOCK_BYTES
from ..crypto.tweaked import DOMAIN_DATA, DOMAIN_TAG, CounterBlockLayout, TweakedCipher
from ..errors import ConfigurationError, VerificationError
from .integrity_tree import CounterIntegrityTree

__all__ = ["TeeProtectedMemory", "LINE_BYTES_TEE"]

LINE_BYTES_TEE = 64


class TeeProtectedMemory:
    """Line-granular counter-mode + MAC memory with tree-protected versions."""

    def __init__(self, key: bytes, n_lines: int, tree_arity: int = 8):
        if n_lines < 1:
            raise ConfigurationError("need at least one line")
        self.n_lines = n_lines
        self.cipher = TweakedCipher(key, CounterBlockLayout())
        self._aes = AES128(key)
        # Untrusted state: ciphertext lines and MACs.
        self._lines: Dict[int, bytes] = {}
        self._macs: Dict[int, int] = {}
        # Trusted-root counter tree over per-line versions.
        self.tree = CounterIntegrityTree(key, n_lines, arity=tree_arity)

    # -- internals -------------------------------------------------------------

    def _pad(self, line: int, version: int) -> bytes:
        blocks = []
        base = line * LINE_BYTES_TEE
        for i in range(LINE_BYTES_TEE // BLOCK_BYTES):
            blocks.append(
                self.cipher.encrypt_counter(DOMAIN_DATA, base + i * BLOCK_BYTES, version)
            )
        return b"".join(blocks)

    def _mac(self, line: int, version: int, ciphertext: bytes) -> int:
        """CBC-MAC over (addr, version, ciphertext) - Fig. 2(b)'s keyed MAC."""
        state = self.cipher.encrypt_counter_int(
            DOMAIN_TAG, line * LINE_BYTES_TEE, version
        )
        for i in range(0, len(ciphertext), BLOCK_BYTES):
            block = int.from_bytes(ciphertext[i : i + BLOCK_BYTES], "big")
            state = self._aes.encrypt_int(state ^ block)
        return state

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.n_lines:
            raise ConfigurationError(f"line {line} out of range [0, {self.n_lines})")

    # -- protected access --------------------------------------------------------

    def write(self, line: int, plaintext: bytes) -> None:
        self._check_line(line)
        if len(plaintext) != LINE_BYTES_TEE:
            raise ConfigurationError(f"lines are {LINE_BYTES_TEE} bytes")
        version = self.tree.read_verified(line) + 1
        self.tree.update(line, version)
        pad = self._pad(line, version)
        ciphertext = bytes(p ^ k for p, k in zip(plaintext, pad))
        self._lines[line] = ciphertext
        self._macs[line] = self._mac(line, version, ciphertext)

    def read(self, line: int) -> bytes:
        self._check_line(line)
        if line not in self._lines:
            raise ConfigurationError(f"line {line} never written")
        version = self.tree.read_verified(line)
        ciphertext = self._lines[line]
        if self._mac(line, version, ciphertext) != self._macs[line]:
            raise VerificationError(f"MAC mismatch on line {line}")
        pad = self._pad(line, version)
        return bytes(c ^ k for c, k in zip(ciphertext, pad))

    # -- attacker surface -------------------------------------------------------------

    def raw_ciphertext(self, line: int) -> bytes:
        """What a cold-boot attacker sees."""
        return self._lines[line]

    def tamper_ciphertext(self, line: int, byte_index: int, xor_mask: int) -> None:
        data = bytearray(self._lines[line])
        data[byte_index] ^= xor_mask
        self._lines[line] = bytes(data)

    def replay_line(self, line: int, old_ciphertext: bytes, old_mac: int) -> None:
        """Put back a stale (ciphertext, MAC) pair - both valid once."""
        self._lines[line] = old_ciphertext
        self._macs[line] = old_mac

    def snapshot_line(self, line: int) -> Tuple[bytes, int]:
        return self._lines[line], self._macs[line]
