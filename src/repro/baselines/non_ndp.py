"""Unprotected non-NDP baseline: the CPU pulls every row over the bus.

This is the "1x" reference of Table III and the blue bars of Fig. 7: all
queried rows cross the shared channel data bus into the processor, which
performs the pooling itself.  The workloads are memory-bandwidth-bound
(Sec. I), so execution time is the memory time; CPU arithmetic overlaps
under it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..memsim.dram import DramSystem
from ..memsim.timing import DDR4Timing, DramGeometry
from ..ndp.packets import NdpWorkload
from ..ndp.verification import LINE_BYTES

__all__ = ["NonNdpResult", "run_non_ndp"]


@dataclass(frozen=True)
class NonNdpResult:
    """Timing and traffic of one non-NDP replay."""

    total_ns: float
    total_lines: int
    total_bytes_on_bus: int
    dram: DramSystem


def run_non_ndp(
    workload: NdpWorkload,
    timing: Optional[DDR4Timing] = None,
    geometry: Optional[DramGeometry] = None,
    extra_bytes_per_row: int = 0,
    page_seed: int = 0,
) -> NonNdpResult:
    """Replay a pooling workload as plain CPU reads.

    Tables live at page-mapped logical addresses (the OS random-page
    model of Sec. VI-B); every row-read fetches the row's cache lines
    over the channel bus.  ``extra_bytes_per_row`` models per-row
    metadata a protected baseline would also fetch (e.g. MACs).
    """
    timing = timing or DDR4Timing()
    geometry = geometry or DramGeometry()
    dram = DramSystem(timing, geometry, page_seed=page_seed)
    workload.validate()

    # Lay tables out contiguously in logical space, line-aligned rows.
    table_bases = {}
    cursor = 0
    stride = {}
    for t in sorted(workload.tables):
        geo = workload.tables[t]
        row_bytes = geo.row_bytes + extra_bytes_per_row
        # Rows pack at their natural stride; sub-line rows share lines.
        stride[t] = row_bytes
        table_bases[t] = cursor
        cursor += -(-geo.n_rows * row_bytes // LINE_BYTES) * LINE_BYTES

    completion = 0
    total_lines = 0
    for q in workload.queries:
        geo = workload.tables[q.table]
        base = table_bases[q.table]
        for row in q.rows:
            start = base + row * stride[q.table]
            end = start + stride[q.table]
            first = start // LINE_BYTES
            last = (end - 1) // LINE_BYTES
            for line in range(first, last + 1):
                res = dram.access_logical(line * LINE_BYTES, at=0)
                completion = max(completion, res.completion_cycle)
                total_lines += 1
    total_ns = timing.cycles_to_ns(completion)
    if obs.enabled():
        obs.inc("baseline.lines", total_lines)
        dram.counters.publish()
    return NonNdpResult(
        total_ns=total_ns,
        total_lines=total_lines,
        total_bytes_on_bus=total_lines * LINE_BYTES,
        dram=dram,
    )
