"""Counter integrity tree - the conventional-TEE substrate SecNDP avoids.

Counter-mode memory protection must keep version counters fresh against
replay; processors without on-chip space for all counters protect them
with a Merkle-style tree whose root stays on-chip (Rogers et al. [62],
Intel SGX's MEE).  The paper contrasts this with SecNDP's software-managed
versions (Sec. V-A) and attributes SGX-CFL's collapse to the tree
(footnote 6).  This module supplies both halves of that argument:

* a **functional tree** (:class:`CounterIntegrityTree`): AES-CBC-MAC
  parent nodes over counter leaves, verify/update paths, on-chip root -
  so tests can demonstrate that leaf tampering and subtree replay are
  caught exactly when the threat model says they must be;
* a **cost model** (:meth:`extra_accesses_per_counter_miss`): how many
  additional memory touches a counter-cache miss costs, the quantity
  behind the MEE bandwidth factors of :mod:`repro.baselines.sgx`.
"""

from __future__ import annotations

import math
from typing import List

from ..crypto.aes import AES128, BLOCK_BYTES
from ..errors import ConfigurationError, VerificationError

__all__ = ["CounterIntegrityTree"]


class CounterIntegrityTree:
    """An arity-``k`` MAC tree over version counters.

    Leaves hold 64-bit counters; each internal node is a CBC-MAC (under
    the processor key) of its children, and the root lives "on chip"
    (plain attribute, but semantically trusted - tests never let the
    adversary touch it).
    """

    def __init__(self, key: bytes, n_counters: int, arity: int = 8):
        if n_counters < 1:
            raise ConfigurationError("need at least one counter")
        if arity < 2:
            raise ConfigurationError("tree arity must be >= 2")
        self._aes = AES128(key)
        self.arity = arity
        self.n_counters = n_counters
        # levels[0] = leaves (counters); levels[-1] = single root MAC.
        self.levels: List[List[int]] = [[0] * n_counters]
        width = n_counters
        while width > 1:
            width = -(-width // arity)
            self.levels.append([0] * width)
        self._rebuild_all()

    # -- structure ---------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of levels above the leaves."""
        return len(self.levels) - 1

    @property
    def root(self) -> int:
        return self.levels[-1][0]

    def _children(self, level: int, index: int) -> List[int]:
        child_level = self.levels[level - 1]
        start = index * self.arity
        return child_level[start : start + self.arity]

    def _node_mac(self, level: int, index: int) -> int:
        """CBC-MAC over (level, index, children) under the tree key."""
        state = ((level & 0xFF) << 120) | (index & ((1 << 64) - 1))
        for child in self._children(level, index):
            block = (state ^ child) & ((1 << 128) - 1)
            state = self._aes.encrypt_int(block)
        return state

    def _rebuild_all(self) -> None:
        for level in range(1, len(self.levels)):
            for index in range(len(self.levels[level])):
                self.levels[level][index] = self._node_mac(level, index)

    # -- operations ------------------------------------------------------------------

    def update(self, counter_index: int, value: int) -> None:
        """Write a counter and refresh its path to the root."""
        self._check_index(counter_index)
        self.levels[0][counter_index] = value
        index = counter_index
        for level in range(1, len(self.levels)):
            index //= self.arity
            self.levels[level][index] = self._node_mac(level, index)

    def read_verified(self, counter_index: int) -> int:
        """Read a counter, verifying its path against the on-chip root."""
        self._check_index(counter_index)
        index = counter_index
        for level in range(1, len(self.levels)):
            index //= self.arity
            expected = self._node_mac(level, index)
            stored = self.levels[level][index]
            if stored != expected:
                raise VerificationError(
                    f"integrity-tree mismatch at level {level}, node {index}"
                )
        return self.levels[0][counter_index]

    def _check_index(self, counter_index: int) -> None:
        if not 0 <= counter_index < self.n_counters:
            raise ConfigurationError(
                f"counter {counter_index} out of range [0, {self.n_counters})"
            )

    # -- adversarial access (the attacker owns all levels except the root) -------------

    def tamper_leaf(self, counter_index: int, value: int) -> None:
        self.levels[0][counter_index] = value

    def tamper_node(self, level: int, index: int, value: int) -> None:
        if level >= len(self.levels) - 1:
            raise ConfigurationError("the root is on-chip; attacker cannot reach it")
        self.levels[level][index] = value

    def replay_subtree(self, counter_index: int, snapshot: dict) -> None:
        """Restore a previously captured leaf-to-(root-1) path."""
        for (level, index), value in snapshot.items():
            if level >= len(self.levels) - 1:
                continue  # root not replayable
            self.levels[level][index] = value

    def snapshot_path(self, counter_index: int) -> dict:
        """Capture a counter's authentication path (attacker's transcript)."""
        out = {(0, counter_index): self.levels[0][counter_index]}
        index = counter_index
        for level in range(1, len(self.levels)):
            index //= self.arity
            out[(level, index)] = self.levels[level][index]
        return out

    # -- cost model ---------------------------------------------------------------------

    def extra_accesses_per_counter_miss(self, cached_levels: int = 1) -> int:
        """Memory touches to verify one counter when the top
        ``cached_levels`` tree levels are held in the on-chip metadata
        cache (the root is always on-chip and free)."""
        if cached_levels < 0:
            raise ConfigurationError("cached_levels must be >= 0")
        walk = self.depth - cached_levels
        return max(walk, 0) + 1  # +1: the counter leaf itself

    @staticmethod
    def depth_for(n_counters: int, arity: int = 8) -> int:
        """Closed-form depth without building a tree (sizing studies)."""
        if n_counters <= 1:
            return 0
        return math.ceil(math.log(n_counters, arity))
