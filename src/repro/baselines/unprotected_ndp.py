"""Unprotected NDP baseline - the red bars of Fig. 7.

Simply the NDP simulator with no SecNDP engine attached: packet latency
is the DRAM-side latency alone.  Shares :class:`NdpRunResult` with the
SecNDP path so comparisons use the very same packet stream, matching the
paper's claim that SecNDP leaves NDP traffic unchanged.
"""

from __future__ import annotations

from typing import Optional

from ..memsim.timing import DDR4Timing, DramGeometry
from ..ndp.packets import NdpWorkload
from ..ndp.simulator import NdpConfig, NdpRunResult, NdpSimulator

__all__ = ["run_unprotected_ndp"]


def run_unprotected_ndp(
    workload: NdpWorkload,
    ndp_ranks: int = 8,
    ndp_regs: int = 8,
    timing: Optional[DDR4Timing] = None,
    geometry: Optional[DramGeometry] = None,
) -> NdpRunResult:
    """Replay the workload on plain NDP hardware (no encryption)."""
    config = NdpConfig(ndp_ranks=ndp_ranks, ndp_regs=ndp_regs)
    sim = NdpSimulator(config, timing=timing, geometry=geometry)
    return sim.run(workload)
