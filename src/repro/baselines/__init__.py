"""Baselines the paper compares against: non-NDP, TEE, SGX, plain NDP."""

from .integrity_tree import CounterIntegrityTree
from .non_ndp import NonNdpResult, run_non_ndp
from .sgx import SGX_CFL, SGX_ICL, SgxMachine, sgx_slowdown
from .tee import TeeResult, run_tee
from .tee_memory import TeeProtectedMemory
from .unprotected_ndp import run_unprotected_ndp

__all__ = [
    "CounterIntegrityTree",
    "NonNdpResult",
    "run_non_ndp",
    "SGX_CFL",
    "SGX_ICL",
    "SgxMachine",
    "sgx_slowdown",
    "TeeResult",
    "TeeProtectedMemory",
    "run_tee",
    "run_unprotected_ndp",
]
