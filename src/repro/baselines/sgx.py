"""Analytic Intel SGX models - the SGX-CFL / SGX-ICL rows of Table III.

The paper measures two SGX generations:

* **CoffeeLake (CFL)** - 168 MB EPC protected by an integrity tree.
  Working sets beyond the EPC cause EPC paging (encrypt + evict +
  re-load + tree update per 4 KB page), which is catastrophic for GB-sized
  embedding tables: the paper observes 6x-300x slowdowns.  Even inside
  the EPC, the Memory Encryption Engine's tree walks cut effective
  memory bandwidth severalfold for memory-bound code.
* **IceLake (ICL)** - total memory encryption without an integrity tree:
  no paging cliff and a milder bandwidth tax (paper: 1.8x-2.6x slowdown
  memory-bound, ~5% when cache-resident).

We model the *mechanisms* (EPC capacity -> paging rate -> page-fault
cost; MEE bandwidth factor) rather than hard-coding the paper's ratios;
the default constants are calibrated so the paper's observed slowdowns
fall out of the mechanism at paper-scale working sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["SgxMachine", "SGX_CFL", "SGX_ICL", "sgx_slowdown"]


@dataclass(frozen=True)
class SgxMachine:
    """Parameters of one SGX-capable machine."""

    name: str
    epc_bytes: int
    has_integrity_tree: bool
    #: bandwidth-degradation factor for memory-bound phases inside EPC
    mee_bandwidth_factor: float
    #: slowdown for cache-resident phases (enclave transition overheads)
    cache_resident_factor: float
    #: cost of one EPC page fault (evict + load + crypto), nanoseconds
    page_fault_ns: float = 3800.0
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.epc_bytes <= 0 or self.mee_bandwidth_factor < 1.0:
            raise ConfigurationError("invalid SGX machine parameters")


#: Xeon E-2288G CoffeeLake: 168 MB EPC with integrity tree (Sec. VI-B).
SGX_CFL = SgxMachine(
    name="SGX-CFL",
    epc_bytes=168 * (1 << 20),
    has_integrity_tree=True,
    mee_bandwidth_factor=5.75,
    cache_resident_factor=1.10,
)

#: Xeon Platinum 8370C IceLake: 96 GB EPC, no integrity tree.
SGX_ICL = SgxMachine(
    name="SGX-ICL",
    epc_bytes=96 * (1 << 30),
    has_integrity_tree=False,
    mee_bandwidth_factor=1.72,
    cache_resident_factor=1.05,
)


def sgx_slowdown(
    machine: SgxMachine,
    working_set_bytes: int,
    bytes_touched: int,
    baseline_ns: float,
    access_locality_bytes: int = 128,
) -> float:
    """Estimated execution time (ns) of a memory-bound phase under SGX.

    Parameters
    ----------
    working_set_bytes:
        Resident footprint (e.g. total embedding-table size).
    bytes_touched:
        Bytes the phase actually reads (traffic).
    baseline_ns:
        Unprotected execution time of the same phase.
    access_locality_bytes:
        Bytes consumed per random access (a row-read); determines how
        many distinct pages a given amount of traffic touches when the
        working set doesn't fit (sparse lookups touch a fresh page almost
        every access; streaming touches each page once).
    """
    if working_set_bytes <= machine.epc_bytes or not machine.has_integrity_tree:
        factor = machine.mee_bandwidth_factor
        if not machine.has_integrity_tree and working_set_bytes > machine.epc_bytes:
            # ICL working sets beyond EPC page like normal memory; EPC is
            # 96 GB so this branch is theoretical at paper scale.
            factor *= 1.5
        return baseline_ns * factor

    # Integrity-tree machine with an oversubscribed EPC: paging dominates.
    miss_rate = 1.0 - machine.epc_bytes / working_set_bytes
    accesses = max(bytes_touched // access_locality_bytes, 1)
    # Sparse accesses over an oversubscribed EPC fault at page granularity:
    # an access faults when its page is not resident.  With random rows the
    # page reuse within a batch is negligible, so the fault count tracks
    # the number of accesses times the miss rate.
    pages_faulted = accesses * miss_rate
    paging_ns = pages_faulted * machine.page_fault_ns
    return baseline_ns * machine.mee_bandwidth_factor + paging_ns
