"""SLO-aware admission control for the batching front-end.

The scheduler has two levers when demand exceeds capacity, and this
module decides when to pull each (DESIGN.md Sec. 15):

1. **Shed load** — fast-reject new requests with a typed ``overloaded``
   response.  Triggered by a hard queue-depth cap (deterministic
   backpressure: a full pending queue means the executor is already
   saturated) or by a *critical* SLO burn (the latency error budget is
   being consumed at ≥ :data:`~repro.obs.slo.BURN_CRITICAL` times the
   provisioned rate — the classic fast-burn paging threshold).
2. **Resize the batch window** — a burning-but-not-critical objective
   halves ``max_wait_us`` (smaller batches, lower queueing delay, less
   amortization); a healthy objective widens it back multiplicatively
   toward the configured maximum (more coalescing per
   ``sls_many`` call — the throughput lever).

The latency signal is the server's own end-to-end request latency
(submit → response), recorded into a bounded sliding window of
observations and evaluated against a parsed :class:`~repro.obs.slo.SloSpec`
(``serve.latency.p99 < 50ms @ 5%`` by default) — the same spec grammar,
budget semantics and burn arithmetic as ``repro obs report``, so the
gate and the report can never disagree about what "past budget" means.
Evaluations run every ``eval_every`` requests, not per request; between
evaluations the controller's decisions are pure reads.

The controller keeps its own counters (deterministic, always on) and
mirrors them into :mod:`repro.obs` when metrics are enabled, so tests
and benches never depend on the global registry toggle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, Optional, Union
from collections import deque

from .. import obs
from ..errors import ConfigurationError
from ..obs.hist import LogHistogram
from ..obs.slo import BURN_CRITICAL, SloSpec

__all__ = ["AdmissionConfig", "AdmissionController", "DEFAULT_SERVE_SLO"]

#: Default serving objective: p99 end-to-end latency under 50 ms with a
#: 5% error budget.  Generous for the functional stack; deployments
#: tighten it per table size.
DEFAULT_SERVE_SLO = "serve.latency.p99 < 50ms @ 5%"

#: Multiplicative window widening per healthy evaluation (the shrink on
#: a burning evaluation is a hard halving — react fast, recover slow).
_WIDEN_FACTOR = 1.25


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for the admission gate and the adaptive batch window."""

    #: latency objective (``repro.obs.slo`` spec grammar; must be a
    #: ``<timer>.pNN < duration`` latency spec)
    slo: Union[str, SloSpec] = DEFAULT_SERVE_SLO
    #: hard cap on queued-but-unexecuted requests before shedding
    max_queue: int = 1024
    #: batch-window bounds and starting point (microseconds)
    min_wait_us: float = 100.0
    max_wait_us: float = 5000.0
    initial_wait_us: Optional[float] = None  #: default: max_wait_us
    #: requests between SLO re-evaluations
    eval_every: int = 64
    #: sliding window of latency observations the burn is computed over
    window_obs: int = 1024
    #: stop shedding once the burn rate recovers to <= this
    resume_burn: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if self.min_wait_us <= 0 or self.max_wait_us < self.min_wait_us:
            raise ConfigurationError(
                "need 0 < min_wait_us <= max_wait_us "
                f"(got {self.min_wait_us}, {self.max_wait_us})"
            )
        if self.eval_every < 1 or self.window_obs < 1:
            raise ConfigurationError("eval_every and window_obs must be >= 1")
        start = self.initial_wait_us
        if start is not None and not self.min_wait_us <= start <= self.max_wait_us:
            raise ConfigurationError(
                "initial_wait_us must lie within [min_wait_us, max_wait_us]"
            )


class AdmissionController:
    """Shed/resize decisions from SLO burn rates over served latencies."""

    def __init__(self, config: AdmissionConfig = AdmissionConfig()):
        self.config = config
        spec = (
            config.slo
            if isinstance(config.slo, SloSpec)
            else SloSpec.parse(config.slo)
        )
        if spec.kind != "latency":
            raise ConfigurationError(
                f"admission SLO must be a latency objective "
                f"(<timer>.pNN < duration), got {spec.raw!r}"
            )
        self.spec = spec
        self.wait_us = float(
            config.initial_wait_us
            if config.initial_wait_us is not None
            else config.max_wait_us
        )
        self.shedding = False
        self.burn_rate = 0.0
        self.state = 0  #: 0 healthy, 1 degraded, 2 critical (obs.slo semantics)
        self._latencies: Deque[int] = deque(maxlen=config.window_obs)
        self._since_eval = 0
        self.counters: Dict[str, int] = {
            "admitted": 0,
            "shed": 0,
            "shed_queue_full": 0,
            "shed_slo": 0,
            "evaluations": 0,
        }

    # -- signal ingestion ------------------------------------------------------

    def record(self, latency_ns: int) -> None:
        """One served request's end-to-end latency; may trigger a re-eval."""
        self._latencies.append(int(latency_ns))
        self._since_eval += 1
        if self._since_eval >= self.config.eval_every:
            self.evaluate()

    def evaluate(self) -> int:
        """Recompute burn rate, state, shedding flag and batch window.

        Returns the new state (0/1/2).  Called automatically every
        ``eval_every`` recorded latencies; callable directly for tests
        and for the scheduler's drain path.
        """
        self._since_eval = 0
        self.counters["evaluations"] += 1
        hist = LogHistogram()
        for ns in self._latencies:
            hist.observe(ns)
        if hist.count:
            bad = hist.fraction_above(self.spec.threshold)
        else:
            bad = 0.0
        self.burn_rate = bad / self.spec.budget if self.spec.budget else 0.0
        if self.burn_rate >= BURN_CRITICAL:
            self.state = 2
        elif self.burn_rate > 1.0:
            self.state = 1
        else:
            self.state = 0

        # Window resize: react fast (halve) on any burn, recover slowly
        # (multiplicative widen) only while healthy.
        if self.state >= 1:
            self.wait_us = max(self.config.min_wait_us, self.wait_us / 2.0)
        else:
            self.wait_us = min(self.config.max_wait_us, self.wait_us * _WIDEN_FACTOR)

        # Shed on critical burn; resume only once the burn has recovered
        # below the resume threshold (hysteresis - no flapping at 4.0x).
        was_shedding = self.shedding
        if self.state == 2:
            self.shedding = True
        elif self.shedding and self.burn_rate <= self.config.resume_burn:
            self.shedding = False
        if self.shedding != was_shedding:
            obs.emit_event(
                obs.SERVE_OVERLOAD,
                shedding=self.shedding,
                burn_rate=round(self.burn_rate, 3),
                wait_us=round(self.wait_us, 1),
            )

        obs.gauge("serve.admission.state", float(self.state))
        obs.gauge("serve.admission.burn", float(self.burn_rate))
        obs.gauge("serve.batch_window_us", float(self.wait_us))
        obs.gauge("serve.admission.shedding", 1.0 if self.shedding else 0.0)
        return self.state

    # -- the gate --------------------------------------------------------------

    def admit(self, queue_depth: int) -> bool:
        """Admit or shed one validated request (updates counters)."""
        if queue_depth >= self.config.max_queue:
            self.counters["shed"] += 1
            self.counters["shed_queue_full"] += 1
            obs.inc("serve.shed")
            obs.inc("serve.shed.queue_full")
            return False
        if self.shedding:
            self.counters["shed"] += 1
            self.counters["shed_slo"] += 1
            obs.inc("serve.shed")
            obs.inc("serve.shed.slo")
            return False
        self.counters["admitted"] += 1
        obs.inc("serve.admitted")
        return True

    # -- reporting -------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Deterministic local view (independent of the obs toggle)."""
        return {
            **{k: float(v) for k, v in self.counters.items()},
            "burn_rate": float(self.burn_rate),
            "state": float(self.state),
            "shedding": 1.0 if self.shedding else 0.0,
            "wait_us": float(self.wait_us),
            "window_observations": float(len(self._latencies)),
        }
