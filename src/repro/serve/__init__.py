"""Asyncio serving front-end: coalescing, admission control, TCP frames.

The request-level ingress for the SecNDP store (DESIGN.md Sec. 15).
Throughput, not per-call latency, is the committed metric here: single
SLS queries arriving on the event loop coalesce into amortized
``sls_many`` batches (the union-of-rows path that BENCH_hotpaths.json
already shows at ~2.4x), while an SLO-burn admission gate sheds load
and resizes the batch window to keep p99 inside budget.

::

    store = SecureEmbeddingStore(key)
    store.add_table("emb", table)
    async with SlsServer(store, port=0) as server:
        client = await AsyncSlsClient.connect("127.0.0.1", server.port)
        vec = await client.sls("emb", [1, 5, 9])

Layout: :mod:`.protocol` (length-prefixed msgpack/JSON frames, typed
request/response dataclasses), :mod:`.scheduler` (the batching
scheduler and its scatter semantics), :mod:`.admission` (SLO-aware
admission control), :mod:`.server` (the TCP server and the two-transport
client), :mod:`.bench` (the throughput harness behind
``repro bench-serve`` and ``BENCH_serve.json``).
"""

from .admission import DEFAULT_SERVE_SLO, AdmissionConfig, AdmissionController
from .protocol import (
    CODEC_JSON,
    CODEC_MSGPACK,
    DEFAULT_HEARTBEAT_TIMEOUT_S,
    ENV_HEARTBEAT_TIMEOUT,
    MAX_FRAME_BYTES,
    NODE_OPS,
    RESPONSE_STATUSES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_SHUTTING_DOWN,
    FrameError,
    NodeRequest,
    NodeResponse,
    SlsRequest,
    SlsResponse,
    available_codecs,
    decode_payload,
    encode_frame,
    read_frame,
    resolve_heartbeat_timeout,
    write_frame,
)
from .scheduler import DEFAULT_MAX_BATCH, BatchScheduler
from .server import AsyncSlsClient, SlsServer

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "DEFAULT_SERVE_SLO",
    "DEFAULT_MAX_BATCH",
    "BatchScheduler",
    "AsyncSlsClient",
    "SlsServer",
    "SlsRequest",
    "SlsResponse",
    "NodeRequest",
    "NodeResponse",
    "NODE_OPS",
    "FrameError",
    "resolve_heartbeat_timeout",
    "ENV_HEARTBEAT_TIMEOUT",
    "DEFAULT_HEARTBEAT_TIMEOUT_S",
    "available_codecs",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "MAX_FRAME_BYTES",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_OVERLOADED",
    "STATUS_SHUTTING_DOWN",
    "RESPONSE_STATUSES",
]
