"""Asyncio batching scheduler: request coalescing over ``sls_many``.

The throughput lever of the serving front-end (DESIGN.md Sec. 15):
single-query SLS requests arriving on the event loop are collected — for
up to the admission controller's current batch window (``max_wait_us``,
adaptive) or ``max_batch`` requests, whichever fills first — into one
per-table batch, executed through the amortized union-of-rows path
(:meth:`~repro.workloads.secure_sls.SecureEmbeddingStore.sls_many`, or a
:class:`~repro.parallel.engine.ParallelSlsEngine` when one is attached),
and scattered back to the per-request futures.

Exactness is non-negotiable: a coalesced response is bit-identical to a
direct ``store.sls`` call for the same query.  Verification outcomes
stay per-request — when a batch fails verification wholesale, the
scatter hook (:meth:`~repro.workloads.secure_sls.SecureEmbeddingStore.sls_scatter`)
degrades it to per-query serving so a corrupted row fails exactly the
requests that touch it and feeds the existing recovery ladder for
recovery-enabled stores.

The event loop never blocks on crypto or pool round-trips: batches run
on a single offload thread (the engine's, or the scheduler's own
executor), so heartbeats, new connections and admission decisions stay
live during a long batch.  The scheduler keeps deterministic local
counters (``stats()``) and mirrors them into :mod:`repro.obs` when
metrics are enabled.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..errors import (
    ConfigurationError,
    RecoveryExhaustedError,
    VerificationError,
)
from .admission import AdmissionConfig, AdmissionController
from .protocol import (
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_SHUTTING_DOWN,
    SlsRequest,
    SlsResponse,
    error_response,
)

__all__ = ["BatchScheduler", "DEFAULT_MAX_BATCH"]

#: Default coalescing cap: requests per executed batch.
DEFAULT_MAX_BATCH = 32


@dataclass
class _Pending:
    """One admitted request waiting for (or in) a batch."""

    request: SlsRequest
    rows: List[int]          #: validated/normalised by ``_validate_query``
    weights: List[int]
    future: "asyncio.Future[SlsResponse]"
    submitted_ns: int


class BatchScheduler:
    """Coalesce single SLS requests into amortized per-table batches.

    Parameters
    ----------
    store:
        A loaded :class:`~repro.workloads.secure_sls.SecureEmbeddingStore`.
    engine:
        Optional :class:`~repro.parallel.engine.ParallelSlsEngine`
        wrapping the same store; batches then run through its
        non-blocking :meth:`~repro.parallel.engine.ParallelSlsEngine.submit`
        path (sharded across the pool) instead of the scheduler's own
        offload thread.
    max_batch:
        Coalescing cap per executed batch.
    admission:
        An :class:`AdmissionController`, an :class:`AdmissionConfig`, or
        ``None`` for the default controller.

    All coroutine methods must run on one event loop; :meth:`close`
    drains in-flight batches and must be awaited on that same loop.
    """

    def __init__(
        self,
        store,
        engine=None,
        max_batch: int = DEFAULT_MAX_BATCH,
        admission=None,
    ):
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if engine is not None and engine.store is not store:
            raise ConfigurationError("engine must wrap the scheduler's store")
        self.store = store
        self.engine = engine
        self.max_batch = max_batch
        if admission is None:
            admission = AdmissionController()
        elif isinstance(admission, AdmissionConfig):
            admission = AdmissionController(admission)
        self.admission = admission
        self._queues: Dict[str, asyncio.Queue] = {}
        self._batchers: Dict[str, asyncio.Task] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pending = 0          #: admitted, not yet resolved
        self._draining = False
        self._closed = False
        self._stats: Dict[str, int] = {
            "requests": 0,
            "responses_ok": 0,
            "responses_error": 0,
            "rejected_invalid": 0,
            "rejected_shutdown": 0,
            "batches": 0,
            "batch_queries": 0,
            "batch_rows_total": 0,
            "batch_rows_unique": 0,
            "empty_ticks": 0,
            "batch_degradations": 0,
        }

    # -- submission ------------------------------------------------------------

    async def submit(self, request: SlsRequest) -> SlsResponse:
        """Serve one request through the coalescing pipeline.

        The pre-queue ladder is synchronous (no awaits), so a burst of
        submissions sees a consistent queue depth: validate (oversized /
        malformed queries are rejected with a typed ``error`` response
        *before* admission and never count against the gate), then the
        admission gate (typed ``overloaded`` on shed), then enqueue.
        """
        self._stats["requests"] += 1
        obs.inc("serve.requests")
        if self._draining:
            self._stats["rejected_shutdown"] += 1
            obs.inc("serve.response.shutting_down")
            return SlsResponse(
                id=request.id,
                status=STATUS_SHUTTING_DOWN,
                error="server is draining",
                kind="ServerClosedError",
            )
        if request.op != "sls" or request.table is None:
            self._stats["rejected_invalid"] += 1
            obs.inc("serve.response.invalid")
            return error_response(
                request.id,
                ConfigurationError(f"malformed request (op={request.op!r})"),
            )
        # Validation before admission: a query the store would reject
        # (overflow budget, negative weights, unknown table) must not
        # consume queue capacity or skew the shed accounting.
        try:
            rows, weights = self.store._validate_query(
                request.table, list(request.rows), request.weights
            )
        except KeyError:
            self._stats["rejected_invalid"] += 1
            obs.inc("serve.response.invalid")
            return error_response(
                request.id,
                ConfigurationError(f"unknown table {request.table!r}"),
            )
        except ConfigurationError as exc:
            self._stats["rejected_invalid"] += 1
            obs.inc("serve.response.invalid")
            return error_response(request.id, exc)

        if not self.admission.admit(self._pending):
            obs.inc("serve.response.overloaded")
            return SlsResponse(
                id=request.id,
                status=STATUS_OVERLOADED,
                error="admission control shed this request",
                kind="OverloadedError",
            )

        loop = asyncio.get_running_loop()
        pending = _Pending(
            request=request,
            rows=rows,
            weights=weights,
            future=loop.create_future(),
            submitted_ns=time.perf_counter_ns(),
        )
        self._pending += 1
        queue = self._queues.get(request.table)
        if queue is None:
            queue = self._queues[request.table] = asyncio.Queue()
        queue.put_nowait(pending)
        task = self._batchers.get(request.table)
        if task is None or task.done():
            self._batchers[request.table] = loop.create_task(
                self._batcher(request.table)
            )
        try:
            return await pending.future
        finally:
            if pending.future.cancelled():
                # The caller went away; the batcher drops cancelled
                # entries at collection time (the empty-tick path).
                self._pending -= 1

    # -- the batcher loop ------------------------------------------------------

    async def _batcher(self, name: str) -> None:
        """One table's collect/execute loop; exits on the drain sentinel."""
        queue = self._queues[name]
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            if item is None:
                break
            batch: List[_Pending] = [item]
            deadline = loop.time() + self.admission.wait_us / 1e6
            stop = False
            while len(batch) < self.max_batch:
                if self._draining:
                    # Drain mode: no windowing, just flush what is queued.
                    try:
                        nxt = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(queue.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            live = [p for p in batch if not p.future.cancelled()]
            if live:
                await self._run_batch(name, live)
            elif batch:
                # Every collected request was cancelled before the tick
                # fired: nothing to execute, nothing to offload.
                self._stats["empty_ticks"] += 1
                obs.inc("serve.batch.empty")
            if stop:
                break

    async def _run_batch(self, name: str, batch: List[_Pending]) -> None:
        rows_list = [p.rows for p in batch]
        weights_list = [p.weights for p in batch]
        self._stats["batches"] += 1
        self._stats["batch_queries"] += len(batch)
        total = sum(len(r) for r in rows_list)
        unique = len({r for rows in rows_list for r in rows})
        self._stats["batch_rows_total"] += total
        self._stats["batch_rows_unique"] += unique
        if obs.enabled():
            obs.inc("serve.batch.calls")
            obs.inc("serve.batch.queries", len(batch))
            obs.inc("serve.batch.rows_total", total)
            obs.inc("serve.batch.rows_unique", unique)
        t0 = time.perf_counter_ns()
        try:
            with obs.span("serve.batch"):
                values, outcomes = await self._execute(name, rows_list, weights_list)
        except Exception as exc:  # post-validation failures are per-batch
            for p in batch:
                self._resolve(p, error_response(p.request.id, exc, via="batch"))
            return
        finally:
            obs.observe_ns("serve.batch.ns", time.perf_counter_ns() - t0)
        for p, row_values, outcome in zip(batch, values, outcomes):
            if outcome.ok:
                self._resolve(
                    p,
                    SlsResponse(
                        id=p.request.id,
                        status=STATUS_OK,
                        values=tuple(float(v) for v in row_values),
                        via="scatter" if outcome.degraded else "batch",
                    ),
                )
            else:
                self._resolve(
                    p,
                    SlsResponse(
                        id=p.request.id,
                        status="error",
                        error=outcome.error,
                        kind=outcome.kind,
                        via="scatter",
                    ),
                )

    async def _execute(
        self, name: str, rows_list: List[List[int]], weights_list: List[List[int]]
    ) -> Tuple[np.ndarray, list]:
        """One batch through the amortized path, off the event loop.

        Engine-backed schedulers go through the engine's non-blocking
        :meth:`~repro.parallel.engine.ParallelSlsEngine.submit`; on a
        verification failure the batch degrades to the store's scatter
        hook (still on the engine's offload thread, so store access
        stays single-threaded).  Without an engine the scheduler's own
        single-thread executor plays the same role.
        """
        from ..workloads.secure_sls import QueryOutcome

        if self.engine is not None:
            try:
                values = await asyncio.wrap_future(
                    self.engine.submit(name, rows_list, weights_list)
                )
                return values, [QueryOutcome(ok=True)] * len(rows_list)
            except (VerificationError, RecoveryExhaustedError):
                self._stats["batch_degradations"] += 1
                obs.inc("serve.batch.degradations")
            scatter = self.engine.offload(
                self.store.sls_scatter, name, rows_list, weights_list
            )
            return await asyncio.wrap_future(scatter)
        loop = asyncio.get_running_loop()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="secndp-serve"
            )
        return await loop.run_in_executor(
            self._executor, self.store.sls_scatter, name, rows_list, weights_list
        )

    def _resolve(self, pending: _Pending, response: SlsResponse) -> None:
        self._pending -= 1
        if pending.future.cancelled():
            return
        latency = time.perf_counter_ns() - pending.submitted_ns
        self.admission.record(latency)
        obs.observe_ns("serve.latency.ns", latency)
        if response.status == STATUS_OK:
            self._stats["responses_ok"] += 1
            obs.inc("serve.response.ok")
        else:
            self._stats["responses_error"] += 1
            obs.inc("serve.response.error")
            obs.inc("serve.errors")
        pending.future.set_result(response)

    # -- lifecycle -------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pending(self) -> int:
        """Admitted requests not yet resolved (the admission queue depth)."""
        return self._pending

    async def close(self) -> None:
        """Drain: finish in-flight batches, reject new work, release the
        offload executor.  Idempotent; must run on the submit loop."""
        if self._closed:
            return
        self._draining = True
        for queue in self._queues.values():
            queue.put_nowait(None)
        if self._batchers:
            await asyncio.gather(
                *self._batchers.values(), return_exceptions=True
            )
        self._batchers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._closed = True

    # -- reporting -------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Deterministic counters plus the admission controller's view."""
        out: Dict[str, float] = {k: float(v) for k, v in self._stats.items()}
        if self._stats["batch_rows_total"]:
            out["dedupe_ratio"] = (
                self._stats["batch_rows_unique"] / self._stats["batch_rows_total"]
            )
        out["mean_batch_fill"] = (
            self._stats["batch_queries"] / self._stats["batches"]
            if self._stats["batches"]
            else 0.0
        )
        out["pending"] = float(self._pending)
        for key, value in self.admission.stats().items():
            out[f"admission.{key}"] = value
        return out
